/**
 * @file
 * Ablation study for the architectural design choices DESIGN.md calls
 * out (not a paper figure, but the paper's Table III picks specific
 * values for each): queue depth (24), reference-accelerator memory
 * parallelism, SMT thread count, and the value-forwarding pass. Run on
 * BFS over the road-network training input.
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace phloem;

namespace {

double
runBfs(const sim::SysConfig& cfg, const comp::CompileOptions& copts)
{
    wl::Workload bfs = wl::findWorkload("bfs");
    driver::Experiment exp(bfs, cfg);
    const wl::Case* c = nullptr;
    for (const auto& cc : bfs.cases)
        if (cc.inputName == "USA-road-d-NY")
            c = &cc;
    uint64_t serial = exp.serialCycles(*c);
    auto res = exp.compileStatic(copts);
    if (!res.ok())
        return 0.0;
    auto out = exp.runPipeline(*c, *res.pipeline);
    if (!out.correct)
        return 0.0;
    return static_cast<double>(serial) /
           static_cast<double>(out.stats.cycles);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_ablation");
    std::printf("=== Ablation: BFS pipeline speedup vs design choices "
                "(road network) ===\n\n");

    auto record = [](const char* sweep, const std::string& value,
                     double s) {
        if (auto* r = bench::reportRun(
                "bfs", {{"sweep", sweep}, {"value", value}}))
            r->top.setGauge("speedup", s);
    };

    std::printf("queue depth (Table III: 24):\n");
    for (int depth : {2, 4, 8, 16, 24, 48, 96}) {
        sim::SysConfig cfg = bench::evalConfig();
        cfg.queueDepth = depth;
        double s = runBfs(cfg, comp::CompileOptions{});
        std::printf("  depth %-4d %5.2fx\n", depth, s);
        record("queue_depth", std::to_string(depth), s);
    }

    std::printf("\nRA outstanding requests:\n");
    for (int inflight : {1, 2, 4, 8, 16, 32}) {
        sim::SysConfig cfg = bench::evalConfig();
        cfg.raMaxInflight = inflight;
        double s = runBfs(cfg, comp::CompileOptions{});
        std::printf("  inflight %-4d %5.2fx\n", inflight, s);
        record("ra_inflight", std::to_string(inflight), s);
    }

    std::printf("\npipeline depth (stage-thread budget):\n");
    for (int stages : {2, 3, 4, 6, 8}) {
        sim::SysConfig cfg = bench::evalConfig();
        cfg.threadsPerCore = std::max(4, stages);
        comp::CompileOptions copts;
        copts.numStages = stages;
        double s = runBfs(cfg, copts);
        std::printf("  %d stages  %5.2fx\n", stages, s);
        record("stages", std::to_string(stages), s);
    }

    std::printf("\nmispredict penalty (paper-era cores ~14 cycles):\n");
    for (int penalty : {0, 7, 14, 28}) {
        sim::SysConfig cfg = bench::evalConfig();
        cfg.mispredictPenalty = penalty;
        double s = runBfs(cfg, comp::CompileOptions{});
        std::printf("  penalty %-4d %5.2fx\n", penalty, s);
        record("mispredict_penalty", std::to_string(penalty), s);
    }

    std::printf("\npass toggles (from the full compiler):\n");
    {
        comp::CompileOptions base;
        struct Row
        {
            const char* label;
            comp::CompileOptions opts;
        };
        comp::CompileOptions no_ra = base;
        no_ra.referenceAccelerators = false;
        comp::CompileOptions no_cv = base;
        no_cv.controlValues = false;
        comp::CompileOptions no_dce = base;
        no_dce.dce = false;
        comp::CompileOptions no_ch = base;
        no_ch.handlers = false;
        comp::CompileOptions no_rec = base;
        no_rec.recompute = false;
        const Row rows[] = {
            {"full", base},           {"-recompute", no_rec},
            {"-accelerators", no_ra}, {"-control values", no_cv},
            {"-dce", no_dce},         {"-handlers", no_ch},
        };
        for (const auto& r : rows) {
            comp::CompileOptions o = r.opts;
            o.maxQueues = 64;
            double s = runBfs(bench::evalConfig(), o);
            std::printf("  %-18s %5.2fx\n", r.label, s);
            record("pass_toggle", r.label, s);
        }
    }
    return bench::finishReport();
}
