#include "bench/bench_common.h"

#include <cstring>
#include <sstream>

#include "base/stats_util.h"
#include "ir/printer.h"
#include "metrics/collect.h"

namespace phloem::bench {

namespace {

std::string
shapeOf(const ir::Pipeline& p)
{
    std::ostringstream oss;
    oss << p.stages.size() << " stages + " << p.ras.size()
        << " RAs (length " << p.lengthWithRAs() << ")";
    return oss.str();
}

VariantRun
toRun(const driver::RunOutcome& out, const sim::SysConfig& cfg)
{
    VariantRun r;
    r.ok = out.correct;
    r.cycles = out.stats.cycles;
    r.stats = out.stats;
    r.energy = sim::computeEnergy(out.stats, sim::EnergyConfig{},
                                  cfg.numCores);
    r.error = out.error;
    return r;
}

} // namespace

WorkloadRuns
runWorkloadSuite(const wl::Workload& workload, const SuiteOptions& opts)
{
    WorkloadRuns runs;
    runs.workload = workload.name;

    sim::SysConfig cfg = evalConfig(opts.cores);
    driver::Experiment exp(workload, cfg);

    // Compile the pipelines once.
    comp::CompileOptions copts;
    copts.numStages = workload.maxThreads;
    comp::CompileResult static_pipe = exp.compileStatic(copts);
    if (static_pipe.pipeline != nullptr)
        runs.staticShape = shapeOf(*static_pipe.pipeline);

    const ir::Pipeline* pgo_pipe = nullptr;
    if (opts.runPgo) {
        comp::AutotuneOptions aopts;
        aopts.maxThreads = workload.maxThreads;
        aopts.topK = workload.pgoTopK;
        aopts.base = copts;
        aopts.base.shrinkToFit = false;  // candidates verify individually
        runs.autotune = exp.autotunePGO(aopts);
        if (runs.autotune.best.pipeline != nullptr) {
            pgo_pipe = runs.autotune.best.pipeline.get();
            runs.pgoShape = shapeOf(*pgo_pipe);
        }
    }

    ir::PipelinePtr manual;
    if (opts.runManual)
        manual = exp.buildManual();

    for (const auto& c : workload.cases) {
        if (c.training == opts.testInputs)
            continue;
        InputRuns in;
        in.input = c.inputName;

        driver::RunOutcome serial = exp.runSerial(c);
        in.serialCycles = serial.stats.cycles;
        in.variants["serial"] = toRun(serial, cfg);

        if (opts.runParallel) {
            in.variants["parallel"] =
                toRun(exp.runParallel(c, opts.parallelThreads), cfg);
        }
        if (static_pipe.ok()) {
            in.variants["phloem-static"] =
                toRun(exp.runPipeline(c, *static_pipe.pipeline), cfg);
        }
        if (pgo_pipe != nullptr) {
            in.variants["phloem"] =
                toRun(exp.runPipeline(c, *pgo_pipe), cfg);
        }
        if (manual != nullptr) {
            in.variants["manual"] =
                toRun(exp.runPipeline(c, *manual), cfg);
        }
        runs.inputs.push_back(std::move(in));
    }
    return runs;
}

double
gmeanSpeedup(const WorkloadRuns& runs, const std::string& variant)
{
    std::vector<double> v;
    for (const auto& in : runs.inputs) {
        double s = speedup(in, variant);
        if (s > 0)
            v.push_back(s);
    }
    return gmean(v);
}

namespace {

metrics::Report g_report;
std::string g_report_path;
std::string g_bench_name;

} // namespace

void
initReport(int* argc, char** argv, const std::string& bench)
{
    g_bench_name = bench;
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        if (std::strncmp(argv[i], "--report=", 9) == 0) {
            g_report_path = argv[i] + 9;
            continue;
        }
        if (std::strcmp(argv[i], "--report") == 0 && i + 1 < *argc) {
            g_report_path = argv[++i];
            continue;
        }
        argv[out++] = argv[i];
    }
    argv[out] = nullptr;
    *argc = out;
    if (g_report_path.empty())
        return;
    g_report.meta["tool"] = bench;
    g_report.meta["config_fingerprint"] =
        metrics::configFingerprint(evalConfig());
}

metrics::Report*
report()
{
    return g_report_path.empty() ? nullptr : &g_report;
}

metrics::Run*
reportRun(const std::string& name,
          const std::map<std::string, std::string>& labels)
{
    if (g_report_path.empty())
        return nullptr;
    // The bench label keeps runs distinct when run_benches.sh merges
    // all suite reports: several benches report the same workloads
    // under otherwise-identical labels.
    std::map<std::string, std::string> keyed = labels;
    keyed.emplace("bench", g_bench_name);
    return &g_report.run(name, keyed);
}

void
reportSuite(const WorkloadRuns& runs)
{
    if (g_report_path.empty())
        return;
    for (const auto& in : runs.inputs) {
        for (const auto& [variant, vr] : in.variants) {
            metrics::Run r = metrics::simRunToMetrics(
                runs.workload, vr.stats, vr.ok ? &vr.energy : nullptr);
            r.labels["bench"] = g_bench_name;
            r.labels["input"] = in.input;
            r.labels["variant"] = variant;
            double s = speedup(in, variant);
            if (s > 0)
                r.top.setGauge("speedup", s);
            if (!vr.ok)
                r.top.addCounter("failures", 1);
            g_report.run(r.name, r.labels) = std::move(r);
        }
    }
}

int
finishReport()
{
    if (g_report_path.empty())
        return 0;
    std::string err;
    if (!metrics::writeFile(g_report, g_report_path, &err)) {
        std::fprintf(stderr, "%s: report write failed: %s\n",
                     g_bench_name.c_str(), err.c_str());
        return 1;
    }
    std::printf("report: %s (%zu runs)\n", g_report_path.c_str(),
                g_report.runs.size());
    return 0;
}

} // namespace phloem::bench
