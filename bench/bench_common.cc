#include "bench/bench_common.h"

#include <sstream>

#include "base/stats_util.h"
#include "ir/printer.h"

namespace phloem::bench {

namespace {

std::string
shapeOf(const ir::Pipeline& p)
{
    std::ostringstream oss;
    oss << p.stages.size() << " stages + " << p.ras.size()
        << " RAs (length " << p.lengthWithRAs() << ")";
    return oss.str();
}

VariantRun
toRun(const driver::RunOutcome& out, const sim::SysConfig& cfg)
{
    VariantRun r;
    r.ok = out.correct;
    r.cycles = out.stats.cycles;
    r.stats = out.stats;
    r.energy = sim::computeEnergy(out.stats, sim::EnergyConfig{},
                                  cfg.numCores);
    r.error = out.error;
    return r;
}

} // namespace

WorkloadRuns
runWorkloadSuite(const wl::Workload& workload, const SuiteOptions& opts)
{
    WorkloadRuns runs;
    runs.workload = workload.name;

    sim::SysConfig cfg = evalConfig(opts.cores);
    driver::Experiment exp(workload, cfg);

    // Compile the pipelines once.
    comp::CompileOptions copts;
    copts.numStages = workload.maxThreads;
    comp::CompileResult static_pipe = exp.compileStatic(copts);
    if (static_pipe.pipeline != nullptr)
        runs.staticShape = shapeOf(*static_pipe.pipeline);

    const ir::Pipeline* pgo_pipe = nullptr;
    if (opts.runPgo) {
        comp::AutotuneOptions aopts;
        aopts.maxThreads = workload.maxThreads;
        aopts.topK = workload.pgoTopK;
        aopts.base = copts;
        aopts.base.shrinkToFit = false;  // candidates verify individually
        runs.autotune = exp.autotunePGO(aopts);
        if (runs.autotune.best.pipeline != nullptr) {
            pgo_pipe = runs.autotune.best.pipeline.get();
            runs.pgoShape = shapeOf(*pgo_pipe);
        }
    }

    ir::PipelinePtr manual;
    if (opts.runManual)
        manual = exp.buildManual();

    for (const auto& c : workload.cases) {
        if (c.training == opts.testInputs)
            continue;
        InputRuns in;
        in.input = c.inputName;

        driver::RunOutcome serial = exp.runSerial(c);
        in.serialCycles = serial.stats.cycles;
        in.variants["serial"] = toRun(serial, cfg);

        if (opts.runParallel) {
            in.variants["parallel"] =
                toRun(exp.runParallel(c, opts.parallelThreads), cfg);
        }
        if (static_pipe.ok()) {
            in.variants["phloem-static"] =
                toRun(exp.runPipeline(c, *static_pipe.pipeline), cfg);
        }
        if (pgo_pipe != nullptr) {
            in.variants["phloem"] =
                toRun(exp.runPipeline(c, *pgo_pipe), cfg);
        }
        if (manual != nullptr) {
            in.variants["manual"] =
                toRun(exp.runPipeline(c, *manual), cfg);
        }
        runs.inputs.push_back(std::move(in));
    }
    return runs;
}

double
gmeanSpeedup(const WorkloadRuns& runs, const std::string& variant)
{
    std::vector<double> v;
    for (const auto& in : runs.inputs) {
        double s = speedup(in, variant);
        if (s > 0)
            v.push_back(s);
    }
    return gmean(v);
}

} // namespace phloem::bench
