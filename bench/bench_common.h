/**
 * @file
 * Shared infrastructure for the figure-regeneration harnesses.
 *
 * Every bench binary regenerates one table or figure of the paper's
 * evaluation (see DESIGN.md's per-experiment index). The binaries print
 * the same rows/series the paper reports; absolute numbers differ from
 * the authors' testbed, but the shapes are the reproduction target
 * (EXPERIMENTS.md records both).
 */

#ifndef PHLOEM_BENCH_BENCH_COMMON_H
#define PHLOEM_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "driver/experiment.h"
#include "metrics/metrics.h"
#include "sim/energy.h"
#include "workloads/workload.h"

namespace phloem::bench {

/** The evaluation config: Table III scaled to the reduced inputs. */
inline sim::SysConfig
evalConfig(int cores = 1)
{
    return sim::SysConfig::scaledEval(cores);
}

/** Everything one (workload, input, variant) run produced. */
struct VariantRun
{
    bool ok = false;
    uint64_t cycles = 0;
    sim::RunStats stats;
    sim::EnergyBreakdown energy;
    std::string error;
};

/** All variants for one (workload, input). */
struct InputRuns
{
    std::string input;
    uint64_t serialCycles = 0;
    std::map<std::string, VariantRun> variants;  // keyed by variant name
};

struct WorkloadRuns
{
    std::string workload;
    std::vector<InputRuns> inputs;
    /** Cut/pipeline metadata for reporting. */
    std::string staticShape;
    std::string pgoShape;
    comp::AutotuneResult autotune;  // populated when PGO ran
};

struct SuiteOptions
{
    bool runPgo = true;
    bool runManual = true;
    bool runParallel = true;
    bool testInputs = true;  // false = training inputs
    int parallelThreads = 4;
    int cores = 1;
};

/** Run the full variant matrix for one workload. */
WorkloadRuns runWorkloadSuite(const wl::Workload& workload,
                              const SuiteOptions& opts);

/** Print "name: val" aligned. */
inline void
printRow(const std::string& label, const std::string& value)
{
    std::printf("  %-28s %s\n", label.c_str(), value.c_str());
}

/** speedup of a variant vs serial for one input (0 when failed). */
inline double
speedup(const InputRuns& in, const std::string& variant)
{
    auto it = in.variants.find(variant);
    if (it == in.variants.end() || !it->second.ok ||
        it->second.cycles == 0) {
        return 0.0;
    }
    return static_cast<double>(in.serialCycles) /
           static_cast<double>(it->second.cycles);
}

/** gmean speedup of a variant across a workload's inputs (skips fails). */
double gmeanSpeedup(const WorkloadRuns& runs, const std::string& variant);

// ---------------------------------------------------------------------
// Machine-readable run reports (src/metrics). Every harness calls
// initReport() first — it strips --report=PATH (or --report PATH) from
// argv so the existing positional parsing stays untouched — then feeds
// results via reportSuite()/reportRun(), and returns finishReport() so
// a failed report write fails the bench.
// ---------------------------------------------------------------------

/** Strip --report from argv and remember the bench name + output path. */
void initReport(int* argc, char** argv, const std::string& bench);

/** The in-progress report; nullptr when --report was not given. */
metrics::Report* report();

/**
 * Find-or-create one run in the report; nullptr when reporting is off.
 * For ad-hoc result rows (pass configs, ablation sweeps): set gauges /
 * counters on ->top.
 */
metrics::Run* reportRun(const std::string& name,
                        const std::map<std::string, std::string>& labels);

/**
 * Add every variant run of a workload suite: one metrics run per
 * (workload, input, variant) with the full simulator breakdown, energy,
 * and a "speedup" gauge vs the serial baseline. No-op when off.
 */
void reportSuite(const WorkloadRuns& runs);

/** Write the report if one was requested. Returns a process exit code. */
int finishReport();

} // namespace phloem::bench

#endif // PHLOEM_BENCH_BENCH_COMMON_H
