/**
 * @file
 * Fig. 10: breakdown of cycles, normalized to the serial baseline.
 *
 * For each benchmark and variant (S: serial, D: data-parallel, P: Phloem,
 * M: manually pipelined) the paper breaks aggregate core cycles into
 * issuing micro-ops, backend stalls (memory), full/empty-queue stalls,
 * and other stalls (frontend / mispredicts).
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace phloem;

namespace {

void
printBreakdown(const char* tag, const bench::VariantRun& run,
               double serial_cycles)
{
    if (!run.ok) {
        std::printf("    %-2s (failed: %s)\n", tag, run.error.c_str());
        return;
    }
    const sim::RunStats& s = run.stats;
    double norm = serial_cycles;
    std::printf("    %-2s total=%6.2f  issue=%5.2f  backend=%5.2f  "
                "queue=%5.2f  other=%5.2f\n",
                tag, s.totalThreadCycles() / norm,
                s.totalIssueCycles() / norm, s.totalBackendCycles() / norm,
                s.totalQueueStallCycles() / norm,
                s.totalFrontendCycles() / norm);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig10");
    const char* only = argc > 1 ? argv[1] : nullptr;
    std::printf("=== Fig. 10: cycle breakdown, normalized to serial "
                "(aggregate thread-cycles) ===\n");
    std::printf("buckets: issuing uops | backend (memory) stalls | "
                "full/empty queues | other (frontend)\n\n");

    for (const auto& w : wl::mainSuite()) {
        if (only != nullptr && w.name != only)
            continue;
        bench::SuiteOptions opts;
        opts.runPgo = false;  // breakdown uses the static pipeline
        auto runs = bench::runWorkloadSuite(w, opts);
        bench::reportSuite(runs);
        std::printf("%s:\n", runs.workload.c_str());
        for (const auto& in : runs.inputs) {
            std::printf("  %s (serial %llu cycles)\n", in.input.c_str(),
                        static_cast<unsigned long long>(in.serialCycles));
            double base = static_cast<double>(in.serialCycles);
            printBreakdown("S", in.variants.at("serial"), base);
            if (in.variants.count("parallel"))
                printBreakdown("D", in.variants.at("parallel"), base);
            if (in.variants.count("phloem-static"))
                printBreakdown("P", in.variants.at("phloem-static"), base);
            if (in.variants.count("manual"))
                printBreakdown("M", in.variants.at("manual"), base);
        }
    }
    return bench::finishReport();
}
