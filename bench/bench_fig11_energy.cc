/**
 * @file
 * Fig. 11: breakdown of energy, normalized to the serial baseline
 * (S: serial, D: data-parallel, P: Phloem, M: manually pipelined).
 * Buckets follow the paper's model: core dynamic, cache (incl. RAs),
 * DRAM, and static energy over the run.
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace phloem;

namespace {

void
printEnergy(const char* tag, const bench::VariantRun& run,
            double serial_total)
{
    if (!run.ok) {
        std::printf("    %-2s (failed)\n", tag);
        return;
    }
    const sim::EnergyBreakdown& e = run.energy;
    std::printf("    %-2s total=%5.2f  core=%5.2f  cache=%5.2f  "
                "dram=%5.2f  static=%5.2f\n",
                tag, e.total() / serial_total,
                e.coreDynamic / serial_total, e.cache / serial_total,
                e.dram / serial_total, e.staticEnergy / serial_total);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig11");
    const char* only = argc > 1 ? argv[1] : nullptr;
    std::printf("=== Fig. 11: energy breakdown, normalized to serial "
                "===\n\n");

    for (const auto& w : wl::mainSuite()) {
        if (only != nullptr && w.name != only)
            continue;
        bench::SuiteOptions opts;
        opts.runPgo = false;
        auto runs = bench::runWorkloadSuite(w, opts);
        bench::reportSuite(runs);
        std::printf("%s:\n", runs.workload.c_str());
        for (const auto& in : runs.inputs) {
            const auto& serial = in.variants.at("serial");
            if (!serial.ok)
                continue;
            double base = serial.energy.total();
            std::printf("  %s (serial %.3f mJ)\n", in.input.c_str(),
                        base);
            printEnergy("S", serial, base);
            if (in.variants.count("parallel"))
                printEnergy("D", in.variants.at("parallel"), base);
            if (in.variants.count("phloem-static"))
                printEnergy("P", in.variants.at("phloem-static"), base);
            if (in.variants.count("manual"))
                printEnergy("M", in.variants.at("manual"), base);
        }
    }
    std::printf("\npaper shape: Phloem below serial and data-parallel "
                "everywhere, comparable to manual\n");
    return bench::finishReport();
}
