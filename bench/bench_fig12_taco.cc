/**
 * @file
 * Fig. 12: speedups when parallelizing Taco-generated kernels (static
 * compilation flow only, per the paper Sec. VI-C), gmean over the Taco
 * input matrices. Paper shape: MTMul/Residual/SpMV ~1.5x for Phloem with
 * data-parallel barely improving; SDDMM flat for Phloem while
 * data-parallel gains (its dense inner loop suits conventional cores).
 */

#include <cstdio>

#include "bench/bench_common.h"

using namespace phloem;

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig12");
    const char* only = argc > 1 ? argv[1] : nullptr;
    std::printf("=== Fig. 12: Taco kernels, speedup over Taco serial "
                "===\n");
    std::printf("%-14s %12s %16s\n", "kernel", "data-par",
                "phloem(static)");

    for (const auto& w : wl::tacoWorkloads()) {
        if (only != nullptr && w.name != only)
            continue;
        bench::SuiteOptions opts;
        opts.runPgo = false;     // Taco uses the static flow (Sec. VI-C)
        opts.runManual = false;  // no manual pipelines for Taco code
        auto runs = bench::runWorkloadSuite(w, opts);
        bench::reportSuite(runs);
        std::printf("%-14s %11.2fx %15.2fx\n", runs.workload.c_str(),
                    bench::gmeanSpeedup(runs, "parallel"),
                    bench::gmeanSpeedup(runs, "phloem-static"));
        std::printf("    pipeline: %s\n", runs.staticShape.c_str());
        for (const auto& in : runs.inputs) {
            std::printf("    %-20s serial=%-10llu static=%.2fx "
                        "dp=%.2fx\n",
                        in.input.c_str(),
                        static_cast<unsigned long long>(in.serialCycles),
                        bench::speedup(in, "phloem-static"),
                        bench::speedup(in, "parallel"));
            for (const auto& [name, run] : in.variants) {
                if (!run.ok)
                    std::printf("      !! %s failed: %s\n", name.c_str(),
                                run.error.c_str());
            }
        }
    }
    return bench::finishReport();
}
