/**
 * @file
 * Fig. 13: distribution of gmean training-input performance of the
 * autotuner's candidate pipelines, grouped by pipeline length (stage
 * threads + reference accelerators). Paper shape: performance peaks at
 * moderate lengths (BFS best 4-long ~2.8x, 8-long worse), SpMM degrades
 * as stages are added, SpMV dips at 5.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"

using namespace phloem;

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig13");
    std::vector<std::string> names = {"bfs", "spmm", "taco_spmv"};
    if (argc > 1)
        names = {argv[1]};

    std::printf("=== Fig. 13: training gmean speedup vs pipeline length "
                "(stages incl. RAs) ===\n\n");

    for (const auto& name : names) {
        wl::Workload w = wl::findWorkload(name);
        driver::Experiment exp(w, bench::evalConfig());
        comp::AutotuneOptions aopts;
        aopts.maxThreads = w.maxThreads;
        aopts.topK = w.pgoTopK;
        aopts.base.shrinkToFit = false;
        auto result = exp.autotunePGO(aopts);

        std::map<int, std::vector<double>> by_length;
        for (const auto& e : result.entries) {
            if (e.trainingSpeedup > 0)
                by_length[e.lengthWithRAs].push_back(e.trainingSpeedup);
        }

        std::printf("%s (%zu candidate pipelines profiled; best %.2fx)\n",
                    name.c_str(), result.entries.size(),
                    result.bestTrainingSpeedup);
        if (auto* r = bench::reportRun(name, {{"phase", "autotune"}})) {
            r->top.addCounter("candidates", result.entries.size());
            r->top.setGauge("best_training_speedup",
                            result.bestTrainingSpeedup);
            auto& d = r->top.dist("candidate_speedup",
                                  {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0});
            for (const auto& e : result.entries)
                if (e.trainingSpeedup > 0)
                    d.observe(e.trainingSpeedup);
        }
        std::printf("  %-8s %5s %8s %8s %8s\n", "length", "count", "min",
                    "median", "max");
        for (auto& [len, v] : by_length) {
            std::sort(v.begin(), v.end());
            std::printf("  %-8d %5zu %7.2fx %7.2fx %7.2fx\n", len,
                        v.size(), v.front(), v[v.size() / 2], v.back());
        }
        std::printf("\n");
    }
    return bench::finishReport();
}
