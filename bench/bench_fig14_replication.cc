/**
 * @file
 * Fig. 14: replicated pipelines on a 4-core, 4-SMT-thread system,
 * compared to serial (1 thread), data-parallel scaled to 16 threads, and
 * manually replicated pipelines.
 *
 * Paper shape: manual BFS ~12x / auto ~10x; manual CC ~7x / auto ~4x;
 * replicated Radii (2 stages x 8 replicas) beats both other versions;
 * PRD beats data-parallel but reaches about half of manual.
 */

#include <cstdio>

#include "base/stats_util.h"
#include "bench/bench_common.h"
#include "frontend/frontend.h"
#include "workloads/graph.h"
#include "workloads/kernels.h"

using namespace phloem;

namespace {

constexpr int kCores = 4;
constexpr int kThreads = 16;

struct RepSpec
{
    const char* workload;       // base workload (serial + parallel)
    const char* replicatedSrc;  // replicated kernel source
    int replicas;
    int stagesPerReplica;       // thread budget per replica
    /** Manually replicated variant = hand-picked stage count. */
    int manualStages;
};

/** Rounds the fringe-based golden algorithms need on a graph. */
int
convergenceRounds(const wl::CSRGraph& g, int32_t root,
                  const std::string& which)
{
    if (which == "bfs") {
        auto dist = wl::bfsGolden(g, root);
        int32_t mx = 0;
        for (int32_t d : dist)
            if (d != INT32_MAX)
                mx = std::max(mx, d);
        return mx + 1;
    }
    if (which == "cc") {
        // Label propagation rounds until fixpoint.
        std::vector<int32_t> labels(static_cast<size_t>(g.n));
        for (int32_t v = 0; v < g.n; ++v)
            labels[static_cast<size_t>(v)] = v;
        std::vector<int32_t> cur, next;
        for (int32_t v = 0; v < g.n; ++v)
            cur.push_back(v);
        int rounds = 0;
        while (!cur.empty()) {
            rounds++;
            next.clear();
            for (int32_t v : cur) {
                int32_t l = labels[static_cast<size_t>(v)];
                for (int32_t e = g.nodes[static_cast<size_t>(v)];
                     e < g.nodes[static_cast<size_t>(v) + 1]; ++e) {
                    int32_t ngh = g.edges[static_cast<size_t>(e)];
                    if (l < labels[static_cast<size_t>(ngh)]) {
                        labels[static_cast<size_t>(ngh)] = l;
                        next.push_back(ngh);
                    }
                }
            }
            cur.swap(next);
        }
        return rounds + 1;
    }
    // radii: masks stabilize within diameter-ish rounds.
    auto radii = wl::radiiGolden(g);
    int32_t mx = 0;
    for (int32_t r : radii)
        mx = std::max(mx, r);
    return mx + 2;
}

/** Bind a replicated graph workload: shared graph + per-replica fringes. */
void
bindReplicated(sim::Binding& b, const wl::GraphInput& in,
               const std::string& which, int replicas, int rounds)
{
    const wl::CSRGraph& g = *in.graph;
    auto* nodes = b.makeArray("nodes", ir::ElemType::kI32,
                              static_cast<size_t>(g.n) + 1);
    for (int32_t v = 0; v <= g.n; ++v)
        nodes->setInt(v, g.nodes[static_cast<size_t>(v)]);
    auto* edges = b.makeArray(
        "edges", ir::ElemType::kI32,
        std::max<size_t>(1, static_cast<size_t>(g.m())));
    for (int64_t e = 0; e < g.m(); ++e)
        edges->setInt(e, g.edges[static_cast<size_t>(e)]);

    size_t fringe_elems = static_cast<size_t>(g.m()) * 2 +
                          static_cast<size_t>(g.n) + 65;
    for (int r = 0; r < replicas; ++r) {
        b.bindReplica(r, "cur_fringe",
                      b.makeArray("cur_fringe@" + std::to_string(r),
                                  ir::ElemType::kI32, fringe_elems));
        b.bindReplica(r, "next_fringe",
                      b.makeArray("next_fringe@" + std::to_string(r),
                                  ir::ElemType::kI32, fringe_elems));
    }
    b.setScalarInt("n", g.n);
    b.setScalarInt("max_rounds", rounds);
    b.setScalarInt("max_iters", 8);

    if (which == "bfs") {
        auto* dist = b.makeArray("dist", ir::ElemType::kI32,
                                 static_cast<size_t>(g.n));
        dist->fillInt(2147483647);
        b.setScalarInt("root", in.root);
        for (int r = 0; r < replicas; ++r) {
            b.setScalarReplica(r, "init_size",
                               ir::Value::fromInt(
                                   in.root % replicas == r ? 1 : 0));
        }
    } else if (which == "cc") {
        auto* labels = b.makeArray("labels", ir::ElemType::kI32,
                                   static_cast<size_t>(g.n));
        // Reader/writer views of the same monotone array: intra-round
        // stale reads are tolerated, rounds have slack to converge.
        b.bind("labels_r", labels);
        b.bind("labels_w", labels);
        for (int32_t v = 0; v < g.n; ++v)
            labels->setInt(v, v);
        // Initial fringe: replica r owns the vertices with v mod R == r.
        std::vector<int> counts(static_cast<size_t>(replicas), 0);
        for (int32_t v = 0; v < g.n; ++v) {
            int r = v % replicas;
            b.array("cur_fringe", r)->setInt(counts[static_cast<size_t>(r)]++,
                                             v);
        }
        for (int r = 0; r < replicas; ++r)
            b.setScalarReplica(r, "init_size",
                               ir::Value::fromInt(
                                   counts[static_cast<size_t>(r)]));
    } else if (which == "prd") {
        const double alpha = 0.85;
        const double eps = 0.02;
        auto* rank = b.makeArray("rank", ir::ElemType::kF64,
                                 static_cast<size_t>(g.n));
        auto* delta = b.makeArray("delta", ir::ElemType::kF64,
                                  static_cast<size_t>(g.n));
        b.makeArray("accum", ir::ElemType::kF64,
                    static_cast<size_t>(g.n));
        for (int32_t v = 0; v < g.n; ++v) {
            rank->setDouble(v, 1.0 - alpha);
            delta->setDouble(v, 1.0 - alpha);
        }
        for (int r = 0; r < replicas; ++r) {
            b.bindReplica(r, "receivers",
                          b.makeArray("receivers@" + std::to_string(r),
                                      ir::ElemType::kI32,
                                      static_cast<size_t>(g.n) + 1));
        }
        b.setScalar("alpha", ir::Value::fromDouble(alpha));
        b.setScalar("eps", ir::Value::fromDouble(eps));
        std::vector<int> counts(static_cast<size_t>(replicas), 0);
        for (int32_t v = 0; v < g.n; ++v) {
            int r = v % replicas;
            b.array("cur_fringe", r)->setInt(counts[static_cast<size_t>(r)]++,
                                             v);
        }
        for (int r = 0; r < replicas; ++r)
            b.setScalarReplica(r, "init_size",
                               ir::Value::fromInt(
                                   counts[static_cast<size_t>(r)]));
    } else {  // radii
        auto* visited = b.makeArray("visited", ir::ElemType::kI64,
                                    static_cast<size_t>(g.n));
        b.bind("visited_r", visited);
        b.bind("visited_w", visited);
        auto* radii_out = b.makeArray("radii_out", ir::ElemType::kI32,
                                      static_cast<size_t>(g.n));
        radii_out->fillInt(-1);
        auto samples = wl::radiiSamples(g);
        std::vector<int> counts(static_cast<size_t>(replicas), 0);
        for (size_t i = 0; i < samples.size(); ++i) {
            visited->setInt(samples[i],
                            static_cast<int64_t>(uint64_t{1} << i));
            radii_out->setInt(samples[i], 0);
            int r = samples[i] % replicas;
            b.array("cur_fringe", r)->setInt(counts[static_cast<size_t>(r)]++,
                                             samples[i]);
        }
        for (int r = 0; r < replicas; ++r)
            b.setScalarReplica(r, "init_size",
                               ir::Value::fromInt(
                                   counts[static_cast<size_t>(r)]));
    }
}

bool
checkReplicated(sim::Binding& b, const wl::GraphInput& in,
                const std::string& which, std::string* err)
{
    const wl::CSRGraph& g = *in.graph;
    if (which == "bfs") {
        auto golden = wl::bfsGolden(g, in.root);
        auto* dist = b.array("dist");
        for (size_t i = 0; i < golden.size(); ++i) {
            if (dist->atInt(static_cast<int64_t>(i)) != golden[i]) {
                *err = "dist[" + std::to_string(i) + "] mismatch";
                return false;
            }
        }
        return true;
    }
    if (which == "cc") {
        auto golden = wl::ccGolden(g);
        auto* labels = b.array("labels");
        for (size_t i = 0; i < golden.size(); ++i) {
            if (labels->atInt(static_cast<int64_t>(i)) != golden[i]) {
                *err = "labels[" + std::to_string(i) + "] mismatch";
                return false;
            }
        }
        return true;
    }
    if (which == "prd") {
        // Floating-point accumulation order differs across replicas.
        auto golden = wl::prdGolden(g, 0.85, 0.02, 8);
        auto* rank = b.array("rank");
        for (size_t i = 0; i < golden.size(); ++i) {
            double got = rank->atDouble(static_cast<int64_t>(i));
            if (std::abs(got - golden[i]) >
                1e-6 * std::max(1.0, std::abs(golden[i]))) {
                *err = "rank[" + std::to_string(i) + "] mismatch";
                return false;
            }
        }
        return true;
    }
    // radii: reachability masks are the order-independent fixpoint.
    auto samples = wl::radiiSamples(g);
    std::vector<uint64_t> masks(static_cast<size_t>(g.n), 0);
    for (size_t i = 0; i < samples.size(); ++i)
        masks[static_cast<size_t>(samples[i])] |= uint64_t{1} << i;
    bool changed = true;
    while (changed) {
        changed = false;
        for (int32_t u = 0; u < g.n; ++u) {
            uint64_t m = masks[static_cast<size_t>(u)];
            for (int32_t e = g.nodes[static_cast<size_t>(u)];
                 e < g.nodes[static_cast<size_t>(u) + 1]; ++e) {
                int32_t ngh = g.edges[static_cast<size_t>(e)];
                if ((masks[static_cast<size_t>(ngh)] | m) !=
                    masks[static_cast<size_t>(ngh)]) {
                    masks[static_cast<size_t>(ngh)] |= m;
                    changed = true;
                }
            }
        }
    }
    auto* visited = b.array("visited");
    for (size_t i = 0; i < masks.size(); ++i) {
        if (static_cast<uint64_t>(visited->atInt(
                static_cast<int64_t>(i))) != masks[i]) {
            *err = "visited[" + std::to_string(i) + "] mismatch";
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig14");
    const char* only = argc > 1 ? argv[1] : nullptr;
    const RepSpec specs[] = {
        {"bfs", wl::kBfsReplicated, 4, 4, 4},
        {"cc", wl::kCcReplicated, 4, 4, 4},
        {"prd", wl::kPrdReplicated, 4, 4, 4},
        {"radii", wl::kRadiiReplicated, 4, 4, 4},
    };

    std::printf("=== Fig. 14: replicated pipelines on 4 cores x 4 SMT "
                "threads ===\n");
    std::printf("%-8s %12s %14s %14s   %s\n", "bench", "data-par16",
                "phloem(repl)", "manual(repl)", "(speedup vs 1-thread "
                "serial)");

    // Inputs: the two large graphs the replication study stresses.
    auto all_inputs = wl::tableIVInputs();
    std::vector<wl::GraphInput> inputs;
    for (auto& in : all_inputs) {
        if (in.name == "as-Skitter" || in.name == "USA-road-d-USA" ||
            in.name == "coAuthorsDBLP") {
            inputs.push_back(in);
        }
    }

    for (const RepSpec& spec : specs) {
        if (only != nullptr && std::string(spec.workload) != only)
            continue;
        wl::Workload base = wl::findWorkload(spec.workload);
        driver::Experiment serial_exp(base, bench::evalConfig(1));
        driver::Experiment par_exp(base, bench::evalConfig(kCores));

        auto kernel = fe::compileKernel(spec.replicatedSrc);
        phloem_assert(!kernel.ann.distributeOps.empty(),
                      "replicated kernel missing #pragma distribute");

        auto compileRep = [&](int stages, bool manual) {
            comp::CompileOptions o;
            o.numStages = stages;
            o.replicas = spec.replicas;
            o.distributeBoundaryOp = kernel.ann.distributeOps.front();
            // The stage boundary must fall exactly at the distribute
            // marker so the packed per-edge payload crosses replicas as
            // one atomic stream.
            o.forcedCuts = kernel.ann.distributeOps;
            // The hand-written replicated pipelines in our reproduction
            // share the compiler configuration (see EXPERIMENTS.md); the
            // flag is kept for future differentiation.
            (void)manual;
            return comp::compilePipeline(*kernel.fn, o);
        };
        auto rep = compileRep(spec.stagesPerReplica, false);
        auto rep_manual = compileRep(spec.manualStages, true);

        std::vector<double> dp_s, rep_s, man_s;
        for (const auto& in : inputs) {
            // Serial baseline from the base workload's matching case.
            const wl::Case* c = nullptr;
            for (const auto& cc : base.cases)
                if (cc.inputName == in.name)
                    c = &cc;
            if (c == nullptr)
                continue;
            uint64_t serial = serial_exp.serialCycles(*c);

            auto dp = par_exp.runParallel(*c, kThreads);
            if (dp.correct)
                dp_s.push_back(static_cast<double>(serial) /
                               static_cast<double>(dp.stats.cycles));

            int rounds =
                convergenceRounds(*in.graph, in.root, spec.workload);
            // Stale intra-round reads (monotone label/mask views) can
            // delay propagation; give the bounded-round kernels slack.
            // Radii propagates masks at full one-hop-per-round speed
            // across rounds (barrier-ordered), so it needs less.
            if (std::string(spec.workload) == "cc")
                rounds = rounds * 2 + 8;
            if (std::string(spec.workload) == "radii")
                rounds = rounds + rounds / 4 + 8;
            auto run_rep = [&](const comp::CompileResult& cr,
                               std::vector<double>& sink,
                               const char* tag) {
                if (cr.pipeline == nullptr)
                    return;
                sim::Binding b;
                bindReplicated(b, in, spec.workload, spec.replicas,
                               rounds);
                sim::MachineOptions mo;
                mo.maxInstructions = 3'000'000'000ull;
                sim::Machine machine(bench::evalConfig(kCores), mo);
                sim::RunStats stats;
                try {
                    stats = machine.runPipeline(*cr.pipeline, b);
                } catch (const std::exception& e) {
                    std::printf("    !! %s/%s %s: %s\n", spec.workload,
                                tag, in.name.c_str(), e.what());
                    return;
                }
                std::string err;
                if (stats.deadlock) {
                    std::printf("    !! %s/%s %s deadlock:\n%s\n",
                                spec.workload, tag, in.name.c_str(),
                                stats.deadlockInfo.c_str());
                    return;
                }
                if (!checkReplicated(b, in, spec.workload, &err)) {
                    std::printf("    !! %s/%s %s incorrect: %s\n",
                                spec.workload, tag, in.name.c_str(),
                                err.c_str());
                    return;
                }
                sink.push_back(static_cast<double>(serial) /
                               static_cast<double>(stats.cycles));
            };
            run_rep(rep, rep_s, "auto");
            run_rep(rep_manual, man_s, "manual");
        }

        std::printf("%-8s %11.2fx %13.2fx %13.2fx   (%d replicas x %d "
                    "stages)\n",
                    spec.workload, gmean(dp_s), gmean(rep_s),
                    gmean(man_s), spec.replicas, spec.stagesPerReplica);
        if (auto* r = bench::reportRun(spec.workload,
                                       {{"phase", "replication"}})) {
            r->top.setGauge("speedup_dp16", gmean(dp_s));
            r->top.setGauge("speedup_replicated", gmean(rep_s));
            r->top.setGauge("speedup_manual", gmean(man_s));
        }
    }
    return bench::finishReport();
}
