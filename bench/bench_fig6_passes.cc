/**
 * @file
 * Fig. 6: BFS speedup as Phloem's passes are added, on the road-network
 * training input (the paper's large road network, scaled).
 *
 * Reported configurations follow the paper: naive queues (Q), +recompute
 * (R), control values without their cleanups (CV, R, Q) — which *hurts* —
 * reference accelerators alone (RA, R, Q), control values with inter-stage
 * DCE and handlers, the full compiler, the manually pipelined version,
 * and the Dynamatic-style dataflow baseline (worse than serial).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/dataflow_model.h"

using namespace phloem;

namespace {

struct Config
{
    const char* label;
    bool recompute, ra, cv, dce, handlers;
};

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig6");
    wl::Workload bfs = wl::findWorkload("bfs");
    sim::SysConfig cfg = bench::evalConfig();
    driver::Experiment exp(bfs, cfg);

    // The paper's Fig. 6 uses a large road network.
    const wl::Case* road = nullptr;
    for (const auto& c : bfs.cases)
        if (c.inputName == "USA-road-d-NY")
            road = &c;
    if (road == nullptr)
        return 1;

    uint64_t serial = exp.serialCycles(*road);
    std::printf("=== Fig. 6: BFS speedup with each added pass "
                "(road network) ===\n");
    std::printf("serial baseline: %llu cycles\n\n",
                static_cast<unsigned long long>(serial));
    std::printf("%-22s %10s %s\n", "configuration", "speedup",
                "(pipeline)");

    // Dataflow baseline (paper: ~1.7x worse than serial).
    {
        sim::Binding binding;
        road->bind(binding, 1);
        auto df = sim::runDataflow(exp.serialFn(), binding, cfg);
        std::string err;
        bool ok = road->check(binding, wl::Variant::kSerial, &err);
        double s = static_cast<double>(serial) /
                   static_cast<double>(df.cycles);
        std::printf("%-22s %9.2fx %s\n", "dataflow (Dynamatic)", s,
                    ok ? "" : "(INCORRECT)");
        if (auto* r = bench::reportRun("bfs", {{"config", "dataflow"}}))
            r->top.setGauge("speedup", s);
    }

    const Config configs[] = {
        {"Q (naive queues)", false, false, false, false, false},
        {"R,Q", true, false, false, false, false},
        {"CV,R,Q", true, false, true, false, false},
        {"RA,R,Q", true, true, false, false, false},
        {"CV,DCE,R,Q", true, false, true, true, false},
        {"CV,DCE,CH,R,Q", true, false, true, true, true},
        {"all (full Phloem)", true, true, true, true, true},
    };

    for (const Config& c : configs) {
        comp::CompileOptions o;
        o.numStages = 4;
        o.recompute = c.recompute;
        o.referenceAccelerators = c.ra;
        o.controlValues = c.cv;
        o.dce = c.dce;
        o.handlers = c.handlers;
        // Naive configurations exceed the queue budget by design; let
        // them run anyway (the paper measured them too).
        o.maxQueues = 64;
        auto res = comp::compilePipeline(exp.serialFn(), o);
        if (res.pipeline == nullptr) {
            std::printf("%-22s %10s\n", c.label, "n/a");
            continue;
        }
        auto out = exp.runPipeline(*road, *res.pipeline);
        if (!out.correct) {
            std::printf("%-22s %10s %s\n", c.label, "FAIL",
                        out.error.c_str());
            continue;
        }
        double s = static_cast<double>(serial) /
                   static_cast<double>(out.stats.cycles);
        std::printf("%-22s %9.2fx (%zu stages + %zu RAs, %d queues)\n",
                    c.label, s, res.pipeline->stages.size(),
                    res.pipeline->ras.size(), res.pipeline->numQueues());
        if (auto* r = bench::reportRun("bfs", {{"config", c.label}}))
            r->top.setGauge("speedup", s);
    }

    // Manual baseline.
    auto manual = exp.buildManual();
    if (manual != nullptr) {
        auto out = exp.runPipeline(*road, *manual);
        if (out.correct) {
            double s = static_cast<double>(serial) /
                       static_cast<double>(out.stats.cycles);
            std::printf("%-22s %9.2fx\n", "manually pipelined", s);
            if (auto* r =
                    bench::reportRun("bfs", {{"config", "manual"}}))
                r->top.setGauge("speedup", s);
        }
    }
    std::printf("\npaper shape: dataflow < serial < Q < ... < manual "
                "~ all; CV alone below its R,Q base; RA largest jump\n");
    return bench::finishReport();
}
