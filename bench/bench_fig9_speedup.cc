/**
 * @file
 * Fig. 9: per-benchmark speedup over the serial baseline.
 *
 * For each application the paper reports the data-parallel speedup, the
 * Phloem bar (profile-guided pipeline) with an x marking the static
 * cost-model pipeline, and the manually pipelined version; all gmean
 * over the test inputs on a 1-core, 4-SMT-thread system.
 */

#include <cstdio>

#include "base/stats_util.h"
#include "bench/bench_common.h"

using namespace phloem;

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_fig9");
    const char* only = argc > 1 ? argv[1] : nullptr;

    std::printf("=== Fig. 9: speedup over serial (gmean across test "
                "inputs) ===\n");
    std::printf("%-8s %12s %14s %16s %10s\n", "bench", "data-par",
                "phloem(PGO)", "phloem(static)", "manual");

    std::vector<double> pgo_all, manual_all;
    for (const auto& w : wl::mainSuite()) {
        if (only != nullptr && w.name != only)
            continue;
        bench::SuiteOptions opts;
        auto runs = bench::runWorkloadSuite(w, opts);
        bench::reportSuite(runs);
        double dp = bench::gmeanSpeedup(runs, "parallel");
        double pgo = bench::gmeanSpeedup(runs, "phloem");
        double st = bench::gmeanSpeedup(runs, "phloem-static");
        double man = bench::gmeanSpeedup(runs, "manual");
        std::printf("%-8s %11.2fx %13.2fx %15.2fx %9.2fx\n",
                    runs.workload.c_str(), dp, pgo, st, man);
        if (pgo > 0)
            pgo_all.push_back(pgo);
        if (man > 0)
            manual_all.push_back(man);

        std::printf("    static pipeline: %s | PGO pipeline: %s\n",
                    runs.staticShape.c_str(), runs.pgoShape.c_str());
        for (const auto& in : runs.inputs) {
            std::printf("    %-24s serial=%-10llu pgo=%.2fx "
                        "static=%.2fx dp=%.2fx manual=%.2fx\n",
                        in.input.c_str(),
                        static_cast<unsigned long long>(in.serialCycles),
                        bench::speedup(in, "phloem"),
                        bench::speedup(in, "phloem-static"),
                        bench::speedup(in, "parallel"),
                        bench::speedup(in, "manual"));
            for (const auto& [name, run] : in.variants) {
                if (!run.ok) {
                    std::printf("      !! %s failed: %s\n", name.c_str(),
                                run.error.c_str());
                }
            }
        }
    }

    if (!pgo_all.empty()) {
        std::printf("\ngmean Phloem speedup over serial: %.2fx "
                    "(paper: 1.7x)\n",
                    gmean(pgo_all));
    }
    if (!manual_all.empty() && !pgo_all.empty()) {
        std::printf("Phloem relative to manual: %.0f%% (paper: 85%%)\n",
                    100.0 * gmean(pgo_all) / gmean(manual_all));
    }
    if (auto* r = bench::reportRun("fig9", {{"summary", "gmean"}})) {
        if (!pgo_all.empty())
            r->top.setGauge("speedup_phloem", gmean(pgo_all));
        if (!manual_all.empty())
            r->top.setGauge("speedup_manual", gmean(manual_all));
    }
    return bench::finishReport();
}
