/**
 * @file
 * Google-benchmark microbenchmarks of the library itself (not a paper
 * figure): frontend compilation, pipeline compilation, flattening, and
 * simulator throughput. Useful for keeping the tools fast enough for the
 * autotuner's many candidate compiles (paper: the search "completes in
 * seconds").
 */

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "compiler/compiler.h"
#include "compiler/cost_model.h"
#include "driver/experiment.h"
#include "frontend/frontend.h"
#include "sim/machine.h"
#include "sim/program.h"
#include "workloads/kernels.h"
#include "workloads/workload.h"

using namespace phloem;

static void
BM_FrontendCompile(benchmark::State& state)
{
    for (auto _ : state) {
        auto k = fe::compileKernel(wl::kBfsSerial);
        benchmark::DoNotOptimize(k.fn.get());
    }
}
BENCHMARK(BM_FrontendCompile);

static void
BM_CostModelRanking(benchmark::State& state)
{
    auto k = fe::compileKernel(wl::kBfsSerial);
    for (auto _ : state) {
        auto ranked = comp::rankCutPoints(*k.fn);
        benchmark::DoNotOptimize(ranked.data());
    }
}
BENCHMARK(BM_CostModelRanking);

static void
BM_PipelineCompile(benchmark::State& state)
{
    auto k = fe::compileKernel(wl::kBfsSerial);
    comp::CompileOptions opts;
    opts.numStages = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto res = comp::compilePipeline(*k.fn, opts);
        benchmark::DoNotOptimize(res.pipeline.get());
    }
}
BENCHMARK(BM_PipelineCompile)->Arg(2)->Arg(3)->Arg(4);

static void
BM_Flatten(benchmark::State& state)
{
    auto k = fe::compileKernel(wl::kSpmmSerial);
    for (auto _ : state) {
        auto prog = sim::flatten(*k.fn);
        benchmark::DoNotOptimize(prog.code.data());
    }
}
BENCHMARK(BM_Flatten);

static void
BM_SimulatorThroughput(benchmark::State& state)
{
    // Simulated instructions per second on serial BFS over the training
    // internet graph.
    wl::Workload bfs = wl::findWorkload("bfs");
    const wl::Case& c = bfs.cases.front();
    driver::Experiment exp(bfs, sim::SysConfig::scaledEval());
    uint64_t instructions = 0;
    for (auto _ : state) {
        auto out = exp.runSerial(c);
        instructions = out.stats.totalInstructions();
        benchmark::DoNotOptimize(out.stats.cycles);
    }
    state.counters["sim_instrs"] = static_cast<double>(instructions);
    state.counters["sim_instrs/s"] = benchmark::Counter(
        static_cast<double>(instructions) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

namespace {

/**
 * Console output as usual, but each benchmark's timing also lands in
 * the shared metrics report (one run per benchmark, real/cpu ns as
 * lower-is-better gauges) so run_benches.sh can diff tool performance
 * like any other report.
 */
class ReportingReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run>& reports) override
    {
        ConsoleReporter::ReportRuns(reports);
        for (const auto& run : reports) {
            if (run.error_occurred)
                continue;
            auto* r = bench::reportRun(run.benchmark_name(), {});
            if (r == nullptr)
                continue;
            r->top.setGauge("real_ns", run.GetAdjustedRealTime());
            r->top.setGauge("cpu_ns", run.GetAdjustedCPUTime());
            r->top.addCounter(
                "iterations", static_cast<uint64_t>(run.iterations));
        }
    }
};

} // namespace

int
main(int argc, char** argv)
{
    // Strip --report before google-benchmark sees argv (it rejects
    // unknown flags).
    bench::initReport(&argc, argv, "bench_micro");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ReportingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return bench::finishReport();
}
