/**
 * @file
 * Native-runtime speedup: compiled pipelines on real host threads vs.
 * native serial execution, measured in wall-clock time.
 *
 * Two parts:
 *  1. The workload suite, each compiled with the static flow and run on
 *     its first training input. This exercises the whole native stack
 *     (stages, RAs, control values) and validates outputs.
 *  2. A gather-reduce kernel sized for native execution: deep queues and
 *     reference accelerators that absorb the irregular inner loop. RAs
 *     stream elements natively (no interpreter dispatch), so the
 *     pipeline executes far fewer interpreted instructions per element
 *     than the serial baseline — this is the configuration expected to
 *     beat serial wall-clock even on modest host parallelism.
 *
 * Speedups are host-dependent (thread count, core count); the simulator
 * benches (bench_fig9 etc.) remain the paper-faithful numbers.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "compiler/compiler.h"
#include "driver/experiment.h"
#include "frontend/frontend.h"
#include "ir/builder.h"
#include "metrics/collect.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"
#include "sim/binding.h"
#include "workloads/workload.h"

namespace {

using namespace phloem;

const char* kGatherSum = R"(
#pragma phloem
void gather_sum(const int* restrict pos, const int* restrict col,
                const double* restrict x, double* restrict out, int n) {
    for (int i = 0; i < n; i++) {
        double sum = 0.0;
        int start = pos[i];
        int end = pos[i + 1];
        for (int k = start; k < end; k++) {
            sum = sum + x[col[k]];
        }
        out[i] = sum;
    }
}
)";

/** One result row; the machine-readable run goes to the shared report. */
struct Row
{
    std::string name;
    std::string input;
    bool ok = false;
    std::string error;
};

std::vector<Row> g_rows;

/** Output directory for --trace-dir; empty = tracing off. */
std::string g_trace_dir;

/**
 * Add one pipeline run (plus its serial baseline timing) to the shared
 * metrics report: the full native breakdown from nativeRunToMetrics,
 * the serial/pipeline wall times, and the wall-clock speedup.
 */
void
reportNativeRun(const std::string& name, const std::string& input,
                const rt::NativeStats& ser, const rt::NativeStats& pipe)
{
    if (bench::report() == nullptr)
        return;
    metrics::Run r = metrics::nativeRunToMetrics(name, pipe);
    r.labels["bench"] = "bench_native";  // assignment below keeps labels
    r.labels["input"] = input;
    r.top.setGauge("serial_ms", ser.wallMs());
    r.top.setGauge("pipeline_ms", pipe.wallMs());
    if (pipe.wallMs() > 0.0)
        r.top.setGauge("speedup", ser.wallMs() / pipe.wallMs());
    *bench::reportRun(r.name, r.labels) = std::move(r);
}

void
reportFailure(const std::string& name, const std::string& input)
{
    if (auto* r = bench::reportRun(name, {{"input", input}}))
        r->top.addCounter("failures", 1);
}

/** DIR/<name>-<input>.trace.json with path-hostile characters mapped. */
std::string
tracePath(const std::string& name, const std::string& input)
{
    std::string base = name + "-" + input;
    for (char& c : base)
        if (c == '/' || c == ' ')
            c = '_';
    return g_trace_dir + "/" + base + ".trace.json";
}

void
writeBenchTrace(const trace::Tracer& tracer, const std::string& name,
                const std::string& input)
{
    std::string path = tracePath(name, input);
    std::string err;
    if (!tracer.writeJson(path, &err))
        std::fprintf(stderr, "bench_native: trace write failed: %s\n",
                     err.c_str());
    else
        std::printf("  trace: %s\n", path.c_str());
}

void
reportRow(const char* name, const char* input,
          const driver::NativeOutcome& ser,
          const driver::NativeOutcome& pipe, int stage_threads, int ras)
{
    Row row;
    row.name = name;
    row.input = input;
    if (!ser.correct || !pipe.correct) {
        row.error = !ser.correct ? ser.error : pipe.error;
        g_rows.push_back(row);
        reportFailure(name, input);
        std::printf("%-12s %-12s FAILED (%s)\n", name, input,
                    row.error.c_str());
        return;
    }
    row.ok = true;
    g_rows.push_back(row);
    reportNativeRun(name, input, ser.stats, pipe.stats);
    std::printf("%-12s %-12s serial %8.2f ms   pipeline %8.2f ms   "
                "speedup %5.2fx   (%d threads + %d RAs, pop batch "
                "%.1f)\n",
                name, input, ser.stats.wallMs(), pipe.stats.wallMs(),
                ser.stats.wallMs() / pipe.stats.wallMs(), stage_threads,
                ras, pipe.stats.meanPopBatch());
}

/**
 * Hand-pipelined gather_sum tuned for native execution: a SCAN RA over
 * col absorbs the irregular column traversal into native streaming, and
 * the consumer's accumulation loop is handler-driven — per element it
 * interprets deq + gather load + fadd + backedge (4 dispatches) where
 * serial interprets the full loop (test, two bounds-checked loads,
 * accumulate, increment: ~8 dispatches). A single ring hop per element
 * keeps queue overhead below the interpreter savings even when all
 * workers share one core.
 */
ir::PipelinePtr
buildGatherPipeline()
{
    constexpr ir::QueueId kScanIn = 0;   // ranges -> scan RA
    constexpr ir::QueueId kScanOut = 1;  // col values -> consumer

    auto pipeline = std::make_unique<ir::Pipeline>();
    pipeline->name = "gather_sum-native";

    {
        ir::FunctionBuilder b("gather.range");
        ir::ArrayId pos = b.arrayParam("pos", ir::ElemType::kI32, false);
        b.arrayParam("col", ir::ElemType::kI32, false);
        b.arrayParam("x", ir::ElemType::kF64, false);
        b.arrayParam("out", ir::ElemType::kF64, true);
        ir::RegId n = b.scalarParam("n");
        b.forRange(b.constI(0), n, [&](ir::RegId i) {
            ir::RegId s = b.load(pos, i, "s");
            ir::RegId e = b.load(pos, b.add(i, b.constI(1)), "e");
            b.enq(kScanIn, s);
            b.enq(kScanIn, e);
        });
        pipeline->stages.push_back(b.finish());
    }

    {
        ir::FunctionBuilder b("gather.reduce");
        b.arrayParam("pos", ir::ElemType::kI32, false);
        b.arrayParam("col", ir::ElemType::kI32, false);
        ir::ArrayId x = b.arrayParam("x", ir::ElemType::kF64, false);
        ir::ArrayId out = b.arrayParam("out", ir::ElemType::kF64, true);
        ir::RegId n = b.scalarParam("n");
        ir::RegId sum = b.newReg("sum");
        ir::RegId j = b.newReg("j");
        ir::RegId fzero = b.constF(0.0);
        b.forRange(b.constI(0), n, [&](ir::RegId i) {
            b.movTo(sum, fzero);
            b.loop([&] {
                b.deqTo(kScanOut, j);
                ir::RegId v = b.load(x, j, "v");
                // In-place accumulate: dst == src keeps the loop at
                // four interpreted instructions per element.
                ir::Op acc;
                acc.opcode = ir::Opcode::kFAdd;
                acc.dst = sum;
                acc.src[0] = sum;
                acc.src[1] = v;
                b.emit(acc);
            });
            b.store(out, i, sum);
        });
        ir::FunctionPtr fn = b.finish();
        // Handler: the scan RA's end-of-range control value breaks the
        // accumulation loop (installed by pass 5 in compiled flows).
        ir::HandlerSpec h;
        h.queue = kScanOut;
        auto brk = std::make_unique<ir::BreakStmt>(1);
        brk->id = fn->nextStmtId++;
        h.body.push_back(std::move(brk));
        fn->handlers.push_back(std::move(h));
        pipeline->stages.push_back(std::move(fn));
    }

    ir::RAConfig scan;
    scan.mode = ir::RAMode::kScan;
    scan.arrayName = "col";
    scan.elem = ir::ElemType::kI32;
    scan.inQueue = kScanIn;
    scan.outQueue = kScanOut;
    scan.emitRangeCtrl = true;
    scan.rangeCtrlCode = ir::kCtrlNext;
    pipeline->ras.push_back(scan);

    // Native execution prefers much deeper queues than the architectural
    // default: depth bounds wake-up frequency, and each producer/consumer
    // wake-up is a scheduling event on the host.
    for (ir::QueueId q = kScanIn; q <= kScanOut; ++q) {
        ir::QueueConfig qc;
        qc.id = q;
        qc.depth = 4096;
        pipeline->queues.push_back(qc);
    }
    return pipeline;
}

/** Part 2: the RA-offload configuration. Returns true if pipeline won. */
bool
benchGatherSum(int64_t rows, int64_t degree)
{
    fe::CompiledKernel kernel = fe::compileKernel(kGatherSum);
    ir::PipelinePtr pipeline = buildGatherPipeline();

    int64_t nnz = rows * degree;
    auto make_binding = [&](sim::Binding& b) {
        auto* pos = b.makeArray("pos", ir::ElemType::kI32,
                                static_cast<size_t>(rows) + 1);
        auto* col = b.makeArray("col", ir::ElemType::kI32,
                                static_cast<size_t>(nnz));
        auto* x = b.makeArray("x", ir::ElemType::kF64,
                              static_cast<size_t>(rows));
        b.makeArray("out", ir::ElemType::kF64,
                    static_cast<size_t>(rows));
        uint64_t state = 12345;
        auto next = [&state]() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            return state;
        };
        for (int64_t i = 0; i <= rows; ++i)
            pos->setInt(i, i * degree);
        for (int64_t k = 0; k < nnz; ++k)
            col->setInt(k, static_cast<int64_t>(
                               next() % static_cast<uint64_t>(rows)));
        for (int64_t i = 0; i < rows; ++i)
            x->setDouble(i, static_cast<double>(next() % 1000) / 1000.0);
        b.setScalarInt("n", rows);
    };

    rt::Runtime runtime;

    sim::Binding serial_binding;
    make_binding(serial_binding);
    rt::NativeStats ser =
        runtime.runSerial(*kernel.fn, serial_binding);

    trace::Tracer tracer{trace::Timebase::kWallNs};
    rt::RuntimeOptions ropts;
    if (!g_trace_dir.empty())
        ropts.tracer = &tracer;
    rt::Runtime traced_runtime{sim::SysConfig{}, ropts};
    sim::Binding pipe_binding;
    make_binding(pipe_binding);
    rt::NativeStats pipe =
        traced_runtime.runPipeline(*pipeline, pipe_binding);
    std::string input_name =
        std::to_string(rows) + "x" + std::to_string(degree);
    if (!g_trace_dir.empty())
        writeBenchTrace(tracer, "gather_sum", input_name);

    Row row;
    row.name = "gather_sum";
    row.input = input_name;
    if (!ser.ok || !pipe.ok) {
        row.error = !ser.ok ? ser.error : pipe.error;
        g_rows.push_back(row);
        reportFailure(row.name, row.input);
        std::printf("gather_sum: run failed: %s\n", row.error.c_str());
        return false;
    }
    if (!serial_binding.array("out")->contentEquals(
            *pipe_binding.array("out"))) {
        row.error = "output mismatch between serial and pipeline";
        g_rows.push_back(row);
        reportFailure(row.name, row.input);
        std::printf("gather_sum: MISMATCH between serial and pipeline\n");
        return false;
    }
    row.ok = true;
    g_rows.push_back(row);
    reportNativeRun(row.name, row.input, ser, pipe);

    double speedup = ser.wallMs() / pipe.wallMs();
    std::printf("%-12s %-12s serial %8.2f ms   pipeline %8.2f ms   "
                "speedup %5.2fx   (%d threads + %d RAs, deep queues)\n",
                "gather_sum",
                (std::to_string(rows) + "x" + std::to_string(degree))
                    .c_str(),
                ser.wallMs(), pipe.wallMs(), speedup,
                pipe.numStageThreads, pipe.numRAWorkers);
    uint64_t interp_ser = ser.totalInstructions();
    uint64_t interp_pipe = pipe.totalInstructions();
    std::printf("  interpreted instructions: serial %llu, pipeline %llu "
                "(RAs stream natively); enq blocks %llu, deq blocks "
                "%llu, mean pop batch %.1f\n",
                static_cast<unsigned long long>(interp_ser),
                static_cast<unsigned long long>(interp_pipe),
                static_cast<unsigned long long>(pipe.totalEnqBlocks()),
                static_cast<unsigned long long>(pipe.totalDeqBlocks()),
                pipe.meanPopBatch());
    return speedup > 1.0 && pipe.numStageThreads >= 2;
}

/**
 * Part 3: JIT-vs-engine on a scalar-heavy stage. The consumer does ~70
 * straight-line scalar ops per dequeued element — the shape where the
 * engine pays one indirect handler dispatch per DInst and the JIT pays
 * none. Both tiers must produce bit-identical output; the report row
 * carries engine_ms / jit_ms / jit_speedup for the perf gate.
 */
ir::PipelinePtr
buildScalarTierPipeline()
{
    constexpr ir::QueueId kQ = 0;

    auto pipeline = std::make_unique<ir::Pipeline>();
    pipeline->name = "scalar_tier-native";

    {
        ir::FunctionBuilder b("mix.feed");
        ir::ArrayId a = b.arrayParam("a", ir::ElemType::kI64, false);
        b.arrayParam("out", ir::ElemType::kI64, true);
        ir::RegId n = b.scalarParam("n");
        b.forRange(b.constI(0), n, [&](ir::RegId i) {
            b.enq(kQ, b.load(a, i, "v"));
        });
        pipeline->stages.push_back(b.finish());
    }

    {
        ir::FunctionBuilder b("mix.crunch");
        b.arrayParam("a", ir::ElemType::kI64, false);
        ir::ArrayId out = b.arrayParam("out", ir::ElemType::kI64, true);
        ir::RegId n = b.scalarParam("n");
        ir::RegId v = b.newReg("v");
        ir::RegId c13 = b.constI(13);
        ir::RegId c7 = b.constI(7);
        ir::RegId c17 = b.constI(17);
        ir::RegId cmul = b.constI(0x9E3779B97F4A7C15ll);
        ir::RegId cmask = b.constI(0x5555555555555555ll);
        b.forRange(b.constI(0), n, [&](ir::RegId i) {
            b.deqTo(kQ, v);
            ir::RegId h = b.xor_(v, i);
            // Ten xorshift-style rounds, all plain scalar DInsts: no
            // loads, no queue ops, nothing the JIT hands back to the
            // host — pure straight-line emitted C.
            for (int round = 0; round < 10; ++round) {
                h = b.xor_(h, b.shl(h, c13));
                h = b.xor_(h, b.shr(h, c7));
                h = b.xor_(h, b.shl(h, c17));
                h = b.mul(h, cmul);
                h = b.add(h, b.and_(h, cmask));
                h = b.max(h, b.sub(h, c7));
            }
            b.store(out, i, h);
        });
        pipeline->stages.push_back(b.finish());
    }

    ir::QueueConfig qc;
    qc.id = kQ;
    qc.depth = 4096;
    pipeline->queues.push_back(qc);
    return pipeline;
}

void
benchScalarTier(int64_t rows)
{
    ir::PipelinePtr pipeline = buildScalarTierPipeline();

    auto make_binding = [&](sim::Binding& b) {
        auto* a = b.makeArray("a", ir::ElemType::kI64,
                              static_cast<size_t>(rows));
        b.makeArray("out", ir::ElemType::kI64,
                    static_cast<size_t>(rows));
        uint64_t state = 987654321;
        for (int64_t i = 0; i < rows; ++i) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            a->setInt(i, static_cast<int64_t>(state));
        }
        b.setScalarInt("n", rows);
    };

    auto run_tier = [&](rt::TierMode tier, sim::Binding& b) {
        rt::RuntimeOptions ro;
        ro.tier = tier;
        rt::Runtime runtime{sim::SysConfig{}, ro};
        return runtime.runPipeline(*pipeline, b);
    };

    sim::Binding engine_binding, jit_binding;
    make_binding(engine_binding);
    make_binding(jit_binding);
    rt::NativeStats eng = run_tier(rt::TierMode::kEngine, engine_binding);
    rt::NativeStats jit = run_tier(rt::TierMode::kJit, jit_binding);

    std::string input_name = std::to_string(rows) + "x10rounds";
    Row row;
    row.name = "scalar_tier";
    row.input = input_name;
    if (!eng.ok || !jit.ok) {
        row.error = !eng.ok ? eng.error : jit.error;
        g_rows.push_back(row);
        reportFailure(row.name, row.input);
        std::printf("scalar_tier: run failed: %s\n", row.error.c_str());
        return;
    }
    if (!engine_binding.array("out")->contentEquals(
            *jit_binding.array("out"))) {
        row.error = "output mismatch between engine and jit tiers";
        g_rows.push_back(row);
        reportFailure(row.name, row.input);
        std::printf("scalar_tier: MISMATCH between engine and jit\n");
        return;
    }
    row.ok = true;
    g_rows.push_back(row);

    double speedup = jit.wallMs() > 0.0 ? eng.wallMs() / jit.wallMs() : 0.0;
    std::printf("%-12s %-12s engine %8.2f ms   jit      %8.2f ms   "
                "speedup %5.2fx   (%d jit stage%s, %d fallback%s)\n",
                "scalar_tier", input_name.c_str(), eng.wallMs(),
                jit.wallMs(), speedup, jit.jitStages,
                jit.jitStages == 1 ? "" : "s", jit.jitFallbacks,
                jit.jitFallbacks == 1 ? "" : "s");
    std::printf("  jit pipeline: emit %.2f ms, cc %.2f ms, dlopen %.2f ms "
                "(outside the timed region)\n",
                jit.jitEmitNs / 1e6, jit.jitCompileNs / 1e6,
                jit.jitLoadNs / 1e6);

    if (bench::report() != nullptr) {
        metrics::Run r = metrics::nativeRunToMetrics("scalar_tier", jit);
        r.labels["bench"] = "bench_native";
        r.labels["input"] = input_name;
        r.top.setGauge("engine_ms", eng.wallMs());
        r.top.setGauge("jit_ms", jit.wallMs());
        r.top.setGauge("jit_speedup", speedup);
        *bench::reportRun(r.name, r.labels) = std::move(r);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    // --json= predates the shared report format and stays as an alias
    // for --report= (same schema-versioned output, written by
    // src/metrics).
    std::vector<std::string> arg_store;
    std::vector<char*> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0)
            a = "--report=" + a.substr(7);
        arg_store.push_back(std::move(a));
    }
    for (auto& a : arg_store)
        args.push_back(a.data());
    args.push_back(nullptr);
    int nargs = static_cast<int>(args.size()) - 1;
    bench::initReport(&nargs, args.data(), "bench_native");

    int64_t rows = 1 << 15;
    int64_t degree = 16;
    std::vector<const char*> pos;
    for (int i = 1; i < nargs; ++i) {
        if (std::strncmp(args[i], "--trace-dir=", 12) == 0)
            g_trace_dir = args[i] + 12;
        else
            pos.push_back(args[i]);
    }
    if (!g_trace_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(g_trace_dir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "bench_native: cannot create trace dir %s: %s\n",
                         g_trace_dir.c_str(), ec.message().c_str());
            return 1;
        }
    }
    if (pos.size() > 0)
        rows = std::atoll(pos[0]);
    if (pos.size() > 1)
        degree = std::atoll(pos[1]);

    std::printf("=== native runtime: pipeline vs serial wall-clock ===\n");

    for (auto& w : wl::mainSuite()) {
        driver::Experiment ex(w);
        comp::CompileResult cr = ex.compileStatic();
        if (cr.pipeline == nullptr) {
            std::printf("%-12s no pipeline\n", w.name.c_str());
            continue;
        }
        const wl::Case* c = nullptr;
        for (const auto& cs : ex.workload().cases)
            if (cs.training) {
                c = &cs;
                break;
            }
        if (c == nullptr)
            continue;
        driver::NativeOutcome ser = ex.runNativeSerial(*c);
        trace::Tracer tracer{trace::Timebase::kWallNs};
        rt::RuntimeOptions ropts;
        if (!g_trace_dir.empty())
            ropts.tracer = &tracer;
        driver::NativeOutcome pipe = ex.runNative(*c, *cr.pipeline, ropts);
        reportRow(w.name.c_str(), c->inputName.c_str(), ser, pipe,
                  pipe.stats.numStageThreads, pipe.stats.numRAWorkers);
        if (!g_trace_dir.empty())
            writeBenchTrace(tracer, w.name, c->inputName);
    }

    std::printf("\n=== RA-offload configuration (deep queues) ===\n");
    bool won = benchGatherSum(rows, degree);

    std::printf("\n=== execution tiers: jit vs engine (scalar-heavy) "
                "===\n");
    benchScalarTier(rows);
    std::printf(won ? "native pipeline beats native serial: yes\n"
                    : "native pipeline beats native serial: no "
                      "(host-dependent)\n");

    // Speedup is host-dependent, but correctness is not: any FAILED or
    // MISMATCH row makes the bench exit nonzero so run_benches.sh (and
    // CI) notice instead of scrolling past it.
    int failures = 0;
    for (const Row& r : g_rows)
        if (!r.ok)
            ++failures;
    if (bench::finishReport() != 0)
        return 1;
    return failures == 0 ? 0 : 1;
}
