/**
 * @file
 * Table III: configuration parameters of the evaluated system, printed
 * from the live SysConfig defaults (plus the scaled-cache evaluation
 * variant used with the reduced inputs; see DESIGN.md).
 */

#include <cstdio>

#include "sim/config.h"

using namespace phloem;

namespace {

void
print(const char* title, const sim::SysConfig& c)
{
    std::printf("%s\n", title);
    std::printf("  Cores      %d cores, %.1f GHz, %d-wide OOO issue, "
                "%d-thread SMT, ROB %d\n",
                c.numCores, c.freqGHz, c.issueWidth, c.threadsPerCore,
                c.robSize);
    std::printf("  Pipette    %d queues max; %d RAs (%d in flight); "
                "queues up to %d elements deep\n",
                c.maxQueues, c.maxRAs, c.raMaxInflight, c.queueDepth);
    std::printf("  L1 cache   %llu KB/core, %d-way, %d cycle latency\n",
                static_cast<unsigned long long>(c.l1.sizeBytes / 1024),
                c.l1.ways, c.l1.latency);
    std::printf("  L2 cache   %llu KB/core, %d-way, %d cycle latency\n",
                static_cast<unsigned long long>(c.l2.sizeBytes / 1024),
                c.l2.ways, c.l2.latency);
    std::printf("  L3 cache   %llu KB/core, %d-way, %d cycle latency\n",
                static_cast<unsigned long long>(
                    c.l3PerCore.sizeBytes / 1024),
                c.l3PerCore.ways, c.l3PerCore.latency);
    std::printf("  Main mem   %d-cycle minimum latency, %d controllers, "
                "%.0f GB/s each\n\n",
                c.memMinLatency, c.memControllers, c.memGBps);
}

} // namespace

int
main()
{
    std::printf("=== Table III: configuration parameters ===\n\n");
    print("Paper configuration (Table III):", sim::SysConfig{});
    print("Scaled evaluation configuration (inputs ~40x smaller; cache "
          "capacities scaled to match, latencies unchanged):",
          sim::SysConfig::scaledEval());
    return 0;
}
