/**
 * @file
 * Table III: configuration parameters of the evaluated system, printed
 * from the live SysConfig defaults (plus the scaled-cache evaluation
 * variant used with the reduced inputs; see DESIGN.md).
 */

#include <cstdio>

#include "bench/bench_common.h"
#include "sim/config.h"

using namespace phloem;

namespace {

void
print(const char* title, const sim::SysConfig& c)
{
    std::printf("%s\n", title);
    std::printf("  Cores      %d cores, %.1f GHz, %d-wide OOO issue, "
                "%d-thread SMT, ROB %d\n",
                c.numCores, c.freqGHz, c.issueWidth, c.threadsPerCore,
                c.robSize);
    std::printf("  Pipette    %d queues max; %d RAs (%d in flight); "
                "queues up to %d elements deep\n",
                c.maxQueues, c.maxRAs, c.raMaxInflight, c.queueDepth);
    std::printf("  L1 cache   %llu KB/core, %d-way, %d cycle latency\n",
                static_cast<unsigned long long>(c.l1.sizeBytes / 1024),
                c.l1.ways, c.l1.latency);
    std::printf("  L2 cache   %llu KB/core, %d-way, %d cycle latency\n",
                static_cast<unsigned long long>(c.l2.sizeBytes / 1024),
                c.l2.ways, c.l2.latency);
    std::printf("  L3 cache   %llu KB/core, %d-way, %d cycle latency\n",
                static_cast<unsigned long long>(
                    c.l3PerCore.sizeBytes / 1024),
                c.l3PerCore.ways, c.l3PerCore.latency);
    std::printf("  Main mem   %d-cycle minimum latency, %d controllers, "
                "%.0f GB/s each\n\n",
                c.memMinLatency, c.memControllers, c.memGBps);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_table3");
    std::printf("=== Table III: configuration parameters ===\n\n");
    print("Paper configuration (Table III):", sim::SysConfig{});
    print("Scaled evaluation configuration (inputs ~40x smaller; cache "
          "capacities scaled to match, latencies unchanged):",
          sim::SysConfig::scaledEval());
    auto add = [](const char* variant, const sim::SysConfig& c) {
        if (auto* r = bench::reportRun("config",
                                       {{"variant", variant}})) {
            r->top.addCounter("cores",
                              static_cast<uint64_t>(c.numCores));
            r->top.addCounter("queue_depth",
                              static_cast<uint64_t>(c.queueDepth));
            r->top.addCounter("max_ras",
                              static_cast<uint64_t>(c.maxRAs));
            r->top.setGauge("freq_ghz", c.freqGHz);
        }
    };
    add("paper", sim::SysConfig{});
    add("scaled", sim::SysConfig::scaledEval());
    return bench::finishReport();
}
