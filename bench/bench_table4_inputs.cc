/**
 * @file
 * Table IV: the input graphs (synthetic stand-ins matched on vertex and
 * edge counts — scaled ~40x — and average degree; see DESIGN.md).
 */

#include <cstdio>

#include "base/stats_util.h"
#include "workloads/graph.h"

using namespace phloem;

int
main()
{
    std::printf("=== Table IV: input graphs (scaled ~40x) ===\n");
    std::printf("%-24s %-26s %10s %10s %10s\n", "graph", "domain",
                "vertices", "edges", "avg deg");
    for (const auto& in : wl::tableIVInputs()) {
        std::printf("%-24s %-26s %10s %10s %9.1f%s\n", in.name.c_str(),
                    in.domain.c_str(),
                    formatCount(static_cast<uint64_t>(in.graph->n)).c_str(),
                    formatCount(static_cast<uint64_t>(in.graph->m()))
                        .c_str(),
                    in.graph->avgDegree(),
                    in.training ? "  [training]" : "");
    }
    return 0;
}
