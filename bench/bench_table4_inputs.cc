/**
 * @file
 * Table IV: the input graphs (synthetic stand-ins matched on vertex and
 * edge counts — scaled ~40x — and average degree; see DESIGN.md).
 */

#include <cstdio>

#include "base/stats_util.h"
#include "bench/bench_common.h"
#include "workloads/graph.h"

using namespace phloem;

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_table4");
    std::printf("=== Table IV: input graphs (scaled ~40x) ===\n");
    std::printf("%-24s %-26s %10s %10s %10s\n", "graph", "domain",
                "vertices", "edges", "avg deg");
    for (const auto& in : wl::tableIVInputs()) {
        std::printf("%-24s %-26s %10s %10s %9.1f%s\n", in.name.c_str(),
                    in.domain.c_str(),
                    formatCount(static_cast<uint64_t>(in.graph->n)).c_str(),
                    formatCount(static_cast<uint64_t>(in.graph->m()))
                        .c_str(),
                    in.graph->avgDegree(),
                    in.training ? "  [training]" : "");
        if (auto* r = bench::reportRun(
                in.name,
                {{"role", in.training ? "training" : "test"}})) {
            r->top.addCounter("vertices",
                              static_cast<uint64_t>(in.graph->n));
            r->top.addCounter("edges",
                              static_cast<uint64_t>(in.graph->m()));
            r->top.setGauge("avg_degree", in.graph->avgDegree());
        }
    }
    return bench::finishReport();
}
