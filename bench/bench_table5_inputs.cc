/**
 * @file
 * Table V: the input matrices (synthetic stand-ins matched on size and
 * average nonzeros per row; SpMM sizes further reduced for the O(n^2)
 * inner-product; see DESIGN.md).
 */

#include <cstdio>

#include "base/stats_util.h"
#include "bench/bench_common.h"
#include "workloads/matrix.h"

using namespace phloem;

namespace {

void
printSet(const char* title, const char* set,
         const std::vector<wl::MatrixInput>& inputs)
{
    std::printf("%s\n", title);
    std::printf("%-20s %-26s %12s %12s\n", "matrix", "domain",
                "size (n x n)", "avg nnz/row");
    for (const auto& in : inputs) {
        std::printf("%-20s %-26s %12s %11.1f%s\n", in.name.c_str(),
                    in.domain.c_str(),
                    formatCount(static_cast<uint64_t>(in.matrix->rows))
                        .c_str(),
                    in.matrix->avgNnzPerRow(),
                    in.training ? "  [training]" : "");
        if (auto* r = bench::reportRun(
                in.name, {{"set", set},
                          {"role", in.training ? "training" : "test"}})) {
            r->top.addCounter(
                "rows", static_cast<uint64_t>(in.matrix->rows));
            r->top.setGauge("avg_nnz_per_row", in.matrix->avgNnzPerRow());
        }
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initReport(&argc, argv, "bench_table5");
    std::printf("=== Table V: input matrices ===\n\n");
    printSet("SpMM inputs:", "spmm", wl::spmmInputs());
    printSet("Taco (MTMul, Residual, SpMV, SDDMM) inputs:", "taco",
             wl::tacoInputs());
    return bench::finishReport();
}
