file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_taco.dir/bench_fig12_taco.cc.o"
  "CMakeFiles/bench_fig12_taco.dir/bench_fig12_taco.cc.o.d"
  "bench_fig12_taco"
  "bench_fig12_taco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_taco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
