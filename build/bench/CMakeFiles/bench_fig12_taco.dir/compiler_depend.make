# Empty compiler generated dependencies file for bench_fig12_taco.
# This may be replaced when dependencies are built.
