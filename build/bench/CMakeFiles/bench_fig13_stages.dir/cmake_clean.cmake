file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_stages.dir/bench_fig13_stages.cc.o"
  "CMakeFiles/bench_fig13_stages.dir/bench_fig13_stages.cc.o.d"
  "bench_fig13_stages"
  "bench_fig13_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
