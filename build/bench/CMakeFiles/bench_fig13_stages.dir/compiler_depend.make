# Empty compiler generated dependencies file for bench_fig13_stages.
# This may be replaced when dependencies are built.
