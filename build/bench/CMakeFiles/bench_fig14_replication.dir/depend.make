# Empty dependencies file for bench_fig14_replication.
# This may be replaced when dependencies are built.
