file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_passes.dir/bench_fig6_passes.cc.o"
  "CMakeFiles/bench_fig6_passes.dir/bench_fig6_passes.cc.o.d"
  "bench_fig6_passes"
  "bench_fig6_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
