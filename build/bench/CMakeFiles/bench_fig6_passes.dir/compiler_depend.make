# Empty compiler generated dependencies file for bench_fig6_passes.
# This may be replaced when dependencies are built.
