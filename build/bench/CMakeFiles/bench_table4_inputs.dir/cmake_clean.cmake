file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_inputs.dir/bench_table4_inputs.cc.o"
  "CMakeFiles/bench_table4_inputs.dir/bench_table4_inputs.cc.o.d"
  "bench_table4_inputs"
  "bench_table4_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
