file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_inputs.dir/bench_table5_inputs.cc.o"
  "CMakeFiles/bench_table5_inputs.dir/bench_table5_inputs.cc.o.d"
  "bench_table5_inputs"
  "bench_table5_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
