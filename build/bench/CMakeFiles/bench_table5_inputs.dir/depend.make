# Empty dependencies file for bench_table5_inputs.
# This may be replaced when dependencies are built.
