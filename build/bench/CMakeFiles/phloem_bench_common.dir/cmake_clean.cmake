file(REMOVE_RECURSE
  "CMakeFiles/phloem_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/phloem_bench_common.dir/bench_common.cc.o.d"
  "libphloem_bench_common.a"
  "libphloem_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
