file(REMOVE_RECURSE
  "libphloem_bench_common.a"
)
