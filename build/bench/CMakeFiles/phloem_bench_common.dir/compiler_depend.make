# Empty compiler generated dependencies file for phloem_bench_common.
# This may be replaced when dependencies are built.
