# Empty compiler generated dependencies file for energy_report.
# This may be replaced when dependencies are built.
