file(REMOVE_RECURSE
  "CMakeFiles/replicated_bfs.dir/replicated_bfs.cpp.o"
  "CMakeFiles/replicated_bfs.dir/replicated_bfs.cpp.o.d"
  "replicated_bfs"
  "replicated_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
