# Empty dependencies file for replicated_bfs.
# This may be replaced when dependencies are built.
