file(REMOVE_RECURSE
  "CMakeFiles/tensor_kernels.dir/tensor_kernels.cpp.o"
  "CMakeFiles/tensor_kernels.dir/tensor_kernels.cpp.o.d"
  "tensor_kernels"
  "tensor_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
