# Empty compiler generated dependencies file for tensor_kernels.
# This may be replaced when dependencies are built.
