file(REMOVE_RECURSE
  "CMakeFiles/phloem_base.dir/logging.cc.o"
  "CMakeFiles/phloem_base.dir/logging.cc.o.d"
  "libphloem_base.a"
  "libphloem_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
