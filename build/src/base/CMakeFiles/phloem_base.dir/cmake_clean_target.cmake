file(REMOVE_RECURSE
  "libphloem_base.a"
)
