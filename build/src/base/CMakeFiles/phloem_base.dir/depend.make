# Empty dependencies file for phloem_base.
# This may be replaced when dependencies are built.
