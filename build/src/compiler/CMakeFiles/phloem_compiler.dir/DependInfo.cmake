
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/autotune.cc" "src/compiler/CMakeFiles/phloem_compiler.dir/autotune.cc.o" "gcc" "src/compiler/CMakeFiles/phloem_compiler.dir/autotune.cc.o.d"
  "/root/repo/src/compiler/compiler.cc" "src/compiler/CMakeFiles/phloem_compiler.dir/compiler.cc.o" "gcc" "src/compiler/CMakeFiles/phloem_compiler.dir/compiler.cc.o.d"
  "/root/repo/src/compiler/cost_model.cc" "src/compiler/CMakeFiles/phloem_compiler.dir/cost_model.cc.o" "gcc" "src/compiler/CMakeFiles/phloem_compiler.dir/cost_model.cc.o.d"
  "/root/repo/src/compiler/decouple.cc" "src/compiler/CMakeFiles/phloem_compiler.dir/decouple.cc.o" "gcc" "src/compiler/CMakeFiles/phloem_compiler.dir/decouple.cc.o.d"
  "/root/repo/src/compiler/passes.cc" "src/compiler/CMakeFiles/phloem_compiler.dir/passes.cc.o" "gcc" "src/compiler/CMakeFiles/phloem_compiler.dir/passes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/phloem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/phloem_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
