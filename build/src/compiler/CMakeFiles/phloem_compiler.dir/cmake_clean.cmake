file(REMOVE_RECURSE
  "CMakeFiles/phloem_compiler.dir/autotune.cc.o"
  "CMakeFiles/phloem_compiler.dir/autotune.cc.o.d"
  "CMakeFiles/phloem_compiler.dir/compiler.cc.o"
  "CMakeFiles/phloem_compiler.dir/compiler.cc.o.d"
  "CMakeFiles/phloem_compiler.dir/cost_model.cc.o"
  "CMakeFiles/phloem_compiler.dir/cost_model.cc.o.d"
  "CMakeFiles/phloem_compiler.dir/decouple.cc.o"
  "CMakeFiles/phloem_compiler.dir/decouple.cc.o.d"
  "CMakeFiles/phloem_compiler.dir/passes.cc.o"
  "CMakeFiles/phloem_compiler.dir/passes.cc.o.d"
  "libphloem_compiler.a"
  "libphloem_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
