file(REMOVE_RECURSE
  "libphloem_compiler.a"
)
