# Empty compiler generated dependencies file for phloem_compiler.
# This may be replaced when dependencies are built.
