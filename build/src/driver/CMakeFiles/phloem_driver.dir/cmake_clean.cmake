file(REMOVE_RECURSE
  "CMakeFiles/phloem_driver.dir/experiment.cc.o"
  "CMakeFiles/phloem_driver.dir/experiment.cc.o.d"
  "libphloem_driver.a"
  "libphloem_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
