file(REMOVE_RECURSE
  "libphloem_driver.a"
)
