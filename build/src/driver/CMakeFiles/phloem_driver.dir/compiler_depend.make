# Empty compiler generated dependencies file for phloem_driver.
# This may be replaced when dependencies are built.
