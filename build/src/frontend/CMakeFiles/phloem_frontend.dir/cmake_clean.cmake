file(REMOVE_RECURSE
  "CMakeFiles/phloem_frontend.dir/inline.cc.o"
  "CMakeFiles/phloem_frontend.dir/inline.cc.o.d"
  "CMakeFiles/phloem_frontend.dir/lexer.cc.o"
  "CMakeFiles/phloem_frontend.dir/lexer.cc.o.d"
  "CMakeFiles/phloem_frontend.dir/lower.cc.o"
  "CMakeFiles/phloem_frontend.dir/lower.cc.o.d"
  "CMakeFiles/phloem_frontend.dir/parser.cc.o"
  "CMakeFiles/phloem_frontend.dir/parser.cc.o.d"
  "libphloem_frontend.a"
  "libphloem_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
