file(REMOVE_RECURSE
  "libphloem_frontend.a"
)
