# Empty dependencies file for phloem_frontend.
# This may be replaced when dependencies are built.
