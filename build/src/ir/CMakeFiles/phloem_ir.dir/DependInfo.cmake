
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/clone.cc" "src/ir/CMakeFiles/phloem_ir.dir/clone.cc.o" "gcc" "src/ir/CMakeFiles/phloem_ir.dir/clone.cc.o.d"
  "/root/repo/src/ir/op.cc" "src/ir/CMakeFiles/phloem_ir.dir/op.cc.o" "gcc" "src/ir/CMakeFiles/phloem_ir.dir/op.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/ir/CMakeFiles/phloem_ir.dir/printer.cc.o" "gcc" "src/ir/CMakeFiles/phloem_ir.dir/printer.cc.o.d"
  "/root/repo/src/ir/simplify.cc" "src/ir/CMakeFiles/phloem_ir.dir/simplify.cc.o" "gcc" "src/ir/CMakeFiles/phloem_ir.dir/simplify.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/ir/CMakeFiles/phloem_ir.dir/verifier.cc.o" "gcc" "src/ir/CMakeFiles/phloem_ir.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/phloem_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
