file(REMOVE_RECURSE
  "CMakeFiles/phloem_ir.dir/clone.cc.o"
  "CMakeFiles/phloem_ir.dir/clone.cc.o.d"
  "CMakeFiles/phloem_ir.dir/op.cc.o"
  "CMakeFiles/phloem_ir.dir/op.cc.o.d"
  "CMakeFiles/phloem_ir.dir/printer.cc.o"
  "CMakeFiles/phloem_ir.dir/printer.cc.o.d"
  "CMakeFiles/phloem_ir.dir/simplify.cc.o"
  "CMakeFiles/phloem_ir.dir/simplify.cc.o.d"
  "CMakeFiles/phloem_ir.dir/verifier.cc.o"
  "CMakeFiles/phloem_ir.dir/verifier.cc.o.d"
  "libphloem_ir.a"
  "libphloem_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
