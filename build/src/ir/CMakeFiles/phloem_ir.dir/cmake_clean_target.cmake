file(REMOVE_RECURSE
  "libphloem_ir.a"
)
