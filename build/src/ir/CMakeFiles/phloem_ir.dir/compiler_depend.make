# Empty compiler generated dependencies file for phloem_ir.
# This may be replaced when dependencies are built.
