
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dataflow_model.cc" "src/sim/CMakeFiles/phloem_sim.dir/dataflow_model.cc.o" "gcc" "src/sim/CMakeFiles/phloem_sim.dir/dataflow_model.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/phloem_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/phloem_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/sim/CMakeFiles/phloem_sim.dir/machine.cc.o" "gcc" "src/sim/CMakeFiles/phloem_sim.dir/machine.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/phloem_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/phloem_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/program.cc" "src/sim/CMakeFiles/phloem_sim.dir/program.cc.o" "gcc" "src/sim/CMakeFiles/phloem_sim.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/phloem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/phloem_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
