file(REMOVE_RECURSE
  "CMakeFiles/phloem_sim.dir/dataflow_model.cc.o"
  "CMakeFiles/phloem_sim.dir/dataflow_model.cc.o.d"
  "CMakeFiles/phloem_sim.dir/energy.cc.o"
  "CMakeFiles/phloem_sim.dir/energy.cc.o.d"
  "CMakeFiles/phloem_sim.dir/machine.cc.o"
  "CMakeFiles/phloem_sim.dir/machine.cc.o.d"
  "CMakeFiles/phloem_sim.dir/memory.cc.o"
  "CMakeFiles/phloem_sim.dir/memory.cc.o.d"
  "CMakeFiles/phloem_sim.dir/program.cc.o"
  "CMakeFiles/phloem_sim.dir/program.cc.o.d"
  "libphloem_sim.a"
  "libphloem_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
