file(REMOVE_RECURSE
  "libphloem_sim.a"
)
