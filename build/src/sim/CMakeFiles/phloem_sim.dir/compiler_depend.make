# Empty compiler generated dependencies file for phloem_sim.
# This may be replaced when dependencies are built.
