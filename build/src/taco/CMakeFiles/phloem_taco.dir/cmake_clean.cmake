file(REMOVE_RECURSE
  "CMakeFiles/phloem_taco.dir/taco.cc.o"
  "CMakeFiles/phloem_taco.dir/taco.cc.o.d"
  "libphloem_taco.a"
  "libphloem_taco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_taco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
