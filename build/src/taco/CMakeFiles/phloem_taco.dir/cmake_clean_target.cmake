file(REMOVE_RECURSE
  "libphloem_taco.a"
)
