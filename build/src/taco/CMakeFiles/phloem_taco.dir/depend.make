# Empty dependencies file for phloem_taco.
# This may be replaced when dependencies are built.
