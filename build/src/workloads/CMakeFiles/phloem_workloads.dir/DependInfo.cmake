
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/phloem_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/phloem_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/workloads/CMakeFiles/phloem_workloads.dir/kernels.cc.o" "gcc" "src/workloads/CMakeFiles/phloem_workloads.dir/kernels.cc.o.d"
  "/root/repo/src/workloads/manual.cc" "src/workloads/CMakeFiles/phloem_workloads.dir/manual.cc.o" "gcc" "src/workloads/CMakeFiles/phloem_workloads.dir/manual.cc.o.d"
  "/root/repo/src/workloads/matrix.cc" "src/workloads/CMakeFiles/phloem_workloads.dir/matrix.cc.o" "gcc" "src/workloads/CMakeFiles/phloem_workloads.dir/matrix.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/phloem_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/phloem_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taco/CMakeFiles/phloem_taco.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/phloem_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phloem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/phloem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/phloem_base.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/phloem_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
