file(REMOVE_RECURSE
  "CMakeFiles/phloem_workloads.dir/graph.cc.o"
  "CMakeFiles/phloem_workloads.dir/graph.cc.o.d"
  "CMakeFiles/phloem_workloads.dir/kernels.cc.o"
  "CMakeFiles/phloem_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/phloem_workloads.dir/manual.cc.o"
  "CMakeFiles/phloem_workloads.dir/manual.cc.o.d"
  "CMakeFiles/phloem_workloads.dir/matrix.cc.o"
  "CMakeFiles/phloem_workloads.dir/matrix.cc.o.d"
  "CMakeFiles/phloem_workloads.dir/workload.cc.o"
  "CMakeFiles/phloem_workloads.dir/workload.cc.o.d"
  "libphloem_workloads.a"
  "libphloem_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloem_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
