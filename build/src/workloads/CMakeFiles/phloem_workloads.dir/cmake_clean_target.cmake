file(REMOVE_RECURSE
  "libphloem_workloads.a"
)
