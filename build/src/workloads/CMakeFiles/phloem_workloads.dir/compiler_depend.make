# Empty compiler generated dependencies file for phloem_workloads.
# This may be replaced when dependencies are built.
