src/workloads/CMakeFiles/phloem_workloads.dir/kernels.cc.o: \
 /root/repo/src/workloads/kernels.cc /usr/include/stdc-predef.h \
 /root/repo/src/workloads/kernels.h
