file(REMOVE_RECURSE
  "CMakeFiles/end2end_test.dir/end2end_test.cc.o"
  "CMakeFiles/end2end_test.dir/end2end_test.cc.o.d"
  "end2end_test"
  "end2end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end2end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
