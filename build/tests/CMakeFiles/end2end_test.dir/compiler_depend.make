# Empty compiler generated dependencies file for end2end_test.
# This may be replaced when dependencies are built.
