
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/stress_test.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/stress_test.dir/stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/phloem_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/phloem_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/taco/CMakeFiles/phloem_taco.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/phloem_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/phloem_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phloem_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/phloem_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/phloem_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
