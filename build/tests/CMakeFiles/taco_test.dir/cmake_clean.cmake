file(REMOVE_RECURSE
  "CMakeFiles/taco_test.dir/taco_test.cc.o"
  "CMakeFiles/taco_test.dir/taco_test.cc.o.d"
  "taco_test"
  "taco_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
