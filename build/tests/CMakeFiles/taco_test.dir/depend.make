# Empty dependencies file for taco_test.
# This may be replaced when dependencies are built.
