file(REMOVE_RECURSE
  "CMakeFiles/toggle_test.dir/toggle_test.cc.o"
  "CMakeFiles/toggle_test.dir/toggle_test.cc.o.d"
  "toggle_test"
  "toggle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toggle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
