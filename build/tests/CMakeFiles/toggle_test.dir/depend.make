# Empty dependencies file for toggle_test.
# This may be replaced when dependencies are built.
