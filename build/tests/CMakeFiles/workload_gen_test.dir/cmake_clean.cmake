file(REMOVE_RECURSE
  "CMakeFiles/workload_gen_test.dir/workload_gen_test.cc.o"
  "CMakeFiles/workload_gen_test.dir/workload_gen_test.cc.o.d"
  "workload_gen_test"
  "workload_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
