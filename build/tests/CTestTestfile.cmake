# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(compiler_test "/root/repo/build/tests/compiler_test")
set_tests_properties(compiler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(end2end_test "/root/repo/build/tests/end2end_test")
set_tests_properties(end2end_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(frontend_test "/root/repo/build/tests/frontend_test")
set_tests_properties(frontend_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ir_test "/root/repo/build/tests/ir_test")
set_tests_properties(ir_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(passes_test "/root/repo/build/tests/passes_test")
set_tests_properties(passes_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(program_test "/root/repo/build/tests/program_test")
set_tests_properties(program_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(toggle_test "/root/repo/build/tests/toggle_test")
set_tests_properties(toggle_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(replication_test "/root/repo/build/tests/replication_test")
set_tests_properties(replication_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stress_test "/root/repo/build/tests/stress_test")
set_tests_properties(stress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(taco_test "/root/repo/build/tests/taco_test")
set_tests_properties(taco_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_gen_test "/root/repo/build/tests/workload_gen_test")
set_tests_properties(workload_gen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;25;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;26;phloem_test;/root/repo/tests/CMakeLists.txt;0;")
