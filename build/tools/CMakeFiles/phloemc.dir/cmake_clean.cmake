file(REMOVE_RECURSE
  "CMakeFiles/phloemc.dir/phloemc.cc.o"
  "CMakeFiles/phloemc.dir/phloemc.cc.o.d"
  "phloemc"
  "phloemc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phloemc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
