# Empty dependencies file for phloemc.
# This may be replaced when dependencies are built.
