/**
 * @file
 * Energy example: the paper's Fig. 11 analysis on one workload. Runs
 * serial, data-parallel, and Phloem-pipelined connected components on a
 * test graph and prints each variant's energy breakdown from the
 * event-proportional model — showing *why* pipelining saves energy
 * (shorter runtime cuts static energy; queue ops are cheap) even though
 * it issues more queue operations.
 */

#include <cstdio>

#include "driver/experiment.h"
#include "sim/energy.h"
#include "workloads/workload.h"

using namespace phloem;

namespace {

void
printRow(const char* label, const sim::EnergyBreakdown& e, uint64_t cycles,
         double baseline_total)
{
    std::printf("%-14s %10llu %9.3f %9.3f %9.3f %9.3f %9.3f %8.2fx\n",
                label, static_cast<unsigned long long>(cycles),
                e.coreDynamic, e.cache, e.dram, e.staticEnergy, e.total(),
                baseline_total > 0 ? baseline_total / e.total() : 1.0);
}

} // namespace

int
main()
{
    wl::Workload cc = wl::findWorkload("cc");
    driver::Experiment exp(cc, sim::SysConfig::scaledEval());
    sim::EnergyConfig ecfg;

    // Pick the first held-out test input.
    const wl::Case* test = nullptr;
    for (const auto& c : cc.cases) {
        if (!c.training) {
            test = &c;
            break;
        }
    }
    if (test == nullptr)
        return 1;

    std::printf("connected components on %s (energy model, mJ)\n\n",
                test->inputName.c_str());
    std::printf("%-14s %10s %9s %9s %9s %9s %9s %8s\n", "variant",
                "cycles", "core-dyn", "cache+RA", "dram", "static",
                "total", "vs serial");

    // Serial: one thread on one powered core.
    auto serial = exp.runSerial(*test);
    auto e_serial = sim::computeEnergy(serial.stats, ecfg, 1);
    printRow("serial", e_serial, serial.stats.cycles, 0.0);

    // Data-parallel: 4 SMT threads, still one core.
    auto par = exp.runParallel(*test, 4);
    if (par.correct) {
        auto e = sim::computeEnergy(par.stats, ecfg, 1);
        printRow("data-parallel", e, par.stats.cycles, e_serial.total());
    }

    // Phloem: the automatically decoupled pipeline on the same core.
    auto compiled = exp.compileStatic();
    auto pipe = exp.runPipeline(*test, *compiled.pipeline);
    if (pipe.correct) {
        auto e = sim::computeEnergy(pipe.stats, ecfg, 1);
        printRow("phloem", e, pipe.stats.cycles, e_serial.total());
        std::printf("\npipeline issued %llu queue ops (at %.0f pJ each, "
                    "vs %.0f pJ per uop)\n",
                    static_cast<unsigned long long>(
                        pipe.stats.totalQueueOps()),
                    ecfg.queueOpPj, ecfg.uopPj);
    } else {
        std::printf("pipeline failed: %s\n", pipe.error.c_str());
        return 1;
    }
    return 0;
}
