/**
 * @file
 * Graph-analytics example: automatic pipelining of breadth-first search
 * (the paper's running example, Sec. II) on a synthetic road network,
 * including the profile-guided search over candidate decoupling points
 * (Sec. V).
 */

#include <cstdio>

#include "base/stats_util.h"
#include "driver/experiment.h"
#include "ir/printer.h"
#include "workloads/graph.h"
#include "workloads/workload.h"

using namespace phloem;

int
main()
{
    // The BFS workload bundles the serial C source, the input suite, and
    // golden-output validation.
    wl::Workload bfs = wl::findWorkload("bfs");
    driver::Experiment exp(bfs, sim::SysConfig::scaledEval());

    std::printf("=== serial BFS (input to Phloem) ===\n%s\n",
                bfs.serialSrc.c_str());

    // Static flow: decoupling points from the cost model (Sec. V).
    comp::CompileResult static_pipe = exp.compileStatic();
    std::printf("static pipeline: %zu stages + %zu RAs\n",
                static_pipe.pipeline->stages.size(),
                static_pipe.pipeline->ras.size());
    for (const auto& note : static_pipe.notes)
        std::printf("  note: %s\n", note.c_str());

    // Profile-guided flow: train candidate pipelines on the small
    // training graphs, keep the best.
    comp::AutotuneOptions aopts;
    auto tuned = exp.autotunePGO(aopts);
    std::printf("\nautotuner profiled %zu candidate pipelines; best "
                "training speedup %.2fx with cuts {",
                tuned.entries.size(), tuned.bestTrainingSpeedup);
    for (int cut : tuned.best.cuts)
        std::printf(" %d", cut);
    std::printf(" }\n\n");

    // Evaluate on the held-out test graphs.
    std::printf("%-24s %10s %10s %10s\n", "test graph", "serial",
                "static", "PGO");
    for (const auto& c : bfs.cases) {
        if (c.training)
            continue;
        uint64_t serial = exp.serialCycles(c);
        auto st = exp.runPipeline(c, *static_pipe.pipeline);
        auto pg = exp.runPipeline(c, *tuned.best.pipeline);
        std::printf("%-24s %10llu %9.2fx %9.2fx%s\n", c.inputName.c_str(),
                    static_cast<unsigned long long>(serial),
                    st.correct ? static_cast<double>(serial) / st.stats.cycles
                               : 0.0,
                    pg.correct ? static_cast<double>(serial) / pg.stats.cycles
                               : 0.0,
                    (st.correct && pg.correct) ? "" : "  (FAILED)");
    }
    return 0;
}
