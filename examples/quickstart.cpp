/**
 * @file
 * Quickstart: the paper's introductory example (Sec. I).
 *
 *   for (i = 0; i < N; i++)
 *       if (A[i] > 0) B[A[i]] = work(B[A[i]]);
 *
 * The unpredictable branch and the indirect access make this serial code
 * slow on an out-of-order core. Phloem decouples it into a fine-grain
 * pipeline (fetch A[i] | filter | fetch B[A[i]] | work) that hides the
 * latencies. This example compiles the C source, prints the generated
 * pipeline, and compares simulated execution times.
 */

#include <cstdio>

#include "base/rng.h"
#include "compiler/compiler.h"
#include "frontend/frontend.h"
#include "ir/printer.h"
#include "sim/machine.h"

using namespace phloem;

static const char* kSource = R"(
#pragma phloem
void filter_work(const int* restrict a, const int* restrict b,
                 long* restrict out, int n) {
    for (int i = 0; i < n; i++) {
        int x = a[i];
        if (x > 0) {
            int y = b[x];
            out[i] = phloem_work(y, 10);
        }
    }
}
)";

static void
setup(sim::Binding& binding, int n)
{
    Rng rng(1);
    auto* a = binding.makeArray("a", ir::ElemType::kI32, n);
    auto* b = binding.makeArray("b", ir::ElemType::kI32, n);
    binding.makeArray("out", ir::ElemType::kI64, n);
    for (int i = 0; i < n; ++i) {
        // Roughly alternating signs: the unpredictable-branch case.
        a->setInt(i, static_cast<int64_t>(rng.nextBounded(n)) - n / 2);
        b->setInt(i, static_cast<int64_t>(rng.nextBounded(100000)));
    }
    binding.setScalarInt("n", n);
}

int
main()
{
    // 1. Compile serial C to Phloem IR.
    fe::CompiledKernel kernel = fe::compileKernel(kSource);
    std::printf("=== serial IR ===\n%s\n",
                ir::toString(*kernel.fn).c_str());

    // 2. Let Phloem decouple it into a pipeline.
    comp::CompileOptions opts;
    opts.numStages = 4;
    comp::CompileResult compiled = comp::compilePipeline(*kernel.fn, opts);
    std::printf("=== generated pipeline ===\n%s\n",
                ir::toString(*compiled.pipeline).c_str());
    for (const auto& note : compiled.notes)
        std::printf("note: %s\n", note.c_str());

    // 3. Simulate both on the Pipette-style system.
    const int n = 40000;
    sim::SysConfig cfg = sim::SysConfig::scaledEval();

    sim::Binding serial_binding;
    setup(serial_binding, n);
    sim::Machine serial(cfg);
    sim::RunStats s = serial.runSerial(*kernel.fn, serial_binding);

    sim::Binding pipe_binding;
    setup(pipe_binding, n);
    sim::Machine pipelined(cfg);
    sim::RunStats p = pipelined.runPipeline(*compiled.pipeline,
                                            pipe_binding);

    // 4. Outputs must match; the pipeline should be much faster.
    bool match = serial_binding.array("out")->contentEquals(
        *pipe_binding.array("out"));
    std::printf("\nserial:   %llu cycles (%llu instructions)\n",
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.totalInstructions()));
    std::printf("pipeline: %llu cycles (%llu instructions, %zu stages + "
                "%zu RAs)\n",
                static_cast<unsigned long long>(p.cycles),
                static_cast<unsigned long long>(p.totalInstructions()),
                compiled.pipeline->stages.size(),
                compiled.pipeline->ras.size());
    std::printf("outputs match: %s\n", match ? "yes" : "NO");
    std::printf("speedup: %.2fx\n",
                static_cast<double>(s.cycles) /
                    static_cast<double>(p.cycles));
    return match ? 0 : 1;
}
