/**
 * @file
 * Replication example (paper Sec. IV-C): composing data and pipeline
 * parallelism. A BFS pipeline is replicated across the cores of a
 * 4-core, 4-SMT-thread system; `#pragma distribute` splits the replicas
 * into source-centric and destination-centric halves, with neighbor ids
 * routed to the replica that owns them (selected by value mod replicas,
 * the paper's "inspecting bits in the neighbor id").
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "frontend/frontend.h"
#include "sim/machine.h"
#include "workloads/graph.h"
#include "workloads/kernels.h"

using namespace phloem;

int
main()
{
    constexpr int kReplicas = 4;

    // A mid-size synthetic social-like graph.
    auto g = wl::makeRMat(4096, 40000, 77);
    int32_t root = 0;
    for (int32_t v = 0; v < g.n; ++v)
        if (g.degree(v) > g.degree(root))
            root = v;
    auto golden = wl::bfsGolden(g, root);
    int32_t diameter = 0;
    for (int32_t d : golden)
        if (d != INT32_MAX)
            diameter = std::max(diameter, d);

    // The replicated kernel: bounded rounds + a distribute boundary.
    fe::CompiledKernel kernel = fe::compileKernel(wl::kBfsReplicated);
    comp::CompileOptions opts;
    opts.numStages = 4;
    opts.replicas = kReplicas;
    opts.distributeBoundaryOp = kernel.ann.distributeOps.front();
    auto compiled = comp::compilePipeline(*kernel.fn, opts);
    std::printf("replicated pipeline: %zu stages + %zu RAs per replica, "
                "x%d replicas\n",
                compiled.pipeline->stages.size(),
                compiled.pipeline->ras.size(), kReplicas);
    for (const auto& note : compiled.notes)
        if (note.find("distributed") != std::string::npos)
            std::printf("note: %s\n", note.c_str());

    // Bind: graph and distances shared; fringes per replica (the
    // paper's replicate_arguments()).
    sim::Binding b;
    auto* nodes = b.makeArray("nodes", ir::ElemType::kI32,
                              static_cast<size_t>(g.n) + 1);
    for (int32_t v = 0; v <= g.n; ++v)
        nodes->setInt(v, g.nodes[static_cast<size_t>(v)]);
    auto* edges = b.makeArray("edges", ir::ElemType::kI32,
                              static_cast<size_t>(g.m()));
    for (int64_t e = 0; e < g.m(); ++e)
        edges->setInt(e, g.edges[static_cast<size_t>(e)]);
    auto* dist = b.makeArray("dist", ir::ElemType::kI32,
                             static_cast<size_t>(g.n));
    dist->fillInt(2147483647);
    for (int r = 0; r < kReplicas; ++r) {
        size_t cap = static_cast<size_t>(g.n) + 1;
        b.bindReplica(r, "cur_fringe",
                      b.makeArray("cur_fringe@" + std::to_string(r),
                                  ir::ElemType::kI32, cap));
        b.bindReplica(r, "next_fringe",
                      b.makeArray("next_fringe@" + std::to_string(r),
                                  ir::ElemType::kI32, cap));
        b.setScalarReplica(r, "init_size",
                           ir::Value::fromInt(
                               root % kReplicas == r ? 1 : 0));
    }
    b.setScalarInt("n", g.n);
    b.setScalarInt("root", root);
    b.setScalarInt("max_rounds", diameter + 1);

    // Serial baseline on one thread of one core.
    fe::CompiledKernel serial = fe::compileKernel(wl::kBfsSerial);
    sim::Binding sb;
    {
        auto* n2 = sb.makeArray("nodes", ir::ElemType::kI32,
                                static_cast<size_t>(g.n) + 1);
        for (int32_t v = 0; v <= g.n; ++v)
            n2->setInt(v, g.nodes[static_cast<size_t>(v)]);
        auto* e2 = sb.makeArray("edges", ir::ElemType::kI32,
                                static_cast<size_t>(g.m()));
        for (int64_t e = 0; e < g.m(); ++e)
            e2->setInt(e, g.edges[static_cast<size_t>(e)]);
        sb.makeArray("dist", ir::ElemType::kI32,
                     static_cast<size_t>(g.n))
            ->fillInt(2147483647);
        sb.makeArray("cur_fringe", ir::ElemType::kI32,
                     static_cast<size_t>(g.m()) + 1);
        sb.makeArray("next_fringe", ir::ElemType::kI32,
                     static_cast<size_t>(g.m()) + 1);
        sb.setScalarInt("n", g.n);
        sb.setScalarInt("root", root);
    }
    sim::Machine sm(sim::SysConfig::scaledEval(1));
    auto sstats = sm.runSerial(*serial.fn, sb);

    sim::Machine pm(sim::SysConfig::scaledEval(4));
    auto pstats = pm.runPipeline(*compiled.pipeline, b);
    if (pstats.deadlock) {
        std::printf("deadlock!\n%s\n", pstats.deadlockInfo.c_str());
        return 1;
    }

    int bad = 0;
    for (int32_t v = 0; v < g.n; ++v)
        if (dist->atInt(v) != golden[static_cast<size_t>(v)])
            bad++;
    std::printf("serial (1 thread):      %llu cycles\n",
                static_cast<unsigned long long>(sstats.cycles));
    std::printf("replicated (16 threads): %llu cycles (%zu stage "
                "threads)\n",
                static_cast<unsigned long long>(pstats.cycles),
                pstats.threads.size());
    std::printf("mismatches: %d / %d\n", bad, g.n);
    std::printf("speedup: %.2fx\n",
                static_cast<double>(sstats.cycles) /
                    static_cast<double>(pstats.cycles));
    return bad == 0 ? 0 : 1;
}
