/*
 * Sparse matrix-vector product in mini-C, the quick-start input for
 * phloemc. The irregular x[col[k]] gather is exactly the access pattern
 * fine-grain pipelining decouples:
 *
 *   phloemc --run=both examples/spmv.c
 *
 * compiles the kernel into a pipeline, executes it both natively (host
 * threads + SPSC queues) and on the simulator, and checks the two
 * outputs match bit-for-bit.
 */
#pragma phloem
void spmv(const int* restrict row, const int* restrict col,
          const double* restrict val, const double* restrict x,
          double* restrict y, int n) {
    for (int i = 0; i < n; i++) {
        double sum = 0.0;
        int start = row[i];
        int end = row[i + 1];
        for (int k = start; k < end; k++) {
            sum = sum + val[k] * x[col[k]];
        }
        y[i] = sum;
    }
}
