/**
 * @file
 * Domain-specific-compiler integration (paper Sec. IV-D): a tensor-index
 * expression goes through the mini-Taco frontend, which emits restrict-
 * qualified C; Phloem then pipelines the emitted code with the static
 * flow — no manual work anywhere in the chain.
 */

#include <cstdio>

#include "compiler/compiler.h"
#include "driver/experiment.h"
#include "frontend/frontend.h"
#include "ir/printer.h"
#include "taco/taco.h"
#include "workloads/workload.h"

using namespace phloem;

int
main()
{
    // 1. A tensor expression, exactly as a Taco user would write it.
    taco::TacoKernel kernel =
        taco::compileExpression("taco_spmv", "y(i) = A(i,j) * x(j)");
    std::printf("=== expression ===\n%s\n\n=== emitted C ===\n%s\n",
                kernel.expression.c_str(), kernel.source.c_str());

    // 2. Phloem consumes the emitted C like any other serial kernel.
    fe::CompiledKernel compiled = fe::compileKernel(kernel.source);
    comp::CompileResult pipe = comp::compilePipeline(*compiled.fn);
    std::printf("=== pipeline ===\n%s\n",
                ir::toString(*pipe.pipeline).c_str());

    // 3. Run on the Taco input matrices and validate against goldens.
    wl::Workload w = wl::findWorkload("taco_spmv");
    driver::Experiment exp(w, sim::SysConfig::scaledEval());
    for (const auto& c : w.cases) {
        uint64_t serial = exp.serialCycles(c);
        auto out = exp.runPipeline(c, *pipe.pipeline);
        std::printf("%-20s serial=%-10llu pipeline=%-10llu speedup=%.2fx"
                    " %s\n",
                    c.inputName.c_str(),
                    static_cast<unsigned long long>(serial),
                    static_cast<unsigned long long>(out.stats.cycles),
                    out.correct ? static_cast<double>(serial) /
                                      out.stats.cycles
                                : 0.0,
                    out.correct ? "" : out.error.c_str());
    }
    return 0;
}
