#!/bin/bash
# Regenerate every table/figure; tee everything into bench_output.txt.
#
# Exits nonzero if any bench fails (pipefail keeps tee from masking a
# bench's exit status), and writes the native-runtime results to
# BENCH_native.json for machine consumption.
set -u -o pipefail
cd "$(dirname "$0")"
OUT=bench_output.txt
: > "$OUT"
failed=()
run() {
    echo "########## $1 ##########" | tee -a "$OUT"
    if ! ./build/bench/"$@" 2>&1 | tee -a "$OUT"; then
        failed+=("$1")
    fi
    echo | tee -a "$OUT"
}
for b in bench_table3_config bench_table4_inputs bench_table5_inputs \
         bench_fig6_passes bench_fig12_taco bench_fig10_cycles \
         bench_fig11_energy bench_fig13_stages bench_fig14_replication \
         bench_fig9_speedup bench_ablation bench_micro; do
    run "$b"
done
run bench_native --json=BENCH_native.json
if ((${#failed[@]} > 0)); then
    echo "FAILED benches: ${failed[*]}" | tee -a "$OUT"
    exit 1
fi
echo "all benches passed; native results in BENCH_native.json" \
    | tee -a "$OUT"
