#!/bin/bash
# Regenerate every table/figure; tee everything into bench_output.txt.
set -u
cd "$(dirname "$0")"
OUT=bench_output.txt
: > "$OUT"
for b in bench_table3_config bench_table4_inputs bench_table5_inputs \
         bench_fig6_passes bench_fig12_taco bench_fig10_cycles \
         bench_fig11_energy bench_fig13_stages bench_fig14_replication \
         bench_fig9_speedup bench_ablation bench_micro; do
    echo "########## $b ##########" | tee -a "$OUT"
    ./build/bench/$b 2>&1 | tee -a "$OUT"
    echo | tee -a "$OUT"
done
