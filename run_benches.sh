#!/bin/bash
# Regenerate every table/figure; tee everything into bench_output.txt.
#
# Every bench also writes a machine-readable metrics report into
# bench_reports/, and the reports are aggregated (with the git sha
# stamped into the metadata) into BENCH_report.json — one
# schema-versioned file for the whole suite. The native results keep
# their BENCH_native.json name for compatibility; it is the same report
# format. Inspect or compare any of them with build/tools/phloem-report.
#
# Exits nonzero if any bench fails (pipefail keeps tee from masking a
# bench's exit status).
set -u -o pipefail
cd "$(dirname "$0")"
OUT=bench_output.txt
REPORTS=bench_reports
: > "$OUT"
mkdir -p "$REPORTS"
failed=()
run() {
    echo "########## $1 ##########" | tee -a "$OUT"
    local name="$1"; shift
    if ! ./build/bench/"$name" "$@" --report="$REPORTS/$name.json" 2>&1 \
            | tee -a "$OUT"; then
        failed+=("$name")
    fi
    echo | tee -a "$OUT"
}
for b in bench_table3_config bench_table4_inputs bench_table5_inputs \
         bench_fig6_passes bench_fig12_taco bench_fig10_cycles \
         bench_fig11_energy bench_fig13_stages bench_fig14_replication \
         bench_fig9_speedup bench_ablation bench_micro; do
    run "$b"
done
# Service round trip: a phloemd daemon under concurrent load, measuring
# cold-compile vs cache-hit latency. The loadgen report (p50/p95/p99
# latency per request kind, hit rate, same-kernel speedup) lands in
# $REPORTS and is merged into BENCH_report.json with everything else.
echo "########## phloemd + phloem-loadgen ##########" | tee -a "$OUT"
SOCK=$(mktemp -u /tmp/phloemd.XXXXXX.sock)
./build/tools/phloemd --socket="$SOCK" --workers=2 --cache=16 \
    >> "$OUT" 2>&1 &
DAEMON_PID=$!
if ! ./build/tools/phloem-loadgen --socket="$SOCK" --clients=2 \
        --requests=48 --kernels=8 --backend=sim --size=32 \
        --report="$REPORTS/loadgen.json" 2>&1 | tee -a "$OUT"; then
    failed+=(loadgen)
fi
kill -TERM "$DAEMON_PID" 2>/dev/null
if ! wait "$DAEMON_PID"; then
    failed+=(phloemd)
fi
echo | tee -a "$OUT"
# Profile-guided autotuning row (closing Fig. 13's loop): search cut
# sets, replication factors, and queue depths with measured native
# profiles of spmv. The autotune_* report family (candidate
# distribution, reject tally, cost-model calibration) is merged into
# BENCH_report.json with everything else below.
echo "########## phloemc --autotune=native (spmv) ##########" \
    | tee -a "$OUT"
if ! ./build/tools/phloemc --quiet --autotune=native --size 8192 \
        --report="$REPORTS/autotune.json" examples/spmv.c 2>&1 \
        | tee -a "$OUT"; then
    failed+=(autotune)
fi
echo | tee -a "$OUT"
# Keep the previous native results so we can report per-kernel deltas.
PREV=
if [[ -f BENCH_native.json ]]; then
    PREV=BENCH_native.prev.json
    cp BENCH_native.json "$PREV"
fi
run bench_native
cp "$REPORTS/bench_native.json" BENCH_native.json
# Informational wall-clock delta vs the previous run (never affects the
# exit status: --no-fail). Wall times are host-noisy; the CI perf gate
# diffs against a committed baseline instead.
if [[ -n "$PREV" ]]; then
    echo "native delta vs previous run (informational):" | tee -a "$OUT"
    ./build/tools/phloem-report --diff "$PREV" BENCH_native.json \
        --no-fail 2>&1 | tee -a "$OUT"
fi
# Aggregate everything into one versioned report stamped with the
# commit and timestamp it measured.
GIT_SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
if ! ./build/tools/phloem-report --merge BENCH_report.json \
        "$REPORTS"/*.json \
        --meta tool=run_benches \
        --meta git_sha="$GIT_SHA" \
        --meta date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
        | tee -a "$OUT"; then
    failed+=(merge)
fi
if ((${#failed[@]} > 0)); then
    echo "FAILED benches: ${failed[*]}" | tee -a "$OUT"
    exit 1
fi
echo "all benches passed; aggregated report in BENCH_report.json" \
    | tee -a "$OUT"
