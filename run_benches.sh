#!/bin/bash
# Regenerate every table/figure; tee everything into bench_output.txt.
#
# Exits nonzero if any bench fails (pipefail keeps tee from masking a
# bench's exit status), and writes the native-runtime results to
# BENCH_native.json for machine consumption.
set -u -o pipefail
cd "$(dirname "$0")"
OUT=bench_output.txt
: > "$OUT"
failed=()
run() {
    echo "########## $1 ##########" | tee -a "$OUT"
    if ! ./build/bench/"$@" 2>&1 | tee -a "$OUT"; then
        failed+=("$1")
    fi
    echo | tee -a "$OUT"
}
for b in bench_table3_config bench_table4_inputs bench_table5_inputs \
         bench_fig6_passes bench_fig12_taco bench_fig10_cycles \
         bench_fig11_energy bench_fig13_stages bench_fig14_replication \
         bench_fig9_speedup bench_ablation bench_micro; do
    run "$b"
done
# Keep the previous native results so we can report per-kernel deltas.
PREV=
if [[ -f BENCH_native.json ]]; then
    PREV=BENCH_native.prev.json
    cp BENCH_native.json "$PREV"
fi
run bench_native --json=BENCH_native.json
# Informational before/after table (never affects the exit status): one
# row per kernel, pipeline wall-clock old vs new. Rows are emitted
# one-per-line by bench_native, so line-oriented parsing is safe.
if [[ -n "$PREV" && -f BENCH_native.json ]]; then
    awk '
        /"name":/ {
            match($0, /"name": "[^"]*"/)
            name = substr($0, RSTART + 9, RLENGTH - 10)
            match($0, /"pipeline_ms": [0-9.]*/)
            ms = substr($0, RSTART + 15, RLENGTH - 15)
            if (FILENAME == ARGV[1]) { old[name] = ms }
            else if (name in old) {
                d = (old[name] > 0) ? old[name] / ms : 0
                printf "  %-12s %10.3f ms -> %10.3f ms   %.2fx\n", \
                       name, old[name], ms, d
            } else {
                printf "  %-12s %10s    -> %10.3f ms   (new)\n", \
                       name, "-", ms
            }
        }' "$PREV" BENCH_native.json \
        | { echo "native pipeline delta vs previous run:"; cat; } \
        | tee -a "$OUT"
fi
if ((${#failed[@]} > 0)); then
    echo "FAILED benches: ${failed[*]}" | tee -a "$OUT"
    exit 1
fi
echo "all benches passed; native results in BENCH_native.json" \
    | tee -a "$OUT"
