#include "base/logging.h"

#include <stdexcept>

namespace phloem {
namespace detail {

[[noreturn]] void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::string full = std::string("panic: ") + msg + " @ " + file + ":" +
                       std::to_string(line);
    // Throw instead of abort() so unit tests can assert on panics.
    throw std::logic_error(full);
}

[[noreturn]] void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::string full = std::string("fatal: ") + msg + " @ " + file + ":" +
                       std::to_string(line);
    throw std::runtime_error(full);
}

void
warnImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "warn: %s @ %s:%d\n", msg.c_str(), file, line);
}

} // namespace detail
} // namespace phloem
