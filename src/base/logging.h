/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library).
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, malformed input program, ...).
 * warn()   — something works, but not as well as it should.
 */

#ifndef PHLOEM_BASE_LOGGING_H
#define PHLOEM_BASE_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace phloem {

namespace detail {

/** Stream-compose a message from variadic parts. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const char* file, int line, const std::string& msg);

} // namespace detail

} // namespace phloem

/** Abort with a message: something that should never happen did. */
#define phloem_panic(...)                                                     \
    ::phloem::detail::panicImpl(__FILE__, __LINE__,                           \
        ::phloem::detail::composeMessage(__VA_ARGS__))

/** Exit with a message: the user asked for something unsupported. */
#define phloem_fatal(...)                                                     \
    ::phloem::detail::fatalImpl(__FILE__, __LINE__,                           \
        ::phloem::detail::composeMessage(__VA_ARGS__))

/** Print a warning and continue. */
#define phloem_warn(...)                                                      \
    ::phloem::detail::warnImpl(__FILE__, __LINE__,                            \
        ::phloem::detail::composeMessage(__VA_ARGS__))

/** Internal invariant check; always on (simulators must not run corrupted). */
#define phloem_assert(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::phloem::detail::panicImpl(__FILE__, __LINE__,                   \
                ::phloem::detail::composeMessage(                             \
                    "assertion failed: " #cond " ", ##__VA_ARGS__));          \
        }                                                                     \
    } while (0)

#endif // PHLOEM_BASE_LOGGING_H
