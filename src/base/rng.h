/**
 * @file
 * Deterministic pseudo-random number generation for input synthesis.
 *
 * All workload generators in this repository derive their randomness from
 * this xoshiro256** implementation so that every experiment is exactly
 * reproducible from a seed, independent of the C++ standard library's
 * unspecified distributions.
 */

#ifndef PHLOEM_BASE_RNG_H
#define PHLOEM_BASE_RNG_H

#include <cstdint>

namespace phloem {

/** xoshiro256** by Blackman & Vigna; public-domain reference algorithm. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t* s = state_;
        uint64_t result = rotl(s[1] * 5, 7) * 9;
        uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded sampling.
        uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool coinFlip(double p) { return nextDouble() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace phloem

#endif // PHLOEM_BASE_RNG_H
