/**
 * @file
 * Small numeric helpers shared by the benchmark harnesses: geometric means
 * and fixed-width table formatting, matching how the paper reports results.
 */

#ifndef PHLOEM_BASE_STATS_UTIL_H
#define PHLOEM_BASE_STATS_UTIL_H

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace phloem {

/** Geometric mean of a set of strictly positive values. */
inline double
gmean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Arithmetic mean. */
inline double
amean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Format a double as e.g. "1.73x" for speedup tables. */
inline std::string
formatSpeedup(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", x);
    return buf;
}

/** Format a count with thousands separators for table output. */
inline std::string
formatCount(uint64_t n)
{
    std::string digits = std::to_string(n);
    std::string out;
    int c = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (c != 0 && c % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++c;
    }
    return std::string(out.rbegin(), out.rend());
}

} // namespace phloem

#endif // PHLOEM_BASE_STATS_UTIL_H
