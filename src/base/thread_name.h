/**
 * @file
 * Naming for spawned threads, so perf/top/Perfetto show readable lanes
 * ("phl-sched/3", "walk@2") instead of anonymous TIDs.
 *
 * Linux caps a thread name at 15 characters + NUL; longer names are
 * truncated rather than rejected, because worker names come from user
 * kernel source ("my_long_stage_name@7") and must never fail a run.
 * On non-Linux hosts this is a no-op.
 */

#ifndef PHLOEM_BASE_THREAD_NAME_H
#define PHLOEM_BASE_THREAD_NAME_H

#if defined(__linux__)
#include <pthread.h>
#endif

#include <cstring>
#include <string>

namespace phloem {

/** Longest thread name the kernel stores (excluding the NUL). */
inline constexpr size_t kMaxThreadNameLen = 15;

inline void
setCurrentThreadName(const std::string& name)
{
#if defined(__linux__)
    char buf[kMaxThreadNameLen + 1];
    size_t n = name.size() < kMaxThreadNameLen ? name.size()
                                               : kMaxThreadNameLen;
    std::memcpy(buf, name.data(), n);
    buf[n] = '\0';
    pthread_setname_np(pthread_self(), buf);
#else
    (void)name;
#endif
}

} // namespace phloem

#endif // PHLOEM_BASE_THREAD_NAME_H
