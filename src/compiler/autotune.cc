#include "compiler/autotune.h"

#include <algorithm>

#include "base/logging.h"
#include "compiler/cost_model.h"

namespace phloem::comp {

namespace {

/** Enumerate all size-k subsets of [0, n). */
void
subsets(int n, int k, std::vector<std::vector<int>>& out)
{
    std::vector<int> cur;
    std::function<void(int)> rec = [&](int start) {
        if (static_cast<int>(cur.size()) == k) {
            out.push_back(cur);
            return;
        }
        for (int i = start; i < n; ++i) {
            cur.push_back(i);
            rec(i + 1);
            cur.pop_back();
        }
    };
    rec(0);
}

} // namespace

AutotuneResult
autotune(const ir::Function& fn, const AutotuneOptions& opts,
         const PipelineEvaluator& evaluate)
{
    AutotuneResult result;

    auto ranked = rankCutPoints(fn);
    int k = std::min<int>(opts.topK, static_cast<int>(ranked.size()));

    // Candidate cut sets: all combinations of 1..(maxThreads-1) cuts from
    // the top-k ranked points ("no fewer than fifty different pipelines"
    // for the paper's benchmarks at k=6, up to 3 cuts).
    std::vector<std::vector<int>> combos;
    for (int size = 1; size < opts.maxThreads; ++size)
        subsets(k, size, combos);
    if (static_cast<int>(combos.size()) > opts.maxCandidates)
        combos.resize(static_cast<size_t>(opts.maxCandidates));

    for (const auto& combo : combos) {
        CompileOptions copts = opts.base;
        copts.explicitCuts.clear();
        for (int idx : combo)
            copts.explicitCuts.push_back(
                ranked[static_cast<size_t>(idx)].cutOp);

        CompileResult cres = compilePipeline(fn, copts);
        if (!cres.ok())
            continue;
        if (static_cast<int>(cres.pipeline->stages.size()) >
            opts.maxThreads) {
            continue;
        }

        double speedup = evaluate(*cres.pipeline);

        AutotuneEntry entry;
        entry.cuts = cres.cuts;
        entry.lengthWithRAs = cres.pipeline->lengthWithRAs();
        entry.trainingSpeedup = speedup;
        result.entries.push_back(entry);

        if (speedup > result.bestTrainingSpeedup) {
            result.bestTrainingSpeedup = speedup;
            result.best = std::move(cres);
        }
    }

    return result;
}

} // namespace phloem::comp
