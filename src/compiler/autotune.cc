#include "compiler/autotune.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "base/logging.h"
#include "compiler/cost_model.h"

namespace phloem::comp {

namespace {

/** Enumerate all size-k subsets of [0, n). */
void
subsets(int n, int k, std::vector<std::vector<int>>& out)
{
    std::vector<int> cur;
    std::function<void(int)> rec = [&](int start) {
        if (static_cast<int>(cur.size()) == k) {
            out.push_back(cur);
            return;
        }
        for (int i = start; i < n; ++i) {
            cur.push_back(i);
            rec(i + 1);
            cur.pop_back();
        }
    };
    rec(0);
}

/** Stable identity of a search point, for visited-set dedup. */
std::string
pointKey(const SearchPoint& p)
{
    std::ostringstream oss;
    for (int c : p.cutOps)
        oss << c << ',';
    oss << "|r" << p.replicas << "|b" << p.distributeBoundaryOp << "|q"
        << p.queueDepth;
    return oss.str();
}

std::string
describeCuts(const SearchPoint& p)
{
    std::ostringstream oss;
    for (size_t i = 0; i < p.cutOps.size(); ++i)
        oss << (i > 0 ? "+" : "") << p.cutOps[i];
    return oss.str();
}

/** The state one autotuneMeasured() call threads through its helpers. */
struct Search
{
    const ir::Function& fn;
    const AutotuneOptions& opts;
    const CandidateEvaluator& evaluate;
    AutotuneResult result;
    std::vector<CutCandidate> ranked;
    /** Cost-model score per cut op (max over ranked entries). */
    std::map<int, double> scoreOf;
    std::set<std::string> visited;
    CandidateProfile bestProfile;

    Search(const ir::Function& f, const AutotuneOptions& o,
           const CandidateEvaluator& e)
        : fn(f), opts(o), evaluate(e)
    {
    }

    int budgetLeft() const
    {
        return opts.maxCandidates - result.profiled;
    }

    double predictedScore(const SearchPoint& p) const
    {
        double s = 0;
        for (int cut : p.cutOps) {
            auto it = scoreOf.find(cut);
            if (it != scoreOf.end())
                s += it->second;
        }
        return s;
    }

    /**
     * Compile + profile one point; records the entry or the reject and
     * updates the incumbent. Returns the entry index, or -1 if the
     * candidate was rejected (or a duplicate, which costs no budget).
     */
    int profile(SearchPoint point, const std::string& phase)
    {
        std::sort(point.cutOps.begin(), point.cutOps.end());
        if (!visited.insert(pointKey(point)).second)
            return -1;

        CompileOptions copts = opts.base;
        copts.explicitCuts = point.cutOps;
        copts.replicas = point.replicas;
        copts.distributeBoundaryOp = point.distributeBoundaryOp;

        CompileResult cres = compilePipeline(fn, copts);
        result.profiled++;
        if (!cres.ok()) {
            result.rejects.push_back(
                {point, phase,
                 cres.problems.empty() ? "compile failed"
                                       : "verify: " + cres.problems.front()});
            return -1;
        }
        if (static_cast<int>(cres.pipeline->stages.size()) >
            opts.maxThreads) {
            result.rejects.push_back(
                {point, phase,
                 "exceeds thread budget (" +
                     std::to_string(cres.pipeline->stages.size()) + " > " +
                     std::to_string(opts.maxThreads) + " stages)"});
            return -1;
        }

        CandidateProfile prof = evaluate(*cres.pipeline, point);
        if (!prof.accepted()) {
            result.rejects.push_back(
                {point, phase,
                 !prof.rejectReason.empty()
                     ? prof.rejectReason
                     : "rejected by evaluator (speedup <= 0)"});
            return -1;
        }

        AutotuneEntry entry;
        entry.point = point;
        entry.cuts = cres.cuts;
        entry.lengthWithRAs = cres.pipeline->lengthWithRAs();
        entry.trainingSpeedup = prof.speedup;
        entry.predictedScore = predictedScore(point);
        entry.phase = phase;
        result.entries.push_back(entry);

        if (prof.speedup > result.bestTrainingSpeedup) {
            result.bestTrainingSpeedup = prof.speedup;
            result.best = std::move(cres);
            result.bestPoint = point;
            bestProfile = prof;
        }
        return static_cast<int>(result.entries.size()) - 1;
    }
};

/**
 * Seed enumeration: all combinations of 1..(maxThreads-1) cuts from the
 * top-k ranked points ("no fewer than fifty different pipelines" for
 * the paper's benchmarks at k=6, up to 3 cuts), taken round-robin
 * across cut-set sizes so a tight budget keeps every size represented
 * instead of silently dropping all of the largest size.
 */
void
profileSeeds(Search& s, int seed_budget)
{
    int k = std::min<int>(s.opts.topK, static_cast<int>(s.ranked.size()));
    std::vector<std::vector<std::vector<int>>> by_size;
    size_t enumerated = 0;
    for (int size = 1; size < s.opts.maxThreads; ++size) {
        std::vector<std::vector<int>> combos;
        subsets(k, size, combos);
        enumerated += combos.size();
        by_size.push_back(std::move(combos));
    }

    std::vector<std::vector<int>> order;
    std::vector<size_t> next(by_size.size(), 0);
    bool advanced = true;
    while (advanced) {
        advanced = false;
        for (size_t size = 0; size < by_size.size(); ++size) {
            if (next[size] < by_size[size].size()) {
                order.push_back(by_size[size][next[size]++]);
                advanced = true;
            }
        }
    }

    if (static_cast<int>(order.size()) > seed_budget) {
        s.result.notes.push_back(
            "seed enumeration truncated: profiling " +
            std::to_string(seed_budget) + " of " +
            std::to_string(enumerated) +
            " cut sets (round-robin across sizes)");
        order.resize(static_cast<size_t>(seed_budget));
    }

    for (const auto& combo : order) {
        if (s.budgetLeft() <= 0)
            break;
        SearchPoint point;
        for (int idx : combo)
            point.cutOps.push_back(
                s.ranked[static_cast<size_t>(idx)].cutOp);
        s.profile(std::move(point), "seed");
    }
}

/**
 * Rank the accepted seed candidates by predicted score and by measured
 * speedup, record both ranks on each entry, and summarize how far the
 * model's favorite landed from the measured top (the Fig. 13
 * calibration record the regression test gates on).
 */
void
calibrate(AutotuneResult& result)
{
    std::vector<int> seeds;
    for (size_t i = 0; i < result.entries.size(); ++i)
        if (result.entries[i].phase == "seed")
            seeds.push_back(static_cast<int>(i));
    result.calibration.seedCandidates = static_cast<int>(seeds.size());
    if (seeds.empty())
        return;

    auto rank_by = [&](auto better, auto assign) {
        std::vector<int> order = seeds;
        std::stable_sort(order.begin(), order.end(), better);
        for (size_t r = 0; r < order.size(); ++r)
            assign(result.entries[static_cast<size_t>(order[r])],
                   static_cast<int>(r));
    };
    rank_by(
        [&](int a, int b) {
            return result.entries[static_cast<size_t>(a)].predictedScore >
                   result.entries[static_cast<size_t>(b)].predictedScore;
        },
        [](AutotuneEntry& e, int r) { e.predictedRank = r; });
    rank_by(
        [&](int a, int b) {
            return result.entries[static_cast<size_t>(a)].trainingSpeedup >
                   result.entries[static_cast<size_t>(b)].trainingSpeedup;
        },
        [](AutotuneEntry& e, int r) { e.measuredRank = r; });

    double displacement = 0;
    for (int i : seeds) {
        const AutotuneEntry& e = result.entries[static_cast<size_t>(i)];
        displacement += std::abs(e.predictedRank - e.measuredRank);
        if (e.predictedRank == 0)
            result.calibration.predictedTop1MeasuredRank = e.measuredRank;
    }
    result.calibration.meanRankDisplacement =
        displacement / static_cast<double>(seeds.size());
}

/**
 * Propose steered moves around the incumbent, best-signal first:
 *  - deepen queues when the profile shows a producer blocking on a
 *    full ring (the queue feeding the most enq-blocked stage);
 *  - replicate the stage with the largest stall share (distribute
 *    boundary = the cut op that begins it);
 *  - perturb the cut set: add the best unused ranked cut, swap the
 *    weakest current cut for it, or drop the weakest cut.
 */
std::vector<std::pair<SearchPoint, std::string>>
proposeMoves(const Search& s)
{
    std::vector<std::pair<SearchPoint, std::string>> moves;
    const SearchPoint& inc = s.result.bestPoint;
    const CandidateProfile& prof = s.bestProfile;

    // Queue deepening (needs a backpressure signal + headroom).
    int depth = inc.queueDepth > 0 ? inc.queueDepth
                                   : s.opts.profilerQueueDepth;
    if (prof.hottestEnqQueue >= 0 && prof.hottestEnqBlocks > 0 &&
        s.opts.maxQueueDepth > depth) {
        SearchPoint p = inc;
        p.queueDepth = std::min(depth * 2, s.opts.maxQueueDepth);
        moves.emplace_back(std::move(p), "deepen-queue");
    }

    // Replication of the measured-hottest stage. Stage 0 produces the
    // stream, so there is no upstream edge to distribute over it.
    if (prof.hottestStallStage > 0 &&
        prof.hottestStallStage <=
            static_cast<int>(inc.cutOps.size()) &&
        inc.replicas < s.opts.maxReplicas) {
        SearchPoint p = inc;
        p.replicas = inc.replicas * 2;
        if (p.replicas > s.opts.maxReplicas)
            p.replicas = s.opts.maxReplicas;
        p.distributeBoundaryOp =
            inc.cutOps[static_cast<size_t>(prof.hottestStallStage - 1)];
        moves.emplace_back(std::move(p), "replicate");
    }

    // Cut-set perturbations from the ranked list.
    std::set<int> used(inc.cutOps.begin(), inc.cutOps.end());
    int best_unused = -1;
    for (const auto& cand : s.ranked) {
        if (used.count(cand.cutOp) == 0) {
            best_unused = cand.cutOp;
            break;
        }
    }
    int weakest = -1;
    double weakest_score = 0;
    for (int cut : inc.cutOps) {
        auto it = s.scoreOf.find(cut);
        double sc = it != s.scoreOf.end() ? it->second : 0;
        if (weakest < 0 || sc < weakest_score) {
            weakest = cut;
            weakest_score = sc;
        }
    }

    if (best_unused >= 0 &&
        static_cast<int>(inc.cutOps.size()) + 2 <= s.opts.maxThreads) {
        SearchPoint p = inc;
        p.cutOps.push_back(best_unused);
        moves.emplace_back(std::move(p), "add-cut");
    }
    if (best_unused >= 0 && weakest >= 0) {
        SearchPoint p = inc;
        std::replace(p.cutOps.begin(), p.cutOps.end(), weakest,
                     best_unused);
        moves.emplace_back(std::move(p), "swap-cut");
    }
    if (weakest >= 0 && inc.cutOps.size() > 1) {
        SearchPoint p = inc;
        p.cutOps.erase(
            std::remove(p.cutOps.begin(), p.cutOps.end(), weakest),
            p.cutOps.end());
        moves.emplace_back(std::move(p), "drop-cut");
    }
    return moves;
}

} // namespace

AutotuneResult
autotuneMeasured(const ir::Function& fn, const AutotuneOptions& opts,
                 const CandidateEvaluator& evaluate)
{
    Search s(fn, opts, evaluate);
    s.ranked = rankCutPoints(fn);
    for (const auto& cand : s.ranked) {
        auto [it, fresh] = s.scoreOf.emplace(cand.cutOp, cand.score);
        if (!fresh)
            it->second = std::max(it->second, cand.score);
    }

    // Reserve part of the budget for refinement so a large enumeration
    // cannot starve the measured feedback loop entirely.
    int reserve = opts.refineRounds > 0
                      ? std::min(opts.maxCandidates / 4,
                                 6 * opts.refineRounds)
                      : 0;
    profileSeeds(s, std::max(1, opts.maxCandidates - reserve));
    calibrate(s.result);

    for (int round = 0;
         round < opts.refineRounds && s.budgetLeft() > 0 &&
         s.result.best.pipeline != nullptr;
         ++round) {
        double before = s.result.bestTrainingSpeedup;
        for (auto& [point, phase] : proposeMoves(s)) {
            if (s.budgetLeft() <= 0)
                break;
            s.profile(std::move(point), phase);
        }
        if (s.result.bestTrainingSpeedup <= before) {
            s.result.notes.push_back(
                "refinement converged after round " +
                std::to_string(round + 1) + " (best " +
                describeCuts(s.result.bestPoint) + ")");
            break;
        }
    }
    return std::move(s.result);
}

AutotuneResult
autotune(const ir::Function& fn, const AutotuneOptions& opts,
         const PipelineEvaluator& evaluate)
{
    // Score-only evaluator: no steering signals and no queue-depth or
    // replication support, so restrict refinement to cut-set moves.
    AutotuneOptions legacy = opts;
    legacy.maxReplicas = 1;
    legacy.maxQueueDepth = 0;
    return autotuneMeasured(
        fn, legacy,
        [&](const ir::Pipeline& pipeline, const SearchPoint&) {
            CandidateProfile prof;
            prof.speedup = evaluate(pipeline);
            return prof;
        });
}

} // namespace phloem::comp
