/**
 * @file
 * Profile-guided decoupling-point search (paper Sec. V, Fig. 8/13).
 *
 * The static cost model's ranking is approximate; the autotuner selects
 * more than (N-1) candidate cut points, builds candidate pipelines from
 * combinations of them, profiles each on small training inputs, and keeps
 * the best (never peeking at the test inputs).
 *
 * The search space is wider than cut sets: a SearchPoint also carries a
 * replication factor (paper Sec. IV-C) and a queue depth, and after the
 * seed enumeration the search refines locally around the incumbent,
 * steered by the profile's backpressure signals — deepen the queues when
 * a producer keeps blocking, replicate the stage the measurement says is
 * the bottleneck, and perturb the cut set one move at a time. Every
 * profiled candidate also records the cost model's predicted score, so
 * the result doubles as a model-vs-measurement calibration record.
 */

#ifndef PHLOEM_COMPILER_AUTOTUNE_H
#define PHLOEM_COMPILER_AUTOTUNE_H

#include <functional>
#include <string>
#include <vector>

#include "compiler/compiler.h"

namespace phloem::comp {

/**
 * One point in the autotuner's search space: a cut set plus the non-cut
 * knobs the compiler and runtime already expose.
 */
struct SearchPoint
{
    /** Cut op ids (kept sorted; stage s >= 1 begins at cutOps[s-1]). */
    std::vector<int> cutOps;
    /** Pipeline replication factor (CompileOptions::replicas). */
    int replicas = 1;
    /** Distribute boundary op when replicas > 1 (-1 = independent). */
    int distributeBoundaryOp = -1;
    /** Queue depth override; 0 = the profiler's default depth. */
    int queueDepth = 0;
};

/**
 * What profiling one candidate produced: the training score plus the
 * backpressure signals local refinement steers by. Evaluators that
 * cannot attribute stalls leave the steering fields at their defaults;
 * the search then only explores cut-set moves.
 */
struct CandidateProfile
{
    /** Gmean speedup over serial across the training inputs. */
    double speedup = 0;
    /** Non-empty = rejected (wrong output, deadlock, overflow, ...). */
    std::string rejectReason;

    // --- Steering signals (measured evaluators fill these). ---------
    /** Queue whose producer blocked most (native enq_blocks); -1 unknown. */
    int hottestEnqQueue = -1;
    /** Blocks observed on that queue across the training inputs. */
    uint64_t hottestEnqBlocks = 0;
    /** Stage with the largest stall share; -1 unknown. */
    int hottestStallStage = -1;
    /** That stage's share of total stall (0..1). */
    double hottestStallShare = 0;

    bool accepted() const { return rejectReason.empty() && speedup > 0; }
};

/**
 * Measured evaluator: profile one compiled candidate at one search
 * point (honoring point.queueDepth) and report score + steering.
 */
using CandidateEvaluator = std::function<CandidateProfile(
    const ir::Pipeline& pipeline, const SearchPoint& point)>;

/**
 * Legacy evaluator: gmean speedup of the pipeline over serial across
 * the training inputs. Return <= 0 to reject a candidate (e.g., wrong
 * output, deadlock, resource overflow).
 */
using PipelineEvaluator =
    std::function<double(const ir::Pipeline& pipeline)>;

struct AutotuneOptions
{
    /** Hardware thread budget per pipeline (SMT threads per core). */
    int maxThreads = 4;
    /** How many top-ranked candidate cut points to combine. */
    int topK = 6;
    /** Total profile budget: seeds + refinement candidates. */
    int maxCandidates = 96;
    /** Base options applied to every candidate compile. */
    CompileOptions base;

    // --- Measured-profile refinement (off by default for knobs that
    // --- need evaluator support; cut-set moves always run). ---------
    /** Local-refinement rounds around the incumbent (0 = seeds only). */
    int refineRounds = 4;
    /** Replication ceiling; > 1 lets refinement try replicating the
     *  measured-hottest stage (requires a distribute-capable evaluator). */
    int maxReplicas = 1;
    /** Queue-depth ceiling; > profilerQueueDepth lets refinement deepen
     *  queues when the profile shows producers blocking. 0 = off. */
    int maxQueueDepth = 0;
    /** The depth the evaluator runs at when point.queueDepth == 0. */
    int profilerQueueDepth = 24;
};

struct AutotuneEntry
{
    /** The full search point this candidate was compiled from. */
    SearchPoint point;
    /** Cut op ids (== point.cutOps; kept for Fig. 13 consumers). */
    std::vector<int> cuts;
    /** Stage threads + RAs (how Fig. 13 counts pipeline length). */
    int lengthWithRAs = 0;
    double trainingSpeedup = 0;
    /** Cost-model score of the cut set (sum of member cut scores). */
    double predictedScore = 0;
    /** "seed" or the refinement move that produced the candidate. */
    std::string phase = "seed";
    /** Rank among accepted seed candidates by predicted score (0 =
     *  model's favorite); -1 for refinement candidates. */
    int predictedRank = -1;
    /** Rank among accepted seed candidates by measured speedup. */
    int measuredRank = -1;
};

/** A candidate the evaluator (or the compiler) rejected. */
struct AutotuneReject
{
    SearchPoint point;
    std::string phase = "seed";
    std::string reason;
};

/** Model-vs-measurement calibration over the seed candidates. */
struct AutotuneCalibration
{
    /** Accepted seed candidates that were ranked both ways. */
    int seedCandidates = 0;
    /** Measured rank (0-based) of the model's top-predicted seed;
     *  -1 when no seed was accepted. */
    int predictedTop1MeasuredRank = -1;
    /** Mean |predictedRank - measuredRank| (Spearman footrule / n). */
    double meanRankDisplacement = 0;
};

struct AutotuneResult
{
    CompileResult best;
    SearchPoint bestPoint;
    double bestTrainingSpeedup = 0;
    /** Every *accepted* profiled candidate (Fig. 13's distribution).
     *  Rejected candidates are recorded in `rejects`, not here, so the
     *  training-speedup distribution never mixes in 0-speedup rows. */
    std::vector<AutotuneEntry> entries;
    std::vector<AutotuneReject> rejects;
    AutotuneCalibration calibration;
    /** Search diagnostics: enumeration truncation, refinement stops. */
    std::vector<std::string> notes;
    /** Total evaluator invocations (the consumed profile budget). */
    int profiled = 0;
};

/**
 * Measured-profile search: seed from rankCutPoints (enumerated
 * round-robin across cut-set sizes so the budget never silently drops
 * all larger sizes), profile every seed, then refine locally around the
 * incumbent with steered moves (deepen queues, replicate the hottest
 * stage, perturb the cut set) until the budget or the improvement runs
 * out.
 */
AutotuneResult autotuneMeasured(const ir::Function& fn,
                                const AutotuneOptions& opts,
                                const CandidateEvaluator& evaluate);

/** Legacy entry point: same search driven by a score-only evaluator
 *  (no steering signals, so only cut-set refinement moves run). */
AutotuneResult autotune(const ir::Function& fn, const AutotuneOptions& opts,
                        const PipelineEvaluator& evaluate);

} // namespace phloem::comp

#endif // PHLOEM_COMPILER_AUTOTUNE_H
