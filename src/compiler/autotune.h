/**
 * @file
 * Profile-guided decoupling-point search (paper Sec. V, Fig. 8).
 *
 * The static cost model's ranking is approximate; the autotuner selects
 * more than (N-1) candidate cut points, builds the candidate pipelines
 * from combinations of them, profiles each on small training inputs, and
 * keeps the best (never peeking at the test inputs).
 */

#ifndef PHLOEM_COMPILER_AUTOTUNE_H
#define PHLOEM_COMPILER_AUTOTUNE_H

#include <functional>
#include <vector>

#include "compiler/compiler.h"

namespace phloem::comp {

struct AutotuneOptions
{
    /** Hardware thread budget per pipeline (SMT threads per core). */
    int maxThreads = 4;
    /** How many top-ranked candidate cut points to combine. */
    int topK = 6;
    /** Cap on profiled candidate pipelines. */
    int maxCandidates = 96;
    /** Base options applied to every candidate compile. */
    CompileOptions base;
};

/**
 * Evaluator: gmean speedup of the pipeline over serial across the
 * training inputs. Return <= 0 to reject a candidate (e.g., wrong
 * output, deadlock, resource overflow).
 */
using PipelineEvaluator =
    std::function<double(const ir::Pipeline& pipeline)>;

struct AutotuneEntry
{
    std::vector<int> cuts;
    /** Stage threads + RAs (how Fig. 13 counts pipeline length). */
    int lengthWithRAs = 0;
    double trainingSpeedup = 0;
};

struct AutotuneResult
{
    CompileResult best;
    double bestTrainingSpeedup = 0;
    /** Every profiled candidate (Fig. 13's distribution). */
    std::vector<AutotuneEntry> entries;
};

AutotuneResult autotune(const ir::Function& fn, const AutotuneOptions& opts,
                        const PipelineEvaluator& evaluate);

} // namespace phloem::comp

#endif // PHLOEM_COMPILER_AUTOTUNE_H
