#include "compiler/compiler.h"

#include <algorithm>
#include <set>

#include "base/logging.h"
#include "compiler/cost_model.h"
#include "compiler/decouple.h"
#include "compiler/passes.h"
#include "ir/verifier.h"
#include "ir/walk.h"

namespace phloem::comp {

namespace {

using ir::Op;
using ir::Opcode;
using ir::QueueId;
using ir::RegId;

/** Find the stage whose body contains an op with the given origin. */
int
stageContainingOrigin(const ir::Pipeline& pipeline, int origin)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        bool found = false;
        ir::forEachOp(pipeline.stages[s]->body, [&](const Op& op) {
            if (op.origin == origin)
                found = true;
        });
        if (found)
            return static_cast<int>(s);
    }
    return -1;
}

} // namespace

namespace {

CompileResult compileOnce(const ir::Function& fn,
                          const CompileOptions& opts);

} // namespace

CompileResult
compilePipeline(const ir::Function& fn, const CompileOptions& opts)
{
    CompileResult result = compileOnce(fn, opts);
    if (result.ok() || !opts.shrinkToFit || !opts.explicitCuts.empty())
        return result;
    // Resource overflow: progressively shallower pipelines.
    for (int stages = opts.numStages - 1; stages >= 1; --stages) {
        CompileOptions retry = opts;
        retry.numStages = stages;
        CompileResult r = compileOnce(fn, retry);
        if (r.ok()) {
            r.notes.push_back(
                "shrunk to " + std::to_string(stages) +
                " stages to fit the queue/RA budget");
            return r;
        }
    }
    return result;
}

namespace {

CompileResult
compileOnce(const ir::Function& fn, const CompileOptions& opts)
{
    CompileResult result;

    // Forced cuts (e.g., #pragma decouple / distribute boundaries) count
    // against the stage budget.
    int budget = opts.numStages -
                 static_cast<int>(opts.forcedCuts.size());
    std::vector<int> cuts = opts.explicitCuts.empty()
                                ? selectStaticCuts(fn, std::max(1, budget))
                                : opts.explicitCuts;
    for (int c : opts.forcedCuts)
        cuts.push_back(c);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    result.cuts = cuts;

    DecoupleOptions dopts;
    dopts.recompute = opts.recompute;
    dopts.prefetchMovedLoads = opts.prefetchMovedLoads;
    DecoupleResult dres = decouple(fn, cuts, dopts);
    result.notes = std::move(dres.notes);
    ir::PipelinePtr pipeline = std::move(dres.pipeline);

    int boundary_stage = -1;
    if (opts.distributeBoundaryOp >= 0) {
        boundary_stage =
            stageContainingOrigin(*pipeline, opts.distributeBoundaryOp);
    }

    PassReport report;
    forwardValues(*pipeline, &report);
    if (opts.referenceAccelerators) {
        accelerateAccesses(*pipeline, &report, opts.maxRAs,
                           boundary_stage);
        // Stage elision may renumber stages; re-locate the boundary.
        if (opts.distributeBoundaryOp >= 0) {
            boundary_stage = stageContainingOrigin(
                *pipeline, opts.distributeBoundaryOp);
        }
    }
    if (opts.controlValues) {
        useControlValues(*pipeline, &report);
        if (opts.dce) {
            interStageDce(*pipeline, &report);
            // Flattening can leave control-only stages behind.
            accelerateAccesses(*pipeline, &report,
                               opts.referenceAccelerators ? opts.maxRAs
                                                          : 0,
                               boundary_stage);
            if (opts.distributeBoundaryOp >= 0) {
                boundary_stage = stageContainingOrigin(
                    *pipeline, opts.distributeBoundaryOp);
            }
        }
    }
    if (opts.handlers)
        useControlHandlers(*pipeline, &report);
    compactQueueIds(*pipeline);

    if (opts.replicas > 1) {
        applyReplication(*pipeline, opts.replicas,
                         opts.distributeBoundaryOp, &report.notes);
    }

    for (auto& n : report.notes)
        result.notes.push_back(std::move(n));

    result.problems =
        ir::verify(*pipeline, opts.maxQueues, opts.maxRAs);
    result.pipeline = std::move(pipeline);
    return result;
}

} // namespace

// ---------------------------------------------------------------------
// Replication (paper Sec. IV-C).
// ---------------------------------------------------------------------

namespace {

/** Insert "cnt = 0" at the top of a function body. */
RegId
addCounterInit(ir::Function& fn)
{
    RegId cnt = fn.newReg("done_cnt");
    Op init;
    init.opcode = Opcode::kConst;
    init.id = fn.nextOpId++;
    init.dst = cnt;
    init.imm = 0;
    auto stmt = std::make_unique<ir::OpStmt>(init);
    stmt->id = fn.nextStmtId++;
    fn.body.insert(fn.body.begin(), std::move(stmt));
    return cnt;
}

ir::StmtPtr
makeOpStmt(ir::Function& fn, Op op)
{
    op.id = fn.nextOpId++;
    auto stmt = std::make_unique<ir::OpStmt>(op);
    stmt->id = fn.nextStmtId++;
    stmt->origin = op.origin;
    return stmt;
}

/**
 * Build the "wait for one control value per replica" logic replacing a
 * plain Break: cnt++; if (cnt == R) { cnt = 0; break; }
 */
std::vector<ir::StmtPtr>
makeCountedBreak(ir::Function& fn, RegId cnt, int replicas, int break_levels)
{
    std::vector<ir::StmtPtr> out;
    RegId one = fn.newReg();
    Op c1;
    c1.opcode = Opcode::kConst;
    c1.dst = one;
    c1.imm = 1;
    out.push_back(makeOpStmt(fn, c1));
    Op add;
    add.opcode = Opcode::kAdd;
    add.dst = cnt;
    add.src[0] = cnt;
    add.src[1] = one;
    out.push_back(makeOpStmt(fn, add));
    RegId r_reg = fn.newReg();
    Op cr;
    cr.opcode = Opcode::kConst;
    cr.dst = r_reg;
    cr.imm = replicas;
    out.push_back(makeOpStmt(fn, cr));
    RegId eq = fn.newReg();
    Op cmp;
    cmp.opcode = Opcode::kCmpEq;
    cmp.dst = eq;
    cmp.src[0] = cnt;
    cmp.src[1] = r_reg;
    out.push_back(makeOpStmt(fn, cmp));

    auto iff = std::make_unique<ir::IfStmt>();
    iff->id = fn.nextStmtId++;
    iff->cond = eq;
    Op reset;
    reset.opcode = Opcode::kConst;
    reset.dst = cnt;
    reset.imm = 0;
    iff->thenBody.push_back(makeOpStmt(fn, reset));
    auto brk = std::make_unique<ir::BreakStmt>(break_levels);
    brk->id = fn.nextStmtId++;
    iff->thenBody.push_back(std::move(brk));
    out.push_back(std::move(iff));
    return out;
}

} // namespace

void
applyReplication(ir::Pipeline& pipeline, int replicas,
                 int distribute_boundary_op, std::vector<std::string>* notes)
{
    pipeline.replicas = replicas;
    auto note = [&](const std::string& s) {
        if (notes != nullptr)
            notes->push_back(s);
    };

    if (distribute_boundary_op < 0) {
        note("replicated x" + std::to_string(replicas) +
             " with independent pipelines (no distribution)");
        return;
    }

    int target = stageContainingOrigin(pipeline, distribute_boundary_op);
    if (target < 0) {
        note("distribute boundary op not found; replicating without "
             "distribution");
        return;
    }
    ir::Function& consumer = *pipeline.stages[static_cast<size_t>(target)];

    // Distribute queues: data streams whose consumer-side deq heads a
    // *control-value* loop (handler installed or explicit is_control
    // check) in the target stage. Plain flag loops (e.g., the per-round
    // condition broadcast) are not element streams and stay per-replica.
    std::set<QueueId> dist_queues;
    std::function<void(ir::Region&, int)> scan =
        [&](ir::Region& region, int loop_depth) {
            for (auto& s : region) {
                switch (s->kind()) {
                  case ir::StmtKind::kWhile: {
                    auto* w = ir::stmtCast<ir::WhileStmt>(s.get());
                    if (!w->body.empty() &&
                        w->body[0]->kind() == ir::StmtKind::kOp) {
                        const Op& op =
                            ir::stmtCast<ir::OpStmt>(w->body[0].get())->op;
                        bool explicit_check =
                            w->body.size() >= 2 &&
                            w->body[1]->kind() == ir::StmtKind::kOp &&
                            ir::stmtCast<ir::OpStmt>(w->body[1].get())
                                    ->op.opcode == Opcode::kIsControl;
                        if (op.opcode == Opcode::kDeq &&
                            (consumer.handlerFor(op.queue) != nullptr ||
                             explicit_check)) {
                            dist_queues.insert(op.queue);
                        }
                    }
                    scan(w->body, loop_depth + 1);
                    break;
                  }
                  case ir::StmtKind::kFor:
                    scan(ir::stmtCast<ir::ForStmt>(s.get())->body,
                         loop_depth + 1);
                    break;
                  case ir::StmtKind::kIf: {
                    auto* i = ir::stmtCast<ir::IfStmt>(s.get());
                    scan(i->thenBody, loop_depth);
                    scan(i->elseBody, loop_depth);
                    break;
                  }
                  default:
                    break;
                }
            }
        };
    scan(consumer.body, 0);

    if (dist_queues.empty()) {
        note("no control-value stream enters the distribute stage; "
             "replicating without distribution");
        return;
    }
    if (dist_queues.size() > 1) {
        note("WARNING: " + std::to_string(dist_queues.size()) +
             " streams distributed independently; cross-queue element "
             "pairing is not preserved in multi-producer FIFOs — pack "
             "multi-field payloads into one value and force a cut at "
             "the distribute boundary");
    }

    // Boundary-crossing bypass streams. The stage split may forward a
    // pre-boundary value straight to a stage *beyond* the distribute
    // target (queue producer < target < consumer). Once replicated,
    // such a queue carries each producer replica's input slice to its
    // own replica, while the distributed stream routes the same
    // elements to their owner replica — the downstream stage pairs two
    // streams with different contents and lengths, which mispairs data
    // and deadlocks. Relay those streams through the target instead:
    // the target re-enqueues the element it dequeued, so every
    // post-boundary queue is per-replica and iteration-paired. When a
    // crossing stream is not the boundary element itself (or passes
    // through an RA), distribution is unsound — fall back to
    // independent replicas, which the driver can then unwind.
    auto resolve_sink = [&](QueueId q) {
        for (int hops = 0; hops < 16; ++hops) {
            const ir::QueueConfig* qc = pipeline.findQueue(q);
            if (qc == nullptr)
                return -1;
            if (qc->consumerStage >= 0)
                return qc->consumerStage;
            const ir::RAConfig* hop = nullptr;
            for (const auto& ra : pipeline.ras)
                if (ra.inQueue == q)
                    hop = &ra;
            if (hop == nullptr)
                return -1;
            q = hop->outQueue;
        }
        return -1;
    };
    // One unconditional enq of register `reg` into queue `q`?
    auto find_single_enq = [](ir::Function& fn, QueueId q, RegId* reg) {
        int hits = 0;
        std::function<void(ir::Region&)> walk = [&](ir::Region& region) {
            for (auto& s : region) {
                switch (s->kind()) {
                  case ir::StmtKind::kFor:
                    walk(ir::stmtCast<ir::ForStmt>(s.get())->body);
                    break;
                  case ir::StmtKind::kWhile:
                    walk(ir::stmtCast<ir::WhileStmt>(s.get())->body);
                    break;
                  case ir::StmtKind::kOp: {
                    const Op& op =
                        ir::stmtCast<ir::OpStmt>(s.get())->op;
                    if (op.opcode == Opcode::kEnq && op.queue == q) {
                        ++hits;
                        *reg = op.src[0];
                    }
                    break;
                  }
                  default:
                    // enq under an if would drop elements from the
                    // stream; never relay those.
                    break;
                }
            }
        };
        walk(fn.body);
        return hits == 1;
    };

    // Only the feeder stage — the one whose enq becomes the enq_dist —
    // emits at element rate. Streams from other pre-boundary stages
    // (e.g. BFS's per-round condition flags) are per-replica control
    // and stay untouched.
    std::vector<ir::QueueConfig*> relays;
    for (auto& qc : pipeline.queues) {
        if (qc.producerStage < 0 || qc.producerStage >= target)
            continue;
        ir::Function& prod =
            *pipeline.stages[static_cast<size_t>(qc.producerStage)];
        RegId stream_reg = ir::kNoReg;
        bool is_feeder = false;
        for (QueueId dq : dist_queues)
            if (find_single_enq(prod, dq, &stream_reg))
                is_feeder = true;
        if (!is_feeder)
            continue;
        int sink = resolve_sink(qc.id);
        if (sink < target || dist_queues.count(qc.id))
            continue;  // stays pre-boundary, or is the stream itself
        RegId bypass_reg = ir::kNoReg;
        if (sink == target || qc.consumerStage < 0 ||  // through an RA
            !find_single_enq(prod, qc.id, &bypass_reg) ||
            bypass_reg != stream_reg) {
            note("a feeder stream bypasses the distribute stage and is "
                 "not the boundary element; replicating without "
                 "distribution");
            return;
        }
        relays.push_back(&qc);
    }

    for (ir::QueueConfig* qc : relays) {
        ir::Function& prod =
            *pipeline.stages[static_cast<size_t>(qc->producerStage)];
        // Drop the producer's enq and terminating enq_ctrl, keeping the
        // control code for re-emission at the target.
        int64_t ctrl_imm = 0;
        std::function<void(ir::Region&)> erase = [&](ir::Region& region) {
            for (size_t i = 0; i < region.size();) {
                ir::Stmt* st = region[i].get();
                switch (st->kind()) {
                  case ir::StmtKind::kFor:
                    erase(ir::stmtCast<ir::ForStmt>(st)->body);
                    break;
                  case ir::StmtKind::kWhile:
                    erase(ir::stmtCast<ir::WhileStmt>(st)->body);
                    break;
                  case ir::StmtKind::kOp: {
                    const Op& op = ir::stmtCast<ir::OpStmt>(st)->op;
                    if (op.queue == qc->id &&
                        (op.opcode == Opcode::kEnq ||
                         op.opcode == Opcode::kEnqCtrl)) {
                        if (op.opcode == Opcode::kEnqCtrl)
                            ctrl_imm = op.imm;
                        region.erase(region.begin() +
                                     static_cast<long>(i));
                        continue;
                    }
                    break;
                  }
                  default:
                    break;
                }
                ++i;
            }
        };
        erase(prod.body);

        // Target side: re-enqueue the dequeued element each iteration,
        // and send one terminating control value after the loop.
        ir::Region* loop_parent = nullptr;
        size_t loop_pos = 0;
        ir::WhileStmt* loop = nullptr;
        std::function<void(ir::Region&)> find = [&](ir::Region& region) {
            for (size_t i = 0; i < region.size(); ++i) {
                ir::Stmt* st = region[i].get();
                if (st->kind() == ir::StmtKind::kWhile) {
                    auto* w = ir::stmtCast<ir::WhileStmt>(st);
                    if (!w->body.empty() &&
                        w->body[0]->kind() == ir::StmtKind::kOp) {
                        const Op& op =
                            ir::stmtCast<ir::OpStmt>(w->body[0].get())
                                ->op;
                        if (op.opcode == Opcode::kDeq &&
                            dist_queues.count(op.queue)) {
                            loop_parent = &region;
                            loop_pos = i;
                            loop = w;
                            return;
                        }
                    }
                    find(w->body);
                } else if (st->kind() == ir::StmtKind::kFor) {
                    find(ir::stmtCast<ir::ForStmt>(st)->body);
                }
                if (loop != nullptr)
                    return;
            }
        };
        find(consumer.body);
        if (loop == nullptr) {
            note("distribute stage loop not found for stream relay; "
                 "replicating without distribution");
            return;
        }
        const Op& head =
            ir::stmtCast<ir::OpStmt>(loop->body[0].get())->op;
        // Skip an explicit "is_control -> counted break" pair so only
        // data values are relayed.
        size_t pos = 1;
        if (loop->body.size() >= 3 &&
            loop->body[1]->kind() == ir::StmtKind::kOp &&
            ir::stmtCast<ir::OpStmt>(loop->body[1].get())->op.opcode ==
                Opcode::kIsControl &&
            loop->body[2]->kind() == ir::StmtKind::kIf) {
            pos = 3;
        }
        Op fwd;
        fwd.opcode = Opcode::kEnq;
        fwd.queue = qc->id;
        fwd.src[0] = head.dst;
        loop->body.insert(loop->body.begin() + static_cast<long>(pos),
                          makeOpStmt(consumer, fwd));
        Op done;
        done.opcode = Opcode::kEnqCtrl;
        done.queue = qc->id;
        done.imm = ctrl_imm;
        loop_parent->insert(loop_parent->begin() +
                                static_cast<long>(loop_pos) + 1,
                            makeOpStmt(consumer, done));
        qc->producerStage = target;
        qc->note = "relayed through the distribute stage";
    }
    if (!relays.empty())
        note("relayed " + std::to_string(relays.size()) +
             " boundary-crossing stream(s) through the distribute stage");

    // Producer side: enq -> enq_dist with selector = value mod replicas;
    // control values broadcast to every replica.
    for (auto& stage : pipeline.stages) {
        if (stage.get() == &consumer)
            continue;
        std::function<void(ir::Region&)> rewrite = [&](ir::Region& region) {
            for (size_t i = 0; i < region.size(); ++i) {
                ir::Stmt* st = region[i].get();
                switch (st->kind()) {
                  case ir::StmtKind::kFor:
                    rewrite(ir::stmtCast<ir::ForStmt>(st)->body);
                    continue;
                  case ir::StmtKind::kWhile:
                    rewrite(ir::stmtCast<ir::WhileStmt>(st)->body);
                    continue;
                  case ir::StmtKind::kIf: {
                    auto* f = ir::stmtCast<ir::IfStmt>(st);
                    rewrite(f->thenBody);
                    rewrite(f->elseBody);
                    continue;
                  }
                  case ir::StmtKind::kOp:
                    break;
                  default:
                    continue;
                }
                Op op = ir::stmtCast<ir::OpStmt>(st)->op;
                if (op.opcode == Opcode::kEnq &&
                    dist_queues.count(op.queue)) {
                    // sel = v mod R; power-of-two replica counts use the
                    // paper's "inspecting bits" (a single AND).
                    bool pow2 = (replicas & (replicas - 1)) == 0;
                    RegId r_reg = stage->newReg();
                    Op cr;
                    cr.opcode = Opcode::kConst;
                    cr.dst = r_reg;
                    cr.imm = pow2 ? replicas - 1 : replicas;
                    RegId sel = stage->newReg();
                    Op rem;
                    rem.opcode = pow2 ? Opcode::kAnd : Opcode::kRem;
                    rem.dst = sel;
                    rem.src[0] = op.src[0];
                    rem.src[1] = r_reg;
                    Op dist;
                    dist.opcode = Opcode::kEnqDist;
                    dist.queue = op.queue;
                    dist.src[0] = op.src[0];
                    dist.src[1] = sel;
                    dist.origin = op.origin;
                    region[i] = makeOpStmt(*stage, dist);
                    region.insert(region.begin() + static_cast<long>(i),
                                  makeOpStmt(*stage, rem));
                    region.insert(region.begin() + static_cast<long>(i),
                                  makeOpStmt(*stage, cr));
                    i += 2;
                } else if (op.opcode == Opcode::kEnqCtrl &&
                           dist_queues.count(op.queue)) {
                    // Broadcast: one control value per replica.
                    region.erase(region.begin() + static_cast<long>(i));
                    for (int r = 0; r < replicas; ++r) {
                        RegId sel = stage->newReg();
                        Op cs;
                        cs.opcode = Opcode::kConst;
                        cs.dst = sel;
                        cs.imm = r;
                        Op dist;
                        dist.opcode = Opcode::kEnqDist;
                        dist.queue = op.queue;
                        dist.src[0] = ir::kNoReg;  // control payload
                        dist.src[1] = sel;
                        dist.imm = op.imm;
                        dist.origin = op.origin;
                        region.insert(
                            region.begin() + static_cast<long>(i),
                            makeOpStmt(*stage, dist));
                        region.insert(
                            region.begin() + static_cast<long>(i),
                            makeOpStmt(*stage, cs));
                        i += 2;
                    }
                    i -= 1;
                }
            }
        };
        rewrite(stage->body);
    }

    // Consumer side: wait for one terminating control value per replica.
    RegId cnt = addCounterInit(consumer);
    bool patched = false;
    // Handler form.
    for (auto& h : consumer.handlers) {
        if (!dist_queues.count(h.queue))
            continue;
        if (h.body.size() == 1 &&
            h.body[0]->kind() == ir::StmtKind::kBreak) {
            int levels =
                ir::stmtCast<ir::BreakStmt>(h.body[0].get())->levels;
            h.body = ir::Region{};
            for (auto& s : makeCountedBreak(consumer, cnt, replicas,
                                            levels)) {
                h.body.push_back(std::move(s));
            }
            patched = true;
        }
    }
    // Explicit-check form.
    std::function<void(ir::Region&)> patch = [&](ir::Region& region) {
        for (auto& s : region) {
            switch (s->kind()) {
              case ir::StmtKind::kWhile: {
                auto* w = ir::stmtCast<ir::WhileStmt>(s.get());
                if (w->body.size() >= 3 &&
                    w->body[0]->kind() == ir::StmtKind::kOp &&
                    w->body[2]->kind() == ir::StmtKind::kIf) {
                    const Op& deq =
                        ir::stmtCast<ir::OpStmt>(w->body[0].get())->op;
                    auto* brk_if =
                        ir::stmtCast<ir::IfStmt>(w->body[2].get());
                    if (deq.opcode == Opcode::kDeq &&
                        dist_queues.count(deq.queue) &&
                        brk_if->thenBody.size() == 1 &&
                        brk_if->thenBody[0]->kind() ==
                            ir::StmtKind::kBreak) {
                        int levels = ir::stmtCast<ir::BreakStmt>(
                                         brk_if->thenBody[0].get())
                                         ->levels;
                        brk_if->thenBody = ir::Region{};
                        for (auto& st : makeCountedBreak(
                                 consumer, cnt, replicas, levels)) {
                            brk_if->thenBody.push_back(std::move(st));
                        }
                        // A non-final control value (fewer than R seen)
                        // must not fall through into the loop body as
                        // if it were data.
                        auto cont = std::make_unique<ir::ContinueStmt>();
                        cont->id = consumer.nextStmtId++;
                        brk_if->thenBody.push_back(std::move(cont));
                        patched = true;
                    }
                }
                patch(w->body);
                break;
              }
              case ir::StmtKind::kFor:
                patch(ir::stmtCast<ir::ForStmt>(s.get())->body);
                break;
              case ir::StmtKind::kIf: {
                auto* i = ir::stmtCast<ir::IfStmt>(s.get());
                patch(i->thenBody);
                patch(i->elseBody);
                break;
              }
              default:
                break;
            }
        }
    };
    patch(consumer.body);

    note(std::string("distributed ") +
         std::to_string(dist_queues.size()) +
         " stream(s) into stage " + std::to_string(target) + " across " +
         std::to_string(replicas) + " replicas" +
         (patched ? "" : " (warning: consumer break not patched)"));
}

} // namespace phloem::comp
