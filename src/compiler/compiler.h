/**
 * @file
 * Top-level Phloem compiler driver: serial IR in, pipeline out.
 *
 * Orchestrates the full pass sequence (paper Fig. 5/Fig. 8):
 *   decouple (+ add queues, recompute) -> control values -> inter-stage
 *   DCE -> reference accelerators (+ chaining) -> control handlers ->
 *   queue compaction -> optional replication (paper Sec. IV-C).
 *
 * Individual passes can be toggled, which is how the Fig. 6 pass-ablation
 * benchmark produces its intermediate configurations.
 */

#ifndef PHLOEM_COMPILER_COMPILER_H
#define PHLOEM_COMPILER_COMPILER_H

#include <string>
#include <vector>

#include "ir/pipeline.h"

namespace phloem::comp {

struct CompileOptions
{
    /** Target stage-thread count for static cut selection. */
    int numStages = 4;

    // Pass toggles (all on = full Phloem).
    bool recompute = true;
    bool referenceAccelerators = true;
    bool controlValues = true;
    bool dce = true;
    bool handlers = true;
    bool prefetchMovedLoads = true;

    // Architectural resource limits (paper Table III).
    int maxRAs = 4;
    int maxQueues = 16;

    /** Explicit cut op ids; if nonempty, overrides static selection. */
    std::vector<int> explicitCuts;
    /** Extra cuts forced by #pragma decouple. */
    std::vector<int> forcedCuts;

    /**
     * When the static flow's pipeline exceeds the architectural queue/RA
     * budget, retry with fewer stages (paper Fig. 8: resource limits are
     * part of pipeline generation). Only applies to static selection.
     */
    bool shrinkToFit = true;

    /** Replication factor (#pragma replicate). */
    int replicas = 1;
    /**
     * #pragma distribute marker: op id beginning the distributed-to
     * stage. Values streamed into that stage are partitioned across
     * replicas by value modulo replica count. -1 = no distribution.
     */
    int distributeBoundaryOp = -1;
};

struct CompileResult
{
    ir::PipelinePtr pipeline;
    std::vector<int> cuts;
    std::vector<std::string> notes;
    /** Verification problems (empty = legal pipeline). */
    std::vector<std::string> problems;

    bool ok() const { return problems.empty() && pipeline != nullptr; }
};

/** Compile with static cut selection (or opts.explicitCuts). */
CompileResult compilePipeline(const ir::Function& fn,
                              const CompileOptions& opts = CompileOptions{});

/**
 * Replicate a compiled pipeline: marks the replica count, converts the
 * data stream entering the distribute boundary stage into enq_dist
 * operations (selector = value mod replicas), broadcasts its terminating
 * control values to all replicas, and patches the consumer to wait for
 * one control value per replica.
 */
void applyReplication(ir::Pipeline& pipeline, int replicas,
                      int distribute_boundary_op,
                      std::vector<std::string>* notes = nullptr);

} // namespace phloem::comp

#endif // PHLOEM_COMPILER_COMPILER_H
