#include "compiler/cost_model.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/logging.h"
#include "ir/walk.h"

namespace phloem::comp {

namespace {

struct IndexedOp
{
    const ir::Op* op;
    int pos;
    int depth;
};

/** Linearize ops with loop depth. */
void
collect(const ir::Region& region, int depth, int& pos,
        std::vector<IndexedOp>& out, std::set<ir::RegId>& induction)
{
    for (const auto& s : region) {
        switch (s->kind()) {
          case ir::StmtKind::kOp:
            out.push_back(
                {&ir::stmtCast<ir::OpStmt>(s.get())->op, pos++, depth});
            break;
          case ir::StmtKind::kFor: {
            auto* f = ir::stmtCast<ir::ForStmt>(s.get());
            induction.insert(f->var);
            collect(f->body, depth + 1, pos, out, induction);
            break;
          }
          case ir::StmtKind::kWhile:
            collect(ir::stmtCast<ir::WhileStmt>(s.get())->body, depth + 1,
                    pos, out, induction);
            break;
          case ir::StmtKind::kIf: {
            auto* i = ir::stmtCast<ir::IfStmt>(s.get());
            collect(i->thenBody, depth, pos, out, induction);
            collect(i->elseBody, depth, pos, out, induction);
            break;
          }
          default:
            break;
        }
    }
}

} // namespace

std::vector<CutCandidate>
rankCutPoints(const ir::Function& fn)
{
    std::vector<IndexedOp> ops;
    std::set<ir::RegId> induction;
    int pos = 0;
    collect(fn.body, 0, pos, ops, induction);

    // Map: register -> defining op (last def wins; good enough for the
    // short def-use chains index expressions have).
    std::map<ir::RegId, const ir::Op*> def_of;
    for (const auto& io : ops) {
        if (ir::hasDst(io.op->opcode) && io.op->dst >= 0)
            def_of[io.op->dst] = io.op;
    }

    auto is_const = [&](ir::RegId r) {
        auto c = def_of.find(r);
        return c != def_of.end() &&
               c->second->opcode == ir::Opcode::kConst;
    };

    // An index is sequential if it is an induction variable (or an
    // induction variable plus/minus a constant); anything else is
    // treated as a data-dependent indirection. kAdd is commutative, so
    // `c + i` is just as sequential as `i + c`.
    auto classify_sequential = [&](ir::RegId idx) {
        if (induction.count(idx))
            return true;
        auto it = def_of.find(idx);
        if (it == def_of.end())
            return false;
        const ir::Op* d = it->second;
        if (d->opcode == ir::Opcode::kAdd) {
            return (induction.count(d->src[0]) != 0 &&
                    is_const(d->src[1])) ||
                   (induction.count(d->src[1]) != 0 &&
                    is_const(d->src[0]));
        }
        if (d->opcode == ir::Opcode::kSub)
            return induction.count(d->src[0]) != 0 && is_const(d->src[1]);
        return false;
    };

    // Group adjacent accesses: load arr[i] and load arr[i +/- c].
    // follower[opId] = leader opId.
    std::map<int, int> follower;
    for (size_t a = 0; a < ops.size(); ++a) {
        const ir::Op* first = ops[a].op;
        if (first->opcode != ir::Opcode::kLoad)
            continue;
        for (size_t b = a + 1; b < ops.size() && b < a + 8; ++b) {
            const ir::Op* second = ops[b].op;
            if (second->opcode != ir::Opcode::kLoad ||
                second->arr != first->arr) {
                continue;
            }
            auto it = def_of.find(second->src[0]);
            if (it == def_of.end())
                continue;
            const ir::Op* d = it->second;
            bool offset_of_first = false;
            if (d->opcode == ir::Opcode::kAdd) {
                // Commutative: arr[i + c] and arr[c + i] both group.
                offset_of_first =
                    (d->src[0] == first->src[0] && is_const(d->src[1])) ||
                    (d->src[1] == first->src[0] && is_const(d->src[0]));
            } else if (d->opcode == ir::Opcode::kSub) {
                offset_of_first =
                    d->src[0] == first->src[0] && is_const(d->src[1]);
            }
            if (offset_of_first)
                follower[second->id] = first->id;
        }
    }

    // Score each group leader; the cut lands after the last member.
    std::map<int, CutCandidate> cands;  // by leader id
    std::map<int, int> last_pos;        // leader -> last member position
    for (const auto& io : ops) {
        if (io.op->opcode != ir::Opcode::kLoad)
            continue;
        int leader = io.op->id;
        auto f = follower.find(leader);
        if (f != follower.end())
            leader = f->second;
        CutCandidate& cand = cands[leader];
        cand.groupLoads.push_back(io.op->id);
        bool indirect = !classify_sequential(io.op->src[0]);
        double cost = indirect ? 10.0 : 2.0;
        double weight = 1.0;
        for (int d = 0; d < io.depth; ++d)
            weight *= 8.0;
        cand.score = std::max(cand.score, cost * weight);
        cand.indirect = cand.indirect || indirect;
        cand.loopDepth = std::max(cand.loopDepth, io.depth);
        last_pos[leader] =
            std::max(last_pos.count(leader) ? last_pos[leader] : -1,
                     io.pos);
        if (cand.desc.empty()) {
            cand.desc = std::string(indirect ? "indirect" : "sequential") +
                        " load of " +
                        fn.arrays[static_cast<size_t>(io.op->arr)].name;
        }
    }

    // Resolve cut ops: the first op after the group's last member.
    std::vector<CutCandidate> out;
    for (auto& [leader, cand] : cands) {
        int lp = last_pos[leader];
        const ir::Op* next = nullptr;
        for (const auto& io : ops) {
            if (io.pos > lp) {
                next = io.op;
                break;
            }
        }
        if (next == nullptr)
            continue;  // nothing after the group; no useful cut
        cand.cutOp = next->id;
        out.push_back(cand);
    }

    std::sort(out.begin(), out.end(),
              [](const CutCandidate& a, const CutCandidate& b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.cutOp < b.cutOp;
              });
    return out;
}

std::vector<int>
selectStaticCuts(const ir::Function& fn, int num_stages)
{
    auto ranked = rankCutPoints(fn);
    std::vector<int> cuts;
    std::set<int> seen;
    for (const auto& cand : ranked) {
        if (static_cast<int>(cuts.size()) >= num_stages - 1)
            break;
        if (seen.insert(cand.cutOp).second)
            cuts.push_back(cand.cutOp);
    }
    return cuts;
}

} // namespace phloem::comp
