/**
 * @file
 * Static cost model for decoupling-point selection (paper Sec. V).
 *
 * The model ranks candidate cut points by (1) predicted cost of the memory
 * access — indirect accesses are expensive, sequential ones cheap — and
 * (2) frequency, approximated by loop depth. Nearby accesses to the same
 * array (e.g., nodes[v] and nodes[v+1]) are grouped so they stay together
 * in one stage and share a reference accelerator.
 */

#ifndef PHLOEM_COMPILER_COST_MODEL_H
#define PHLOEM_COMPILER_COST_MODEL_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace phloem::comp {

struct CutCandidate
{
    /** Op id at which the new stage begins (the op after the access
     *  group, so the group's loads stay with the producer). */
    int cutOp = -1;
    /** The load op(s) motivating this cut. */
    std::vector<int> groupLoads;
    double score = 0;
    bool indirect = false;
    int loopDepth = 0;
    std::string desc;
};

/** Rank candidate cut points, best first. */
std::vector<CutCandidate> rankCutPoints(const ir::Function& fn);

/**
 * Static selection: the (num_stages - 1) highest-ranked candidates
 * (paper: "selects the (N-1) highest-ranked points").
 */
std::vector<int> selectStaticCuts(const ir::Function& fn, int num_stages);

} // namespace phloem::comp

#endif // PHLOEM_COMPILER_COST_MODEL_H
