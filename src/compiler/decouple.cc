#include "compiler/decouple.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "base/logging.h"
#include "ir/builder.h"
#include "ir/clone.h"
#include "ir/walk.h"

namespace phloem::comp {

namespace {

using ir::ArrayId;
using ir::Op;
using ir::Opcode;
using ir::RegId;

/** How a (def op, consumer stage) pair is satisfied. */
enum class Decision : uint8_t { kNone, kQueue, kRecompute };

struct OpInfo
{
    const ir::OpStmt* stmt = nullptr;
    int pos = -1;
    int stage = 0;
    int originalStage = 0;
    /** Enclosing structured statements, outermost first. */
    std::vector<const ir::Stmt*> path;
};

struct BreakInfo
{
    const ir::Stmt* stmt = nullptr;  // BreakStmt or ContinueStmt
    /** Enclosing structures, outermost first. */
    std::vector<const ir::Stmt*> path;
    /** Target loop (for continue: the innermost loop). */
    const ir::Stmt* targetLoop = nullptr;
};

/** Union-find over array slots for the aliasing discipline. */
class SlotUnion
{
  public:
    explicit SlotUnion(int n) : parent_(static_cast<size_t>(n))
    {
        for (int i = 0; i < n; ++i)
            parent_[static_cast<size_t>(i)] = i;
    }

    int
    find(int x)
    {
        while (parent_[static_cast<size_t>(x)] != x) {
            parent_[static_cast<size_t>(x)] =
                parent_[static_cast<size_t>(parent_[static_cast<size_t>(
                    x)])];
            x = parent_[static_cast<size_t>(x)];
        }
        return x;
    }

    void
    unite(int a, int b)
    {
        parent_[static_cast<size_t>(find(a))] = find(b);
    }

  private:
    std::vector<int> parent_;
};

class Decoupler
{
  public:
    Decoupler(const ir::Function& fn, std::vector<int> cut_ops,
              const DecoupleOptions& opts)
        : fn_(fn), cutOps_(std::move(cut_ops)), opts_(opts)
    {
    }

    DecoupleResult
    run()
    {
        indexOps();
        assignStages();
        repairAliases();
        planSwapsAndBarriers();
        solveFixpoint();
        assignQueues();
        buildStages();
        return std::move(result_);
    }

  private:
    // ------------------------------------------------------------------
    // Indexing.
    // ------------------------------------------------------------------

    void
    indexRegion(const ir::Region& region,
                std::vector<const ir::Stmt*>& path)
    {
        for (const auto& s : region) {
            switch (s->kind()) {
              case ir::StmtKind::kOp: {
                auto* os = ir::stmtCast<ir::OpStmt>(s.get());
                OpInfo info;
                info.stmt = os;
                info.pos = nextPos_++;
                info.path = path;
                ops_[os->op.id] = std::move(info);
                opOrder_.push_back(os->op.id);
                break;
              }
              case ir::StmtKind::kFor: {
                auto* f = ir::stmtCast<ir::ForStmt>(s.get());
                inductionRegs_.insert(f->var);
                path.push_back(f);
                indexRegion(f->body, path);
                path.pop_back();
                break;
              }
              case ir::StmtKind::kWhile: {
                auto* w = ir::stmtCast<ir::WhileStmt>(s.get());
                path.push_back(w);
                indexRegion(w->body, path);
                path.pop_back();
                break;
              }
              case ir::StmtKind::kIf: {
                auto* i = ir::stmtCast<ir::IfStmt>(s.get());
                path.push_back(i);
                indexRegion(i->thenBody, path);
                indexRegion(i->elseBody, path);
                path.pop_back();
                break;
              }
              case ir::StmtKind::kBreak:
              case ir::StmtKind::kContinue: {
                BreakInfo info;
                info.stmt = s.get();
                info.path = path;
                int levels = 1;
                if (s->kind() == ir::StmtKind::kBreak)
                    levels = ir::stmtCast<ir::BreakStmt>(s.get())->levels;
                // Find the levels-th innermost loop on the path.
                int seen = 0;
                for (auto it = path.rbegin(); it != path.rend(); ++it) {
                    if ((*it)->kind() == ir::StmtKind::kFor ||
                        (*it)->kind() == ir::StmtKind::kWhile) {
                        seen++;
                        if (seen == levels) {
                            info.targetLoop = *it;
                            break;
                        }
                    }
                }
                phloem_assert(info.targetLoop != nullptr,
                              "break/continue without target loop");
                breaks_.push_back(std::move(info));
                break;
              }
            }
        }
    }

    void
    indexOps()
    {
        std::vector<const ir::Stmt*> path;
        indexRegion(fn_.body, path);
    }

    // ------------------------------------------------------------------
    // Stage assignment (cuts) and alias repair.
    // ------------------------------------------------------------------

    void
    assignStages()
    {
        // Sort cuts by program position; ignore unknown ids.
        std::vector<int> cut_pos;
        for (int c : cutOps_) {
            auto it = ops_.find(c);
            if (it == ops_.end()) {
                note("cut op " + std::to_string(c) + " not found; ignored");
                continue;
            }
            cut_pos.push_back(it->second.pos);
        }
        std::sort(cut_pos.begin(), cut_pos.end());
        cut_pos.erase(std::unique(cut_pos.begin(), cut_pos.end()),
                      cut_pos.end());
        numStages_ = static_cast<int>(cut_pos.size()) + 1;

        for (auto& [id, info] : ops_) {
            int stage = 0;
            for (int cp : cut_pos) {
                if (info.pos >= cp)
                    stage++;
            }
            info.stage = stage;
            info.originalStage = stage;
        }
    }

    /**
     * Paper Sec. IV-A relaxation for swap-rotated double buffers (e.g.,
     * BFS fringes): reads and writes go through disjoint slots, so they
     * touch different buffers within any one iteration of the rotating
     * loop; across iterations they are ordered by the loop-carried value
     * the later (writer) stage sends back to the reading stages. Safe
     * when (1) read and write slots are disjoint, and (2) the writer
     * stage defines, inside the rotating loop, a register that the
     * earliest reading stage consumes (the backward round-gate).
     */
    bool
    doubleBufferSafe(const std::vector<int>& access_ops, int writer_stage,
                     int swap_op_id)
    {
        // The rotating loop is the innermost loop enclosing the swap.
        const OpInfo& swap_info = ops_.at(swap_op_id);
        const ir::Stmt* rot_loop = nullptr;
        for (auto it = swap_info.path.rbegin(); it != swap_info.path.rend();
             ++it) {
            if ((*it)->kind() == ir::StmtKind::kFor ||
                (*it)->kind() == ir::StmtKind::kWhile) {
                rot_loop = *it;
                break;
            }
        }
        if (rot_loop == nullptr)
            return false;

        auto inside_rot = [&](int id) {
            for (const ir::Stmt* st : ops_.at(id).path)
                if (st == rot_loop)
                    return true;
            return false;
        };

        // Inside the rotating loop, reads and writes must use disjoint
        // slots; the earliest reading stage is the round gate's consumer.
        std::set<ArrayId> in_reads, in_writes;
        int rmin = writer_stage;
        for (int id : access_ops) {
            const Op& op = ops_.at(id).stmt->op;
            if (!inside_rot(id))
                continue;
            if (ir::isMemRead(op.opcode)) {
                in_reads.insert(op.arr);
                rmin = std::min(rmin, ops_.at(id).stage);
            }
            if (ir::isMemWrite(op.opcode))
                in_writes.insert(op.arr);
        }
        for (ArrayId a : in_reads)
            if (in_writes.count(a))
                return false;
        if (rmin >= writer_stage)
            return true;  // everything already in one stage
        // One-shot accesses outside the rotating loop (e.g., seeding the
        // first fringe) are only ordered against the readers if they run
        // in the reading stage itself.
        for (int id : access_ops) {
            if (!inside_rot(id) && ops_.at(id).stage != rmin)
                return false;
        }
        // Gate check: the writer stage must define, inside the rotating
        // loop, a register the earliest reading stage consumes inside the
        // rotating loop — the loop-carried backward value that serializes
        // rounds (in BFS: cur_size).
        for (int did : opOrder_) {
            const OpInfo& dinfo = ops_.at(did);
            const Op& d = dinfo.stmt->op;
            if (dinfo.stage != writer_stage || !ir::hasDst(d.opcode) ||
                d.dst < 0 || !inside_rot(did)) {
                continue;
            }
            for (int uid : opOrder_) {
                const OpInfo& uinfo = ops_.at(uid);
                if (uinfo.stage != rmin || !inside_rot(uid))
                    continue;
                const Op& u = uinfo.stmt->op;
                for (int i = 0; i < ir::numSrcs(u.opcode); ++i) {
                    if (u.src[i] == d.dst)
                        return true;
                }
            }
        }
        return false;
    }

    /**
     * Second exemption (paper Sec. IV-A "Program phases"): reads by
     * earlier stages and writes by the latest stage that live in
     * *different top-level phases* of a common loop are ordered by the
     * pipeline's data stream — the writer only reaches its phase after
     * consuming the readers' full per-round stream — and rounds are
     * ordered by the loop-carried backward gate. PageRank-Delta's
     * delta[] (read in the push phase, written in the activate phase) is
     * the canonical case. Reads sharing a phase subtree with writes
     * (e.g., BFS distances) do not qualify and still collapse.
     */
    bool
    phaseDisjointSafe(const std::vector<int>& access_ops, int writer_stage)
    {
        // Common enclosing loop of all accesses.
        const ir::Stmt* common = nullptr;
        {
            const OpInfo& first = ops_.at(access_ops.front());
            for (auto it = first.path.rbegin(); it != first.path.rend();
                 ++it) {
                if ((*it)->kind() != ir::StmtKind::kFor &&
                    (*it)->kind() != ir::StmtKind::kWhile) {
                    continue;
                }
                bool in_all = true;
                for (int id : access_ops) {
                    bool found = false;
                    for (const ir::Stmt* st : ops_.at(id).path)
                        if (st == *it)
                            found = true;
                    if (!found) {
                        in_all = false;
                        break;
                    }
                }
                if (in_all) {
                    common = *it;
                    break;
                }
            }
        }
        if (common == nullptr)
            return false;

        // Phase of an access = the path element right below `common`.
        auto phase_of = [&](int id) -> const ir::Stmt* {
            const auto& path = ops_.at(id).path;
            for (size_t i = 0; i < path.size(); ++i) {
                if (path[i] == common)
                    return i + 1 < path.size() ? path[i + 1] : nullptr;
            }
            return nullptr;
        };

        std::set<const ir::Stmt*> read_phases, write_phases;
        int rmin = writer_stage;
        for (int id : access_ops) {
            const Op& op = ops_.at(id).stmt->op;
            int stage = ops_.at(id).stage;
            const ir::Stmt* ph = phase_of(id);
            if (ph == nullptr)
                return false;  // access directly in the loop body
            if (ir::isMemWrite(op.opcode))
                write_phases.insert(ph);
            if (ir::isMemRead(op.opcode) && stage < writer_stage) {
                read_phases.insert(ph);
                rmin = std::min(rmin, stage);
            }
        }
        if (rmin >= writer_stage)
            return true;
        for (const ir::Stmt* ph : read_phases)
            if (write_phases.count(ph))
                return false;

        // Round gate, as in doubleBufferSafe.
        auto inside = [&](int id) {
            for (const ir::Stmt* st : ops_.at(id).path)
                if (st == common)
                    return true;
            return false;
        };
        for (int did : opOrder_) {
            const OpInfo& dinfo = ops_.at(did);
            const Op& d = dinfo.stmt->op;
            if (dinfo.stage != writer_stage || !ir::hasDst(d.opcode) ||
                d.dst < 0 || !inside(did)) {
                continue;
            }
            for (int uid : opOrder_) {
                const OpInfo& uinfo = ops_.at(uid);
                if (uinfo.stage != rmin || !inside(uid))
                    continue;
                const Op& u = uinfo.stmt->op;
                for (int i = 0; i < ir::numSrcs(u.opcode); ++i) {
                    if (u.src[i] == d.dst)
                        return true;
                }
            }
        }
        return false;
    }

    void
    repairAliases()
    {
        int nslots = static_cast<int>(fn_.arrays.size());
        if (nslots == 0)
            return;
        SlotUnion uf(nslots);
        // Slots sharing an alias class may alias.
        std::map<int, int> class_rep;
        for (int a = 0; a < nslots; ++a) {
            int cls = fn_.arrays[static_cast<size_t>(a)].aliasClass;
            auto [it, fresh] = class_rep.try_emplace(cls, a);
            if (!fresh)
                uf.unite(a, it->second);
        }
        // Swapped slots rotate through the same buffers.
        for (int id : opOrder_) {
            const Op& op = ops_[id].stmt->op;
            if (op.opcode == Opcode::kSwapArr)
                uf.unite(op.arr, op.arr2);
        }

        // Collect per-group access info.
        struct Group
        {
            bool written = false;
            int maxStage = 0;
            std::vector<int> accessOps;
            std::set<ArrayId> readSlots;
            std::set<ArrayId> writeSlots;
            bool swapped = false;
            int swapOp = -1;
        };
        std::map<int, Group> groups;
        for (int id : opOrder_) {
            const Op& op = ops_[id].stmt->op;
            if (op.opcode == Opcode::kSwapArr) {
                Group& g = groups[uf.find(op.arr)];
                g.swapped = true;
                g.swapOp = id;
                continue;
            }
            if (!ir::usesArray(op.opcode) || op.opcode == Opcode::kPrefetch)
                continue;
            Group& g = groups[uf.find(op.arr)];
            g.accessOps.push_back(id);
            g.maxStage = std::max(g.maxStage, ops_[id].stage);
            if (ir::isMemWrite(op.opcode)) {
                g.written = true;
                g.writeSlots.insert(op.arr);
            }
            if (ir::isMemRead(op.opcode))
                g.readSlots.insert(op.arr);
        }

        // Collapse written groups whose accesses span stages into the
        // latest stage; loads moved may leave a prefetch behind.
        for (auto& [root, g] : groups) {
            if (!g.written)
                continue;
            if (g.swapped &&
                doubleBufferSafe(g.accessOps, g.maxStage, g.swapOp)) {
                note("alias rule: " +
                     fn_.arrays[static_cast<size_t>(
                                    *g.writeSlots.begin())]
                         .name +
                     " group left decoupled (swap-rotated double buffer "
                     "serialized by the loop-carried backward value)");
                continue;
            }
            if (!g.swapped &&
                phaseDisjointSafe(g.accessOps, g.maxStage)) {
                note("alias rule: " +
                     fn_.arrays[static_cast<size_t>(
                                    *g.writeSlots.begin())]
                         .name +
                     " group left decoupled (reads and writes live in "
                     "stream-ordered phases)");
                continue;
            }
            for (int id : g.accessOps) {
                OpInfo& info = ops_[id];
                if (info.stage == g.maxStage)
                    continue;
                if (opts_.prefetchMovedLoads &&
                    info.stmt->op.opcode == Opcode::kLoad) {
                    prefetchAt_.insert({id, info.stage});
                }
                note("alias rule: moved " +
                     std::string(ir::opcodeName(info.stmt->op.opcode)) +
                     " of " +
                     fn_.arrays[static_cast<size_t>(info.stmt->op.arr)]
                         .name +
                     " (op " + std::to_string(id) + ") from stage " +
                     std::to_string(info.stage) + " to stage " +
                     std::to_string(g.maxStage));
                info.stage = g.maxStage;
            }
        }
    }

    void
    planSwapsAndBarriers()
    {
        int nslots = static_cast<int>(fn_.arrays.size());
        SlotUnion uf(std::max(1, nslots));
        std::map<int, int> class_rep;
        for (int a = 0; a < nslots; ++a) {
            int cls = fn_.arrays[static_cast<size_t>(a)].aliasClass;
            auto [it, fresh] = class_rep.try_emplace(cls, a);
            if (!fresh)
                uf.unite(a, it->second);
        }
        for (int id : opOrder_) {
            const Op& op = ops_[id].stmt->op;
            if (op.opcode == Opcode::kSwapArr)
                uf.unite(op.arr, op.arr2);
        }

        // Which stages access each slot group?
        std::map<int, std::set<int>> group_stages;
        for (int id : opOrder_) {
            const Op& op = ops_[id].stmt->op;
            if (!ir::usesArray(op.opcode) || op.opcode == Opcode::kSwapArr)
                continue;
            group_stages[uf.find(op.arr)].insert(ops_[id].stage);
        }
        // Prefetch sites also depend on the binding.
        for (const auto& [id, stage] : prefetchAt_) {
            const Op& op = ops_[id].stmt->op;
            group_stages[uf.find(op.arr)].insert(stage);
        }

        for (int id : opOrder_) {
            const Op& op = ops_[id].stmt->op;
            if (op.opcode == Opcode::kSwapArr) {
                std::set<int> stages = group_stages[uf.find(op.arr)];
                stages.insert(ops_[id].stage);
                replicateTo_[id] = std::move(stages);
            } else if (op.opcode == Opcode::kBarrier) {
                std::set<int> all;
                for (int s = 0; s < numStages_; ++s)
                    all.insert(s);
                replicateTo_[id] = std::move(all);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fixpoint: refSets, retention, decisions.
    // ------------------------------------------------------------------

    bool
    isParamReg(RegId r) const
    {
        for (const auto& p : fn_.scalarParams)
            if (p.reg == r)
                return true;
        return false;
    }

    /** Is r locally producible in stage s without new queue traffic? */
    bool
    availableIn(RegId r, int s) const
    {
        return inductionRegs_.count(r) != 0 || isParamReg(r) ||
               refSet_[static_cast<size_t>(s)].count(r) != 0;
    }

    /** Add the control-context registers of a path to a stage's refs. */
    bool
    addPathRefs(const std::vector<const ir::Stmt*>& path, int s)
    {
        bool changed = false;
        for (const ir::Stmt* st : path) {
            changed |= retained_[static_cast<size_t>(s)].insert(st).second;
            if (st->kind() == ir::StmtKind::kFor) {
                auto* f = ir::stmtCast<ir::ForStmt>(st);
                changed |= addRef(f->start, s);
                changed |= addRef(f->bound, s);
            } else if (st->kind() == ir::StmtKind::kIf) {
                auto* i = ir::stmtCast<ir::IfStmt>(st);
                changed |= addRef(i->cond, s);
            }
        }
        return changed;
    }

    bool
    addRef(RegId r, int s)
    {
        if (r < 0 || inductionRegs_.count(r) != 0)
            return false;
        return refSet_[static_cast<size_t>(s)].insert(r).second;
    }

    bool
    addOpRefs(const Op& op, int s)
    {
        bool changed = false;
        for (int i = 0; i < ir::numSrcs(op.opcode); ++i)
            changed |= addRef(op.src[i], s);
        return changed;
    }

    void
    solveFixpoint()
    {
        refSet_.assign(static_cast<size_t>(numStages_), {});
        retained_.assign(static_cast<size_t>(numStages_), {});

        // Collect all defs per register (position order).
        std::map<RegId, std::vector<int>> defs;
        for (int id : opOrder_) {
            const Op& op = ops_[id].stmt->op;
            if (ir::hasDst(op.opcode) && op.dst >= 0)
                defs[op.dst].push_back(id);
        }

        // Seed: owned ops + prefetch sites + replicated ops.
        bool changed = true;
        while (changed) {
            changed = false;

            for (int id : opOrder_) {
                const OpInfo& info = ops_.at(id);
                const Op& op = info.stmt->op;
                auto rep = replicateTo_.find(id);
                if (rep != replicateTo_.end()) {
                    for (int s : rep->second) {
                        changed |= addOpRefs(op, s);
                        changed |= addPathRefs(info.path, s);
                    }
                    continue;
                }
                int s = info.stage;
                changed |= addOpRefs(op, s);
                changed |= addPathRefs(info.path, s);
            }
            for (const auto& [id, s] : prefetchAt_) {
                const OpInfo& info = ops_.at(id);
                changed |= addRef(info.stmt->op.src[0], s);
                changed |= addPathRefs(info.path, s);
            }

            // Materialize cross-stage defs: queue or recompute.
            for (int id : opOrder_) {
                const OpInfo& info = ops_.at(id);
                const Op& op = info.stmt->op;
                if (!ir::hasDst(op.opcode) || op.dst < 0)
                    continue;
                if (replicateTo_.count(id))
                    continue;
                for (int s = 0; s < numStages_; ++s) {
                    if (s == info.stage)
                        continue;
                    if (refSet_[static_cast<size_t>(s)].count(op.dst) == 0)
                        continue;
                    auto key = std::make_pair(id, s);
                    Decision cur = decision_.count(key)
                                       ? decision_[key]
                                       : Decision::kNone;
                    // Prefer recompute when it adds no traffic.
                    bool can_recompute = opts_.recompute &&
                                         ir::isPure(op.opcode);
                    if (can_recompute) {
                        for (int i = 0; i < ir::numSrcs(op.opcode); ++i) {
                            if (op.src[i] >= 0 &&
                                !availableIn(op.src[i], s)) {
                                can_recompute = false;
                                break;
                            }
                        }
                    }
                    Decision want = can_recompute ? Decision::kRecompute
                                                  : Decision::kQueue;
                    if (cur != want) {
                        // Never downgrade recompute -> queue once chosen
                        // (sources only become more available).
                        if (cur == Decision::kRecompute)
                            continue;
                        decision_[key] = want;
                        changed = true;
                    }
                    // The consumer materializes at D's position either
                    // way; it needs D's control context. Recompute also
                    // needs D's sources.
                    changed |= addPathRefs(info.path, s);
                    if (decision_[key] == Decision::kRecompute)
                        changed |= addOpRefs(op, s);
                }
            }

            // Breaks/continues in retained loops must replicate.
            for (const BreakInfo& b : breaks_) {
                for (int s = 0; s < numStages_; ++s) {
                    if (retained_[static_cast<size_t>(s)].count(
                            b.targetLoop) == 0) {
                        continue;
                    }
                    changed |= addPathRefs(b.path, s);
                }
            }
        }

        // Tally decisions for diagnostics.
        for (const auto& [key, d] : decision_) {
            if (d == Decision::kQueue)
                result_.queuedValues++;
            else if (d == Decision::kRecompute)
                result_.recomputedValues++;
        }
    }

    // ------------------------------------------------------------------
    // Queue assignment and stage construction.
    // ------------------------------------------------------------------

    void
    assignQueues()
    {
        std::set<std::pair<int, int>> pairs;
        for (const auto& [key, d] : decision_) {
            if (d != Decision::kQueue)
                continue;
            int producer = ops_.at(key.first).stage;
            pairs.insert({producer, key.second});
        }
        int next = 0;
        for (const auto& p : pairs)
            queueFor_[p] = next++;
    }

    /** Build stage s's version of a region. Returns the filtered clone. */
    ir::Region
    buildRegion(const ir::Region& src, int s, ir::Function& out)
    {
        ir::Region result;
        for (const auto& stmt : src) {
            switch (stmt->kind()) {
              case ir::StmtKind::kOp:
                buildOp(*ir::stmtCast<ir::OpStmt>(stmt.get()), s, out,
                        result);
                break;
              case ir::StmtKind::kFor: {
                auto* f = ir::stmtCast<ir::ForStmt>(stmt.get());
                ir::Region body = buildRegion(f->body, s, out);
                if (body.empty())
                    break;
                auto nf = std::make_unique<ir::ForStmt>();
                nf->id = out.nextStmtId++;
                nf->origin = f->origin;
                nf->var = f->var;
                nf->start = f->start;
                nf->bound = f->bound;
                nf->body = std::move(body);
                result.push_back(std::move(nf));
                break;
              }
              case ir::StmtKind::kWhile: {
                auto* w = ir::stmtCast<ir::WhileStmt>(stmt.get());
                ir::Region body = buildRegion(w->body, s, out);
                if (body.empty())
                    break;
                auto nw = std::make_unique<ir::WhileStmt>();
                nw->id = out.nextStmtId++;
                nw->origin = w->origin;
                nw->body = std::move(body);
                result.push_back(std::move(nw));
                break;
              }
              case ir::StmtKind::kIf: {
                auto* i = ir::stmtCast<ir::IfStmt>(stmt.get());
                ir::Region then_body = buildRegion(i->thenBody, s, out);
                ir::Region else_body = buildRegion(i->elseBody, s, out);
                if (then_body.empty() && else_body.empty())
                    break;
                auto ni = std::make_unique<ir::IfStmt>();
                ni->id = out.nextStmtId++;
                ni->origin = i->origin;
                ni->cond = i->cond;
                ni->thenBody = std::move(then_body);
                ni->elseBody = std::move(else_body);
                result.push_back(std::move(ni));
                break;
              }
              case ir::StmtKind::kBreak: {
                auto* b = ir::stmtCast<ir::BreakStmt>(stmt.get());
                const BreakInfo* info = findBreak(stmt.get());
                if (retained_[static_cast<size_t>(s)].count(
                        info->targetLoop) == 0) {
                    break;
                }
                auto nb = std::make_unique<ir::BreakStmt>(b->levels);
                nb->id = out.nextStmtId++;
                nb->origin = b->origin;
                result.push_back(std::move(nb));
                break;
              }
              case ir::StmtKind::kContinue: {
                const BreakInfo* info = findBreak(stmt.get());
                if (retained_[static_cast<size_t>(s)].count(
                        info->targetLoop) == 0) {
                    break;
                }
                auto nc = std::make_unique<ir::ContinueStmt>();
                nc->id = out.nextStmtId++;
                nc->origin = stmt->origin;
                result.push_back(std::move(nc));
                break;
              }
            }
        }
        return result;
    }

    const BreakInfo*
    findBreak(const ir::Stmt* stmt) const
    {
        for (const auto& b : breaks_)
            if (b.stmt == stmt)
                return &b;
        phloem_panic("unindexed break/continue");
    }

    void
    appendOp(ir::Region& region, ir::Function& out, Op op)
    {
        op.id = out.nextOpId++;
        auto stmt = std::make_unique<ir::OpStmt>(op);
        stmt->id = out.nextStmtId++;
        stmt->origin = op.origin;
        region.push_back(std::move(stmt));
    }

    void
    buildOp(const ir::OpStmt& src, int s, ir::Function& out,
            ir::Region& region)
    {
        const Op& op = src.op;
        int id = op.id;

        auto rep = replicateTo_.find(id);
        if (rep != replicateTo_.end()) {
            if (rep->second.count(s)) {
                Op copy = op;
                copy.origin = id;
                appendOp(region, out, copy);
            }
            return;
        }

        const OpInfo& info = ops_.at(id);
        if (info.stage == s) {
            Op copy = op;
            copy.origin = id;
            appendOp(region, out, copy);
            // Enqueue the value for downstream/upstream consumers.
            for (int t = 0; t < numStages_; ++t) {
                auto key = std::make_pair(id, t);
                auto it = decision_.find(key);
                if (it == decision_.end() ||
                    it->second != Decision::kQueue) {
                    continue;
                }
                Op enq;
                enq.opcode = Opcode::kEnq;
                enq.queue = queueFor_.at({s, t});
                enq.src[0] = op.dst;
                enq.origin = id;
                appendOp(region, out, enq);
            }
            return;
        }

        auto key = std::make_pair(id, s);
        auto it = decision_.find(key);
        if (it != decision_.end()) {
            if (it->second == Decision::kQueue) {
                Op deq;
                deq.opcode = Opcode::kDeq;
                deq.queue = queueFor_.at({info.stage, s});
                deq.dst = op.dst;
                deq.origin = id;
                appendOp(region, out, deq);
            } else {
                Op copy = op;
                copy.origin = id;
                appendOp(region, out, copy);
            }
            return;
        }

        if (prefetchAt_.count({id, s})) {
            Op pf;
            pf.opcode = Opcode::kPrefetch;
            pf.arr = op.arr;
            pf.src[0] = op.src[0];
            pf.origin = id;
            appendOp(region, out, pf);
        }
    }

    void
    buildStages()
    {
        auto pipeline = std::make_unique<ir::Pipeline>();
        pipeline->name = fn_.name + "-pipe";
        for (int s = 0; s < numStages_; ++s) {
            auto stage = ir::cloneDecl(
                fn_, fn_.name + ".s" + std::to_string(s));
            stage->body = buildRegion(fn_.body, s, *stage);
            pipeline->stages.push_back(std::move(stage));
        }
        for (const auto& [pair, q] : queueFor_) {
            ir::QueueConfig qc;
            qc.id = q;
            qc.depth = opts_.queueDepth;
            qc.producerStage = pair.first;
            qc.consumerStage = pair.second;
            qc.note = pair.first > pair.second ? "backward" : "";
            pipeline->queues.push_back(qc);
        }
        result_.pipeline = std::move(pipeline);
    }

    void note(std::string msg) { result_.notes.push_back(std::move(msg)); }

    const ir::Function& fn_;
    std::vector<int> cutOps_;
    DecoupleOptions opts_;

    int nextPos_ = 0;
    int numStages_ = 1;
    std::map<int, OpInfo> ops_;
    std::vector<int> opOrder_;
    std::set<RegId> inductionRegs_;
    std::vector<BreakInfo> breaks_;

    /** (op id, stage) pairs where a prefetch replaces a moved load. */
    std::set<std::pair<int, int>> prefetchAt_;
    /** Ops replicated into several stages (swaps, barriers). */
    std::map<int, std::set<int>> replicateTo_;

    std::vector<std::set<RegId>> refSet_;
    std::vector<std::set<const ir::Stmt*>> retained_;
    std::map<std::pair<int, int>, Decision> decision_;
    std::map<std::pair<int, int>, int> queueFor_;

    DecoupleResult result_;
};

} // namespace

DecoupleResult
decouple(const ir::Function& fn, const std::vector<int>& cut_ops,
         const DecoupleOptions& opts)
{
    return Decoupler(fn, cut_ops, opts).run();
}

} // namespace phloem::comp
