/**
 * @file
 * The decoupling transformation: serial function + cut points -> pipeline.
 *
 * This implements the paper's initial "Decouple" step and Pass 1 ("Add
 * queues"), with Pass 2 ("Recompute") available as an analysis flag:
 *
 *  - Every op is assigned to a stage by its position relative to the cut
 *    points (a cut names the op that begins a new stage).
 *  - Each stage receives a copy of the enclosing loop/if skeleton of its
 *    ops; loop induction variables are recomputed locally by every stage.
 *  - Every register a stage reads is kept in sync positionally: at each
 *    def of such a register owned by another stage, the consumer stage
 *    dequeues the value from a per-(producer, consumer) FIFO; the producer
 *    enqueues it right after the def. Because all stages execute the same
 *    skeleton with the same (synced) control values, enq/deq sequences
 *    pair exactly. Loop-carried values naturally become backward queues,
 *    which is what synchronizes outer iterations (e.g., BFS fringes).
 *  - With recompute enabled, pure single-op defs whose sources are already
 *    materialized in the consumer are cloned locally instead of queued
 *    (the paper's rematerialization of index computations).
 *  - The aliasing discipline (paper Sec. IV-A, Fig. 4): all accesses to a
 *    written array slot (or to any may-alias slot group) collapse into the
 *    latest stage that touches the group; moved loads may leave a
 *    prefetch in their original stage.
 */

#ifndef PHLOEM_COMPILER_DECOUPLE_H
#define PHLOEM_COMPILER_DECOUPLE_H

#include <string>
#include <vector>

#include "ir/pipeline.h"

namespace phloem::comp {

struct DecoupleOptions
{
    /** Pass 2: rematerialize cheap defs instead of queueing them. */
    bool recompute = true;
    /** Leave a prefetch where an alias-moved load used to be. */
    bool prefetchMovedLoads = true;
    /** Queue depth override for generated queues (0 = architectural). */
    int queueDepth = 0;
};

struct DecoupleResult
{
    ir::PipelinePtr pipeline;
    /** Human-readable notes (which values were queued/recomputed/moved). */
    std::vector<std::string> notes;
    /** Number of (def, consumer) pairs that became queue traffic. */
    int queuedValues = 0;
    /** Number of (def, consumer) pairs satisfied by recomputation. */
    int recomputedValues = 0;
};

/**
 * Decouple `fn` at the given cut points.
 *
 * @param cut_ops op ids (in fn) that each begin a new stage; they are
 *        sorted by program position internally. N cuts produce N+1 stages.
 */
DecoupleResult decouple(const ir::Function& fn,
                        const std::vector<int>& cut_ops,
                        const DecoupleOptions& opts = DecoupleOptions{});

} // namespace phloem::comp

#endif // PHLOEM_COMPILER_DECOUPLE_H
