#include "compiler/passes.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/logging.h"
#include "ir/clone.h"
#include "ir/walk.h"

namespace phloem::comp {

namespace {

using ir::Op;
using ir::Opcode;
using ir::QueueId;
using ir::RegId;

bool
isEnqOp(Opcode op)
{
    return op == Opcode::kEnq || op == Opcode::kEnqCtrl ||
           op == Opcode::kEnqDist;
}

bool
isDeqOp(Opcode op)
{
    return op == Opcode::kDeq || op == Opcode::kPeek;
}

/** Visit every region of a function (body + handlers), mutable. */
void
forEachRegionOf(ir::Region& region, const std::function<void(ir::Region&)>& fn)
{
    fn(region);
    for (auto& s : region) {
        switch (s->kind()) {
          case ir::StmtKind::kFor:
            forEachRegionOf(ir::stmtCast<ir::ForStmt>(s.get())->body, fn);
            break;
          case ir::StmtKind::kWhile:
            forEachRegionOf(ir::stmtCast<ir::WhileStmt>(s.get())->body, fn);
            break;
          case ir::StmtKind::kIf: {
            auto* i = ir::stmtCast<ir::IfStmt>(s.get());
            forEachRegionOf(i->thenBody, fn);
            forEachRegionOf(i->elseBody, fn);
            break;
          }
          default:
            break;
        }
    }
}

void
forEachRegionOf(ir::Function& fn,
                const std::function<void(ir::Region&)>& visitor)
{
    forEachRegionOf(fn.body, visitor);
    for (auto& h : fn.handlers)
        forEachRegionOf(h.body, visitor);
}

/** Count reads of a register in a function (srcs, loop bounds, if conds). */
int
regReadCount(const ir::Function& fn, RegId r)
{
    int count = 0;
    std::function<void(const ir::Region&)> walk =
        [&](const ir::Region& region) {
            for (const auto& s : region) {
                switch (s->kind()) {
                  case ir::StmtKind::kOp: {
                    const Op& op = ir::stmtCast<ir::OpStmt>(s.get())->op;
                    for (int i = 0; i < ir::numSrcs(op.opcode); ++i)
                        if (op.src[i] == r)
                            count++;
                    break;
                  }
                  case ir::StmtKind::kFor: {
                    auto* f = ir::stmtCast<ir::ForStmt>(s.get());
                    if (f->start == r)
                        count++;
                    if (f->bound == r)
                        count++;
                    walk(f->body);
                    break;
                  }
                  case ir::StmtKind::kWhile:
                    walk(ir::stmtCast<ir::WhileStmt>(s.get())->body);
                    break;
                  case ir::StmtKind::kIf: {
                    auto* i = ir::stmtCast<ir::IfStmt>(s.get());
                    if (i->cond == r)
                        count++;
                    walk(i->thenBody);
                    walk(i->elseBody);
                    break;
                  }
                  default:
                    break;
                }
            }
        };
    walk(fn.body);
    for (const auto& h : fn.handlers)
        walk(h.body);
    return count;
}

/** Allocate a fresh queue id above everything the pipeline uses. */
QueueId
newQueueId(const ir::Pipeline& pipeline)
{
    QueueId next = 0;
    for (const auto& stage : pipeline.stages) {
        ir::forEachOp(stage->body, [&](const Op& op) {
            if (ir::usesQueue(op.opcode))
                next = std::max(next, op.queue + 1);
        });
        for (const auto& h : stage->handlers) {
            next = std::max(next, h.queue + 1);
            ir::forEachOp(h.body, [&](const Op& op) {
                if (ir::usesQueue(op.opcode))
                    next = std::max(next, op.queue + 1);
            });
        }
    }
    for (const auto& ra : pipeline.ras)
        next = std::max({next, ra.inQueue + 1, ra.outQueue + 1});
    return next;
}

/** Retarget the queue of ops matching a predicate; returns count. */
int
retargetQueue(ir::Function& fn, const std::function<bool(const Op&)>& pred,
              QueueId to)
{
    int n = 0;
    forEachRegionOf(fn, [&](ir::Region& region) {
        for (auto& s : region) {
            if (s->kind() != ir::StmtKind::kOp)
                continue;
            Op& op = ir::stmtCast<ir::OpStmt>(s.get())->op;
            if (ir::usesQueue(op.opcode) && pred(op)) {
                op.queue = to;
                n++;
            }
        }
    });
    return n;
}

/**
 * Ensure the traffic of def `origin` on queue `q` flows through a
 * dedicated queue. If other defs share q, this def's endpoints move to a
 * fresh queue (per-def order is preserved, so pairing is intact).
 * Returns the (possibly new) queue id.
 */
QueueId
splitQueueForDef(ir::Pipeline& pipeline, int origin, QueueId q)
{
    bool shared = false;
    for (const auto& stage : pipeline.stages) {
        ir::forEachOp(stage->body, [&](const Op& op) {
            if (!ir::usesQueue(op.opcode) || op.queue != q)
                return;
            if (op.origin != origin)
                shared = true;
        });
    }
    if (!shared)
        return q;
    QueueId q2 = newQueueId(pipeline);
    for (auto& stage : pipeline.stages) {
        retargetQueue(*stage,
                      [&](const Op& op) {
                          return op.queue == q && op.origin == origin;
                      },
                      q2);
    }
    return q2;
}

/** Remove every OpStmt matching a predicate; returns count removed. */
int
removeOps(ir::Function& fn, const std::function<bool(const Op&)>& pred)
{
    int n = 0;
    forEachRegionOf(fn, [&](ir::Region& region) {
        for (size_t i = 0; i < region.size();) {
            if (region[i]->kind() == ir::StmtKind::kOp &&
                pred(ir::stmtCast<ir::OpStmt>(region[i].get())->op)) {
                region.erase(region.begin() + static_cast<long>(i));
                n++;
            } else {
                ++i;
            }
        }
    });
    return n;
}

/** Drop loops and ifs that contain no statements at all. */
void
pruneEmptyStructures(ir::Region& region)
{
    for (size_t i = 0; i < region.size();) {
        ir::Stmt* s = region[i].get();
        bool drop = false;
        switch (s->kind()) {
          case ir::StmtKind::kFor: {
            auto* f = ir::stmtCast<ir::ForStmt>(s);
            pruneEmptyStructures(f->body);
            drop = f->body.empty();
            break;
          }
          case ir::StmtKind::kWhile: {
            auto* w = ir::stmtCast<ir::WhileStmt>(s);
            pruneEmptyStructures(w->body);
            // An empty while(true) would spin forever; it can only be
            // empty if nothing inside was retained, so drop it.
            drop = w->body.empty();
            break;
          }
          case ir::StmtKind::kIf: {
            auto* f = ir::stmtCast<ir::IfStmt>(s);
            pruneEmptyStructures(f->thenBody);
            pruneEmptyStructures(f->elseBody);
            drop = f->thenBody.empty() && f->elseBody.empty();
            break;
          }
          default:
            break;
        }
        if (drop)
            region.erase(region.begin() + static_cast<long>(i));
        else
            ++i;
    }
}

/**
 * Find the unique deq (not peek) on queue q with the given origin.
 * Returns {stage index, OpStmt*} or {-1, nullptr}.
 */
std::pair<int, ir::OpStmt*>
findDeqOnQueue(ir::Pipeline& pipeline, QueueId q, int origin)
{
    std::pair<int, ir::OpStmt*> found{-1, nullptr};
    int count = 0;
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        forEachRegionOf(*pipeline.stages[s], [&](ir::Region& region) {
            for (auto& st : region) {
                if (st->kind() != ir::StmtKind::kOp)
                    continue;
                auto* os = ir::stmtCast<ir::OpStmt>(st.get());
                if (os->op.opcode == Opcode::kDeq && os->op.queue == q &&
                    os->op.origin == origin) {
                    found = {static_cast<int>(s), os};
                    count++;
                }
            }
        });
    }
    if (count != 1)
        return {-1, nullptr};
    return found;
}

/** Does any op send control values on queue q? */
bool
queueCarriesCtrl(const ir::Pipeline& pipeline, QueueId q)
{
    for (const auto& stage : pipeline.stages) {
        bool found = false;
        ir::forEachOp(stage->body, [&](const Op& op) {
            if ((op.opcode == Opcode::kEnqCtrl ||
                 (op.opcode == Opcode::kEnqDist && op.src[0] < 0)) &&
                op.queue == q) {
                found = true;
            }
        });
        if (found)
            return true;
    }
    return false;
}

/** Stage index that enqueues into queue q, or -1. */
int
producerStageOf(const ir::Pipeline& pipeline, QueueId q)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        bool produces = false;
        ir::forEachOp(pipeline.stages[s]->body, [&](const Op& op) {
            if (isEnqOp(op.opcode) && op.queue == q)
                produces = true;
        });
        if (produces)
            return static_cast<int>(s);
    }
    return -1;
}

/** Matches the CV while shape; returns the deq op or nullptr. */
ir::OpStmt*
matchCvWhile(ir::WhileStmt* w)
{
    if (w->body.size() < 3)
        return nullptr;
    if (w->body[0]->kind() != ir::StmtKind::kOp ||
        w->body[1]->kind() != ir::StmtKind::kOp ||
        w->body[2]->kind() != ir::StmtKind::kIf) {
        return nullptr;
    }
    auto* deq = ir::stmtCast<ir::OpStmt>(w->body[0].get());
    auto* isc = ir::stmtCast<ir::OpStmt>(w->body[1].get());
    auto* brk = ir::stmtCast<ir::IfStmt>(w->body[2].get());
    if (deq->op.opcode != Opcode::kDeq ||
        isc->op.opcode != Opcode::kIsControl ||
        isc->op.src[0] != deq->op.dst || brk->cond != isc->op.dst ||
        !brk->elseBody.empty() || brk->thenBody.size() != 1 ||
        brk->thenBody[0]->kind() != ir::StmtKind::kBreak) {
        return nullptr;
    }
    return deq;
}

/** RA index whose outQueue is q, or -1. */
int
raProducing(const ir::Pipeline& pipeline, QueueId q)
{
    for (size_t i = 0; i < pipeline.ras.size(); ++i)
        if (pipeline.ras[i].outQueue == q)
            return static_cast<int>(i);
    return -1;
}

struct LoopRef
{
    ir::Region* parent = nullptr;
    size_t index = 0;
    ir::Stmt* stmt = nullptr;
};

/** Find the loop statement with a given origin in a function. */
LoopRef
findLoopWithOrigin(ir::Function& fn, int origin)
{
    LoopRef found;
    forEachRegionOf(fn, [&](ir::Region& region) {
        for (size_t i = 0; i < region.size(); ++i) {
            ir::Stmt* s = region[i].get();
            if ((s->kind() == ir::StmtKind::kFor ||
                 s->kind() == ir::StmtKind::kWhile) &&
                s->origin == origin) {
                found = {&region, i, s};
            }
        }
    });
    return found;
}

Op
makeOp(ir::Function& fn, Opcode opc)
{
    Op op;
    op.opcode = opc;
    op.id = fn.nextOpId++;
    return op;
}

void
insertOpAt(ir::Region& region, size_t index, ir::Function& fn, Op op)
{
    auto stmt = std::make_unique<ir::OpStmt>(op);
    stmt->id = fn.nextStmtId++;
    stmt->origin = op.origin;
    region.insert(region.begin() + static_cast<long>(index),
                  std::move(stmt));
}

/**
 * If the delimiter for queue q should come from a reference accelerator,
 * return that RA's index (the final RA in the chain feeding q, if it is a
 * SCAN). Otherwise -1.
 */
int
delimiterRA(const ir::Pipeline& pipeline, QueueId q)
{
    int ra = raProducing(pipeline, q);
    if (ra < 0)
        return -1;
    if (pipeline.ras[static_cast<size_t>(ra)].mode == ir::RAMode::kScan)
        return ra;
    return -1;
}

/** Walk an RA chain feeding q back to the queue a stage enqueues into. */
QueueId
chainHeadQueue(const ir::Pipeline& pipeline, QueueId q)
{
    for (;;) {
        int ra = raProducing(pipeline, q);
        if (ra < 0)
            return q;
        q = pipeline.ras[static_cast<size_t>(ra)].inQueue;
    }
}

/**
 * Cleanup of now-unused materialized bounds in stage s: removes deq or
 * recompute clones for `reg` when it is no longer read, together with the
 * matching producer enq.
 */
void
cleanupDeadMaterialization(ir::Pipeline& pipeline, int s, RegId reg,
                           PassReport* report)
{
    ir::Function& fn = *pipeline.stages[static_cast<size_t>(s)];
    if (regReadCount(fn, reg) != 0)
        return;
    // Find deq ops writing reg; remove them and, per def, the matching
    // producer enq. Removing both endpoints of one def from a shared
    // FIFO keeps the remaining defs' pairing intact (positions align).
    struct DeadDef
    {
        int origin;
        QueueId queue;
    };
    std::vector<DeadDef> dead;
    removeOps(fn, [&](const Op& op) {
        if (op.opcode == Opcode::kDeq && op.dst == reg) {
            dead.push_back({op.origin, op.queue});
            return true;
        }
        return false;
    });
    for (const DeadDef& d : dead) {
        // If the value arrived through an RA chain, the producer feeds
        // the chain-head queue instead.
        QueueId q = chainHeadQueue(pipeline, d.queue);
        for (auto& stage : pipeline.stages) {
            removeOps(*stage, [&](const Op& op) {
                return op.opcode == Opcode::kEnq && op.origin == d.origin &&
                       op.queue == q;
            });
        }
    }
    // Remove pure recompute clones whose dst is dead.
    removeOps(fn, [&](const Op& op) {
        return ir::isPure(op.opcode) && op.dst == reg;
    });
    if (report != nullptr)
        report->note("removed dead bound r" + std::to_string(reg) +
                     " in stage " + std::to_string(s));
}

} // namespace

// ---------------------------------------------------------------------
// Pass 3: reference accelerators.
// ---------------------------------------------------------------------

namespace {

struct RAKey
{
    int producerStage;
    int consumerStage;
    std::string array;

    bool
    operator<(const RAKey& o) const
    {
        return std::tie(producerStage, consumerStage, array) <
               std::tie(o.producerStage, o.consumerStage, o.array);
    }
};

/**
 * Reference accelerators are configured with a fixed base address; an
 * array slot whose binding rotates (kSwapArr double buffers) cannot be
 * offloaded to one.
 */
bool
arraySlotIsSwapped(const ir::Pipeline& pipeline, ir::ArrayId arr)
{
    for (const auto& stage : pipeline.stages) {
        bool swapped = false;
        ir::forEachOp(stage->body, [&](const Op& op) {
            if (op.opcode == Opcode::kSwapArr &&
                (op.arr == arr || op.arr2 == arr)) {
                swapped = true;
            }
        });
        if (swapped)
            return true;
    }
    return false;
}

/** One producer-side INDIRECT offload; returns true if applied. */
bool
tryIndirectOffload(ir::Pipeline& pipeline, std::map<RAKey, int>& ra_index,
                   PassReport* report, int max_ras, int skip_consumer)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        bool applied = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            if (applied)
                return;
            for (size_t i = 0; i + 1 < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kOp ||
                    region[i + 1]->kind() != ir::StmtKind::kOp) {
                    continue;
                }
                Op& load = ir::stmtCast<ir::OpStmt>(region[i].get())->op;
                Op& enq =
                    ir::stmtCast<ir::OpStmt>(region[i + 1].get())->op;
                if (load.opcode != Opcode::kLoad ||
                    enq.opcode != Opcode::kEnq ||
                    enq.src[0] != load.dst ||
                    enq.origin != load.origin) {
                    continue;
                }
                // The loaded value must only feed this enq, and the
                // queue's control values (if any) would not survive the
                // re-routing of the data stream.
                if (regReadCount(fn, load.dst) != 1)
                    continue;
                if (queueCarriesCtrl(pipeline, enq.queue))
                    continue;
                if (arraySlotIsSwapped(pipeline, load.arr))
                    continue;
                auto [cons_stage, deq] =
                    findDeqOnQueue(pipeline, enq.queue, load.origin);
                if (deq == nullptr || cons_stage == skip_consumer)
                    continue;

                RAKey key{static_cast<int>(s), cons_stage,
                          fn.arrays[static_cast<size_t>(load.arr)].name};
                int ra;
                auto it = ra_index.find(key);
                if (it != ra_index.end() &&
                    pipeline.ras[static_cast<size_t>(it->second)].mode ==
                        ir::RAMode::kIndirect) {
                    ra = it->second;
                } else {
                    if (static_cast<int>(pipeline.ras.size()) >= max_ras)
                        continue;
                    ir::RAConfig cfg;
                    cfg.mode = ir::RAMode::kIndirect;
                    cfg.arrayName = key.array;
                    cfg.elem =
                        fn.arrays[static_cast<size_t>(load.arr)].elem;
                    cfg.inQueue = newQueueId(pipeline);
                    cfg.outQueue = cfg.inQueue + 1;
                    pipeline.ras.push_back(cfg);
                    ra = static_cast<int>(pipeline.ras.size()) - 1;
                    ra_index[key] = ra;
                }
                const ir::RAConfig& cfg =
                    pipeline.ras[static_cast<size_t>(ra)];

                // Producer: load + enq(value) -> enq(index to RA).
                Op idx_enq = makeOp(fn, Opcode::kEnq);
                idx_enq.queue = cfg.inQueue;
                idx_enq.src[0] = load.src[0];
                idx_enq.origin = load.origin;
                int origin = load.origin;
                region.erase(region.begin() + static_cast<long>(i),
                             region.begin() + static_cast<long>(i) + 2);
                insertOpAt(region, i, fn, idx_enq);
                // Consumer: deq from the RA output.
                deq->op.queue = cfg.outQueue;
                if (report != nullptr)
                    report->note(
                        "RA(indirect " + key.array + "): offloaded load op " +
                        std::to_string(origin) + " from stage " +
                        std::to_string(s));
                applied = true;
                return;
            }
        });
        if (applied)
            return true;
    }
    return false;
}

/** One producer-side SCAN offload (with chaining); true if applied. */
bool
tryScanOffload(ir::Pipeline& pipeline, PassReport* report, int max_ras,
               int skip_consumer)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        bool applied = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            if (applied)
                return;
            for (size_t i = 0; i < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kFor)
                    continue;
                auto* f = ir::stmtCast<ir::ForStmt>(region[i].get());
                if (f->body.size() != 2 ||
                    f->body[0]->kind() != ir::StmtKind::kOp ||
                    f->body[1]->kind() != ir::StmtKind::kOp) {
                    continue;
                }
                Op& load =
                    ir::stmtCast<ir::OpStmt>(f->body[0].get())->op;
                Op& enq = ir::stmtCast<ir::OpStmt>(f->body[1].get())->op;
                if (load.opcode != Opcode::kLoad ||
                    load.src[0] != f->var ||
                    enq.opcode != Opcode::kEnq ||
                    enq.src[0] != load.dst ||
                    enq.origin != load.origin) {
                    continue;
                }
                if (regReadCount(fn, load.dst) != 1)
                    continue;
                if (arraySlotIsSwapped(pipeline, load.arr))
                    continue;
                auto [cons_stage, deq] =
                    findDeqOnQueue(pipeline, enq.queue, load.origin);
                if (deq == nullptr || cons_stage == skip_consumer)
                    continue;
                if (static_cast<int>(pipeline.ras.size()) >= max_ras)
                    continue;

                QueueId old_q = enq.queue;
                ir::RAConfig cfg;
                cfg.mode = ir::RAMode::kScan;
                cfg.arrayName =
                    fn.arrays[static_cast<size_t>(load.arr)].name;
                cfg.elem = fn.arrays[static_cast<size_t>(load.arr)].elem;
                cfg.outQueue = newQueueId(pipeline);
                int origin = load.origin;

                // Chaining: if the bounds come straight from an RA output
                // queue and are used nowhere else, feed that RA into this
                // one and drop the plumbing.
                bool chained = false;
                ir::OpStmt* start_def = nullptr;
                ir::OpStmt* bound_def = nullptr;
                forEachRegionOf(fn, [&](ir::Region& r2) {
                    for (auto& st : r2) {
                        if (st->kind() != ir::StmtKind::kOp)
                            continue;
                        auto* os = ir::stmtCast<ir::OpStmt>(st.get());
                        if (os->op.opcode != Opcode::kDeq)
                            continue;
                        if (os->op.dst == f->start)
                            start_def = os;
                        if (os->op.dst == f->bound)
                            bound_def = os;
                    }
                });
                if (start_def != nullptr && bound_def != nullptr &&
                    start_def->op.queue == bound_def->op.queue &&
                    raProducing(pipeline, start_def->op.queue) >= 0 &&
                    regReadCount(fn, f->start) == 1 &&
                    regReadCount(fn, f->bound) == 1) {
                    cfg.inQueue = start_def->op.queue;
                    int sd = start_def->op.id;
                    int bd = bound_def->op.id;
                    removeOps(fn, [&](const Op& op) {
                        return op.id == sd || op.id == bd;
                    });
                    chained = true;
                } else {
                    // newQueueId() is unaware of cfg until it is pushed,
                    // so allocate the input above the fresh output id.
                    cfg.inQueue = cfg.outQueue + 1;
                }

                pipeline.ras.push_back(cfg);

                // Replace the loop with the range enqueue pair (unless
                // chained, in which case the RA chain carries the range).
                // Erasing destroys the ForStmt `f` points into, so take
                // what we still need first.
                ir::RegId range_start = f->start;
                ir::RegId range_bound = f->bound;
                size_t pos = i;
                region.erase(region.begin() + static_cast<long>(pos));
                if (!chained) {
                    Op e1 = makeOp(fn, Opcode::kEnq);
                    e1.queue = cfg.inQueue;
                    e1.src[0] = range_start;
                    e1.origin = origin;
                    Op e2 = makeOp(fn, Opcode::kEnq);
                    e2.queue = cfg.inQueue;
                    e2.src[0] = range_bound;
                    e2.origin = origin;
                    insertOpAt(region, pos, fn, e1);
                    insertOpAt(region, pos + 1, fn, e2);
                }

                // Control values previously sent on the data queue now
                // enter the RA chain and pass through. When the range
                // itself arrives through an upstream RA (chained), this
                // stage no longer gates the stream, so the control value
                // must move to the producer feeding the chain head
                // (otherwise it could overtake buffered data).
                if (!chained) {
                    retargetQueue(fn,
                                  [&](const Op& op) {
                                      return op.opcode ==
                                                 Opcode::kEnqCtrl &&
                                             op.queue == old_q;
                                  },
                                  cfg.inQueue);
                } else {
                    QueueId head = chainHeadQueue(pipeline, cfg.inQueue);
                    int head_prod = producerStageOf(pipeline, head);
                    std::vector<Op> moved_ctrls;
                    removeOps(fn, [&](const Op& op) {
                        if (op.opcode == Opcode::kEnqCtrl &&
                            op.queue == old_q) {
                            moved_ctrls.push_back(op);
                            return true;
                        }
                        return false;
                    });
                    if (head_prod >= 0) {
                        ir::Function& hp = *pipeline.stages[
                            static_cast<size_t>(head_prod)];
                        for (const Op& c : moved_ctrls) {
                            LoopRef anchor =
                                findLoopWithOrigin(hp, c.origin);
                            Op moved = c;
                            moved.queue = head;
                            moved.id = hp.nextOpId++;
                            if (anchor.stmt != nullptr) {
                                insertOpAt(*anchor.parent,
                                           anchor.index + 1, hp, moved);
                            } else {
                                // Fall back to the end of the body.
                                insertOpAt(hp.body, hp.body.size(), hp,
                                           moved);
                            }
                        }
                    }
                }

                deq->op.queue = cfg.outQueue;
                if (report != nullptr)
                    report->note("RA(scan " + cfg.arrayName +
                                 "): offloaded loop around load op " +
                                 std::to_string(origin) + " from stage " +
                                 std::to_string(s) +
                                 (chained ? " (chained)" : ""));
                applied = true;
                return;
            }
        });
        if (applied)
            return true;
    }
    return false;
}

/**
 * Chain two reference accelerators through a plumbing stage: when every
 * deq of an RA-output queue qa in some stage merely forwards the value
 * into an RA-input queue qb, splice RA(qb).in = qa, delete the plumbing
 * ops, and relocate qb's control-value senders to the new chain head.
 */
bool
tryPlumbingElision(ir::Pipeline& pipeline, PassReport* report)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];

        // Candidate (qa, qb) pairs from adjacent deq/enq ops.
        std::map<QueueId, QueueId> pair_of;  // qa -> qb
        bool broken = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            for (size_t i = 0; i < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kOp)
                    continue;
                const Op& op =
                    ir::stmtCast<ir::OpStmt>(region[i].get())->op;
                if (op.opcode != Opcode::kDeq)
                    continue;
                if (raProducing(pipeline, op.queue) < 0)
                    continue;
                // Must be immediately forwarded.
                if (i + 1 >= region.size() ||
                    region[i + 1]->kind() != ir::StmtKind::kOp) {
                    continue;
                }
                const Op& next =
                    ir::stmtCast<ir::OpStmt>(region[i + 1].get())->op;
                if (next.opcode != Opcode::kEnq ||
                    next.src[0] != op.dst ||
                    regReadCount(fn, op.dst) != 1) {
                    continue;
                }
                auto [it, fresh] = pair_of.try_emplace(op.queue,
                                                       next.queue);
                if (!fresh && it->second != next.queue)
                    broken = true;
            }
        });
        if (broken)
            continue;

        for (const auto& [qa, qb] : pair_of) {
            // qb must be an RA input, and every deq of qa / enq of qb in
            // this stage must belong to forwarding pairs.
            int target_ra = -1;
            for (size_t i = 0; i < pipeline.ras.size(); ++i)
                if (pipeline.ras[i].inQueue == qb)
                    target_ra = static_cast<int>(i);
            if (target_ra < 0)
                continue;

            int deqs = 0, enqs = 0, pairs = 0;
            forEachRegionOf(fn, [&](ir::Region& region) {
                for (size_t i = 0; i < region.size(); ++i) {
                    if (region[i]->kind() != ir::StmtKind::kOp)
                        continue;
                    const Op& op =
                        ir::stmtCast<ir::OpStmt>(region[i].get())->op;
                    if (op.opcode == Opcode::kDeq && op.queue == qa)
                        deqs++;
                    if (op.opcode == Opcode::kEnq && op.queue == qb)
                        enqs++;
                    if (op.opcode == Opcode::kDeq && op.queue == qa &&
                        i + 1 < region.size() &&
                        region[i + 1]->kind() == ir::StmtKind::kOp) {
                        const Op& nx = ir::stmtCast<ir::OpStmt>(
                                           region[i + 1].get())
                                           ->op;
                        if (nx.opcode == Opcode::kEnq &&
                            nx.queue == qb && nx.src[0] == op.dst &&
                            regReadCount(fn, op.dst) == 1) {
                            pairs++;
                        }
                    }
                }
            });
            if (pairs == 0 || deqs != pairs || enqs != pairs)
                continue;
            // Nobody else may consume qa or produce qb.
            bool conflict = false;
            for (size_t o = 0; o < pipeline.stages.size(); ++o) {
                if (o == s)
                    continue;
                ir::forEachOp(pipeline.stages[o]->body, [&](const Op& op) {
                    if (isDeqOp(op.opcode) && op.queue == qa)
                        conflict = true;
                    if (op.opcode == Opcode::kEnq && op.queue == qb)
                        conflict = true;
                });
            }
            if (conflict)
                continue;

            // Splice.
            pipeline.ras[static_cast<size_t>(target_ra)].inQueue = qa;
            // Remove the forwarding pairs.
            std::set<RegId> fwd_regs;
            forEachRegionOf(fn, [&](ir::Region& region) {
                for (auto& st : region) {
                    if (st->kind() != ir::StmtKind::kOp)
                        continue;
                    const Op& op =
                        ir::stmtCast<ir::OpStmt>(st.get())->op;
                    if (op.opcode == Opcode::kDeq && op.queue == qa)
                        fwd_regs.insert(op.dst);
                }
            });
            removeOps(fn, [&](const Op& op) {
                if (op.opcode == Opcode::kDeq && op.queue == qa)
                    return true;
                return op.opcode == Opcode::kEnq && op.queue == qb &&
                       fwd_regs.count(op.src[0]) != 0;
            });

            // Relocate this stage's control senders on qb to the chain
            // head: they gated the stream here, but the stream no longer
            // passes through this stage.
            QueueId head = chainHeadQueue(pipeline, qa);
            int head_prod = producerStageOf(pipeline, head);
            std::vector<Op> moved;
            removeOps(fn, [&](const Op& op) {
                if (op.opcode == Opcode::kEnqCtrl && op.queue == qb) {
                    moved.push_back(op);
                    return true;
                }
                return false;
            });
            if (head_prod >= 0) {
                ir::Function& hp =
                    *pipeline.stages[static_cast<size_t>(head_prod)];
                for (const Op& c : moved) {
                    LoopRef anchor = findLoopWithOrigin(hp, c.origin);
                    Op mc = c;
                    mc.queue = head;
                    mc.id = hp.nextOpId++;
                    if (anchor.stmt != nullptr) {
                        insertOpAt(*anchor.parent, anchor.index + 1, hp,
                                   mc);
                    } else {
                        insertOpAt(hp.body, hp.body.size(), hp, mc);
                    }
                }
            }

            if (report != nullptr)
                report->note("chained RA via plumbing elision in stage " +
                             std::to_string(s));
            return true;
        }
    }
    return false;
}

/**
 * Delete a control-value while loop that only forwards an RA output
 * stream into another RA's input:
 *
 *   while { x1 = deq(qa); if (is_control(x1)) break;
 *           x2 = deq(qa); enq(qb, x1); enq(qb, x2); }
 *
 * becomes RA(qb).in = qa; the control value that paced the loop flows
 * through the chain and becomes the downstream delimiter, so an
 * equivalent delimiter this stage used to send on qb is dropped.
 */
bool
tryForwardingWhileElision(ir::Pipeline& pipeline, PassReport* report)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        bool applied = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            if (applied)
                return;
            for (size_t i = 0; i < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kWhile)
                    continue;
                auto* w = ir::stmtCast<ir::WhileStmt>(region[i].get());
                ir::OpStmt* driver = matchCvWhile(w);
                if (driver == nullptr)
                    continue;
                QueueId qa = driver->op.queue;
                if (raProducing(pipeline, qa) < 0)
                    continue;

                // Collect the rest of the body: deqs of qa and enqs of
                // one RA-input queue qb, order-preserving.
                std::vector<const Op*> deq_list{&driver->op};
                std::vector<const Op*> enq_list;
                QueueId qb = ir::kNoQueue;
                bool ok = true;
                for (size_t k = 3; k < w->body.size(); ++k) {
                    if (w->body[k]->kind() != ir::StmtKind::kOp) {
                        ok = false;
                        break;
                    }
                    const Op& op =
                        ir::stmtCast<ir::OpStmt>(w->body[k].get())->op;
                    if (op.opcode == Opcode::kDeq && op.queue == qa) {
                        deq_list.push_back(&op);
                    } else if (op.opcode == Opcode::kEnq) {
                        if (qb == ir::kNoQueue)
                            qb = op.queue;
                        if (op.queue != qb) {
                            ok = false;
                            break;
                        }
                        enq_list.push_back(&op);
                    } else {
                        ok = false;
                        break;
                    }
                }
                if (!ok || qb == ir::kNoQueue ||
                    enq_list.size() != deq_list.size()) {
                    continue;
                }
                for (size_t k = 0; k < enq_list.size(); ++k) {
                    if (enq_list[k]->src[0] != deq_list[k]->dst)
                        ok = false;
                }
                if (!ok)
                    continue;
                int target_ra = -1;
                for (size_t r = 0; r < pipeline.ras.size(); ++r)
                    if (pipeline.ras[r].inQueue == qb)
                        target_ra = static_cast<int>(r);
                if (target_ra < 0)
                    continue;
                // Exclusivity.
                bool conflict = false;
                for (size_t o = 0; o < pipeline.stages.size(); ++o) {
                    ir::forEachOp(pipeline.stages[o]->body,
                                  [&](const Op& op) {
                        if (o != s && isDeqOp(op.opcode) &&
                            op.queue == qa) {
                            conflict = true;
                        }
                        if (o != s && op.opcode == Opcode::kEnq &&
                            op.queue == qb) {
                            conflict = true;
                        }
                    });
                }
                if (conflict)
                    continue;

                // Splice and delete the loop.
                pipeline.ras[static_cast<size_t>(target_ra)].inQueue = qa;
                region.erase(region.begin() + static_cast<long>(i));

                // The pacing control value on qa now delimits downstream;
                // drop this stage's equivalent delimiter on qb, or
                // relocate it to the chain head if none equivalent flows.
                QueueId head = chainHeadQueue(pipeline, qa);
                int head_prod = producerStageOf(pipeline, head);
                std::vector<Op> moved;
                removeOps(fn, [&](const Op& op) {
                    if (op.opcode == Opcode::kEnqCtrl && op.queue == qb) {
                        moved.push_back(op);
                        return true;
                    }
                    return false;
                });
                if (head_prod >= 0) {
                    ir::Function& hp =
                        *pipeline.stages[static_cast<size_t>(head_prod)];
                    for (const Op& c : moved) {
                        bool duplicate = false;
                        ir::forEachOp(hp.body, [&](const Op& op) {
                            if (op.opcode == Opcode::kEnqCtrl &&
                                op.queue == head &&
                                op.origin == c.origin) {
                                duplicate = true;
                            }
                        });
                        if (duplicate)
                            continue;
                        LoopRef anchor = findLoopWithOrigin(hp, c.origin);
                        Op mc = c;
                        mc.queue = head;
                        mc.id = hp.nextOpId++;
                        if (anchor.stmt != nullptr) {
                            insertOpAt(*anchor.parent, anchor.index + 1,
                                       hp, mc);
                        } else {
                            insertOpAt(hp.body, hp.body.size(), hp, mc);
                        }
                    }
                }
                if (report != nullptr)
                    report->note(
                        "chained RA by eliding forwarding loop in stage " +
                        std::to_string(s));
                applied = true;
                return;
            }
        });
        if (applied)
            return true;
    }
    return false;
}

/** Does a stage still do externally visible work? */
bool
stageHasWork(const ir::Function& fn)
{
    bool work = false;
    ir::forEachOp(fn.body, [&](const Op& op) {
        switch (op.opcode) {
          case Opcode::kStore:
          case Opcode::kAtomicMin:
          case Opcode::kAtomicAdd:
          case Opcode::kAtomicFAdd:
          case Opcode::kAtomicOr:
          case Opcode::kSwapArr:
          case Opcode::kEnq:
          case Opcode::kEnqCtrl:
          case Opcode::kEnqDist:
          case Opcode::kBarrier:
          case Opcode::kPrefetch:
            work = true;
            break;
          default:
            break;
        }
    });
    for (const auto& h : fn.handlers) {
        ir::forEachOp(h.body, [&](const Op& op) {
            if (isEnqOp(op.opcode))
                work = true;
        });
    }
    return work;
}

/** Remove stages that only consume values and drive no effects. */
void
dropDeadStages(ir::Pipeline& pipeline, PassReport* report)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto& stage : pipeline.stages)
            pruneEmptyStructures(stage->body);

        for (size_t s = 0; s < pipeline.stages.size(); ++s) {
            ir::Function& fn = *pipeline.stages[s];
            if (stageHasWork(fn))
                continue;
            // Queues this stage consumes.
            std::set<QueueId> consumed;
            ir::forEachOp(fn.body, [&](const Op& op) {
                if (isDeqOp(op.opcode))
                    consumed.insert(op.queue);
            });
            // Only drop when every consumed queue is stage-produced
            // (removing RA chains is handled elsewhere).
            bool ok = true;
            for (QueueId q : consumed) {
                if (raProducing(pipeline, q) >= 0)
                    ok = false;
            }
            if (!ok)
                continue;
            if (report != nullptr)
                report->note("dropped stage " + fn.name +
                             " (control-only after offloading)");
            // Remove the producers' enqs into the dropped queues.
            for (auto& other : pipeline.stages) {
                if (other.get() == &fn)
                    continue;
                removeOps(*other, [&](const Op& op) {
                    return isEnqOp(op.opcode) &&
                           consumed.count(op.queue) != 0;
                });
            }
            pipeline.stages.erase(pipeline.stages.begin() +
                                  static_cast<long>(s));
            changed = true;
            break;
        }
    }
}

} // namespace

void
accelerateAccesses(ir::Pipeline& pipeline, PassReport* report, int max_ras,
                   int skip_consumer_stage)
{
    std::map<RAKey, int> ra_index;
    // Offloading removes one def's enq and retargets its deq; shared
    // queues keep their remaining defs' pairing, so no splitting needed.
    // SCAN patterns get priority: a whole loop offload is strictly better
    // than per-element indirection on the same load.
    bool any = true;
    while (any) {
        any = false;
        if (tryScanOffload(pipeline, report, max_ras,
                           skip_consumer_stage)) {
            any = true;
        } else if (tryIndirectOffload(pipeline, ra_index, report, max_ras,
                                      skip_consumer_stage)) {
            any = true;
        } else if (tryPlumbingElision(pipeline, report)) {
            any = true;
        } else if (tryForwardingWhileElision(pipeline, report)) {
            any = true;
        }
    }
    dropDeadStages(pipeline, report);
    refreshQueueMetadata(pipeline);
}

// ---------------------------------------------------------------------
// Forwarding of multi-consumer values.
// ---------------------------------------------------------------------

void
forwardValues(ir::Pipeline& pipeline, PassReport* report)
{
    int n = static_cast<int>(pipeline.stages.size());
    for (int r = 0; r < n; ++r) {
        ir::Function& fn = *pipeline.stages[static_cast<size_t>(r)];
        // Collect this stage's loop-hot enqs grouped by origin. Values
        // produced at shallow nesting (per-round scalars) stay broadcast
        // on shared queues: forwarding them would burn dedicated queue
        // ids for negligible gain.
        std::map<int, std::vector<QueueId>> by_origin;
        ir::walkOps(fn.body, [&](const Op& op, const ir::WalkContext& ctx) {
            if (op.opcode == Opcode::kEnq && ctx.loopDepth() >= 2)
                by_origin[op.origin].push_back(op.queue);
        });
        for (const auto& [origin, queues] : by_origin) {
            if (queues.size() < 2)
                continue;
            // Locate each consumer.
            struct Leg
            {
                QueueId queue;
                int stage;
            };
            std::vector<Leg> legs;
            bool ok = true;
            for (QueueId q : queues) {
                auto [s, deq] = findDeqOnQueue(pipeline, q, origin);
                if (deq == nullptr || s == r) {
                    ok = false;
                    break;
                }
                legs.push_back({q, s});
            }
            if (!ok)
                continue;
            // Each leg must own its queue before its enq can move to a
            // different stage; otherwise a shared per-(producer,
            // consumer) FIFO would gain a second producer and lose its
            // positional ordering.
            for (auto& leg : legs)
                leg.queue = splitQueueForDef(pipeline, origin, leg.queue);
            // Order by pipeline distance from the producer.
            std::sort(legs.begin(), legs.end(),
                      [&](const Leg& a, const Leg& b) {
                          return (a.stage - r + n) % n <
                                 (b.stage - r + n) % n;
                      });
            // Move every leg but the first into the previous consumer.
            for (size_t i = 1; i < legs.size(); ++i) {
                QueueId q = legs[i].queue;
                Op moved;
                bool captured = false;
                removeOps(fn, [&](const Op& op) {
                    if (!captured && op.opcode == Opcode::kEnq &&
                        op.origin == origin && op.queue == q) {
                        moved = op;
                        captured = true;
                        return true;
                    }
                    return false;
                });
                if (!captured)
                    continue;
                ir::Function& prev = *pipeline.stages[
                    static_cast<size_t>(legs[i - 1].stage)];
                // Insert right after the previous consumer's deq.
                bool inserted = false;
                forEachRegionOf(prev, [&](ir::Region& region) {
                    if (inserted)
                        return;
                    for (size_t k = 0; k < region.size(); ++k) {
                        if (region[k]->kind() != ir::StmtKind::kOp)
                            continue;
                        const Op& op =
                            ir::stmtCast<ir::OpStmt>(region[k].get())->op;
                        if (op.opcode == Opcode::kDeq &&
                            op.origin == origin &&
                            op.queue == legs[i - 1].queue) {
                            Op fwd = moved;
                            fwd.id = prev.nextOpId++;
                            insertOpAt(region, k + 1, prev, fwd);
                            inserted = true;
                            return;
                        }
                    }
                });
                phloem_assert(inserted, "lost a forwarded enq");
                if (report != nullptr)
                    report->note("forwarded value (origin " +
                                 std::to_string(origin) +
                                 ") through stage " +
                                 std::to_string(legs[i - 1].stage));
            }
        }
    }
    refreshQueueMetadata(pipeline);
}

// ---------------------------------------------------------------------
// Pass 4: control values.
// ---------------------------------------------------------------------

namespace {

/**
 * Try to convert one consumer For loop into a control-value-terminated
 * while loop. Returns true if a transformation happened.
 */
bool
tryControlValueLoop(ir::Pipeline& pipeline, PassReport* report)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        bool applied = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            if (applied)
                return;
            for (size_t i = 0; i < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kFor)
                    continue;
                auto* f = ir::stmtCast<ir::ForStmt>(region[i].get());

                // Optional filter shape: body == [deq c; if (c) {...}].
                ir::Region* inner = &f->body;
                ir::OpStmt* cond_deq = nullptr;
                ir::IfStmt* filter_if = nullptr;
                if (f->body.size() == 2 &&
                    f->body[0]->kind() == ir::StmtKind::kOp &&
                    f->body[1]->kind() == ir::StmtKind::kIf) {
                    auto* cd = ir::stmtCast<ir::OpStmt>(f->body[0].get());
                    auto* fi = ir::stmtCast<ir::IfStmt>(f->body[1].get());
                    if (cd->op.opcode == Opcode::kDeq &&
                        fi->cond == cd->op.dst && fi->elseBody.empty() &&
                        regReadCount(fn, cd->op.dst) == 1) {
                        cond_deq = cd;
                        filter_if = fi;
                        inner = &fi->thenBody;
                    }
                }

                if (inner->empty() ||
                    (*inner)[0]->kind() != ir::StmtKind::kOp) {
                    continue;
                }
                Op first = ir::stmtCast<ir::OpStmt>((*inner)[0].get())->op;
                if (first.opcode != Opcode::kDeq)
                    continue;
                // The induction variable must be dead inside the loop.
                if (regReadCount(fn, f->var) != 0)
                    continue;

                // Route the def through a dedicated queue. Queues fed by
                // an RA are already dedicated; splitting them would sever
                // the RA plumbing.
                QueueId q;
                if (raProducing(pipeline, first.queue) >= 0) {
                    q = first.queue;
                } else {
                    q = splitQueueForDef(pipeline, first.origin,
                                         first.queue);
                }

                // Find a delimiter source.
                int scan_ra = delimiterRA(pipeline, q);
                int producer = -1;
                LoopRef prod_loop;
                if (scan_ra < 0) {
                    QueueId head = chainHeadQueue(pipeline, q);
                    producer = producerStageOf(pipeline, head);
                    if (producer < 0)
                        continue;
                    prod_loop = findLoopWithOrigin(
                        *pipeline.stages[static_cast<size_t>(producer)],
                        f->origin);
                    if (prod_loop.stmt == nullptr)
                        continue;
                    // Delimiter goes into the chain-head queue.
                    q = head;
                }

                // Build the replacement while loop.
                auto w = std::make_unique<ir::WhileStmt>();
                w->id = fn.nextStmtId++;
                w->origin = f->origin;

                // Move the inner body across, keeping the deq first.
                ir::Region moved = std::move(*inner);
                // With the body detached, remaining reads of the deq's
                // dst are the ones *outside* the loop (after it, or in
                // the next outer iteration). If any exist, dequeue into
                // a scratch register and copy to the real def only on
                // the data path — the terminating control value must
                // not clobber a live-out value. Pure forwarding loops
                // keep the direct form so RA chaining still recognizes
                // them.
                bool live_out = first.dst != ir::kNoReg &&
                                regReadCount(fn, first.dst) > 0;
                RegId deq_dst = first.dst;
                if (live_out) {
                    deq_dst = fn.newReg("cvv");
                    ir::stmtCast<ir::OpStmt>(moved[0].get())->op.dst =
                        deq_dst;
                }
                Op isc = makeOp(fn, Opcode::kIsControl);
                isc.dst = fn.newReg("cv");
                isc.src[0] = deq_dst;
                auto isc_stmt = std::make_unique<ir::OpStmt>(isc);
                isc_stmt->id = fn.nextStmtId++;
                auto brk_if = std::make_unique<ir::IfStmt>();
                brk_if->id = fn.nextStmtId++;
                brk_if->cond = isc.dst;
                auto brk = std::make_unique<ir::BreakStmt>(1);
                brk->id = fn.nextStmtId++;
                brk_if->thenBody.push_back(std::move(brk));

                w->body.push_back(std::move(moved[0]));  // the deq
                w->body.push_back(std::move(isc_stmt));
                w->body.push_back(std::move(brk_if));
                if (live_out) {
                    Op mv = makeOp(fn, Opcode::kMov);
                    mv.dst = first.dst;
                    mv.src[0] = deq_dst;
                    mv.origin = first.origin;
                    auto mv_stmt = std::make_unique<ir::OpStmt>(mv);
                    mv_stmt->id = fn.nextStmtId++;
                    w->body.push_back(std::move(mv_stmt));
                }
                for (size_t k = 1; k < moved.size(); ++k)
                    w->body.push_back(std::move(moved[k]));

                RegId start = f->start;
                RegId bound = f->bound;
                int forigin = f->origin;
                // The cond deq lives in the For body that the region
                // assignment below destroys; capture its identity first.
                int cd_origin = cond_deq != nullptr ? cond_deq->op.origin
                                                    : -1;
                QueueId cd_queue = cond_deq != nullptr
                                       ? cond_deq->op.queue
                                       : ir::kNoQueue;
                region[i] = std::move(w);

                // Remove the filter plumbing: the producer-side enq that
                // fed the filter condition. Match the queue as well as
                // the origin — another stage may consume the same def
                // through its own queue, and that copy must survive.
                if (cond_deq != nullptr) {
                    (void)filter_if;
                    for (auto& st : pipeline.stages) {
                        removeOps(*st, [&](const Op& op) {
                            return op.opcode == Opcode::kEnq &&
                                   op.origin == cd_origin &&
                                   op.queue == cd_queue;
                        });
                    }
                }

                // Install the delimiter.
                if (scan_ra >= 0) {
                    pipeline.ras[static_cast<size_t>(scan_ra)]
                        .emitRangeCtrl = true;
                    pipeline.ras[static_cast<size_t>(scan_ra)]
                        .rangeCtrlCode = ir::kCtrlNext;
                } else {
                    ir::Function& pf =
                        *pipeline.stages[static_cast<size_t>(producer)];
                    Op ctrl = makeOp(pf, Opcode::kEnqCtrl);
                    ctrl.queue = q;
                    ctrl.imm = ir::kCtrlNext;
                    ctrl.origin = forigin;
                    insertOpAt(*prod_loop.parent, prod_loop.index + 1, pf,
                               ctrl);
                }

                // Dead bound cleanup.
                cleanupDeadMaterialization(pipeline, static_cast<int>(s),
                                           start, report);
                cleanupDeadMaterialization(pipeline, static_cast<int>(s),
                                           bound, report);
                if (report != nullptr)
                    report->note("CV: stage " + std::to_string(s) +
                                 " loop (origin " + std::to_string(forigin) +
                                 ") now terminates on a control value");
                applied = true;
                return;
            }
        });
        if (applied)
            return true;
    }
    return false;
}

/**
 * Sweep every stage for deq ops whose destination is never read and
 * remove them together with the matching producer enqs. Runs to a
 * fixpoint: removing a forwarded leg can make the forwarder's own copy
 * dead. Stream-driving deqs (first statement of a while, or with a
 * handler) are kept — they pace the loop even if the value is unused.
 */
void
cleanupAllDead(ir::Pipeline& pipeline, PassReport* report)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t s = 0; s < pipeline.stages.size(); ++s) {
            ir::Function& fn = *pipeline.stages[s];
            // Deq dsts that head a while loop are stream drivers.
            std::set<RegId> drivers;
            forEachRegionOf(fn, [&](ir::Region& region) {
                for (auto& st : region) {
                    if (st->kind() != ir::StmtKind::kWhile)
                        continue;
                    auto* w = ir::stmtCast<ir::WhileStmt>(st.get());
                    if (!w->body.empty() &&
                        w->body[0]->kind() == ir::StmtKind::kOp) {
                        const Op& op =
                            ir::stmtCast<ir::OpStmt>(w->body[0].get())->op;
                        if (op.opcode == Opcode::kDeq)
                            drivers.insert(op.dst);
                    }
                }
            });
            std::set<RegId> dead;
            ir::forEachOp(fn.body, [&](const Op& op) {
                if (op.opcode != Opcode::kDeq || drivers.count(op.dst))
                    return;
                if (fn.handlerFor(op.queue) != nullptr)
                    return;
                if (regReadCount(fn, op.dst) == 0)
                    dead.insert(op.dst);
            });
            for (RegId reg : dead) {
                cleanupDeadMaterialization(pipeline, static_cast<int>(s),
                                           reg, report);
                changed = true;
            }
        }
    }
}

} // namespace

void
useControlValues(ir::Pipeline& pipeline, PassReport* report)
{
    while (tryControlValueLoop(pipeline, report)) {
    }
    cleanupAllDead(pipeline, report);
    refreshQueueMetadata(pipeline);
}

// ---------------------------------------------------------------------
// Pass 6: inter-stage DCE of control values.
// ---------------------------------------------------------------------

namespace {

/**
 * Remove the old per-group delimiter for queue q (emitted per iteration
 * of the loop with the given origin). Returns true if one was removed.
 */
bool
removeGroupDelimiter(ir::Pipeline& pipeline, QueueId q, int group_origin)
{
    int scan_ra = delimiterRA(pipeline, q);
    if (scan_ra >= 0 &&
        pipeline.ras[static_cast<size_t>(scan_ra)].emitRangeCtrl) {
        pipeline.ras[static_cast<size_t>(scan_ra)].emitRangeCtrl = false;
        return true;
    }
    QueueId head = chainHeadQueue(pipeline, q);
    int removed = 0;
    for (auto& st : pipeline.stages) {
        removed += removeOps(*st, [&](const Op& op) {
            return op.opcode == Opcode::kEnqCtrl && op.queue == head &&
                   op.origin == group_origin;
        });
    }
    if (removed == 0) {
        for (auto& st : pipeline.stages) {
            removed += removeOps(*st, [&](const Op& op) {
                return op.opcode == Opcode::kEnqCtrl && op.queue == head &&
                       op.imm == ir::kCtrlNext;
            });
        }
    }
    return removed > 0;
}

/**
 * Install a delimiter for queue q emitted once per iteration of the
 * producer-side loop with origin `outer_origin`. Returns false when no
 * such producer loop exists.
 */
bool
installOuterDelimiter(ir::Pipeline& pipeline, QueueId q, int outer_origin)
{
    QueueId head = chainHeadQueue(pipeline, q);
    int producer = producerStageOf(pipeline, head);
    if (producer < 0)
        return false;
    ir::Function& pf = *pipeline.stages[static_cast<size_t>(producer)];
    LoopRef anchor = findLoopWithOrigin(pf, outer_origin);
    if (anchor.stmt == nullptr)
        return false;
    Op ctrl = makeOp(pf, Opcode::kEnqCtrl);
    ctrl.queue = head;
    ctrl.imm = ir::kCtrlNext;
    ctrl.origin = outer_origin;
    insertOpAt(*anchor.parent, anchor.index + 1, pf, ctrl);
    return true;
}

/**
 * Pattern B: a control-value while loop whose only purpose is to pace an
 * inner control-value while (the consumer does not care which group an
 * element came from):
 *
 *   while { x = deq(qd); if (is_control(x)) break;
 *           while { v = deq(q); if (is_control(v)) break; body } }
 *
 * with x otherwise unused collapses to the inner loop; the pacing stream
 * qd is deleted at both ends and q's delimiter moves out one level.
 */
bool
tryFlattenWhileDriver(ir::Pipeline& pipeline, PassReport* report)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        bool applied = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            if (applied)
                return;
            for (size_t i = 0; i < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kWhile)
                    continue;
                auto* w = ir::stmtCast<ir::WhileStmt>(region[i].get());
                ir::OpStmt* driver = matchCvWhile(w);
                if (driver == nullptr || w->body.size() != 4 ||
                    w->body[3]->kind() != ir::StmtKind::kWhile) {
                    continue;
                }
                auto* w_in =
                    ir::stmtCast<ir::WhileStmt>(w->body[3].get());
                ir::OpStmt* data_deq = matchCvWhile(w_in);
                if (data_deq == nullptr)
                    continue;
                // The driver value must be unused (its only read is the
                // is_control check).
                if (regReadCount(fn, driver->op.dst) != 1)
                    continue;
                QueueId qd = driver->op.queue;
                if (raProducing(pipeline, qd) >= 0)
                    continue;
                // qd must exclusively carry the driver stream.
                bool exclusive = true;
                for (const auto& st : pipeline.stages) {
                    ir::forEachOp(st->body, [&](const Op& op) {
                        if (!ir::usesQueue(op.opcode) || op.queue != qd)
                            return;
                        if (op.opcode == Opcode::kEnqCtrl)
                            return;
                        if (op.origin != driver->op.origin)
                            exclusive = false;
                    });
                }
                if (!exclusive)
                    continue;

                QueueId q = data_deq->op.queue;
                if (!removeGroupDelimiter(pipeline, q, w_in->origin))
                    continue;
                if (!installOuterDelimiter(pipeline, q, w->origin)) {
                    // Cannot re-delimit; put the group delimiter back.
                    installOuterDelimiter(pipeline, q, w_in->origin);
                    int scan_ra = delimiterRA(pipeline, q);
                    if (scan_ra >= 0) {
                        pipeline.ras[static_cast<size_t>(scan_ra)]
                            .emitRangeCtrl = true;
                    }
                    continue;
                }

                // Delete the pacing stream: producer enqs + its per-round
                // delimiter + the consumer's driver.
                int d_origin = driver->op.origin;
                int w_origin = w->origin;
                for (auto& st : pipeline.stages) {
                    removeOps(*st, [&](const Op& op) {
                        if (op.queue != qd)
                            return false;
                        if (op.opcode == Opcode::kEnq &&
                            op.origin == d_origin) {
                            return true;
                        }
                        return op.opcode == Opcode::kEnqCtrl;
                    });
                }
                (void)w_origin;

                // Hoist the inner while.
                ir::StmtPtr hoisted = std::move(w->body[3]);
                region[i] = std::move(hoisted);
                if (report != nullptr)
                    report->note("DCE: flattened driver loop in stage " +
                                 std::to_string(s) +
                                 "; pacing stream removed");
                applied = true;
                return;
            }
        });
        if (applied)
            return true;
    }
    return false;
}

bool
tryFlattenGroupLoop(ir::Pipeline& pipeline, PassReport* report)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        bool applied = false;
        forEachRegionOf(fn, [&](ir::Region& region) {
            if (applied)
                return;
            for (size_t i = 0; i < region.size(); ++i) {
                if (region[i]->kind() != ir::StmtKind::kFor)
                    continue;
                auto* f = ir::stmtCast<ir::ForStmt>(region[i].get());
                if (f->body.size() != 1 ||
                    f->body[0]->kind() != ir::StmtKind::kWhile) {
                    continue;
                }
                auto* w = ir::stmtCast<ir::WhileStmt>(f->body[0].get());
                ir::OpStmt* deq = matchCvWhile(w);
                if (deq == nullptr)
                    continue;
                if (regReadCount(fn, f->var) != 0)
                    continue;

                QueueId q = deq->op.queue;

                if (!removeGroupDelimiter(pipeline, q, w->origin))
                    continue;
                if (!installOuterDelimiter(pipeline, q, f->origin)) {
                    // Cannot re-delimit; restore the group delimiter.
                    installOuterDelimiter(pipeline, q, w->origin);
                    int scan_ra = delimiterRA(pipeline, q);
                    if (scan_ra >= 0) {
                        pipeline.ras[static_cast<size_t>(scan_ra)]
                            .emitRangeCtrl = true;
                    }
                    continue;
                }

                // Hoist the while out of the for.
                RegId start = f->start;
                RegId bound = f->bound;
                ir::StmtPtr hoisted = std::move(f->body[0]);
                region[i] = std::move(hoisted);

                cleanupDeadMaterialization(pipeline, static_cast<int>(s),
                                           start, report);
                cleanupDeadMaterialization(pipeline, static_cast<int>(s),
                                           bound, report);
                if (report != nullptr)
                    report->note(
                        "DCE: flattened group loop in stage " +
                        std::to_string(s) +
                        "; per-group control values removed");
                applied = true;
                return;
            }
        });
        if (applied)
            return true;
    }
    return false;
}

} // namespace

void
interStageDce(ir::Pipeline& pipeline, PassReport* report)
{
    bool changed = true;
    while (changed) {
        changed = false;
        while (tryFlattenGroupLoop(pipeline, report))
            changed = true;
        while (tryFlattenWhileDriver(pipeline, report))
            changed = true;
        cleanupAllDead(pipeline, report);
    }
    refreshQueueMetadata(pipeline);
}

// ---------------------------------------------------------------------
// Pass 5: control-value handlers.
// ---------------------------------------------------------------------

void
useControlHandlers(ir::Pipeline& pipeline, PassReport* report)
{
    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        ir::Function& fn = *pipeline.stages[s];
        forEachRegionOf(fn, [&](ir::Region& region) {
            for (auto& stmt : region) {
                if (stmt->kind() != ir::StmtKind::kWhile)
                    continue;
                auto* w = ir::stmtCast<ir::WhileStmt>(stmt.get());
                ir::OpStmt* deq = matchCvWhile(w);
                if (deq == nullptr)
                    continue;
                QueueId q = deq->op.queue;
                // The queue must be dequeued only here in this stage.
                int deq_count = 0;
                ir::forEachOp(fn.body, [&](const Op& op) {
                    if (isDeqOp(op.opcode) && op.queue == q)
                        deq_count++;
                });
                if (deq_count != 1)
                    continue;
                if (fn.handlerFor(q) != nullptr)
                    continue;

                // Move the break logic into a handler.
                ir::HandlerSpec h;
                h.queue = q;
                auto* brk_if = ir::stmtCast<ir::IfStmt>(w->body[2].get());
                for (auto& t : brk_if->thenBody)
                    h.body.push_back(ir::cloneStmt(t.get(), fn));
                fn.handlers.push_back(std::move(h));
                // Remove the is_control op and the break if.
                w->body.erase(w->body.begin() + 1, w->body.begin() + 3);
                if (report != nullptr)
                    report->note("CH: stage " + std::to_string(s) +
                                 " queue " + std::to_string(q) +
                                 " check moved to a control handler");
            }
        });
    }
}

// ---------------------------------------------------------------------
// Queue metadata utilities.
// ---------------------------------------------------------------------

void
refreshQueueMetadata(ir::Pipeline& pipeline)
{
    std::map<QueueId, int> depth;
    for (const auto& q : pipeline.queues)
        if (q.depth > 0)
            depth[q.id] = q.depth;

    std::map<QueueId, ir::QueueConfig> configs;
    auto touch = [&](QueueId q) -> ir::QueueConfig& {
        auto [it, fresh] = configs.try_emplace(q);
        if (fresh) {
            it->second.id = q;
            it->second.depth = depth.count(q) ? depth[q] : 0;
        }
        return it->second;
    };

    for (size_t s = 0; s < pipeline.stages.size(); ++s) {
        auto scan = [&](const ir::Region& r) {
            ir::forEachOp(r, [&](const Op& op) {
                if (!ir::usesQueue(op.opcode))
                    return;
                if (isEnqOp(op.opcode))
                    touch(op.queue).producerStage = static_cast<int>(s);
                else
                    touch(op.queue).consumerStage = static_cast<int>(s);
            });
        };
        scan(pipeline.stages[s]->body);
        for (const auto& h : pipeline.stages[s]->handlers) {
            touch(h.queue);
            scan(h.body);
        }
    }
    for (const auto& ra : pipeline.ras) {
        touch(ra.inQueue);
        touch(ra.outQueue);
    }

    pipeline.queues.clear();
    for (auto& [q, cfg] : configs)
        pipeline.queues.push_back(cfg);
}

void
compactQueueIds(ir::Pipeline& pipeline)
{
    refreshQueueMetadata(pipeline);
    std::map<QueueId, QueueId> remap;
    QueueId next = 0;
    for (const auto& q : pipeline.queues)
        remap[q.id] = next++;

    for (auto& stage : pipeline.stages) {
        forEachRegionOf(*stage, [&](ir::Region& region) {
            for (auto& s : region) {
                if (s->kind() != ir::StmtKind::kOp)
                    continue;
                Op& op = ir::stmtCast<ir::OpStmt>(s.get())->op;
                if (ir::usesQueue(op.opcode))
                    op.queue = remap.at(op.queue);
            }
        });
        for (auto& h : stage->handlers)
            h.queue = remap.at(h.queue);
    }
    for (auto& ra : pipeline.ras) {
        ra.inQueue = remap.at(ra.inQueue);
        ra.outQueue = remap.at(ra.outQueue);
    }
    for (auto& q : pipeline.queues)
        q.id = remap.at(q.id);
}

} // namespace phloem::comp
