/**
 * @file
 * The post-decoupling optimization passes (paper Sec. IV-B, Fig. 5):
 *
 *  - Pass 3, accelerateAccesses: offload producer-side load->enq patterns
 *    to INDIRECT reference accelerators, whole load loops to SCAN RAs, and
 *    chain RAs when one RA's output only plumbs into another's input;
 *    stages reduced to pure control skeletons are dropped.
 *  - Pass 4, useControlValues: replace consumer loops whose trip counts
 *    arrive through queues with while(true) loops terminated by in-band
 *    control values; producers (or SCAN RAs) emit the delimiters.
 *  - Pass 6, interStageDce: remove superfluous per-group control values
 *    by flattening nested consumer loops that do not depend on group
 *    boundaries (e.g., BFS neighbors all compare against one distance).
 *  - Pass 5, useControlHandlers: move explicit is_control checks out of
 *    inner loops into hardware control-value handlers.
 *
 * Each pass is idempotent and works on any pipeline the decoupler (or a
 * previous pass) produced; they are applied in the order 3, 4, 6, 5.
 */

#ifndef PHLOEM_COMPILER_PASSES_H
#define PHLOEM_COMPILER_PASSES_H

#include <string>
#include <vector>

#include "ir/pipeline.h"

namespace phloem::comp {

struct PassReport
{
    std::vector<std::string> notes;
    void note(std::string s) { notes.push_back(std::move(s)); }
};

/**
 * Pass 3: reference accelerators (+ chaining, + dead-stage elision).
 * Defs consumed by skip_consumer_stage stay stage-produced (needed when
 * that stream will be distributed across replicas).
 */
void accelerateAccesses(ir::Pipeline& pipeline, PassReport* report = nullptr,
                        int max_ras = 4, int skip_consumer_stage = -1);

/**
 * Forwarding: a value with several consumer stages is sent once to the
 * nearest consumer, which forwards it onward after use (the shape
 * hand-written Pipette pipelines use, e.g. the BFS prefetch stage
 * forwarding neighbor ids to the update stage). Run before pass 4.
 */
void forwardValues(ir::Pipeline& pipeline, PassReport* report = nullptr);

/** Pass 4: control values. */
void useControlValues(ir::Pipeline& pipeline, PassReport* report = nullptr);

/** Pass 6: inter-stage dead code elimination of control values. */
void interStageDce(ir::Pipeline& pipeline, PassReport* report = nullptr);

/** Pass 5: control-value handlers. */
void useControlHandlers(ir::Pipeline& pipeline,
                        PassReport* report = nullptr);

/** Rebuild queue metadata (producer/consumer stages) from the programs. */
void refreshQueueMetadata(ir::Pipeline& pipeline);

/** Renumber queues densely (0..n-1), updating stages and RAs. */
void compactQueueIds(ir::Pipeline& pipeline);

} // namespace phloem::comp

#endif // PHLOEM_COMPILER_PASSES_H
