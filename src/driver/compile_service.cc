#include "driver/compile_service.h"

#include <chrono>

#include "metrics/collect.h"
#include "runtime/decode.h"
#include "runtime/jit.h"
#include "runtime/runtime.h"
#include "sim/energy.h"
#include "sim/machine.h"

namespace phloem::driver {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedNs(Clock::time_point t0, Clock::time_point t1)
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
fnv1aBytes(uint64_t h, const void* data, size_t n)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

uint64_t
fnv1a(const std::string& bytes)
{
    return fnv1aBytes(kFnvOffset, bytes.data(), bytes.size());
}

CompiledPipelinePtr
compileSource(const CompileSpec& spec, std::string* err)
{
    auto cp = std::make_shared<CompiledPipeline>();
    auto t0 = Clock::now();
    try {
        cp->kernel = fe::compileKernel(spec.source, spec.kernelName);
    } catch (const std::exception& e) {
        if (err != nullptr)
            *err = e.what();
        return nullptr;
    }

    // Apply the kernel's pragma annotations on top of the caller's
    // options, exactly as phloemc always has.
    comp::CompileOptions opts = spec.opts;
    for (int cut : cp->kernel.ann.decoupleOps)
        opts.forcedCuts.push_back(cut);
    if (cp->kernel.ann.replicas > 1)
        opts.replicas = cp->kernel.ann.replicas;
    if (!cp->kernel.ann.distributeOps.empty()) {
        opts.distributeBoundaryOp = cp->kernel.ann.distributeOps.front();
        opts.forcedCuts.push_back(cp->kernel.ann.distributeOps.front());
    }
    cp->effectiveOpts = opts;

    try {
        cp->compiled = comp::compilePipeline(*cp->kernel.fn, opts);
        // Pre-flatten each stage once (replicas share the program); a
        // pipeline that failed verification is never executed, so its
        // flattening is skipped rather than risked.
        if (cp->compiled.ok()) {
            cp->programs.reserve(cp->compiled.pipeline->stages.size());
            for (const auto& stage : cp->compiled.pipeline->stages)
                cp->programs.push_back(sim::flatten(*stage));
            // Decode each stage's replica-independent DInst shape once
            // too, so a cache hit skips decode as well as flattening.
            cp->shapes.reserve(cp->programs.size());
            for (const auto& prog : cp->programs)
                cp->shapes.push_back(rt::decodeShape(prog));
            // JIT tier: emit + compile each stage's native artifact up
            // front so cached pipelines carry their .so. Failures are
            // recorded in the artifact, not here — the runtime
            // downgrades those stages to the engine.
            cp->tier = spec.tier;
            if (spec.tier == rt::TierMode::kJit) {
                cp->jit.reserve(cp->programs.size());
                for (size_t s = 0; s < cp->programs.size(); ++s)
                    cp->jit.push_back(rt::jitCompileStage(
                        cp->programs[s], cp->shapes[s],
                        cp->compiled.pipeline->stages[s]->name));
            }
        }
    } catch (const std::exception& e) {
        cp->error = e.what();
    }
    if (cp->error.empty() && cp->compiled.pipeline == nullptr)
        cp->error = "compiler produced no pipeline";
    cp->compileNs = elapsedNs(t0, Clock::now());
    return cp;
}

void
synthesizeBinding(const ir::Function& fn, int64_t size,
                  sim::Binding& binding)
{
    uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next_rand = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };

    for (const auto& a : fn.arrays) {
        if (binding.hasArray(a.name))
            continue;  // double-buffer slots may repeat a name
        auto* buf = binding.makeArray(a.name, a.elem,
                                      static_cast<size_t>(size) + 1);
        if (a.writable)
            continue;
        for (int64_t i = 0; i <= size; ++i) {
            if (a.elem == ir::ElemType::kF64)
                buf->setDouble(i, static_cast<double>(next_rand() % 1000) /
                                      1000.0);
            else
                buf->setInt(i, static_cast<int64_t>(
                                   next_rand() %
                                   static_cast<uint64_t>(size)));
        }
    }
    for (const auto& p : fn.scalarParams) {
        if (p.isFloat)
            binding.setScalar(p.name, ir::Value::fromDouble(0.5));
        else
            binding.setScalarInt(p.name, size);
    }
}

ExecOutcome
runCompiled(const CompiledPipeline& cp, const RunSpec& spec,
            sim::Binding& binding)
{
    ExecOutcome out;
    const std::string& name = cp.kernel.fn->name;
    auto t0 = Clock::now();
    if (spec.backend == Backend::kNative) {
        rt::RuntimeOptions ropts;
        ropts.deadlockTimeoutMs = spec.deadlockTimeoutMs;
        ropts.maxInstructions = spec.maxInstructions;
        ropts.tracer = spec.tracer;
        ropts.tier = spec.tier;
        ropts.requestId = spec.requestId;
        rt::Runtime runtime{spec.cfg, ropts};
        rt::PreparedPrograms prep;
        prep.programs = &cp.programs;
        if (cp.shapes.size() == cp.programs.size())
            prep.shapes = &cp.shapes;
        // Cached artifacts only apply when this run actually wants the
        // JIT tier; a mismatched tier just recompiles at run setup.
        if (spec.tier == rt::TierMode::kJit &&
            cp.jit.size() == cp.programs.size())
            prep.jit = &cp.jit;
        out.native = runtime.runPipeline(*cp.compiled.pipeline, binding,
                                         prep);
        out.runNs = elapsedNs(t0, Clock::now());
        out.metricsRun = metrics::nativeRunToMetrics(name, out.native);
        out.ok = out.native.ok;
        if (!out.ok)
            out.error = out.native.error;
    } else {
        sim::MachineOptions mopts;
        mopts.tracer = spec.tracer;
        sim::Machine machine{spec.cfg, mopts};
        out.sim = machine.runPipeline(*cp.compiled.pipeline, binding);
        out.runNs = elapsedNs(t0, Clock::now());
        sim::EnergyBreakdown energy = sim::computeEnergy(
            out.sim, sim::EnergyConfig{}, spec.cfg.numCores);
        out.metricsRun = metrics::simRunToMetrics(name, out.sim, &energy);
        out.ok = !out.sim.deadlock;
        if (!out.ok)
            out.error = out.sim.deadlockInfo;
    }
    return out;
}

uint64_t
hashBinding(const sim::Binding& binding)
{
    uint64_t h = kFnvOffset;
    for (const auto& [name, buf] : binding.globalArrays()) {
        h = fnv1aBytes(h, name.data(), name.size());
        auto elem = static_cast<unsigned char>(buf->elem());
        h = fnv1aBytes(h, &elem, 1);
        h = fnv1aBytes(h, buf->rawBytes(), buf->bytes());
    }
    return h;
}

} // namespace phloem::driver
