/**
 * @file
 * Reusable compile->decode->run entry point shared by the phloemc CLI
 * and the phloemd compilation service.
 *
 * phloemc historically owned the whole path from source text to an
 * executed pipeline; a long-lived daemon needs the same path as a
 * library so compiled pipelines can be cached and re-run without paying
 * frontend -> passes -> flatten again. A CompiledPipeline is immutable
 * after construction (the runtime reads the pipeline and the
 * pre-flattened stage programs through const pointers only), so one
 * instance can back any number of concurrent runs — the property the
 * service's pipeline cache depends on.
 */

#ifndef PHLOEM_DRIVER_COMPILE_SERVICE_H
#define PHLOEM_DRIVER_COMPILE_SERVICE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "frontend/frontend.h"
#include "metrics/metrics.h"
#include "runtime/runtime.h"
#include "runtime/stats.h"
#include "runtime/trace.h"
#include "sim/binding.h"
#include "sim/config.h"
#include "sim/program.h"
#include "sim/stats.h"

namespace phloem::driver {

/** Everything that determines what gets compiled. */
struct CompileSpec
{
    /** Mini-C source text (already emitted C when coming from --taco). */
    std::string source;
    /** Kernel function to compile; empty = first function in source. */
    std::string kernelName;
    /** Pass/stage knobs. Pragma annotations are applied on top. */
    comp::CompileOptions opts;
    /**
     * Execution tier the pipeline is being prepared for. kJit makes
     * compileSource also emit + compile each stage's native artifact
     * (the .so is cached alongside the pipeline, so service cache hits
     * skip JIT codegen too). kAuto/kEngine/kInterp prepare nothing
     * extra; the tier is resolved again at run time.
     */
    rt::TierMode tier = rt::TierMode::kAuto;
};

/**
 * One compiled pipeline, immutable after compileSource() returns: the
 * lowered kernel, the pipeline, and each stage's pre-flattened
 * sim::Program (what the native runtime would otherwise recompute per
 * run). Shared const across concurrent runs.
 */
struct CompiledPipeline
{
    fe::CompiledKernel kernel;
    comp::CompileResult compiled;
    /** Options after applying the kernel's pragma annotations. */
    comp::CompileOptions effectiveOpts;
    /** One flattened program per pipeline stage (replicas share). */
    std::vector<sim::Program> programs;
    /**
     * Pre-decoded replica-independent DInst shape per stage, built
     * alongside `programs`: a cache hit skips decode, not just
     * flattening (workers copy + relocate the shape per replica).
     */
    std::vector<rt::DecodedProgram> shapes;
    /**
     * Per-stage JIT artifacts, non-empty only when the spec asked for
     * TierMode::kJit. Failed entries are kept (the runtime downgrades
     * those stages to the engine and reports the error in its stats).
     */
    std::vector<rt::JitArtifactPtr> jit;
    /** Tier this pipeline was prepared for (CompileSpec::tier). */
    rt::TierMode tier = rt::TierMode::kAuto;
    /** Wall time of frontend + passes + flatten, in nanoseconds. */
    double compileNs = 0.0;
    /**
     * Non-empty when the pass pipeline threw after a successful
     * frontend (kernel stays valid so callers can still print the
     * serial IR); compiled.problems holds verifier findings instead.
     */
    std::string error;

    bool ok() const { return error.empty() && compiled.ok(); }
};

using CompiledPipelinePtr = std::shared_ptr<const CompiledPipeline>;

/**
 * Compile source text to a pipeline: frontend, pragma annotations
 * (decouple/replicate/distribute), pass pipeline, IR verification, and
 * per-stage flattening. Returns null and fills *err only when the
 * frontend rejects the source; later failures come back in the
 * result's `error` / `compiled.problems` so callers can still show the
 * serial IR. Never throws.
 */
CompiledPipelinePtr compileSource(const CompileSpec& spec,
                                  std::string* err);

/** Execution backend for one request. */
enum class Backend : uint8_t { kNative, kSim };

/** Everything that determines one execution of a compiled pipeline. */
struct RunSpec
{
    Backend backend = Backend::kNative;
    /** Synthetic input size (see synthesizeBinding). */
    int64_t size = 4096;
    sim::SysConfig cfg;
    /** Native deadlock watchdog; bounds a wedged request's lifetime. */
    int deadlockTimeoutMs = 10000;
    /** Dynamic instruction budget per worker (runaway backstop). */
    uint64_t maxInstructions = 4'000'000'000ull;
    /** Optional stall-attribution tracer (must outlive the run). */
    trace::Tracer* tracer = nullptr;
    /**
     * Stage execution tier (native backend only). kAuto defers to the
     * PHLOEM_NATIVE_TIER / PHLOEM_NATIVE_ENGINE environment. When kJit
     * and the pipeline was compiled with tier kJit, the cached
     * artifacts are reused; otherwise the run compiles them on entry.
     */
    rt::TierMode tier = rt::TierMode::kAuto;
    /**
     * Request id threaded from the service (RuntimeOptions.requestId):
     * tags watchdog errors and trace metadata so service spans and
     * runtime stalls correlate per request. Empty outside the daemon.
     */
    std::string requestId;
};

/** Result of one execution, with the stats of whichever backend ran. */
struct ExecOutcome
{
    bool ok = false;
    std::string error;
    rt::NativeStats native;  ///< backend == kNative
    sim::RunStats sim;       ///< backend == kSim
    /** Metrics run collected from the backend stats (collect.h). */
    metrics::Run metricsRun;
    /** Wall time of the execution itself, in nanoseconds. */
    double runNs = 0.0;
};

/**
 * Synthesize a deterministic binding from the kernel signature: arrays
 * get size+1 elements (room for CSR-style `row[i+1]` reads); read-only
 * integer arrays get pseudo-random values in [0, size) so indirect
 * accesses stay in bounds; writable arrays start zeroed; integer
 * scalars are bound to `size` (the conventional trip count) and float
 * scalars to 0.5. Calling twice with the same function and size yields
 * bit-identical images — the property the service's cache-vs-cold
 * bit-identity check rests on.
 */
void synthesizeBinding(const ir::Function& fn, int64_t size,
                       sim::Binding& binding);

/**
 * Execute a compiled pipeline over an already-synthesized binding.
 * Native runs reuse the pipeline's pre-flattened programs (no
 * per-request flatten); sim runs include the Fig. 11 energy gauges in
 * the metrics run. Deadlocks and worker failures come back as
 * ok=false with the backend's diagnostic.
 */
ExecOutcome runCompiled(const CompiledPipeline& cp, const RunSpec& spec,
                       sim::Binding& binding);

/**
 * FNV-1a over every globally bound array's name, type, and raw bytes,
 * in name order — the service's cheap proxy for "bit-identical output
 * images" (two runs of the same kernel+size must produce equal hashes).
 */
uint64_t hashBinding(const sim::Binding& binding);

/** FNV-1a over arbitrary bytes (source-text hashing for cache keys). */
uint64_t fnv1a(const std::string& bytes);

} // namespace phloem::driver

#endif // PHLOEM_DRIVER_COMPILE_SERVICE_H
