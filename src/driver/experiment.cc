#include "driver/experiment.h"

#include "base/logging.h"
#include "base/stats_util.h"
#include "frontend/frontend.h"

namespace phloem::driver {

Experiment::Experiment(wl::Workload workload, sim::SysConfig cfg,
                       sim::MachineOptions mopts)
    : workload_(std::move(workload)), cfg_(cfg), mopts_(mopts)
{
    serialFn_ = fe::compileKernel(workload_.serialSrc).fn;
    if (!workload_.parallelSrc.empty())
        parallelFn_ = fe::compileKernel(workload_.parallelSrc).fn;
}

RunOutcome
Experiment::runSerial(const wl::Case& c)
{
    RunOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    sim::Machine machine(cfg_, mopts_);
    try {
        out.stats = machine.runSerial(*serialFn_, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (out.stats.deadlock) {
        out.error = "deadlock:\n" + out.stats.deadlockInfo;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kSerial, &out.error);
    return out;
}

RunOutcome
Experiment::runParallel(const wl::Case& c, int nthreads)
{
    RunOutcome out;
    if (parallelFn_ == nullptr) {
        out.error = "no data-parallel variant";
        return out;
    }
    sim::Binding binding;
    c.bind(binding, nthreads);
    std::vector<const ir::Function*> fns(static_cast<size_t>(nthreads),
                                         parallelFn_.get());
    sim::Machine machine(cfg_, mopts_);
    try {
        out.stats = machine.runParallel(fns, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (out.stats.deadlock) {
        out.error = "deadlock:\n" + out.stats.deadlockInfo;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kParallel, &out.error);
    return out;
}

RunOutcome
Experiment::runPipeline(const wl::Case& c, const ir::Pipeline& pipeline)
{
    RunOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    sim::Machine machine(cfg_, mopts_);
    try {
        out.stats = machine.runPipeline(pipeline, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (out.stats.deadlock) {
        out.error = "deadlock:\n" + out.stats.deadlockInfo;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kPipeline, &out.error);
    return out;
}

NativeOutcome
Experiment::runNative(const wl::Case& c, const ir::Pipeline& pipeline,
                      const rt::RuntimeOptions& ropts)
{
    NativeOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    rt::Runtime runtime(cfg_, ropts);
    try {
        out.stats = runtime.runPipeline(pipeline, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (!out.stats.ok) {
        out.error = out.stats.error;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kPipeline, &out.error);
    return out;
}

NativeOutcome
Experiment::runNativeSerial(const wl::Case& c,
                            const rt::RuntimeOptions& ropts)
{
    NativeOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    rt::Runtime runtime(cfg_, ropts);
    try {
        out.stats = runtime.runSerial(*serialFn_, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (!out.stats.ok) {
        out.error = out.stats.error;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kSerial, &out.error);
    return out;
}

comp::CompileResult
Experiment::compileStatic(const comp::CompileOptions& opts)
{
    return comp::compilePipeline(*serialFn_, opts);
}

uint64_t
Experiment::serialCycles(const wl::Case& c)
{
    for (const auto& [name, cycles] : serialCache_)
        if (name == c.inputName)
            return cycles;
    RunOutcome out = runSerial(c);
    phloem_assert(out.correct, "serial run failed on ", c.inputName, ": ",
                  out.error);
    serialCache_.emplace_back(c.inputName, out.stats.cycles);
    return out.stats.cycles;
}

comp::AutotuneResult
Experiment::autotunePGO(const comp::AutotuneOptions& opts)
{
    // Training evaluator: gmean speedup over serial on training cases;
    // incorrect or deadlocking pipelines score 0 and are discarded.
    std::vector<const wl::Case*> train;
    for (const auto& c : workload_.cases)
        if (c.training)
            train.push_back(&c);
    phloem_assert(!train.empty(), "workload ", workload_.name,
                  " has no training inputs");

    auto evaluate = [&](const ir::Pipeline& pipeline) -> double {
        std::vector<double> speedups;
        for (const wl::Case* c : train) {
            uint64_t base = serialCycles(*c);
            RunOutcome out = runPipeline(*c, pipeline);
            if (!out.correct || out.stats.cycles == 0)
                return 0.0;
            speedups.push_back(static_cast<double>(base) /
                               static_cast<double>(out.stats.cycles));
        }
        return gmean(speedups);
    };

    return comp::autotune(*serialFn_, opts, evaluate);
}

ir::PipelinePtr
Experiment::buildManual()
{
    if (!workload_.manual)
        return nullptr;
    return workload_.manual(*serialFn_);
}

} // namespace phloem::driver
