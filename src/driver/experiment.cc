#include "driver/experiment.h"

#include <algorithm>
#include <map>

#include "base/logging.h"
#include "base/stats_util.h"
#include "driver/compile_service.h"
#include "frontend/frontend.h"
#include "ir/walk.h"
#include "metrics/collect.h"

namespace phloem::driver {

namespace {

/** One-line form of a backend error for an autotune reject reason. */
std::string
briefError(const std::string& err)
{
    std::string line = err.substr(0, err.find('\n'));
    if (line.size() > 120)
        line = line.substr(0, 117) + "...";
    return line.empty() ? "run failed" : line;
}

/**
 * The stage that consumes queue `queue_id`, following reference-
 * accelerator chains (the RA's output leg lands in some stage's deq).
 * Stats report absolute (replica-strided) ids; fold back to the base
 * replica before scanning. -1 when no stage deqs it.
 */
int
consumerStageOf(const ir::Pipeline& pipeline, int queue_id)
{
    int base = queue_id;
    if (pipeline.replicas > 1 && pipeline.queueStride > 0)
        base = queue_id % pipeline.queueStride;
    for (int hop = 0; hop < 4; ++hop) {
        for (size_t s = 0; s < pipeline.stages.size(); ++s) {
            bool consumes = false;
            ir::forEachOp(pipeline.stages[s]->body, [&](const ir::Op& op) {
                if ((op.opcode == ir::Opcode::kDeq ||
                     op.opcode == ir::Opcode::kPeek) &&
                    op.queue == base)
                    consumes = true;
            });
            if (consumes)
                return static_cast<int>(s);
        }
        bool chained = false;
        for (const auto& ra : pipeline.ras) {
            if (ra.inQueue == base) {
                base = ra.outQueue;
                chained = true;
                break;
            }
        }
        if (!chained)
            break;
    }
    return -1;
}

} // namespace

Experiment::Experiment(wl::Workload workload, sim::SysConfig cfg,
                       sim::MachineOptions mopts)
    : workload_(std::move(workload)), cfg_(cfg), mopts_(mopts)
{
    serialFn_ =
        fe::compileKernel(workload_.serialSrc, workload_.kernelName).fn;
    if (!workload_.parallelSrc.empty())
        parallelFn_ = fe::compileKernel(workload_.parallelSrc).fn;
}

RunOutcome
Experiment::runSerial(const wl::Case& c)
{
    RunOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    sim::Machine machine(cfg_, mopts_);
    try {
        out.stats = machine.runSerial(*serialFn_, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (out.stats.deadlock) {
        out.error = "deadlock:\n" + out.stats.deadlockInfo;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kSerial, &out.error);
    return out;
}

RunOutcome
Experiment::runParallel(const wl::Case& c, int nthreads)
{
    RunOutcome out;
    if (parallelFn_ == nullptr) {
        out.error = "no data-parallel variant";
        return out;
    }
    sim::Binding binding;
    c.bind(binding, nthreads);
    std::vector<const ir::Function*> fns(static_cast<size_t>(nthreads),
                                         parallelFn_.get());
    sim::Machine machine(cfg_, mopts_);
    try {
        out.stats = machine.runParallel(fns, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (out.stats.deadlock) {
        out.error = "deadlock:\n" + out.stats.deadlockInfo;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kParallel, &out.error);
    return out;
}

RunOutcome
Experiment::runPipeline(const wl::Case& c, const ir::Pipeline& pipeline)
{
    return runPipeline(c, pipeline, cfg_);
}

RunOutcome
Experiment::runPipeline(const wl::Case& c, const ir::Pipeline& pipeline,
                        const sim::SysConfig& cfg)
{
    RunOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    sim::Machine machine(cfg, mopts_);
    try {
        out.stats = machine.runPipeline(pipeline, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (out.stats.deadlock) {
        out.error = "deadlock:\n" + out.stats.deadlockInfo;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kPipeline, &out.error);
    return out;
}

NativeOutcome
Experiment::runNative(const wl::Case& c, const ir::Pipeline& pipeline,
                      const rt::RuntimeOptions& ropts)
{
    return runNative(c, pipeline, ropts, cfg_);
}

NativeOutcome
Experiment::runNative(const wl::Case& c, const ir::Pipeline& pipeline,
                      const rt::RuntimeOptions& ropts,
                      const sim::SysConfig& cfg)
{
    NativeOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    rt::Runtime runtime(cfg, ropts);
    try {
        out.stats = runtime.runPipeline(pipeline, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (!out.stats.ok) {
        out.error = out.stats.error;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kPipeline, &out.error);
    return out;
}

NativeOutcome
Experiment::runNativeSerial(const wl::Case& c,
                            const rt::RuntimeOptions& ropts)
{
    NativeOutcome out;
    sim::Binding binding;
    c.bind(binding, /*nthreads=*/1);
    rt::Runtime runtime(cfg_, ropts);
    try {
        out.stats = runtime.runSerial(*serialFn_, binding);
    } catch (const std::exception& e) {
        out.error = e.what();
        return out;
    }
    if (!out.stats.ok) {
        out.error = out.stats.error;
        return out;
    }
    out.correct = c.check(binding, wl::Variant::kSerial, &out.error);
    return out;
}

comp::CompileResult
Experiment::compileStatic(const comp::CompileOptions& opts)
{
    return comp::compilePipeline(*serialFn_, opts);
}

uint64_t
Experiment::serialCycles(const wl::Case& c)
{
    for (const auto& [name, cycles] : serialCache_)
        if (name == c.inputName)
            return cycles;
    RunOutcome out = runSerial(c);
    phloem_assert(out.correct, "serial run failed on ", c.inputName, ": ",
                  out.error);
    serialCache_.emplace_back(c.inputName, out.stats.cycles);
    return out.stats.cycles;
}

double
Experiment::serialNativeMs(const wl::Case& c)
{
    for (const auto& [name, ms] : serialNativeCache_)
        if (name == c.inputName)
            return ms;
    NativeOutcome out = runNativeSerial(c);
    phloem_assert(out.correct, "native serial run failed on ",
                  c.inputName, ": ", out.error);
    serialNativeCache_.emplace_back(c.inputName, out.wallMs());
    return out.wallMs();
}

std::vector<const wl::Case*>
Experiment::trainingCases() const
{
    std::vector<const wl::Case*> train;
    for (const auto& c : workload_.cases)
        if (c.training)
            train.push_back(&c);
    return train;
}

comp::CandidateEvaluator
Experiment::makeSimEvaluator(const std::vector<const wl::Case*>& train)
{
    // Simulated profiles: gmean cycle speedup over serial, steered by
    // the simulator's per-thread queue-stall attribution (the sim has
    // no per-queue block counters, so queue-deepening moves only fire
    // on the native profiler).
    return [this, train](const ir::Pipeline& pipeline,
                         const comp::SearchPoint& point)
               -> comp::CandidateProfile {
        comp::CandidateProfile prof;
        sim::SysConfig cfg = cfg_;
        if (point.queueDepth > 0)
            cfg.queueDepth = point.queueDepth;

        std::vector<double> speedups;
        size_t num_stages = pipeline.stages.size();
        std::vector<double> stall(num_stages, 0.0);
        double total_stall = 0;
        for (const wl::Case* c : train) {
            uint64_t base = serialCycles(*c);
            RunOutcome out = runPipeline(*c, pipeline, cfg);
            if (!out.correct || out.stats.cycles == 0) {
                prof.rejectReason = briefError(out.error);
                return prof;
            }
            speedups.push_back(static_cast<double>(base) /
                               static_cast<double>(out.stats.cycles));
            for (size_t t = 0; t < out.stats.threads.size(); ++t) {
                double s = out.stats.threads[t].queueStallCycles;
                stall[t % num_stages] += s;
                total_stall += s;
            }
        }
        prof.speedup = gmean(speedups);
        if (total_stall > 0) {
            size_t hot = static_cast<size_t>(
                std::max_element(stall.begin(), stall.end()) -
                stall.begin());
            prof.hottestStallStage = static_cast<int>(hot);
            prof.hottestStallShare = stall[hot] / total_stall;
        }
        return prof;
    };
}

comp::CandidateEvaluator
Experiment::makeNativeEvaluator(const std::vector<const wl::Case*>& train)
{
    // Native profiles: gmean wall-clock speedup over the native serial
    // baseline. Each run's stats are ingested through the metrics
    // model (the same report phloemc --report writes), and the
    // per-queue enq-block counters steer refinement: the queue whose
    // producer blocks most is the bottleneck edge — deepen it, and
    // replicate the stage that consumes it.
    return [this, train](const ir::Pipeline& pipeline,
                         const comp::SearchPoint& point)
               -> comp::CandidateProfile {
        comp::CandidateProfile prof;
        sim::SysConfig cfg = cfg_;
        if (point.queueDepth > 0)
            cfg.queueDepth = point.queueDepth;

        std::vector<double> speedups;
        std::map<int, uint64_t> enq_blocks;
        uint64_t total_blocks = 0;
        for (const wl::Case* c : train) {
            double base_ms = serialNativeMs(*c);
            NativeOutcome out =
                runNative(*c, pipeline, rt::RuntimeOptions{}, cfg);
            if (!out.correct || out.wallMs() <= 0) {
                prof.rejectReason = briefError(out.error);
                return prof;
            }
            speedups.push_back(base_ms / out.wallMs());

            metrics::Run mrun =
                metrics::nativeRunToMetrics(workload_.name, out.stats);
            auto fam = mrun.families.find("queue");
            if (fam == mrun.families.end())
                continue;
            for (const auto& p : fam->second.points) {
                auto label = p.labels.find("queue");
                auto blocks = p.metrics.counters.find("enq_blocks");
                if (label == p.labels.end() ||
                    blocks == p.metrics.counters.end())
                    continue;
                enq_blocks[std::stoi(label->second)] += blocks->second;
                total_blocks += blocks->second;
            }
        }
        prof.speedup = gmean(speedups);
        for (const auto& [q, b] : enq_blocks) {
            if (b > prof.hottestEnqBlocks) {
                prof.hottestEnqQueue = q;
                prof.hottestEnqBlocks = b;
            }
        }
        if (prof.hottestEnqQueue >= 0 && total_blocks > 0) {
            int consumer = consumerStageOf(pipeline, prof.hottestEnqQueue);
            if (consumer >= 0) {
                prof.hottestStallStage = consumer;
                prof.hottestStallShare =
                    static_cast<double>(prof.hottestEnqBlocks) /
                    static_cast<double>(total_blocks);
            }
        }
        return prof;
    };
}

comp::AutotuneResult
Experiment::autotunePGO(const comp::AutotuneOptions& opts,
                        AutotuneProfiler profiler)
{
    std::vector<const wl::Case*> train = trainingCases();
    phloem_assert(!train.empty(), "workload ", workload_.name,
                  " has no training inputs");

    comp::AutotuneOptions aopts = opts;
    aopts.profilerQueueDepth = cfg_.queueDepth;
    return comp::autotuneMeasured(*serialFn_, aopts,
                                  profiler == AutotuneProfiler::kSim
                                      ? makeSimEvaluator(train)
                                      : makeNativeEvaluator(train));
}

double
Experiment::trainingSpeedup(const ir::Pipeline& pipeline,
                            AutotuneProfiler profiler)
{
    std::vector<double> speedups;
    for (const wl::Case* c : trainingCases()) {
        if (profiler == AutotuneProfiler::kSim) {
            uint64_t base = serialCycles(*c);
            RunOutcome out = runPipeline(*c, pipeline);
            if (!out.correct || out.stats.cycles == 0)
                return 0.0;
            speedups.push_back(static_cast<double>(base) /
                               static_cast<double>(out.stats.cycles));
        } else {
            double base_ms = serialNativeMs(*c);
            NativeOutcome out = runNative(*c, pipeline);
            if (!out.correct || out.wallMs() <= 0)
                return 0.0;
            speedups.push_back(base_ms / out.wallMs());
        }
    }
    return speedups.empty() ? 0.0 : gmean(speedups);
}

ir::PipelinePtr
Experiment::buildManual()
{
    if (!workload_.manual)
        return nullptr;
    return workload_.manual(*serialFn_);
}

wl::Workload
synthesizeWorkload(const std::string& source,
                   const std::string& kernel_name,
                   const std::vector<int64_t>& training_sizes)
{
    fe::CompiledKernel k = fe::compileKernel(source, kernel_name);
    std::shared_ptr<ir::Function> fn(std::move(k.fn));

    // Writable arrays are the kernel's outputs: what every candidate
    // must reproduce bit-for-bit against the serial reference.
    std::vector<std::string> outputs;
    for (const auto& a : fn->arrays)
        if (a.writable)
            outputs.push_back(a.name);

    wl::Workload w;
    w.name = fn->name;
    w.serialSrc = source;
    w.kernelName = fn->name;
    for (int64_t size : training_sizes) {
        auto golden = std::make_shared<sim::Binding>();
        synthesizeBinding(*fn, size, *golden);
        sim::Machine machine(sim::SysConfig{},
                             Experiment::defaultMachineOptions());
        machine.runSerial(*fn, *golden);

        wl::Case c;
        c.inputName = "synthetic-" + std::to_string(size);
        c.domain = "synthetic";
        c.training = true;
        c.bind = [fn, size](sim::Binding& b, int) {
            synthesizeBinding(*fn, size, b);
        };
        c.check = [golden, outputs](sim::Binding& b, wl::Variant,
                                    std::string* err) {
            for (const auto& name : outputs) {
                const auto* got = b.array(name);
                const auto* want = golden->array(name);
                if (got == nullptr || want == nullptr ||
                    !got->contentEquals(*want)) {
                    if (err != nullptr)
                        *err = "output array '" + name +
                               "' differs from the serial reference";
                    return false;
                }
            }
            return true;
        };
        w.cases.push_back(std::move(c));
    }
    return w;
}

} // namespace phloem::driver
