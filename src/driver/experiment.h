/**
 * @file
 * End-to-end experiment runner: compile a workload's variants, execute
 * them on the simulated system, validate outputs, and collect the
 * statistics the benchmark harnesses report.
 */

#ifndef PHLOEM_DRIVER_EXPERIMENT_H
#define PHLOEM_DRIVER_EXPERIMENT_H

#include <optional>
#include <string>
#include <vector>

#include "compiler/autotune.h"
#include "compiler/compiler.h"
#include "runtime/runtime.h"
#include "sim/config.h"
#include "sim/energy.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace phloem::driver {

struct RunOutcome
{
    sim::RunStats stats;
    bool correct = false;
    std::string error;
    /** Wall cycles; 0 when the run failed. */
    uint64_t cycles() const { return correct ? stats.cycles : 0; }
};

/** Result of a native (host-thread) execution. */
struct NativeOutcome
{
    rt::NativeStats stats;
    bool correct = false;
    std::string error;
    /** Wall-clock ms; 0 when the run failed. */
    double wallMs() const { return correct ? stats.wallMs() : 0.0; }
};

/** Which backend the autotuner profiles candidates on. */
enum class AutotuneProfiler : uint8_t {
    kSim,     ///< cycle-approximate simulator (deterministic)
    kNative,  ///< host threads, measured wall clocks + backpressure
};

/** One workload compiled once; reused across inputs and variants. */
class Experiment
{
  public:
    Experiment(wl::Workload workload, sim::SysConfig cfg = sim::SysConfig{},
               sim::MachineOptions mopts = defaultMachineOptions());

    static sim::MachineOptions
    defaultMachineOptions()
    {
        sim::MachineOptions o;
        o.maxInstructions = 3'000'000'000ull;
        return o;
    }

    const wl::Workload& workload() const { return workload_; }
    const ir::Function& serialFn() const { return *serialFn_; }
    const sim::SysConfig& config() const { return cfg_; }

    /** Run the serial baseline on one input case. */
    RunOutcome runSerial(const wl::Case& c);

    /** Run the data-parallel baseline with `nthreads` threads. */
    RunOutcome runParallel(const wl::Case& c, int nthreads);

    /** Run an arbitrary pipeline. */
    RunOutcome runPipeline(const wl::Case& c, const ir::Pipeline& pipeline);

    /** Same, on an overridden system configuration (e.g., a candidate
     *  queue depth the autotuner wants to measure). */
    RunOutcome runPipeline(const wl::Case& c, const ir::Pipeline& pipeline,
                           const sim::SysConfig& cfg);

    /**
     * Run a pipeline natively: one host thread per stage (and per RA),
     * lock-free SPSC rings for the queues. Functionally identical to
     * runPipeline — the differential tests enforce bit-for-bit equality
     * — but the stats measure real wall time and queue backpressure.
     */
    NativeOutcome runNative(const wl::Case& c, const ir::Pipeline& pipeline,
                            const rt::RuntimeOptions& ropts =
                                rt::RuntimeOptions{});

    /** Same, on an overridden system configuration. */
    NativeOutcome runNative(const wl::Case& c, const ir::Pipeline& pipeline,
                            const rt::RuntimeOptions& ropts,
                            const sim::SysConfig& cfg);

    /** Run the serial baseline natively on one host thread. */
    NativeOutcome runNativeSerial(const wl::Case& c,
                                  const rt::RuntimeOptions& ropts =
                                      rt::RuntimeOptions{});

    /** Compile with the static cost-model flow. */
    comp::CompileResult compileStatic(const comp::CompileOptions& opts =
                                          comp::CompileOptions{});

    /**
     * Profile-guided flow: train on the workload's training cases
     * (speedup over serial, gmean) and return the winner plus every
     * profiled candidate (Fig. 13's distribution).
     *
     * With the kSim profiler, candidates are scored on simulated
     * cycles and refinement is steered by the simulator's per-thread
     * queue-stall attribution. With kNative, each candidate runs on
     * the real runtime (Experiment::runNative); the evaluator ingests
     * the run's metrics report and steers refinement with the
     * per-queue backpressure counters — deepening the queue whose
     * producer blocks most, replicating the stage that consumes it.
     */
    comp::AutotuneResult autotunePGO(
        const comp::AutotuneOptions& opts,
        AutotuneProfiler profiler = AutotuneProfiler::kSim);

    /**
     * Gmean training speedup of an already-built pipeline on the given
     * profiler — how the static flow's pipeline is scored for the
     * autotune-vs-static comparison. Returns 0 when any training run
     * fails.
     */
    double trainingSpeedup(const ir::Pipeline& pipeline,
                           AutotuneProfiler profiler =
                               AutotuneProfiler::kSim);

    /** Build the manually pipelined baseline (null if none). */
    ir::PipelinePtr buildManual();

    /** Serial-baseline cycles for a case (cached). */
    uint64_t serialCycles(const wl::Case& c);

    /** Serial-baseline native wall milliseconds for a case (cached). */
    double serialNativeMs(const wl::Case& c);

    /** Distinct inputs held by the serial caches (test observability:
     *  autotuning N candidates must run serial once per input). */
    size_t serialCacheSize() const { return serialCache_.size(); }
    size_t serialNativeCacheSize() const
    {
        return serialNativeCache_.size();
    }

  private:
    wl::Workload workload_;
    sim::SysConfig cfg_;
    sim::MachineOptions mopts_;
    ir::FunctionPtr serialFn_;
    ir::FunctionPtr parallelFn_;
    std::vector<std::pair<std::string, uint64_t>> serialCache_;
    std::vector<std::pair<std::string, double>> serialNativeCache_;

    std::vector<const wl::Case*> trainingCases() const;
    comp::CandidateEvaluator makeSimEvaluator(
        const std::vector<const wl::Case*>& train);
    comp::CandidateEvaluator makeNativeEvaluator(
        const std::vector<const wl::Case*>& train);
};

/**
 * Build a synthetic Workload for an arbitrary mini-C kernel so the
 * autotuner can train on it without a registry entry (the path behind
 * `phloemc --autotune`). Each training size becomes one training case
 * with a deterministic synthesized binding (compile_service.h's
 * synthesizeBinding); outputs validate bit-for-bit against a serial
 * reference image computed once per size on the simulator — correct for
 * every backend because the differential tests force serial, sim, and
 * native to agree exactly.
 */
wl::Workload synthesizeWorkload(const std::string& source,
                                const std::string& kernel_name,
                                const std::vector<int64_t>& training_sizes);

} // namespace phloem::driver

#endif // PHLOEM_DRIVER_EXPERIMENT_H
