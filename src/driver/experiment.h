/**
 * @file
 * End-to-end experiment runner: compile a workload's variants, execute
 * them on the simulated system, validate outputs, and collect the
 * statistics the benchmark harnesses report.
 */

#ifndef PHLOEM_DRIVER_EXPERIMENT_H
#define PHLOEM_DRIVER_EXPERIMENT_H

#include <optional>
#include <string>
#include <vector>

#include "compiler/autotune.h"
#include "compiler/compiler.h"
#include "runtime/runtime.h"
#include "sim/config.h"
#include "sim/energy.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace phloem::driver {

struct RunOutcome
{
    sim::RunStats stats;
    bool correct = false;
    std::string error;
    /** Wall cycles; 0 when the run failed. */
    uint64_t cycles() const { return correct ? stats.cycles : 0; }
};

/** Result of a native (host-thread) execution. */
struct NativeOutcome
{
    rt::NativeStats stats;
    bool correct = false;
    std::string error;
    /** Wall-clock ms; 0 when the run failed. */
    double wallMs() const { return correct ? stats.wallMs() : 0.0; }
};

/** One workload compiled once; reused across inputs and variants. */
class Experiment
{
  public:
    Experiment(wl::Workload workload, sim::SysConfig cfg = sim::SysConfig{},
               sim::MachineOptions mopts = defaultMachineOptions());

    static sim::MachineOptions
    defaultMachineOptions()
    {
        sim::MachineOptions o;
        o.maxInstructions = 3'000'000'000ull;
        return o;
    }

    const wl::Workload& workload() const { return workload_; }
    const ir::Function& serialFn() const { return *serialFn_; }
    const sim::SysConfig& config() const { return cfg_; }

    /** Run the serial baseline on one input case. */
    RunOutcome runSerial(const wl::Case& c);

    /** Run the data-parallel baseline with `nthreads` threads. */
    RunOutcome runParallel(const wl::Case& c, int nthreads);

    /** Run an arbitrary pipeline. */
    RunOutcome runPipeline(const wl::Case& c, const ir::Pipeline& pipeline);

    /**
     * Run a pipeline natively: one host thread per stage (and per RA),
     * lock-free SPSC rings for the queues. Functionally identical to
     * runPipeline — the differential tests enforce bit-for-bit equality
     * — but the stats measure real wall time and queue backpressure.
     */
    NativeOutcome runNative(const wl::Case& c, const ir::Pipeline& pipeline,
                            const rt::RuntimeOptions& ropts =
                                rt::RuntimeOptions{});

    /** Run the serial baseline natively on one host thread. */
    NativeOutcome runNativeSerial(const wl::Case& c,
                                  const rt::RuntimeOptions& ropts =
                                      rt::RuntimeOptions{});

    /** Compile with the static cost-model flow. */
    comp::CompileResult compileStatic(const comp::CompileOptions& opts =
                                          comp::CompileOptions{});

    /**
     * Profile-guided flow: train on the workload's training cases
     * (speedup over serial, gmean) and return the winner plus every
     * profiled candidate (Fig. 13's distribution).
     */
    comp::AutotuneResult autotunePGO(const comp::AutotuneOptions& opts);

    /** Build the manually pipelined baseline (null if none). */
    ir::PipelinePtr buildManual();

    /** Serial-baseline cycles for a case (cached). */
    uint64_t serialCycles(const wl::Case& c);

  private:
    wl::Workload workload_;
    sim::SysConfig cfg_;
    sim::MachineOptions mopts_;
    ir::FunctionPtr serialFn_;
    ir::FunctionPtr parallelFn_;
    std::vector<std::pair<std::string, uint64_t>> serialCache_;
};

} // namespace phloem::driver

#endif // PHLOEM_DRIVER_EXPERIMENT_H
