/**
 * @file
 * Abstract syntax tree for the mini-C frontend.
 *
 * The tree is deliberately small: the kernels Phloem targets (paper
 * Sec. VI) are single functions over restrict-qualified pointer parameters
 * with loop nests, conditionals, and scalar arithmetic.
 */

#ifndef PHLOEM_FRONTEND_AST_H
#define PHLOEM_FRONTEND_AST_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "frontend/token.h"

namespace phloem::fe {

/** Scalar expression types. */
enum class Ty : uint8_t { kInt, kDouble };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr
{
    enum class Kind : uint8_t {
        kIntLit,
        kFloatLit,
        kVar,
        kIndex,   ///< kids[0] = base (kVar naming an array), kids[1] = index
        kUnary,   ///< op in `op`, kids[0]
        kBinary,  ///< op in `op`, kids[0], kids[1]
        kAssign,  ///< op in `op` (=, +=, ...), kids[0] = lhs, kids[1] = rhs
        kCond,    ///< kids[0] ? kids[1] : kids[2]
        kCall,    ///< name + kids as arguments
        kIncDec,  ///< ++/-- statement-level; op, kids[0] = lvalue
    };

    Kind kind;
    int line = 0;
    int64_t intValue = 0;
    double floatValue = 0;
    std::string name;
    Tok op = Tok::kEof;
    std::vector<ExprPtr> kids;
};

struct AstStmt;
using AstStmtPtr = std::unique_ptr<AstStmt>;

struct AstStmt
{
    enum class Kind : uint8_t {
        kExpr,
        kDecl,
        kIf,
        kFor,
        kWhile,
        kBlock,
        kBreak,
        kContinue,
        kPragma,
        kEmpty,
    };

    Kind kind;
    int line = 0;

    // kDecl.
    Ty declType = Ty::kInt;
    std::vector<std::pair<std::string, ExprPtr>> decls;

    // kExpr / conditions.
    ExprPtr expr;
    // kFor.
    AstStmtPtr init;
    ExprPtr inc;

    std::vector<AstStmtPtr> body;
    std::vector<AstStmtPtr> elseBody;

    // kPragma.
    std::string pragmaText;
};

struct ParamDecl
{
    std::string name;
    bool isPointer = false;
    bool isConst = false;
    bool isRestrict = false;
    /** For pointers: 'int' (32-bit), 'long' (64-bit), or double. */
    Tok baseType = Tok::kInt;
    int line = 0;
};

struct FunctionDecl
{
    std::string name;
    int line = 0;
    std::vector<ParamDecl> params;
    std::vector<AstStmtPtr> body;
    /** Pragma lines attached immediately before the function. */
    std::vector<std::string> pragmas;
};

struct TranslationUnit
{
    std::vector<std::unique_ptr<FunctionDecl>> functions;
};

} // namespace phloem::fe

#endif // PHLOEM_FRONTEND_AST_H
