/**
 * @file
 * Entry point of the mini-C frontend: source text in, Phloem IR out.
 *
 * Phloem transforms serial C (paper Sec. IV-A); programmers steer it with
 * the pragma annotations of Table II. This frontend accepts the C subset
 * the paper's kernels need and records the annotations alongside the
 * lowered function.
 */

#ifndef PHLOEM_FRONTEND_FRONTEND_H
#define PHLOEM_FRONTEND_FRONTEND_H

#include <string>
#include <vector>

#include "ir/function.h"

namespace phloem::fe {

/** Phloem annotations attached to a kernel (paper Table II). */
struct Annotations
{
    /** #pragma phloem: parallelize this function. */
    bool phloem = false;
    /** #pragma replicate N: replicate the pipeline N times. */
    int replicas = 1;
    /**
     * #pragma decouple: op ids (in the lowered function) at which the
     * user forces a stage boundary. The id names the first op emitted
     * after the pragma.
     */
    std::vector<int> decoupleOps;
    /** #pragma distribute: boundary where work is distributed across
     *  replicas; op id of the first op after the pragma. */
    std::vector<int> distributeOps;
};

struct CompiledKernel
{
    ir::FunctionPtr fn;
    Annotations ann;
};

/** Compile all functions in a source buffer. */
std::vector<CompiledKernel> compileC(const std::string& source);

/**
 * Compile one function from a source buffer: the named one, or the first
 * if name is empty. Throws if absent.
 */
CompiledKernel compileKernel(const std::string& source,
                             const std::string& name = "");

} // namespace phloem::fe

#endif // PHLOEM_FRONTEND_FRONTEND_H
