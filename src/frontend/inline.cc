/**
 * @file
 * Function inlining for the mini-C frontend.
 *
 * The paper notes that Phloem "currently works on a single procedure";
 * calls to other functions are supported but not decoupled within, and
 * "inlining could remove this limitation; we leave this to future work".
 * This implements that future work at the AST level: before lowering, a
 * call to another function defined in the same translation unit is
 * replaced by its body with parameters bound to the argument expressions,
 * so the decoupler sees one flat procedure.
 *
 * Supported callees: void functions whose parameters are scalars or
 * pointers, bodies without return statements, called as expression
 * statements with variable/array-name arguments (the form helper
 * routines in kernel code take). Recursion is rejected.
 */

#include <map>
#include <set>

#include "base/logging.h"
#include "frontend/inline.h"

namespace phloem::fe {

namespace {

ExprPtr
cloneExpr(const Expr& e)
{
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->line = e.line;
    out->intValue = e.intValue;
    out->floatValue = e.floatValue;
    out->name = e.name;
    out->op = e.op;
    for (const auto& k : e.kids)
        out->kids.push_back(cloneExpr(*k));
    return out;
}

AstStmtPtr
cloneStmt(const AstStmt& s)
{
    auto out = std::make_unique<AstStmt>();
    out->kind = s.kind;
    out->line = s.line;
    out->declType = s.declType;
    for (const auto& [name, init] : s.decls) {
        out->decls.emplace_back(name,
                                init ? cloneExpr(*init) : nullptr);
    }
    if (s.expr)
        out->expr = cloneExpr(*s.expr);
    if (s.init)
        out->init = cloneStmt(*s.init);
    if (s.inc)
        out->inc = cloneExpr(*s.inc);
    for (const auto& k : s.body)
        out->body.push_back(cloneStmt(*k));
    for (const auto& k : s.elseBody)
        out->elseBody.push_back(cloneStmt(*k));
    out->pragmaText = s.pragmaText;
    return out;
}

/** Rename every identifier occurrence per the substitution map. */
void
renameExpr(Expr& e, const std::map<std::string, std::string>& subst)
{
    if (e.kind == Expr::Kind::kVar || e.kind == Expr::Kind::kCall) {
        auto it = subst.find(e.name);
        if (it != subst.end())
            e.name = it->second;
    }
    for (auto& k : e.kids)
        renameExpr(*k, subst);
}

void
renameStmt(AstStmt& s, std::map<std::string, std::string> subst,
           int uniq)
{
    // Local declarations shadow: rename them to fresh names.
    if (s.kind == AstStmt::Kind::kDecl) {
        for (auto& [name, init] : s.decls) {
            if (init)
                renameExpr(*init, subst);
            std::string fresh =
                name + "__inl" + std::to_string(uniq);
            subst[name] = fresh;
            name = fresh;
        }
        // Note: later statements in the same region must see the updated
        // substitution; handled by the caller's sequential walk.
    }
    if (s.expr)
        renameExpr(*s.expr, subst);
    if (s.init)
        renameStmt(*s.init, subst, uniq);
    if (s.inc)
        renameExpr(*s.inc, subst);
    for (auto& k : s.body)
        renameStmt(*k, subst, uniq);
    for (auto& k : s.elseBody)
        renameStmt(*k, subst, uniq);
}

/** Sequential region rename that threads decl substitutions forward. */
void
renameRegion(std::vector<AstStmtPtr>& body,
             std::map<std::string, std::string>& subst, int uniq)
{
    for (auto& s : body) {
        if (s->kind == AstStmt::Kind::kDecl) {
            for (auto& [name, init] : s->decls) {
                if (init)
                    renameExpr(*init, subst);
                std::string fresh =
                    name + "__inl" + std::to_string(uniq);
                subst[name] = fresh;
                name = fresh;
            }
            continue;
        }
        // Non-decl statements: rename with the current substitution;
        // nested regions get their own copy (their decls shadow only
        // within).
        renameStmt(*s, subst, uniq);
    }
}

bool
isBuiltin(const std::string& name)
{
    return name == "phloem_swap" || name == "phloem_work" ||
           name == "phloem_barrier" || name == "min" || name == "max" ||
           name == "fabs" || name == "abs" ||
           name.rfind("phloem_atomic_", 0) == 0 ||
           name.rfind("__cast_", 0) == 0;
}

class Inliner
{
  public:
    explicit Inliner(TranslationUnit& tu) : tu_(tu)
    {
        for (auto& fn : tu.functions)
            byName_[fn->name] = fn.get();
    }

    void
    run()
    {
        for (auto& fn : tu_.functions) {
            std::set<std::string> stack{fn->name};
            inlineRegion(fn->body, stack);
        }
    }

  private:
    void
    inlineRegion(std::vector<AstStmtPtr>& body,
                 std::set<std::string>& stack)
    {
        for (size_t i = 0; i < body.size(); ++i) {
            AstStmt& s = *body[i];
            // Recurse into nested regions first.
            if (s.init)
                inlineRegionOne(*s.init, stack);
            inlineRegion(s.body, stack);
            inlineRegion(s.elseBody, stack);

            if (s.kind != AstStmt::Kind::kExpr || !s.expr ||
                s.expr->kind != Expr::Kind::kCall) {
                continue;
            }
            const std::string& callee_name = s.expr->name;
            if (isBuiltin(callee_name))
                continue;
            auto it = byName_.find(callee_name);
            if (it == byName_.end())
                continue;  // unknown: the lowerer reports it
            phloem_assert(stack.count(callee_name) == 0,
                          "recursive call to ", callee_name,
                          " cannot be inlined");
            const FunctionDecl& callee = *it->second;
            phloem_assert(
                callee.params.size() == s.expr->kids.size(),
                "argument count mismatch calling ", callee_name);

            // Bind parameters. Pointer parameters must be plain array
            // names (by-reference: rename). Scalar parameters copy in
            // through a fresh local, preserving C's by-value semantics
            // and allowing arbitrary argument expressions.
            std::map<std::string, std::string> subst;
            std::vector<AstStmtPtr> cloned;
            int uniq = uniq_++;
            for (size_t p = 0; p < callee.params.size(); ++p) {
                const ParamDecl& param = callee.params[p];
                const Expr& arg = *s.expr->kids[p];
                if (param.isPointer) {
                    phloem_assert(arg.kind == Expr::Kind::kVar,
                                  "array argument to inlined call must "
                                  "be a plain array name (calling ",
                                  callee_name, ")");
                    subst[param.name] = arg.name;
                    continue;
                }
                std::string fresh = param.name + "__arg" +
                                    std::to_string(uniq);
                auto decl = std::make_unique<AstStmt>();
                decl->kind = AstStmt::Kind::kDecl;
                decl->line = s.line;
                decl->declType =
                    (param.baseType == Tok::kDouble ||
                     param.baseType == Tok::kFloat)
                        ? Ty::kDouble
                        : Ty::kInt;
                decl->decls.emplace_back(fresh, cloneExpr(arg));
                cloned.push_back(std::move(decl));
                subst[param.name] = fresh;
            }

            // Clone + rename the body, then splice it in.
            size_t body_start = cloned.size();
            for (const auto& st : callee.body)
                cloned.push_back(cloneStmt(*st));
            std::vector<AstStmtPtr> body_part;
            for (size_t k = body_start; k < cloned.size(); ++k)
                body_part.push_back(std::move(cloned[k]));
            cloned.resize(body_start);
            renameRegion(body_part, subst, uniq);
            for (auto& st : body_part)
                cloned.push_back(std::move(st));

            // Recursively inline within the spliced body.
            stack.insert(callee_name);
            inlineRegion(cloned, stack);
            stack.erase(callee_name);

            body.erase(body.begin() + static_cast<long>(i));
            body.insert(body.begin() + static_cast<long>(i),
                        std::make_move_iterator(cloned.begin()),
                        std::make_move_iterator(cloned.end()));
            i += cloned.size();
            i--;  // account for the loop increment
        }
    }

    void
    inlineRegionOne(AstStmt& s, std::set<std::string>& stack)
    {
        inlineRegion(s.body, stack);
        inlineRegion(s.elseBody, stack);
    }

    TranslationUnit& tu_;
    std::map<std::string, FunctionDecl*> byName_;
    int uniq_ = 0;
};

} // namespace

void
inlineCalls(TranslationUnit& tu)
{
    Inliner(tu).run();
}

} // namespace phloem::fe
