/**
 * @file
 * AST-level function inlining (the paper's Sec. IV-A future work: Phloem
 * transforms single procedures; inlining removes the limitation).
 */

#ifndef PHLOEM_FRONTEND_INLINE_H
#define PHLOEM_FRONTEND_INLINE_H

#include "frontend/ast.h"

namespace phloem::fe {

/**
 * Replace calls to functions defined in the same translation unit with
 * their bodies (parameters bound to the identifier arguments, locals
 * renamed). Builtin calls and calls to unknown names are left alone.
 * Recursive calls are rejected.
 */
void inlineCalls(TranslationUnit& tu);

} // namespace phloem::fe

#endif // PHLOEM_FRONTEND_INLINE_H
