#include "frontend/lexer.h"

#include <cctype>
#include <map>

#include "base/logging.h"

namespace phloem::fe {

const char*
tokName(Tok t)
{
    switch (t) {
      case Tok::kEof: return "<eof>";
      case Tok::kIdent: return "identifier";
      case Tok::kIntLit: return "integer literal";
      case Tok::kFloatLit: return "float literal";
      case Tok::kVoid: return "void";
      case Tok::kInt: return "int";
      case Tok::kLong: return "long";
      case Tok::kDouble: return "double";
      case Tok::kFloat: return "float";
      case Tok::kConst: return "const";
      case Tok::kRestrict: return "restrict";
      case Tok::kIf: return "if";
      case Tok::kElse: return "else";
      case Tok::kFor: return "for";
      case Tok::kWhile: return "while";
      case Tok::kBreak: return "break";
      case Tok::kContinue: return "continue";
      case Tok::kReturn: return "return";
      case Tok::kPragma: return "#pragma";
      case Tok::kLParen: return "(";
      case Tok::kRParen: return ")";
      case Tok::kLBrace: return "{";
      case Tok::kRBrace: return "}";
      case Tok::kLBracket: return "[";
      case Tok::kRBracket: return "]";
      case Tok::kSemi: return ";";
      case Tok::kComma: return ",";
      case Tok::kQuestion: return "?";
      case Tok::kColon: return ":";
      case Tok::kAssign: return "=";
      case Tok::kPlusAssign: return "+=";
      case Tok::kMinusAssign: return "-=";
      case Tok::kStarAssign: return "*=";
      case Tok::kOrAssign: return "|=";
      case Tok::kAndAssign: return "&=";
      case Tok::kPlus: return "+";
      case Tok::kMinus: return "-";
      case Tok::kStar: return "*";
      case Tok::kSlash: return "/";
      case Tok::kPercent: return "%";
      case Tok::kAmp: return "&";
      case Tok::kPipe: return "|";
      case Tok::kCaret: return "^";
      case Tok::kTilde: return "~";
      case Tok::kBang: return "!";
      case Tok::kAmpAmp: return "&&";
      case Tok::kPipePipe: return "||";
      case Tok::kShl: return "<<";
      case Tok::kShrTok: return ">>";
      case Tok::kEq: return "==";
      case Tok::kNe: return "!=";
      case Tok::kLt: return "<";
      case Tok::kLe: return "<=";
      case Tok::kGt: return ">";
      case Tok::kGe: return ">=";
      case Tok::kPlusPlus: return "++";
      case Tok::kMinusMinus: return "--";
    }
    return "?";
}

namespace {

const std::map<std::string, Tok> kKeywords = {
    {"void", Tok::kVoid},       {"int", Tok::kInt},
    {"long", Tok::kLong},       {"double", Tok::kDouble},
    {"float", Tok::kFloat},     {"const", Tok::kConst},
    {"restrict", Tok::kRestrict},
    {"__restrict", Tok::kRestrict},
    {"__restrict__", Tok::kRestrict},
    {"if", Tok::kIf},           {"else", Tok::kElse},
    {"for", Tok::kFor},         {"while", Tok::kWhile},
    {"break", Tok::kBreak},     {"continue", Tok::kContinue},
    {"return", Tok::kReturn},
};

class Lexer
{
  public:
    explicit Lexer(const std::string& src) : src_(src) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> out;
        for (;;) {
            Token t = next();
            bool eof = t.kind == Tok::kEof;
            out.push_back(std::move(t));
            if (eof)
                break;
        }
        return out;
    }

  private:
    char peek(int k = 0) const
    {
        size_t i = pos_ + static_cast<size_t>(k);
        return i < src_.size() ? src_[i] : '\0';
    }

    char
    advance()
    {
        char c = peek();
        pos_++;
        if (c == '\n') {
            line_++;
            col_ = 1;
        } else {
            col_++;
        }
        return c;
    }

    void
    skipWhitespaceAndComments()
    {
        for (;;) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
                advance();
            } else if (c == '/' && peek(1) == '/') {
                while (peek() != '\n' && peek() != '\0')
                    advance();
            } else if (c == '/' && peek(1) == '*') {
                advance();
                advance();
                while (!(peek() == '*' && peek(1) == '/')) {
                    if (peek() == '\0')
                        phloem_fatal("unterminated comment at line ", line_);
                    advance();
                }
                advance();
                advance();
            } else {
                return;
            }
        }
    }

    Token
    make(Tok kind)
    {
        Token t;
        t.kind = kind;
        t.line = line_;
        t.col = col_;
        return t;
    }

    Token
    next()
    {
        skipWhitespaceAndComments();
        char c = peek();
        if (c == '\0')
            return make(Tok::kEof);

        if (c == '#') {
            // Preprocessor line. Only '#pragma ...' is meaningful; other
            // directives (e.g. #include) are skipped.
            Token t = make(Tok::kPragma);
            std::string text;
            while (peek() != '\n' && peek() != '\0')
                text.push_back(advance());
            if (text.rfind("#pragma", 0) == 0) {
                t.text = text.substr(7);
                // Trim leading whitespace.
                size_t b = t.text.find_first_not_of(" \t");
                t.text = b == std::string::npos ? "" : t.text.substr(b);
                return t;
            }
            return next();  // skip non-pragma directives
        }

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            Token t = make(Tok::kIdent);
            std::string text;
            while (std::isalnum(static_cast<unsigned char>(peek())) ||
                   peek() == '_') {
                text.push_back(advance());
            }
            auto it = kKeywords.find(text);
            if (it != kKeywords.end()) {
                t.kind = it->second;
            }
            t.text = std::move(text);
            return t;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            Token t = make(Tok::kIntLit);
            std::string text;
            bool is_float = false;
            while (std::isdigit(static_cast<unsigned char>(peek())) ||
                   peek() == '.' || peek() == 'e' || peek() == 'E' ||
                   ((peek() == '+' || peek() == '-') &&
                    (text.back() == 'e' || text.back() == 'E')) ||
                   peek() == 'x' || peek() == 'X' ||
                   (text.size() >= 2 && (text[1] == 'x' || text[1] == 'X') &&
                    std::isxdigit(static_cast<unsigned char>(peek())))) {
                char d = advance();
                if (d == '.' || d == 'e' || d == 'E')
                    is_float = text.size() < 2 ||
                               (text[1] != 'x' && text[1] != 'X')
                                   ? true
                                   : is_float;
                text.push_back(d);
            }
            // Suffixes.
            while (peek() == 'u' || peek() == 'U' || peek() == 'l' ||
                   peek() == 'L' || peek() == 'f' || peek() == 'F') {
                if (peek() == 'f' || peek() == 'F')
                    is_float = true;
                advance();
            }
            t.text = text;
            if (is_float) {
                t.kind = Tok::kFloatLit;
                t.floatValue = std::stod(text);
            } else {
                t.intValue = std::stoll(text, nullptr, 0);
            }
            return t;
        }

        Token t = make(Tok::kEof);
        advance();
        auto two = [&](char second, Tok yes, Tok no) {
            if (peek() == second) {
                advance();
                t.kind = yes;
            } else {
                t.kind = no;
            }
        };

        switch (c) {
          case '(': t.kind = Tok::kLParen; break;
          case ')': t.kind = Tok::kRParen; break;
          case '{': t.kind = Tok::kLBrace; break;
          case '}': t.kind = Tok::kRBrace; break;
          case '[': t.kind = Tok::kLBracket; break;
          case ']': t.kind = Tok::kRBracket; break;
          case ';': t.kind = Tok::kSemi; break;
          case ',': t.kind = Tok::kComma; break;
          case '?': t.kind = Tok::kQuestion; break;
          case ':': t.kind = Tok::kColon; break;
          case '~': t.kind = Tok::kTilde; break;
          case '^': t.kind = Tok::kCaret; break;
          case '+':
            if (peek() == '+') {
                advance();
                t.kind = Tok::kPlusPlus;
            } else {
                two('=', Tok::kPlusAssign, Tok::kPlus);
            }
            break;
          case '-':
            if (peek() == '-') {
                advance();
                t.kind = Tok::kMinusMinus;
            } else {
                two('=', Tok::kMinusAssign, Tok::kMinus);
            }
            break;
          case '*': two('=', Tok::kStarAssign, Tok::kStar); break;
          case '/': t.kind = Tok::kSlash; break;
          case '%': t.kind = Tok::kPercent; break;
          case '=': two('=', Tok::kEq, Tok::kAssign); break;
          case '!': two('=', Tok::kNe, Tok::kBang); break;
          case '<':
            if (peek() == '<') {
                advance();
                t.kind = Tok::kShl;
            } else {
                two('=', Tok::kLe, Tok::kLt);
            }
            break;
          case '>':
            if (peek() == '>') {
                advance();
                t.kind = Tok::kShrTok;
            } else {
                two('=', Tok::kGe, Tok::kGt);
            }
            break;
          case '&':
            if (peek() == '&') {
                advance();
                t.kind = Tok::kAmpAmp;
            } else {
                two('=', Tok::kAndAssign, Tok::kAmp);
            }
            break;
          case '|':
            if (peek() == '|') {
                advance();
                t.kind = Tok::kPipePipe;
            } else {
                two('=', Tok::kOrAssign, Tok::kPipe);
            }
            break;
          default:
            phloem_fatal("unexpected character '", std::string(1, c),
                         "' at line ", line_);
        }
        return t;
    }

    const std::string& src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

} // namespace

std::vector<Token>
lex(const std::string& source)
{
    return Lexer(source).run();
}

} // namespace phloem::fe
