/**
 * @file
 * Lexer for the mini-C frontend. Handles comments, `#pragma` lines (fused
 * into a kPragma token whose text is the rest of the line), and the
 * keyword subset the Phloem kernels need.
 */

#ifndef PHLOEM_FRONTEND_LEXER_H
#define PHLOEM_FRONTEND_LEXER_H

#include <string>
#include <vector>

#include "frontend/token.h"

namespace phloem::fe {

/** Tokenize a whole source buffer; throws on malformed input. */
std::vector<Token> lex(const std::string& source);

} // namespace phloem::fe

#endif // PHLOEM_FRONTEND_LEXER_H
