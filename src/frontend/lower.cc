/**
 * @file
 * AST-to-IR lowering with simple int/double type checking.
 */

#include <map>
#include <sstream>

#include "base/logging.h"
#include "frontend/frontend.h"
#include "frontend/inline.h"
#include "frontend/parser.h"
#include "ir/builder.h"
#include "ir/simplify.h"
#include "ir/walk.h"

namespace phloem::fe {

namespace {

/** One symbol: either a scalar register or an array slot. */
struct Sym
{
    bool isArray = false;
    ir::ArrayId arr = ir::kNoArray;
    ir::RegId reg = ir::kNoReg;
    Ty ty = Ty::kInt;
};

/** A typed rvalue. */
struct RV
{
    ir::RegId reg = ir::kNoReg;
    Ty ty = Ty::kInt;
};

/** Alias class shared by all non-restrict pointer parameters. */
constexpr int kMayAliasClass = 10000;

class Lowerer
{
  public:
    explicit Lowerer(const FunctionDecl& decl)
        : decl_(decl), b_(decl.name)
    {
    }

    CompiledKernel
    run()
    {
        parsePragmas();
        pushScope();
        for (const auto& p : decl_.params)
            lowerParam(p);
        for (const auto& s : decl_.body)
            lowerStmt(*s);
        popScope();

        CompiledKernel out;
        out.fn = b_.finish();
        out.ann = ann_;
        return out;
    }

  private:
    [[noreturn]] void
    err(int line, const std::string& msg)
    {
        phloem_fatal(decl_.name, ":", line, ": ", msg);
    }

    void
    parsePragmas()
    {
        for (const auto& text : decl_.pragmas) {
            std::istringstream iss(text);
            std::string word;
            iss >> word;
            if (word == "phloem") {
                ann_.phloem = true;
            } else if (word.rfind("replicate", 0) == 0) {
                // Accept "replicate N" and "replicate(N)".
                std::string rest = text.substr(9);
                int n = 0;
                for (char c : rest)
                    if (c >= '0' && c <= '9')
                        n = n * 10 + (c - '0');
                if (n >= 1)
                    ann_.replicas = n;
            } else {
                phloem_warn("unknown function pragma '", text, "' on ",
                            decl_.name);
            }
        }
    }

    void
    lowerParam(const ParamDecl& p)
    {
        Sym sym;
        if (p.isPointer) {
            ir::ElemType elem;
            switch (p.baseType) {
              case Tok::kInt: elem = ir::ElemType::kI32; break;
              case Tok::kLong: elem = ir::ElemType::kI64; break;
              default: elem = ir::ElemType::kF64; break;
            }
            int alias_class = p.isRestrict ? -1 : kMayAliasClass;
            sym.isArray = true;
            sym.arr = b_.arrayParam(p.name, elem, !p.isConst, alias_class);
            sym.ty = elem == ir::ElemType::kF64 ? Ty::kDouble : Ty::kInt;
        } else {
            bool is_float =
                p.baseType == Tok::kDouble || p.baseType == Tok::kFloat;
            sym.reg = b_.scalarParam(p.name, is_float);
            sym.ty = is_float ? Ty::kDouble : Ty::kInt;
        }
        scopes_.back()[p.name] = sym;
    }

    // --- Scopes. ---

    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    Sym*
    find(const std::string& name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return &f->second;
        }
        return nullptr;
    }

    // --- Expressions. ---

    RV
    coerce(RV v, Ty target, int line)
    {
        if (v.ty == target)
            return v;
        if (target == Ty::kDouble)
            return RV{b_.i2f(v.reg), Ty::kDouble};
        (void)line;
        return RV{b_.f2i(v.reg), Ty::kInt};
    }

    /** Evaluate to a register holding an int truth value. */
    ir::RegId
    evalCond(const Expr& e)
    {
        RV v = eval(e);
        if (v.ty == Ty::kDouble) {
            ir::RegId zero = b_.constF(0.0);
            return b_.emitBinary(ir::Opcode::kFCmpNe, v.reg, zero);
        }
        return v.reg;
    }

    RV
    eval(const Expr& e)
    {
        switch (e.kind) {
          case Expr::Kind::kIntLit:
            return RV{b_.constI(e.intValue), Ty::kInt};
          case Expr::Kind::kFloatLit:
            return RV{b_.constF(e.floatValue), Ty::kDouble};
          case Expr::Kind::kVar:
            return evalVar(e);
          case Expr::Kind::kIndex:
            return evalIndexLoad(e);
          case Expr::Kind::kUnary:
            return evalUnary(e);
          case Expr::Kind::kBinary:
            return evalBinary(e);
          case Expr::Kind::kAssign:
            return evalAssign(e);
          case Expr::Kind::kCond:
            return evalCondExpr(e);
          case Expr::Kind::kCall:
            return evalCall(e);
          case Expr::Kind::kIncDec:
            return evalIncDec(e);
        }
        err(e.line, "unsupported expression");
    }

    RV
    evalVar(const Expr& e)
    {
        if (e.name == "INT_MAX")
            return RV{b_.constI(2147483647), Ty::kInt};
        if (e.name == "INT_MIN")
            return RV{b_.constI(-2147483647 - 1), Ty::kInt};
        if (e.name == "LONG_MAX")
            return RV{b_.constI(0x7fffffffffffffffll), Ty::kInt};
        Sym* sym = find(e.name);
        if (sym == nullptr)
            err(e.line, "use of undeclared identifier '" + e.name + "'");
        if (sym->isArray)
            err(e.line, "array '" + e.name + "' used as a scalar");
        return RV{sym->reg, sym->ty};
    }

    /** Resolve an index expression's array symbol and index register. */
    std::pair<Sym*, ir::RegId>
    evalIndexRef(const Expr& e)
    {
        const Expr& base = *e.kids[0];
        if (base.kind != Expr::Kind::kVar)
            err(e.line, "only direct array indexing is supported");
        Sym* sym = find(base.name);
        if (sym == nullptr || !sym->isArray)
            err(base.line, "'" + base.name + "' is not an array");
        RV idx = coerce(eval(*e.kids[1]), Ty::kInt, e.line);
        return {sym, idx.reg};
    }

    RV
    evalIndexLoad(const Expr& e)
    {
        auto [sym, idx] = evalIndexRef(e);
        return RV{b_.load(sym->arr, idx), sym->ty};
    }

    RV
    evalUnary(const Expr& e)
    {
        RV v = eval(*e.kids[0]);
        switch (e.op) {
          case Tok::kMinus:
            if (v.ty == Ty::kDouble)
                return RV{b_.emitUnary(ir::Opcode::kFNeg, v.reg),
                          Ty::kDouble};
            return RV{b_.sub(b_.constI(0), v.reg), Ty::kInt};
          case Tok::kBang:
            return RV{b_.not_(evalCondReg(v, e.line)), Ty::kInt};
          case Tok::kTilde:
            return RV{b_.xor_(coerce(v, Ty::kInt, e.line).reg,
                              b_.constI(-1)),
                      Ty::kInt};
          default:
            err(e.line, "unsupported unary operator");
        }
    }

    ir::RegId
    evalCondReg(RV v, int line)
    {
        if (v.ty == Ty::kDouble) {
            ir::RegId zero = b_.constF(0.0);
            return b_.emitBinary(ir::Opcode::kFCmpNe, v.reg, zero);
        }
        (void)line;
        return v.reg;
    }

    RV
    evalBinary(const Expr& e)
    {
        // Short-circuit logical operators lower to control flow so the
        // right operand's memory accesses stay guarded.
        if (e.op == Tok::kAmpAmp || e.op == Tok::kPipePipe) {
            ir::RegId res = b_.newReg("sc");
            ir::RegId lhs = evalCond(*e.kids[0]);
            if (e.op == Tok::kAmpAmp) {
                b_.if_(
                    lhs,
                    [&] { b_.movTo(res, evalCond(*e.kids[1])); },
                    [&] { b_.constTo(res, 0); });
            } else {
                b_.if_(
                    lhs, [&] { b_.constTo(res, 1); },
                    [&] { b_.movTo(res, evalCond(*e.kids[1])); });
            }
            return RV{res, Ty::kInt};
        }

        RV l = eval(*e.kids[0]);
        RV r = eval(*e.kids[1]);
        bool fp = l.ty == Ty::kDouble || r.ty == Ty::kDouble;
        if (fp) {
            l = coerce(l, Ty::kDouble, e.line);
            r = coerce(r, Ty::kDouble, e.line);
        }

        auto bin = [&](ir::Opcode i_op, ir::Opcode f_op, Ty out_ty) {
            return RV{b_.emitBinary(fp ? f_op : i_op, l.reg, r.reg),
                      fp ? (out_ty == Ty::kInt ? Ty::kInt : Ty::kDouble)
                         : out_ty};
        };

        switch (e.op) {
          case Tok::kPlus:
            return bin(ir::Opcode::kAdd, ir::Opcode::kFAdd,
                       fp ? Ty::kDouble : Ty::kInt);
          case Tok::kMinus:
            return bin(ir::Opcode::kSub, ir::Opcode::kFSub,
                       fp ? Ty::kDouble : Ty::kInt);
          case Tok::kStar:
            return bin(ir::Opcode::kMul, ir::Opcode::kFMul,
                       fp ? Ty::kDouble : Ty::kInt);
          case Tok::kSlash:
            return bin(ir::Opcode::kDiv, ir::Opcode::kFDiv,
                       fp ? Ty::kDouble : Ty::kInt);
          case Tok::kPercent:
            if (fp)
                err(e.line, "%% on floating-point values");
            return RV{b_.rem(l.reg, r.reg), Ty::kInt};
          case Tok::kAmp: return RV{b_.and_(l.reg, r.reg), Ty::kInt};
          case Tok::kPipe: return RV{b_.or_(l.reg, r.reg), Ty::kInt};
          case Tok::kCaret: return RV{b_.xor_(l.reg, r.reg), Ty::kInt};
          case Tok::kShl: return RV{b_.shl(l.reg, r.reg), Ty::kInt};
          case Tok::kShrTok: return RV{b_.shr(l.reg, r.reg), Ty::kInt};
          case Tok::kEq:
            return RV{b_.emitBinary(fp ? ir::Opcode::kFCmpEq
                                       : ir::Opcode::kCmpEq,
                                    l.reg, r.reg),
                      Ty::kInt};
          case Tok::kNe:
            return RV{b_.emitBinary(fp ? ir::Opcode::kFCmpNe
                                       : ir::Opcode::kCmpNe,
                                    l.reg, r.reg),
                      Ty::kInt};
          case Tok::kLt:
            return RV{b_.emitBinary(fp ? ir::Opcode::kFCmpLt
                                       : ir::Opcode::kCmpLt,
                                    l.reg, r.reg),
                      Ty::kInt};
          case Tok::kLe:
            return RV{b_.emitBinary(fp ? ir::Opcode::kFCmpLe
                                       : ir::Opcode::kCmpLe,
                                    l.reg, r.reg),
                      Ty::kInt};
          case Tok::kGt:
            return RV{b_.emitBinary(fp ? ir::Opcode::kFCmpGt
                                       : ir::Opcode::kCmpGt,
                                    l.reg, r.reg),
                      Ty::kInt};
          case Tok::kGe:
            return RV{b_.emitBinary(fp ? ir::Opcode::kFCmpGe
                                       : ir::Opcode::kCmpGe,
                                    l.reg, r.reg),
                      Ty::kInt};
          default:
            err(e.line, "unsupported binary operator");
        }
    }

    RV
    evalAssign(const Expr& e)
    {
        const Expr& lhs = *e.kids[0];
        const Expr& rhs = *e.kids[1];

        auto combine = [&](RV old, RV nv, int line) -> RV {
            bool fp = old.ty == Ty::kDouble;
            RV r = coerce(nv, old.ty, line);
            switch (e.op) {
              case Tok::kAssign: return r;
              case Tok::kPlusAssign:
                return RV{fp ? b_.fadd(old.reg, r.reg)
                             : b_.add(old.reg, r.reg),
                          old.ty};
              case Tok::kMinusAssign:
                return RV{fp ? b_.fsub(old.reg, r.reg)
                             : b_.sub(old.reg, r.reg),
                          old.ty};
              case Tok::kStarAssign:
                return RV{fp ? b_.fmul(old.reg, r.reg)
                             : b_.mul(old.reg, r.reg),
                          old.ty};
              case Tok::kOrAssign:
                if (fp)
                    err(line, "|= on floating-point value");
                return RV{b_.or_(old.reg, r.reg), Ty::kInt};
              case Tok::kAndAssign:
                if (fp)
                    err(line, "&= on floating-point value");
                return RV{b_.and_(old.reg, r.reg), Ty::kInt};
              default:
                err(line, "unsupported assignment operator");
            }
        };

        if (lhs.kind == Expr::Kind::kVar) {
            Sym* sym = find(lhs.name);
            if (sym == nullptr)
                err(lhs.line,
                    "assignment to undeclared '" + lhs.name + "'");
            if (sym->isArray)
                err(lhs.line, "cannot assign to array '" + lhs.name + "'");
            RV rv = eval(rhs);
            RV nv = e.op == Tok::kAssign
                        ? coerce(rv, sym->ty, e.line)
                        : combine(RV{sym->reg, sym->ty}, rv, e.line);
            b_.movTo(sym->reg, nv.reg);
            return RV{sym->reg, sym->ty};
        }
        if (lhs.kind == Expr::Kind::kIndex) {
            auto [sym, idx] = evalIndexRef(lhs);
            RV rv = eval(rhs);
            RV nv;
            if (e.op == Tok::kAssign) {
                nv = coerce(rv, sym->ty, e.line);
            } else {
                RV old{b_.load(sym->arr, idx), sym->ty};
                nv = combine(old, rv, e.line);
            }
            b_.store(sym->arr, idx, nv.reg);
            return nv;
        }
        err(lhs.line, "invalid assignment target");
    }

    RV
    evalCondExpr(const Expr& e)
    {
        // Lower ?: to control flow so both arms stay guarded.
        ir::RegId cond = evalCond(*e.kids[0]);
        ir::RegId res = b_.newReg("sel");
        Ty out = Ty::kInt;
        b_.if_(
            cond,
            [&] {
                RV t = eval(*e.kids[1]);
                out = t.ty;
                b_.movTo(res, t.reg);
            },
            [&] {
                RV f = eval(*e.kids[2]);
                RV cf = coerce(f, out, e.line);
                b_.movTo(res, cf.reg);
            });
        return RV{res, out};
    }

    RV
    evalIncDec(const Expr& e)
    {
        // Supported as a statement-level side effect only; the value of
        // v++ vs ++v is not distinguished (kernels do not rely on it).
        const Expr& target = *e.kids[0];
        ir::RegId one = b_.constI(1);
        if (target.kind == Expr::Kind::kVar) {
            Sym* sym = find(target.name);
            if (sym == nullptr || sym->isArray)
                err(target.line, "invalid ++/-- target");
            if (sym->ty == Ty::kDouble)
                err(target.line, "++/-- on double");
            ir::RegId nv = e.op == Tok::kPlusPlus
                               ? b_.add(sym->reg, one)
                               : b_.sub(sym->reg, one);
            b_.movTo(sym->reg, nv);
            return RV{sym->reg, Ty::kInt};
        }
        if (target.kind == Expr::Kind::kIndex) {
            auto [sym, idx] = evalIndexRef(target);
            ir::RegId old = b_.load(sym->arr, idx);
            ir::RegId nv = e.op == Tok::kPlusPlus ? b_.add(old, one)
                                                  : b_.sub(old, one);
            b_.store(sym->arr, idx, nv);
            return RV{nv, Ty::kInt};
        }
        err(target.line, "invalid ++/-- target");
    }

    RV
    evalCall(const Expr& e)
    {
        auto nargs = e.kids.size();
        if (e.name == "__cast_int") {
            return coerce(eval(*e.kids[0]), Ty::kInt, e.line);
        }
        if (e.name == "__cast_double") {
            return coerce(eval(*e.kids[0]), Ty::kDouble, e.line);
        }
        if (e.name == "phloem_swap" && nargs == 2) {
            const Expr& a = *e.kids[0];
            const Expr& b = *e.kids[1];
            if (a.kind != Expr::Kind::kVar || b.kind != Expr::Kind::kVar)
                err(e.line, "phloem_swap takes two array names");
            Sym* sa = find(a.name);
            Sym* sb = find(b.name);
            if (sa == nullptr || sb == nullptr || !sa->isArray ||
                !sb->isArray) {
                err(e.line, "phloem_swap takes two array names");
            }
            b_.swapArrays(sa->arr, sb->arr);
            return RV{b_.constI(0), Ty::kInt};
        }
        if (e.name == "phloem_work" && nargs == 2) {
            RV x = coerce(eval(*e.kids[0]), Ty::kInt, e.line);
            const Expr& cost = *e.kids[1];
            if (cost.kind != Expr::Kind::kIntLit)
                err(e.line, "phloem_work cost must be a literal");
            return RV{b_.work(x.reg, cost.intValue), Ty::kInt};
        }
        if (e.name == "phloem_barrier" && nargs == 0) {
            b_.barrier();
            return RV{b_.constI(0), Ty::kInt};
        }
        if ((e.name == "phloem_atomic_min" ||
             e.name == "phloem_atomic_add" ||
             e.name == "phloem_atomic_or" ||
             e.name == "phloem_atomic_fadd") &&
            nargs == 3) {
            const Expr& base = *e.kids[0];
            if (base.kind != Expr::Kind::kVar)
                err(e.line, e.name + " takes an array name first");
            Sym* sym = find(base.name);
            if (sym == nullptr || !sym->isArray)
                err(e.line, "'" + base.name + "' is not an array");
            RV idx = coerce(eval(*e.kids[1]), Ty::kInt, e.line);
            RV val = coerce(eval(*e.kids[2]), sym->ty, e.line);
            if (e.name == "phloem_atomic_min")
                return RV{b_.atomicMin(sym->arr, idx.reg, val.reg),
                          sym->ty};
            if (e.name == "phloem_atomic_add")
                return RV{b_.atomicAdd(sym->arr, idx.reg, val.reg),
                          sym->ty};
            if (e.name == "phloem_atomic_or")
                return RV{b_.atomicOr(sym->arr, idx.reg, val.reg),
                          sym->ty};
            return RV{b_.atomicFAdd(sym->arr, idx.reg, val.reg), sym->ty};
        }
        if ((e.name == "min" || e.name == "max") && nargs == 2) {
            RV a = eval(*e.kids[0]);
            RV b2 = eval(*e.kids[1]);
            bool fp = a.ty == Ty::kDouble || b2.ty == Ty::kDouble;
            if (fp) {
                a = coerce(a, Ty::kDouble, e.line);
                b2 = coerce(b2, Ty::kDouble, e.line);
                return RV{b_.emitBinary(e.name == "min"
                                            ? ir::Opcode::kFMin
                                            : ir::Opcode::kFMax,
                                        a.reg, b2.reg),
                          Ty::kDouble};
            }
            return RV{b_.emitBinary(e.name == "min" ? ir::Opcode::kMin
                                                    : ir::Opcode::kMax,
                                    a.reg, b2.reg),
                      Ty::kInt};
        }
        if ((e.name == "fabs" || e.name == "abs") && nargs == 1) {
            RV a = eval(*e.kids[0]);
            if (a.ty == Ty::kDouble || e.name == "fabs") {
                a = coerce(a, Ty::kDouble, e.line);
                return RV{b_.fabs_(a.reg), Ty::kDouble};
            }
            ir::RegId zero = b_.constI(0);
            ir::RegId neg = b_.sub(zero, a.reg);
            return RV{b_.max(a.reg, neg), Ty::kInt};
        }
        err(e.line, "unsupported call to '" + e.name + "'");
    }

    // --- Statements. ---

    void
    lowerStmt(const AstStmt& s)
    {
        switch (s.kind) {
          case AstStmt::Kind::kEmpty:
            return;
          case AstStmt::Kind::kPragma:
            lowerPragma(s);
            return;
          case AstStmt::Kind::kExpr:
            eval(*s.expr);
            return;
          case AstStmt::Kind::kDecl:
            lowerDecl(s);
            return;
          case AstStmt::Kind::kBlock: {
            pushScope();
            for (const auto& k : s.body)
                lowerStmt(*k);
            popScope();
            return;
          }
          case AstStmt::Kind::kIf: {
            ir::RegId cond = evalCond(*s.expr);
            if (s.elseBody.empty()) {
                b_.if_(cond, [&] { lowerScoped(s.body); });
            } else {
                b_.if_(
                    cond, [&] { lowerScoped(s.body); },
                    [&] { lowerScoped(s.elseBody); });
            }
            return;
          }
          case AstStmt::Kind::kWhile: {
            b_.loop([&] {
                ir::RegId cond = evalCond(*s.expr);
                ++loopNest_;
                b_.if_(
                    cond, [&] { lowerScoped(s.body); },
                    [&] { b_.break_(); });
                --loopNest_;
            });
            return;
          }
          case AstStmt::Kind::kFor:
            lowerFor(s);
            return;
          case AstStmt::Kind::kBreak:
            if (loopNest_ == 0)
                err(s.line, "break outside of a loop");
            b_.break_();
            return;
          case AstStmt::Kind::kContinue:
            if (loopNest_ == 0)
                err(s.line, "continue outside of a loop");
            b_.continue_();
            return;
        }
    }

    void
    lowerScoped(const std::vector<AstStmtPtr>& body)
    {
        pushScope();
        for (const auto& k : body)
            lowerStmt(*k);
        popScope();
    }

    void
    lowerPragma(const AstStmt& s)
    {
        std::istringstream iss(s.pragmaText);
        std::string word;
        iss >> word;
        if (word == "decouple") {
            ann_.decoupleOps.push_back(b_.fn().nextOpId);
        } else if (word == "distribute") {
            ann_.distributeOps.push_back(b_.fn().nextOpId);
        } else {
            phloem_warn("unknown statement pragma '", s.pragmaText, "'");
        }
    }

    void
    lowerDecl(const AstStmt& s)
    {
        for (const auto& [name, init] : s.decls) {
            Sym sym;
            sym.ty = s.declType;
            sym.reg = b_.newReg(name);
            if (init != nullptr) {
                RV v = coerce(eval(*init), sym.ty, s.line);
                b_.movTo(sym.reg, v.reg);
            } else {
                b_.constTo(sym.reg, 0);
            }
            scopes_.back()[name] = sym;
        }
    }

    static bool
    hasContinue(const std::vector<AstStmtPtr>& body)
    {
        for (const auto& s : body) {
            switch (s->kind) {
              case AstStmt::Kind::kContinue:
                return true;
              case AstStmt::Kind::kIf:
                if (hasContinue(s->body) || hasContinue(s->elseBody))
                    return true;
                break;
              case AstStmt::Kind::kBlock:
                if (hasContinue(s->body))
                    return true;
                break;
              default:
                break;  // nested loops own their continues
            }
        }
        return false;
    }

    void
    lowerFor(const AstStmt& s)
    {
        // Canonical form: for (int i = E; i < E2; i++) with a fresh
        // declaration becomes a counted ForStmt (the form Phloem's
        // decoupler and the SCAN accelerators key on).
        const AstStmt* init = s.init.get();
        bool canonical = false;
        std::string var;
        if (init != nullptr && init->kind == AstStmt::Kind::kDecl &&
            init->decls.size() == 1 && init->declType == Ty::kInt &&
            init->decls[0].second != nullptr && s.expr != nullptr &&
            s.inc != nullptr) {
            var = init->decls[0].first;
            const Expr& cond = *s.expr;
            bool cond_ok = cond.kind == Expr::Kind::kBinary &&
                           cond.op == Tok::kLt &&
                           cond.kids[0]->kind == Expr::Kind::kVar &&
                           cond.kids[0]->name == var;
            const Expr& inc = *s.inc;
            bool inc_ok =
                (inc.kind == Expr::Kind::kIncDec &&
                 inc.op == Tok::kPlusPlus &&
                 inc.kids[0]->kind == Expr::Kind::kVar &&
                 inc.kids[0]->name == var) ||
                (inc.kind == Expr::Kind::kAssign &&
                 inc.op == Tok::kPlusAssign &&
                 inc.kids[0]->kind == Expr::Kind::kVar &&
                 inc.kids[0]->name == var &&
                 inc.kids[1]->kind == Expr::Kind::kIntLit &&
                 inc.kids[1]->intValue == 1);
            canonical = cond_ok && inc_ok;
        }

        if (canonical) {
            RV start =
                coerce(eval(*init->decls[0].second), Ty::kInt, s.line);
            RV bound = coerce(eval(*s.expr->kids[1]), Ty::kInt, s.line);
            b_.forRange(
                start.reg, bound.reg,
                [&](ir::RegId iv) {
                    pushScope();
                    ++loopNest_;
                    Sym sym;
                    sym.reg = iv;
                    sym.ty = Ty::kInt;
                    scopes_.back()[var] = sym;
                    for (const auto& k : s.body)
                        lowerStmt(*k);
                    --loopNest_;
                    popScope();
                },
                var);
            return;
        }

        // General form desugars to a while loop; continue would skip the
        // increment, so reject it.
        if (hasContinue(s.body))
            err(s.line, "continue in a non-canonical for loop is "
                        "unsupported");
        pushScope();
        if (init != nullptr)
            lowerStmt(*init);
        b_.loop([&] {
            ir::RegId cond =
                s.expr != nullptr ? evalCond(*s.expr) : b_.constI(1);
            ++loopNest_;
            b_.if_(
                cond,
                [&] {
                    lowerScoped(s.body);
                    if (s.inc != nullptr)
                        eval(*s.inc);
                },
                [&] { b_.break_(); });
            --loopNest_;
        });
        popScope();
    }

    const FunctionDecl& decl_;
    ir::FunctionBuilder b_;
    Annotations ann_;
    std::vector<std::map<std::string, Sym>> scopes_;
    /** Source-level loop nesting, for break/continue placement checks. */
    int loopNest_ = 0;
};

} // namespace

std::vector<CompiledKernel>
compileC(const std::string& source)
{
    TranslationUnit tu = parse(source);
    // Flatten helper-function calls into their callers (paper Sec. IV-A
    // future work) so the decoupler sees single procedures.
    inlineCalls(tu);
    std::vector<CompiledKernel> out;
    for (const auto& fn : tu.functions) {
        CompiledKernel k = Lowerer(*fn).run();
        // Clean up lowering artifacts (single-def mov chains, dead pure
        // ops) so serial baselines and pattern-matching passes both see
        // -O1-quality code.
        ir::copyPropagate(*k.fn);
        out.push_back(std::move(k));
    }
    return out;
}

CompiledKernel
compileKernel(const std::string& source, const std::string& name)
{
    auto all = compileC(source);
    phloem_assert(!all.empty(), "no functions in source");
    if (name.empty())
        return std::move(all.front());
    for (auto& k : all) {
        if (k.fn->name == name)
            return std::move(k);
    }
    phloem_fatal("function '", name, "' not found in source");
}

} // namespace phloem::fe
