#include "frontend/parser.h"

#include "base/logging.h"
#include "frontend/lexer.h"

namespace phloem::fe {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    TranslationUnit
    run()
    {
        TranslationUnit tu;
        std::vector<std::string> pending_pragmas;
        while (peek().kind != Tok::kEof) {
            if (peek().kind == Tok::kPragma) {
                pending_pragmas.push_back(advance().text);
                continue;
            }
            auto fn = parseFunction();
            fn->pragmas = std::move(pending_pragmas);
            pending_pragmas.clear();
            tu.functions.push_back(std::move(fn));
        }
        return tu;
    }

  private:
    const Token& peek(int k = 0) const
    {
        size_t i = pos_ + static_cast<size_t>(k);
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    const Token&
    advance()
    {
        const Token& t = peek();
        if (pos_ + 1 < toks_.size())
            pos_++;
        return t;
    }

    bool
    accept(Tok kind)
    {
        if (peek().kind == kind) {
            advance();
            return true;
        }
        return false;
    }

    const Token&
    expect(Tok kind, const char* what)
    {
        if (peek().kind != kind) {
            phloem_fatal("parse error at line ", peek().line, ": expected ",
                         tokName(kind), " (", what, "), got ",
                         tokName(peek().kind), " '", peek().text, "'");
        }
        return advance();
    }

    static bool
    isTypeToken(Tok t)
    {
        return t == Tok::kInt || t == Tok::kLong || t == Tok::kDouble ||
               t == Tok::kFloat;
    }

    std::unique_ptr<FunctionDecl>
    parseFunction()
    {
        auto fn = std::make_unique<FunctionDecl>();
        fn->line = peek().line;
        expect(Tok::kVoid, "function return type");
        fn->name = expect(Tok::kIdent, "function name").text;
        expect(Tok::kLParen, "parameter list");
        if (!accept(Tok::kRParen)) {
            do {
                fn->params.push_back(parseParam());
            } while (accept(Tok::kComma));
            expect(Tok::kRParen, "end of parameter list");
        }
        expect(Tok::kLBrace, "function body");
        while (!accept(Tok::kRBrace))
            fn->body.push_back(parseStmt());
        return fn;
    }

    ParamDecl
    parseParam()
    {
        ParamDecl p;
        p.line = peek().line;
        if (accept(Tok::kConst))
            p.isConst = true;
        if (!isTypeToken(peek().kind)) {
            phloem_fatal("parse error at line ", peek().line,
                         ": expected parameter type");
        }
        p.baseType = advance().kind;
        if (accept(Tok::kConst))
            p.isConst = true;
        if (accept(Tok::kStar)) {
            p.isPointer = true;
            if (accept(Tok::kRestrict))
                p.isRestrict = true;
            if (accept(Tok::kConst))
                p.isConst = true;
        }
        p.name = expect(Tok::kIdent, "parameter name").text;
        return p;
    }

    AstStmtPtr
    makeStmt(AstStmt::Kind kind)
    {
        auto s = std::make_unique<AstStmt>();
        s->kind = kind;
        s->line = peek().line;
        return s;
    }

    AstStmtPtr
    parseStmt()
    {
        switch (peek().kind) {
          case Tok::kPragma: {
            auto s = makeStmt(AstStmt::Kind::kPragma);
            s->pragmaText = advance().text;
            return s;
          }
          case Tok::kLBrace: {
            auto s = makeStmt(AstStmt::Kind::kBlock);
            advance();
            while (!accept(Tok::kRBrace))
                s->body.push_back(parseStmt());
            return s;
          }
          case Tok::kIf: {
            auto s = makeStmt(AstStmt::Kind::kIf);
            advance();
            expect(Tok::kLParen, "if condition");
            s->expr = parseExpr();
            expect(Tok::kRParen, "if condition");
            s->body.push_back(parseStmt());
            if (accept(Tok::kElse))
                s->elseBody.push_back(parseStmt());
            return s;
          }
          case Tok::kWhile: {
            auto s = makeStmt(AstStmt::Kind::kWhile);
            advance();
            expect(Tok::kLParen, "while condition");
            s->expr = parseExpr();
            expect(Tok::kRParen, "while condition");
            s->body.push_back(parseStmt());
            return s;
          }
          case Tok::kFor: {
            auto s = makeStmt(AstStmt::Kind::kFor);
            advance();
            expect(Tok::kLParen, "for header");
            if (peek().kind == Tok::kSemi) {
                advance();
                s->init = nullptr;
            } else if (isTypeToken(peek().kind)) {
                s->init = parseDecl();
            } else {
                auto init = makeStmt(AstStmt::Kind::kExpr);
                init->expr = parseExpr();
                expect(Tok::kSemi, "for init");
                s->init = std::move(init);
            }
            if (peek().kind != Tok::kSemi)
                s->expr = parseExpr();
            expect(Tok::kSemi, "for condition");
            if (peek().kind != Tok::kRParen)
                s->inc = parseExpr();
            expect(Tok::kRParen, "for header");
            s->body.push_back(parseStmt());
            return s;
          }
          case Tok::kBreak: {
            auto s = makeStmt(AstStmt::Kind::kBreak);
            advance();
            expect(Tok::kSemi, "break");
            return s;
          }
          case Tok::kContinue: {
            auto s = makeStmt(AstStmt::Kind::kContinue);
            advance();
            expect(Tok::kSemi, "continue");
            return s;
          }
          case Tok::kReturn: {
            // Only 'return;' is allowed in void kernels.
            advance();
            expect(Tok::kSemi, "return");
            auto s = makeStmt(AstStmt::Kind::kEmpty);
            return s;
          }
          case Tok::kSemi: {
            advance();
            return makeStmt(AstStmt::Kind::kEmpty);
          }
          case Tok::kInt:
          case Tok::kLong:
          case Tok::kDouble:
          case Tok::kFloat:
            return parseDecl();
          default: {
            auto s = makeStmt(AstStmt::Kind::kExpr);
            s->expr = parseExpr();
            expect(Tok::kSemi, "statement");
            return s;
          }
        }
    }

    AstStmtPtr
    parseDecl()
    {
        auto s = makeStmt(AstStmt::Kind::kDecl);
        Tok base = advance().kind;
        s->declType =
            (base == Tok::kDouble || base == Tok::kFloat) ? Ty::kDouble
                                                          : Ty::kInt;
        do {
            std::string name = expect(Tok::kIdent, "variable name").text;
            ExprPtr init;
            if (accept(Tok::kAssign))
                init = parseAssignRhs();
            s->decls.emplace_back(std::move(name), std::move(init));
        } while (accept(Tok::kComma));
        expect(Tok::kSemi, "declaration");
        return s;
    }

    // --- Expressions (precedence climbing). ---

    ExprPtr
    makeExpr(Expr::Kind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    ExprPtr parseExpr() { return parseAssign(); }

    /** RHS of '=' in a declaration (no comma operator support). */
    ExprPtr parseAssignRhs() { return parseAssign(); }

    ExprPtr
    parseAssign()
    {
        ExprPtr lhs = parseCond();
        Tok k = peek().kind;
        if (k == Tok::kAssign || k == Tok::kPlusAssign ||
            k == Tok::kMinusAssign || k == Tok::kStarAssign ||
            k == Tok::kOrAssign || k == Tok::kAndAssign) {
            auto e = makeExpr(Expr::Kind::kAssign);
            e->op = advance().kind;
            e->kids.push_back(std::move(lhs));
            e->kids.push_back(parseAssign());
            return e;
        }
        return lhs;
    }

    ExprPtr
    parseCond()
    {
        ExprPtr c = parseBinary(0);
        if (peek().kind == Tok::kQuestion) {
            auto e = makeExpr(Expr::Kind::kCond);
            advance();
            e->kids.push_back(std::move(c));
            e->kids.push_back(parseExpr());
            expect(Tok::kColon, "conditional expression");
            e->kids.push_back(parseCond());
            return e;
        }
        return c;
    }

    static int
    precedence(Tok t)
    {
        switch (t) {
          case Tok::kPipePipe: return 1;
          case Tok::kAmpAmp: return 2;
          case Tok::kPipe: return 3;
          case Tok::kCaret: return 4;
          case Tok::kAmp: return 5;
          case Tok::kEq:
          case Tok::kNe: return 6;
          case Tok::kLt:
          case Tok::kLe:
          case Tok::kGt:
          case Tok::kGe: return 7;
          case Tok::kShl:
          case Tok::kShrTok: return 8;
          case Tok::kPlus:
          case Tok::kMinus: return 9;
          case Tok::kStar:
          case Tok::kSlash:
          case Tok::kPercent: return 10;
          default: return -1;
        }
    }

    ExprPtr
    parseBinary(int min_prec)
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            int prec = precedence(peek().kind);
            if (prec < min_prec || prec < 0)
                return lhs;
            auto e = makeExpr(Expr::Kind::kBinary);
            e->op = advance().kind;
            e->kids.push_back(std::move(lhs));
            e->kids.push_back(parseBinary(prec + 1));
            lhs = std::move(e);
        }
    }

    ExprPtr
    parseUnary()
    {
        Tok k = peek().kind;
        if (k == Tok::kMinus || k == Tok::kBang || k == Tok::kTilde) {
            auto e = makeExpr(Expr::Kind::kUnary);
            e->op = advance().kind;
            e->kids.push_back(parseUnary());
            return e;
        }
        if (k == Tok::kPlusPlus || k == Tok::kMinusMinus) {
            auto e = makeExpr(Expr::Kind::kIncDec);
            e->op = advance().kind;
            e->kids.push_back(parseUnary());
            return e;
        }
        return parsePostfix();
    }

    ExprPtr
    parsePostfix()
    {
        ExprPtr e = parsePrimary();
        for (;;) {
            if (peek().kind == Tok::kLBracket) {
                advance();
                auto idx = makeExpr(Expr::Kind::kIndex);
                idx->kids.push_back(std::move(e));
                idx->kids.push_back(parseExpr());
                expect(Tok::kRBracket, "array index");
                e = std::move(idx);
            } else if (peek().kind == Tok::kPlusPlus ||
                       peek().kind == Tok::kMinusMinus) {
                auto inc = makeExpr(Expr::Kind::kIncDec);
                inc->op = advance().kind;
                inc->kids.push_back(std::move(e));
                e = std::move(inc);
            } else {
                return e;
            }
        }
    }

    ExprPtr
    parsePrimary()
    {
        switch (peek().kind) {
          case Tok::kIntLit: {
            auto e = makeExpr(Expr::Kind::kIntLit);
            e->intValue = advance().intValue;
            return e;
          }
          case Tok::kFloatLit: {
            auto e = makeExpr(Expr::Kind::kFloatLit);
            e->floatValue = advance().floatValue;
            return e;
          }
          case Tok::kLParen: {
            advance();
            // Support C-style casts: (int) e, (double) e.
            if (isTypeToken(peek().kind) && peek(1).kind == Tok::kRParen) {
                Tok base = advance().kind;
                expect(Tok::kRParen, "cast");
                auto e = makeExpr(Expr::Kind::kCall);
                e->name = (base == Tok::kDouble || base == Tok::kFloat)
                              ? "__cast_double"
                              : "__cast_int";
                e->kids.push_back(parseUnary());
                return e;
            }
            ExprPtr e = parseExpr();
            expect(Tok::kRParen, "parenthesized expression");
            return e;
          }
          case Tok::kIdent: {
            if (peek(1).kind == Tok::kLParen) {
                auto e = makeExpr(Expr::Kind::kCall);
                e->name = advance().text;
                expect(Tok::kLParen, "call");
                if (!accept(Tok::kRParen)) {
                    do {
                        e->kids.push_back(parseExpr());
                    } while (accept(Tok::kComma));
                    expect(Tok::kRParen, "call arguments");
                }
                return e;
            }
            auto e = makeExpr(Expr::Kind::kVar);
            e->name = advance().text;
            return e;
          }
          default:
            phloem_fatal("parse error at line ", peek().line,
                         ": unexpected token ", tokName(peek().kind));
        }
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

} // namespace

TranslationUnit
parse(const std::string& source)
{
    return Parser(lex(source)).run();
}

} // namespace phloem::fe
