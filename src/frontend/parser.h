/**
 * @file
 * Recursive-descent parser for the mini-C frontend.
 */

#ifndef PHLOEM_FRONTEND_PARSER_H
#define PHLOEM_FRONTEND_PARSER_H

#include "frontend/ast.h"

namespace phloem::fe {

/** Parse a whole source buffer; throws (fatal) on syntax errors. */
TranslationUnit parse(const std::string& source);

} // namespace phloem::fe

#endif // PHLOEM_FRONTEND_PARSER_H
