/**
 * @file
 * Token definitions for the mini-C frontend.
 */

#ifndef PHLOEM_FRONTEND_TOKEN_H
#define PHLOEM_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

namespace phloem::fe {

enum class Tok : uint8_t {
    kEof,
    kIdent,
    kIntLit,
    kFloatLit,

    // Keywords.
    kVoid, kInt, kLong, kDouble, kFloat, kConst, kRestrict,
    kIf, kElse, kFor, kWhile, kBreak, kContinue, kReturn,
    kPragma,  // '#pragma' fused by the lexer

    // Punctuation / operators.
    kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
    kSemi, kComma, kQuestion, kColon,
    kAssign, kPlusAssign, kMinusAssign, kStarAssign,
    kOrAssign, kAndAssign,
    kPlus, kMinus, kStar, kSlash, kPercent,
    kAmp, kPipe, kCaret, kTilde, kBang,
    kAmpAmp, kPipePipe,
    kShl, kShrTok,
    kEq, kNe, kLt, kLe, kGt, kGe,
    kPlusPlus, kMinusMinus,
};

struct Token
{
    Tok kind = Tok::kEof;
    std::string text;
    int64_t intValue = 0;
    double floatValue = 0;
    int line = 0;
    int col = 0;
};

const char* tokName(Tok t);

} // namespace phloem::fe

#endif // PHLOEM_FRONTEND_TOKEN_H
