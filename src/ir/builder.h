/**
 * @file
 * Convenience builder for constructing Phloem IR by hand.
 *
 * Used by the frontend lowering, by the compiler passes when synthesizing
 * code, and by the hand-written "manually pipelined" baseline programs.
 * Region nesting is expressed with lambdas:
 *
 * @code
 *   FunctionBuilder b("axpy");
 *   ArrayId x = b.arrayParam("x", ElemType::kF64, false);
 *   ArrayId y = b.arrayParam("y", ElemType::kF64, true);
 *   RegId n = b.scalarParam("n");
 *   b.forRange(b.constI(0), n, [&](RegId i) {
 *       RegId xv = b.load(x, i);
 *       b.store(y, i, b.fadd(xv, b.load(y, i)));
 *   });
 * @endcode
 */

#ifndef PHLOEM_IR_BUILDER_H
#define PHLOEM_IR_BUILDER_H

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "ir/function.h"

namespace phloem::ir {

class FunctionBuilder
{
  public:
    explicit FunctionBuilder(std::string name)
        : fn_(std::make_unique<Function>())
    {
        fn_->name = std::move(name);
        regionStack_.push_back(&fn_->body);
    }

    /** Declare a scalar parameter; returns its register. */
    RegId
    scalarParam(const std::string& name, bool is_float = false)
    {
        RegId r = fn_->newReg(name);
        fn_->scalarParams.push_back({name, r, is_float});
        return r;
    }

    /**
     * Declare an array parameter. Distinct restrict parameters get
     * distinct alias classes; pass an explicit alias_class to model
     * may-alias pointers.
     */
    ArrayId
    arrayParam(const std::string& name, ElemType elem, bool writable,
               int alias_class = -1)
    {
        phloem_assert(static_cast<int>(fn_->arrays.size()) ==
                          fn_->numArrayParams,
                      "array params must precede locals");
        ArrayId a = fn_->addArray(name, elem, writable, alias_class);
        fn_->numArrayParams++;
        return a;
    }

    /** Allocate a local register. */
    RegId newReg(const std::string& name = "") { return fn_->newReg(name); }

    // ------------------------------------------------------------------
    // Low-level emission.
    // ------------------------------------------------------------------

    /** Append an op to the current region; returns dst (or kNoReg). */
    RegId
    emit(Op op)
    {
        op.id = fn_->nextOpId++;
        if (op.origin < 0)
            op.origin = op.id;
        auto stmt = std::make_unique<OpStmt>(op);
        assignStmtId(stmt.get());
        RegId dst = op.dst;
        regionStack_.back()->push_back(std::move(stmt));
        return dst;
    }

    RegId
    emitBinary(Opcode opc, RegId a, RegId b, const std::string& name = "")
    {
        Op op;
        op.opcode = opc;
        op.dst = fn_->newReg(name);
        op.src[0] = a;
        op.src[1] = b;
        return emit(op);
    }

    RegId
    emitUnary(Opcode opc, RegId a, const std::string& name = "")
    {
        Op op;
        op.opcode = opc;
        op.dst = fn_->newReg(name);
        op.src[0] = a;
        return emit(op);
    }

    // ------------------------------------------------------------------
    // Scalar ops.
    // ------------------------------------------------------------------

    RegId
    constI(int64_t v, const std::string& name = "")
    {
        Op op;
        op.opcode = Opcode::kConst;
        op.dst = fn_->newReg(name);
        op.imm = v;
        return emit(op);
    }

    RegId
    constF(double v, const std::string& name = "")
    {
        Op op;
        op.opcode = Opcode::kConst;
        op.dst = fn_->newReg(name);
        op.imm = static_cast<int64_t>(Value::fromDouble(v).bits);
        return emit(op);
    }

    RegId mov(RegId a) { return emitUnary(Opcode::kMov, a); }

    /** Assign into an existing register (mutable-variable semantics). */
    void
    movTo(RegId dst, RegId src)
    {
        Op op;
        op.opcode = Opcode::kMov;
        op.dst = dst;
        op.src[0] = src;
        emit(op);
    }

    void
    constTo(RegId dst, int64_t v)
    {
        Op op;
        op.opcode = Opcode::kConst;
        op.dst = dst;
        op.imm = v;
        emit(op);
    }

    RegId add(RegId a, RegId b) { return emitBinary(Opcode::kAdd, a, b); }
    RegId sub(RegId a, RegId b) { return emitBinary(Opcode::kSub, a, b); }
    RegId mul(RegId a, RegId b) { return emitBinary(Opcode::kMul, a, b); }
    RegId div(RegId a, RegId b) { return emitBinary(Opcode::kDiv, a, b); }
    RegId rem(RegId a, RegId b) { return emitBinary(Opcode::kRem, a, b); }
    RegId and_(RegId a, RegId b) { return emitBinary(Opcode::kAnd, a, b); }
    RegId or_(RegId a, RegId b) { return emitBinary(Opcode::kOr, a, b); }
    RegId xor_(RegId a, RegId b) { return emitBinary(Opcode::kXor, a, b); }
    RegId shl(RegId a, RegId b) { return emitBinary(Opcode::kShl, a, b); }
    RegId shr(RegId a, RegId b) { return emitBinary(Opcode::kShr, a, b); }
    RegId min(RegId a, RegId b) { return emitBinary(Opcode::kMin, a, b); }
    RegId max(RegId a, RegId b) { return emitBinary(Opcode::kMax, a, b); }
    RegId cmpEq(RegId a, RegId b) { return emitBinary(Opcode::kCmpEq, a, b); }
    RegId cmpNe(RegId a, RegId b) { return emitBinary(Opcode::kCmpNe, a, b); }
    RegId cmpLt(RegId a, RegId b) { return emitBinary(Opcode::kCmpLt, a, b); }
    RegId cmpLe(RegId a, RegId b) { return emitBinary(Opcode::kCmpLe, a, b); }
    RegId cmpGt(RegId a, RegId b) { return emitBinary(Opcode::kCmpGt, a, b); }
    RegId cmpGe(RegId a, RegId b) { return emitBinary(Opcode::kCmpGe, a, b); }
    RegId not_(RegId a) { return emitUnary(Opcode::kNot, a); }

    RegId fadd(RegId a, RegId b) { return emitBinary(Opcode::kFAdd, a, b); }
    RegId fsub(RegId a, RegId b) { return emitBinary(Opcode::kFSub, a, b); }
    RegId fmul(RegId a, RegId b) { return emitBinary(Opcode::kFMul, a, b); }
    RegId fdiv(RegId a, RegId b) { return emitBinary(Opcode::kFDiv, a, b); }
    RegId fabs_(RegId a) { return emitUnary(Opcode::kFAbs, a); }
    RegId fcmpGt(RegId a, RegId b) { return emitBinary(Opcode::kFCmpGt, a, b); }
    RegId fcmpLt(RegId a, RegId b) { return emitBinary(Opcode::kFCmpLt, a, b); }
    RegId i2f(RegId a) { return emitUnary(Opcode::kI2F, a); }
    RegId f2i(RegId a) { return emitUnary(Opcode::kF2I, a); }

    RegId
    select(RegId c, RegId a, RegId b)
    {
        Op op;
        op.opcode = Opcode::kSelect;
        op.dst = fn_->newReg();
        op.src[0] = c;
        op.src[1] = a;
        op.src[2] = b;
        return emit(op);
    }

    RegId
    work(RegId a, int64_t cost)
    {
        Op op;
        op.opcode = Opcode::kWork;
        op.dst = fn_->newReg();
        op.src[0] = a;
        op.imm = cost;
        return emit(op);
    }

    // ------------------------------------------------------------------
    // Memory.
    // ------------------------------------------------------------------

    RegId
    load(ArrayId arr, RegId idx, const std::string& name = "")
    {
        Op op;
        op.opcode = Opcode::kLoad;
        op.dst = fn_->newReg(name);
        op.src[0] = idx;
        op.arr = arr;
        return emit(op);
    }

    void
    store(ArrayId arr, RegId idx, RegId val)
    {
        Op op;
        op.opcode = Opcode::kStore;
        op.src[0] = idx;
        op.src[1] = val;
        op.arr = arr;
        emit(op);
    }

    void
    prefetch(ArrayId arr, RegId idx)
    {
        Op op;
        op.opcode = Opcode::kPrefetch;
        op.src[0] = idx;
        op.arr = arr;
        emit(op);
    }

    void
    swapArrays(ArrayId a, ArrayId b)
    {
        Op op;
        op.opcode = Opcode::kSwapArr;
        op.arr = a;
        op.arr2 = b;
        emit(op);
    }

    RegId
    atomicMin(ArrayId arr, RegId idx, RegId val)
    {
        Op op;
        op.opcode = Opcode::kAtomicMin;
        op.dst = fn_->newReg();
        op.src[0] = idx;
        op.src[1] = val;
        op.arr = arr;
        return emit(op);
    }

    RegId
    atomicAdd(ArrayId arr, RegId idx, RegId val)
    {
        Op op;
        op.opcode = Opcode::kAtomicAdd;
        op.dst = fn_->newReg();
        op.src[0] = idx;
        op.src[1] = val;
        op.arr = arr;
        return emit(op);
    }

    RegId
    atomicFAdd(ArrayId arr, RegId idx, RegId val)
    {
        Op op;
        op.opcode = Opcode::kAtomicFAdd;
        op.dst = fn_->newReg();
        op.src[0] = idx;
        op.src[1] = val;
        op.arr = arr;
        return emit(op);
    }

    RegId
    atomicOr(ArrayId arr, RegId idx, RegId val)
    {
        Op op;
        op.opcode = Opcode::kAtomicOr;
        op.dst = fn_->newReg();
        op.src[0] = idx;
        op.src[1] = val;
        op.arr = arr;
        return emit(op);
    }

    // ------------------------------------------------------------------
    // Queues.
    // ------------------------------------------------------------------

    void
    enq(QueueId q, RegId v)
    {
        Op op;
        op.opcode = Opcode::kEnq;
        op.queue = q;
        op.src[0] = v;
        emit(op);
    }

    RegId
    deq(QueueId q, const std::string& name = "")
    {
        Op op;
        op.opcode = Opcode::kDeq;
        op.queue = q;
        op.dst = fn_->newReg(name);
        return emit(op);
    }

    void
    deqTo(QueueId q, RegId dst)
    {
        Op op;
        op.opcode = Opcode::kDeq;
        op.queue = q;
        op.dst = dst;
        emit(op);
    }

    RegId
    peek(QueueId q)
    {
        Op op;
        op.opcode = Opcode::kPeek;
        op.queue = q;
        op.dst = fn_->newReg();
        return emit(op);
    }

    void
    enqCtrl(QueueId q, uint32_t code)
    {
        Op op;
        op.opcode = Opcode::kEnqCtrl;
        op.queue = q;
        op.imm = code;
        emit(op);
    }

    RegId isControl(RegId v) { return emitUnary(Opcode::kIsControl, v); }
    RegId ctrlCode(RegId v) { return emitUnary(Opcode::kCtrlCode, v); }

    void
    enqDist(QueueId base_q, RegId v, RegId replica_sel)
    {
        Op op;
        op.opcode = Opcode::kEnqDist;
        op.queue = base_q;
        op.src[0] = v;
        op.src[1] = replica_sel;
        emit(op);
    }

    void
    barrier()
    {
        Op op;
        op.opcode = Opcode::kBarrier;
        emit(op);
    }

    // ------------------------------------------------------------------
    // Structured control flow.
    // ------------------------------------------------------------------

    /** for (i = start; i < bound; i++) body(i) */
    void
    forRange(RegId start, RegId bound, const std::function<void(RegId)>& body,
             const std::string& var_name = "i")
    {
        auto stmt = std::make_unique<ForStmt>();
        assignStmtId(stmt.get());
        stmt->var = fn_->newReg(var_name);
        stmt->start = start;
        stmt->bound = bound;
        ForStmt* raw = stmt.get();
        regionStack_.back()->push_back(std::move(stmt));
        regionStack_.push_back(&raw->body);
        body(raw->var);
        regionStack_.pop_back();
    }

    /** while (true) body; exit with break_(). */
    void
    loop(const std::function<void()>& body)
    {
        auto stmt = std::make_unique<WhileStmt>();
        assignStmtId(stmt.get());
        WhileStmt* raw = stmt.get();
        regionStack_.back()->push_back(std::move(stmt));
        regionStack_.push_back(&raw->body);
        body();
        regionStack_.pop_back();
    }

    void
    if_(RegId cond, const std::function<void()>& then_body,
        const std::function<void()>& else_body = nullptr)
    {
        auto stmt = std::make_unique<IfStmt>();
        assignStmtId(stmt.get());
        stmt->cond = cond;
        IfStmt* raw = stmt.get();
        regionStack_.back()->push_back(std::move(stmt));
        regionStack_.push_back(&raw->thenBody);
        then_body();
        regionStack_.pop_back();
        if (else_body) {
            regionStack_.push_back(&raw->elseBody);
            else_body();
            regionStack_.pop_back();
        }
    }

    void
    break_(int levels = 1)
    {
        auto stmt = std::make_unique<BreakStmt>(levels);
        assignStmtId(stmt.get());
        regionStack_.back()->push_back(std::move(stmt));
    }

    void
    continue_()
    {
        auto stmt = std::make_unique<ContinueStmt>();
        assignStmtId(stmt.get());
        regionStack_.back()->push_back(std::move(stmt));
    }

    /** Finish and take ownership of the function. */
    FunctionPtr
    finish()
    {
        phloem_assert(regionStack_.size() == 1, "unbalanced builder regions");
        return std::move(fn_);
    }

    /** Access the function under construction. */
    Function& fn() { return *fn_; }

  private:
    void
    assignStmtId(Stmt* s)
    {
        s->id = fn_->nextStmtId++;
        if (s->origin < 0)
            s->origin = s->id;
    }

    FunctionPtr fn_;
    std::vector<Region*> regionStack_;
};

} // namespace phloem::ir

#endif // PHLOEM_IR_BUILDER_H
