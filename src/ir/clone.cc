#include "ir/clone.h"

#include "base/logging.h"

namespace phloem::ir {

StmtPtr
cloneStmt(const Stmt* stmt, Function& dst)
{
    StmtPtr out;
    switch (stmt->kind()) {
      case StmtKind::kOp: {
        auto* src = stmtCast<OpStmt>(stmt);
        auto s = std::make_unique<OpStmt>(src->op);
        s->op.id = dst.nextOpId++;
        out = std::move(s);
        break;
      }
      case StmtKind::kFor: {
        auto* src = stmtCast<ForStmt>(stmt);
        auto s = std::make_unique<ForStmt>();
        s->var = src->var;
        s->start = src->start;
        s->bound = src->bound;
        s->body = cloneRegion(src->body, dst);
        out = std::move(s);
        break;
      }
      case StmtKind::kWhile: {
        auto* src = stmtCast<WhileStmt>(stmt);
        auto s = std::make_unique<WhileStmt>();
        s->body = cloneRegion(src->body, dst);
        out = std::move(s);
        break;
      }
      case StmtKind::kIf: {
        auto* src = stmtCast<IfStmt>(stmt);
        auto s = std::make_unique<IfStmt>();
        s->cond = src->cond;
        s->thenBody = cloneRegion(src->thenBody, dst);
        s->elseBody = cloneRegion(src->elseBody, dst);
        out = std::move(s);
        break;
      }
      case StmtKind::kBreak: {
        auto* src = stmtCast<BreakStmt>(stmt);
        out = std::make_unique<BreakStmt>(src->levels);
        break;
      }
      case StmtKind::kContinue: {
        out = std::make_unique<ContinueStmt>();
        break;
      }
    }
    phloem_assert(out != nullptr, "unknown stmt kind");
    out->id = dst.nextStmtId++;
    out->origin = stmt->origin;
    return out;
}

Region
cloneRegion(const Region& region, Function& dst)
{
    Region out;
    out.reserve(region.size());
    for (const auto& s : region)
        out.push_back(cloneStmt(s.get(), dst));
    return out;
}

FunctionPtr
cloneDecl(const Function& fn, const std::string& new_name)
{
    auto out = std::make_unique<Function>();
    out->name = new_name;
    out->scalarParams = fn.scalarParams;
    out->arrays = fn.arrays;
    out->numArrayParams = fn.numArrayParams;
    out->numRegs = fn.numRegs;
    out->regNames = fn.regNames;
    return out;
}

FunctionPtr
cloneFunction(const Function& fn, const std::string& new_name)
{
    auto out = cloneDecl(fn, new_name);
    out->body = cloneRegion(fn.body, *out);
    for (const auto& h : fn.handlers) {
        HandlerSpec hs;
        hs.queue = h.queue;
        hs.body = cloneRegion(h.body, *out);
        out->handlers.push_back(std::move(hs));
    }
    return out;
}

} // namespace phloem::ir
