/**
 * @file
 * Deep-cloning utilities for regions and functions.
 *
 * Clones re-draw op and stmt ids from the destination function's id wells
 * but preserve `origin` ids, so analyses expressed over the serial
 * function's ops remain meaningful in every stage derived from it.
 */

#ifndef PHLOEM_IR_CLONE_H
#define PHLOEM_IR_CLONE_H

#include "ir/function.h"

namespace phloem::ir {

/** Deep-clone a statement into the id space of `dst`. */
StmtPtr cloneStmt(const Stmt* stmt, Function& dst);

/** Deep-clone a whole region into the id space of `dst`. */
Region cloneRegion(const Region& region, Function& dst);

/**
 * Clone a function's declaration only (params, arrays, registers): the
 * standard way to create a pipeline stage that shares the original's
 * register and array numbering, with an empty body.
 */
FunctionPtr cloneDecl(const Function& fn, const std::string& new_name);

/** Deep-clone an entire function, body included. */
FunctionPtr cloneFunction(const Function& fn, const std::string& new_name);

} // namespace phloem::ir

#endif // PHLOEM_IR_CLONE_H
