/**
 * @file
 * Function-level containers of the Phloem IR: parameters, array symbols,
 * register files, control-value handlers, and the structured body.
 */

#ifndef PHLOEM_IR_FUNCTION_H
#define PHLOEM_IR_FUNCTION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace phloem::ir {

/**
 * An array symbol visible to a function. Arrays live in simulated shared
 * memory; the runtime binds each slot to a buffer before execution.
 *
 * aliasClass implements the paper's aliasing discipline (Sec. IV-A):
 * slots derived from distinct `restrict` pointers get distinct classes and
 * never alias; slots that may refer to the same storage (e.g., swapped
 * double buffers) share a class.
 */
struct ArrayInfo
{
    std::string name;
    ElemType elem = ElemType::kI64;
    /** True if any op may store through this slot. */
    bool writable = false;
    /** Alias-class id; equal ids may alias. */
    int aliasClass = -1;
};

/** A scalar parameter, bound to a register at run time. */
struct ScalarParam
{
    std::string name;
    RegId reg = kNoReg;
    bool isFloat = false;
};

/**
 * A control-value handler for one queue (paper Sec. III "control value
 * handlers"). When a deq on `queue` is about to return a control value,
 * the hardware jumps to the handler body instead; the body may forward
 * control values downstream and typically ends with a Break that exits
 * loops *relative to the deq site* (level 1 = the loop immediately
 * containing the deq).
 */
struct HandlerSpec
{
    QueueId queue = kNoQueue;
    Region body;
};

/**
 * One IR function. Before decoupling this is the whole serial kernel;
 * after decoupling each pipeline stage is a Function.
 */
class Function
{
  public:
    std::string name;

    /** Scalar parameters (bound to registers at run time, in order). */
    std::vector<ScalarParam> scalarParams;

    /** Array slots; the leading ones are array parameters, in order. */
    std::vector<ArrayInfo> arrays;
    int numArrayParams = 0;

    /** Register file size; registers are untyped 64-bit Values. */
    int numRegs = 0;
    /** Debug names, parallel to registers (may be shorter). */
    std::vector<std::string> regNames;

    Region body;

    /** Control-value handlers, keyed by queue (installed by pass 5). */
    std::vector<HandlerSpec> handlers;

    /** Monotonic id wells for ops and statements. */
    int nextOpId = 0;
    int nextStmtId = 0;

    /** Allocate a fresh register with an optional debug name. */
    RegId
    newReg(const std::string& name = "")
    {
        RegId r = numRegs++;
        regNames.resize(numRegs);
        regNames[r] = name.empty() ? ("r" + std::to_string(r)) : name;
        return r;
    }

    /** Register debug name (always defined). */
    std::string
    regName(RegId r) const
    {
        if (r >= 0 && r < static_cast<int>(regNames.size()) &&
            !regNames[r].empty()) {
            return regNames[r];
        }
        return "r" + std::to_string(r);
    }

    /** Add an array slot and return its id. */
    ArrayId
    addArray(const std::string& name, ElemType elem, bool writable,
             int alias_class = -1)
    {
        ArrayInfo info;
        info.name = name;
        info.elem = elem;
        info.writable = writable;
        info.aliasClass =
            alias_class >= 0 ? alias_class : static_cast<int>(arrays.size());
        arrays.push_back(info);
        return static_cast<ArrayId>(arrays.size() - 1);
    }

    /** Look up an array slot by name; returns kNoArray if absent. */
    ArrayId
    findArray(const std::string& name) const
    {
        for (size_t i = 0; i < arrays.size(); ++i)
            if (arrays[i].name == name)
                return static_cast<ArrayId>(i);
        return kNoArray;
    }

    /** Look up a scalar param by name; returns kNoReg if absent. */
    RegId
    findScalarParam(const std::string& name) const
    {
        for (const auto& p : scalarParams)
            if (p.name == name)
                return p.reg;
        return kNoReg;
    }

    /** Find the handler for a queue, or nullptr. */
    const HandlerSpec*
    handlerFor(QueueId q) const
    {
        for (const auto& h : handlers)
            if (h.queue == q)
                return &h;
        return nullptr;
    }
};

using FunctionPtr = std::unique_ptr<Function>;

} // namespace phloem::ir

#endif // PHLOEM_IR_FUNCTION_H
