#include "ir/op.h"

namespace phloem::ir {

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kConst: return "const";
      case Opcode::kMov: return "mov";
      case Opcode::kAdd: return "add";
      case Opcode::kSub: return "sub";
      case Opcode::kMul: return "mul";
      case Opcode::kDiv: return "div";
      case Opcode::kRem: return "rem";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kMin: return "min";
      case Opcode::kMax: return "max";
      case Opcode::kCmpEq: return "cmpeq";
      case Opcode::kCmpNe: return "cmpne";
      case Opcode::kCmpLt: return "cmplt";
      case Opcode::kCmpLe: return "cmple";
      case Opcode::kCmpGt: return "cmpgt";
      case Opcode::kCmpGe: return "cmpge";
      case Opcode::kNot: return "not";
      case Opcode::kSelect: return "select";
      case Opcode::kFAdd: return "fadd";
      case Opcode::kFSub: return "fsub";
      case Opcode::kFMul: return "fmul";
      case Opcode::kFDiv: return "fdiv";
      case Opcode::kFNeg: return "fneg";
      case Opcode::kFAbs: return "fabs";
      case Opcode::kFMin: return "fmin";
      case Opcode::kFMax: return "fmax";
      case Opcode::kFCmpEq: return "fcmpeq";
      case Opcode::kFCmpNe: return "fcmpne";
      case Opcode::kFCmpLt: return "fcmplt";
      case Opcode::kFCmpLe: return "fcmple";
      case Opcode::kFCmpGt: return "fcmpgt";
      case Opcode::kFCmpGe: return "fcmpge";
      case Opcode::kI2F: return "i2f";
      case Opcode::kF2I: return "f2i";
      case Opcode::kLoad: return "load";
      case Opcode::kStore: return "store";
      case Opcode::kPrefetch: return "prefetch";
      case Opcode::kSwapArr: return "swaparr";
      case Opcode::kAtomicMin: return "atomic_min";
      case Opcode::kAtomicAdd: return "atomic_add";
      case Opcode::kAtomicFAdd: return "atomic_fadd";
      case Opcode::kAtomicOr: return "atomic_or";
      case Opcode::kEnq: return "enq";
      case Opcode::kDeq: return "deq";
      case Opcode::kPeek: return "peek";
      case Opcode::kEnqCtrl: return "enq_ctrl";
      case Opcode::kIsControl: return "is_control";
      case Opcode::kCtrlCode: return "ctrl_code";
      case Opcode::kEnqDist: return "enq_dist";
      case Opcode::kWork: return "work";
      case Opcode::kBarrier: return "barrier";
      case Opcode::kHalt: return "halt";
    }
    return "?";
}

} // namespace phloem::ir
