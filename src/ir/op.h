/**
 * @file
 * Fine-grain operations of the Phloem IR.
 *
 * The IR deliberately represents operations at a fine granularity ("load,
 * add", paper Sec. V) so that any two operations can be decoupled into
 * separate pipeline stages. Unlike conventional IRs, it has first-class
 * queue operations (enq/deq/peek/enq_ctrl/is_control) and array accesses
 * that name the array symbol explicitly, which is what the alias rules and
 * the reference-accelerator pass key on.
 */

#ifndef PHLOEM_IR_OP_H
#define PHLOEM_IR_OP_H

#include <cstdint>

#include "ir/type.h"

namespace phloem::ir {

enum class Opcode : uint8_t {
    // Value-producing scalar ops.
    kConst,     ///< dst = imm (raw 64-bit payload)
    kMov,       ///< dst = src0

    // Integer arithmetic / logic (operands as int64).
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    kMin, kMax,
    kCmpEq, kCmpNe, kCmpLt, kCmpLe, kCmpGt, kCmpGe,
    kNot,       ///< dst = (src0 == 0)
    kSelect,    ///< dst = src0 ? src1 : src2

    // Floating point (operands as double).
    kFAdd, kFSub, kFMul, kFDiv, kFNeg, kFAbs,
    kFMin, kFMax,
    kFCmpEq, kFCmpNe, kFCmpLt, kFCmpLe, kFCmpGt, kFCmpGe,
    kI2F, kF2I,

    // Memory.
    kLoad,      ///< dst = arr[src0]
    kStore,     ///< arr[src0] = src1
    kPrefetch,  ///< warm the cache for arr[src0]; no architectural effect
    kSwapArr,   ///< swap the bindings of array slots arr and arr2

    // Atomics (used by the data-parallel baselines; one uop + RMW latency).
    kAtomicMin,  ///< dst = old arr[src0]; arr[src0] = min(old, src1)
    kAtomicAdd,  ///< dst = old arr[src0]; arr[src0] = old + src1
    kAtomicFAdd, ///< dst = old arr[src0]; arr[src0] = old + src1 (double)
    kAtomicOr,   ///< dst = old arr[src0]; arr[src0] = old | src1

    // Pipette queue interface (paper Table I).
    kEnq,       ///< enq(queue, src0)
    kDeq,       ///< dst = deq(queue); may invoke a control handler
    kPeek,      ///< dst = peek(queue)
    kEnqCtrl,   ///< enq_ctrl(queue, control code imm)
    kIsControl, ///< dst = is_control(src0)
    kCtrlCode,  ///< dst = control code of src0 (must be a control value)
    kEnqDist,   ///< enq(queueOfReplica(queue, src1), src0): #pragma distribute

    // Structured-execution helpers.
    kWork,      ///< opaque computation: dst = mix(src0), costs imm uops
    kBarrier,   ///< synchronize all stage threads of the pipeline
    kHalt,      ///< end of program (implicit at end of body; explicit ok)
};

/** Dense opcode count (profiling tables are indexed by opcode). */
constexpr int kNumOpcodes = static_cast<int>(Opcode::kHalt) + 1;

/** Number of source-register operands an opcode reads. */
inline int
numSrcs(Opcode op)
{
    switch (op) {
      case Opcode::kConst:
      case Opcode::kDeq:
      case Opcode::kPeek:
      case Opcode::kEnqCtrl:
      case Opcode::kSwapArr:
      case Opcode::kBarrier:
      case Opcode::kHalt:
        return 0;
      case Opcode::kMov:
      case Opcode::kNot:
      case Opcode::kFNeg:
      case Opcode::kFAbs:
      case Opcode::kI2F:
      case Opcode::kF2I:
      case Opcode::kLoad:
      case Opcode::kPrefetch:
      case Opcode::kEnq:
      case Opcode::kIsControl:
      case Opcode::kCtrlCode:
      case Opcode::kWork:
        return 1;
      case Opcode::kSelect:
        return 3;
      default:
        return 2;
    }
}

/** Does this opcode write a destination register? */
inline bool
hasDst(Opcode op)
{
    switch (op) {
      case Opcode::kStore:
      case Opcode::kPrefetch:
      case Opcode::kSwapArr:
      case Opcode::kEnq:
      case Opcode::kEnqCtrl:
      case Opcode::kEnqDist:
      case Opcode::kBarrier:
      case Opcode::kHalt:
        return false;
      default:
        return true;
    }
}

/** Does this opcode reference an array slot? */
inline bool
usesArray(Opcode op)
{
    switch (op) {
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kPrefetch:
      case Opcode::kSwapArr:
      case Opcode::kAtomicMin:
      case Opcode::kAtomicAdd:
      case Opcode::kAtomicFAdd:
      case Opcode::kAtomicOr:
        return true;
      default:
        return false;
    }
}

/** Does this opcode reference a hardware queue? */
inline bool
usesQueue(Opcode op)
{
    switch (op) {
      case Opcode::kEnq:
      case Opcode::kDeq:
      case Opcode::kPeek:
      case Opcode::kEnqCtrl:
      case Opcode::kEnqDist:
        return true;
      default:
        return false;
    }
}

/** Is this a memory read (for alias/cost analysis)? */
inline bool
isMemRead(Opcode op)
{
    return op == Opcode::kLoad || op == Opcode::kAtomicMin ||
           op == Opcode::kAtomicAdd || op == Opcode::kAtomicFAdd ||
           op == Opcode::kAtomicOr;
}

/** Is this a memory write (for alias analysis)? */
inline bool
isMemWrite(Opcode op)
{
    return op == Opcode::kStore || op == Opcode::kAtomicMin ||
           op == Opcode::kAtomicAdd || op == Opcode::kAtomicFAdd ||
           op == Opcode::kAtomicOr;
}

/** Pure ops can be recomputed freely (pass 2, "recompute"). */
inline bool
isPure(Opcode op)
{
    switch (op) {
      case Opcode::kConst:
      case Opcode::kMov:
      case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
      case Opcode::kDiv: case Opcode::kRem:
      case Opcode::kAnd: case Opcode::kOr: case Opcode::kXor:
      case Opcode::kShl: case Opcode::kShr:
      case Opcode::kMin: case Opcode::kMax:
      case Opcode::kCmpEq: case Opcode::kCmpNe:
      case Opcode::kCmpLt: case Opcode::kCmpLe:
      case Opcode::kCmpGt: case Opcode::kCmpGe:
      case Opcode::kNot: case Opcode::kSelect:
      case Opcode::kFAdd: case Opcode::kFSub: case Opcode::kFMul:
      case Opcode::kFDiv: case Opcode::kFNeg: case Opcode::kFAbs:
      case Opcode::kFMin: case Opcode::kFMax:
      case Opcode::kFCmpEq: case Opcode::kFCmpNe:
      case Opcode::kFCmpLt: case Opcode::kFCmpLe:
      case Opcode::kFCmpGt: case Opcode::kFCmpGe:
      case Opcode::kI2F: case Opcode::kF2I:
      case Opcode::kIsControl: case Opcode::kCtrlCode:
        return true;
      default:
        return false;
    }
}

const char* opcodeName(Opcode op);

/**
 * One fine-grain operation.
 *
 * Every op carries a function-unique id and an `origin` id that survives
 * cloning during decoupling, so the passes can talk about "the same op"
 * across pipeline variants (e.g., cost-model rankings name origin ids).
 */
struct Op
{
    Opcode opcode = Opcode::kConst;
    int id = -1;
    int origin = -1;

    RegId dst = kNoReg;
    RegId src[3] = {kNoReg, kNoReg, kNoReg};

    /** Immediate payload: kConst bits, kEnqCtrl code, kWork cost. */
    int64_t imm = 0;

    ArrayId arr = kNoArray;
    /** Second array slot for kSwapArr. */
    ArrayId arr2 = kNoArray;

    QueueId queue = kNoQueue;
};

} // namespace phloem::ir

#endif // PHLOEM_IR_OP_H
