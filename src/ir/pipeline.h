/**
 * @file
 * Pipeline topology: the compiler's output and the simulator's input.
 *
 * A pipeline is a set of stage Functions connected by hardware queues,
 * plus reference-accelerator (RA) configurations that interpose on queues
 * (paper Sec. III). A pipeline may be replicated (paper Sec. IV-C): the
 * runtime instantiates `replicas` copies, remapping queue ids by
 * `queueStride` per replica; kEnqDist ops select the destination replica.
 */

#ifndef PHLOEM_IR_PIPELINE_H
#define PHLOEM_IR_PIPELINE_H

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/walk.h"

namespace phloem::ir {

/** Reference-accelerator operating mode (paper Table I). */
enum class RAMode : uint8_t {
    /** Each input value is an index into the array. */
    kIndirect,
    /** Consecutive input pairs are [start, end) scan ranges. */
    kScan,
};

/**
 * Configuration of one reference accelerator.
 *
 * The RA dequeues from inQueue and enqueues loaded elements to outQueue.
 * Control values pass through unchanged (they delimit streams across RA
 * chains). A SCAN RA can additionally emit a control value after each
 * completed range, which pass 4 enables and pass 6 may remove again.
 */
struct RAConfig
{
    RAMode mode = RAMode::kIndirect;
    /** Name of the array this RA indexes (bound at run time). */
    std::string arrayName;
    ElemType elem = ElemType::kI64;
    QueueId inQueue = kNoQueue;
    QueueId outQueue = kNoQueue;
    /** SCAN only: emit enq_ctrl(rangeCtrlCode) after each range. */
    bool emitRangeCtrl = false;
    uint32_t rangeCtrlCode = kCtrlNext;
};

/** One hardware queue used by the pipeline. */
struct QueueConfig
{
    QueueId id = kNoQueue;
    /** 0 means "use the architecture's default depth". */
    int depth = 0;
    /** Producer/consumer stage indices (or -1 when an RA endpoint). */
    int producerStage = -1;
    int consumerStage = -1;
    std::string note;
};

/**
 * A complete pipeline-parallel program.
 *
 * Stage i runs as one hardware thread. Placement onto (core, thread)
 * pairs is chosen by the driver; by default stages fill a core's SMT
 * threads in order, and replicas map to successive cores.
 */
struct Pipeline
{
    std::string name;
    std::vector<FunctionPtr> stages;
    std::vector<QueueConfig> queues;
    std::vector<RAConfig> ras;

    /** Number of replicated copies (paper Sec. IV-C). */
    int replicas = 1;
    /** Queue-id stride between successive replicas. */
    int queueStride = 0;

    /** Find a queue config by id; nullptr if absent. */
    const QueueConfig*
    findQueue(QueueId q) const
    {
        for (const auto& qc : queues)
            if (qc.id == q)
                return &qc;
        return nullptr;
    }

    /** Total architectural queues used per replica (queues incl. RA legs). */
    int
    numQueues() const
    {
        return static_cast<int>(queues.size());
    }

    /**
     * Stage count as the paper counts it for Fig. 13: stage threads plus
     * any reference accelerators used.
     */
    int
    lengthWithRAs() const
    {
        return static_cast<int>(stages.size() + ras.size());
    }
};

using PipelinePtr = std::unique_ptr<Pipeline>;

/**
 * Largest queue id referenced anywhere in a pipeline (stage bodies,
 * control handlers, and RA endpoints); -1 if no queues are used. Both
 * execution backends use this to size per-replica queue strides, so the
 * computation lives here rather than in either backend.
 */
inline int
maxQueueId(const Pipeline& pipeline)
{
    int max_qid = -1;
    for (const auto& stage : pipeline.stages) {
        forEachOp(stage->body, [&](const Op& op) {
            if (usesQueue(op.opcode))
                max_qid = std::max(max_qid, op.queue);
        });
        for (const auto& h : stage->handlers) {
            max_qid = std::max(max_qid, h.queue);
            forEachOp(h.body, [&](const Op& op) {
                if (usesQueue(op.opcode))
                    max_qid = std::max(max_qid, op.queue);
            });
        }
    }
    for (const auto& ra : pipeline.ras)
        max_qid = std::max({max_qid, ra.inQueue, ra.outQueue});
    return max_qid;
}

} // namespace phloem::ir

#endif // PHLOEM_IR_PIPELINE_H
