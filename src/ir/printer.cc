#include "ir/printer.h"

#include <sstream>

#include "ir/walk.h"

namespace phloem::ir {

namespace {

void
printRegion(std::ostringstream& oss, const Function& fn, const Region& region,
            int indent);

std::string
pad(int indent)
{
    return std::string(static_cast<size_t>(indent) * 2, ' ');
}

void
printStmt(std::ostringstream& oss, const Function& fn, const Stmt* stmt,
          int indent)
{
    switch (stmt->kind()) {
      case StmtKind::kOp:
        oss << pad(indent) << toString(fn, stmtCast<OpStmt>(stmt)->op)
            << "\n";
        break;
      case StmtKind::kFor: {
        auto* f = stmtCast<ForStmt>(stmt);
        oss << pad(indent) << "for " << fn.regName(f->var) << " = "
            << fn.regName(f->start) << " .. " << fn.regName(f->bound)
            << " {\n";
        printRegion(oss, fn, f->body, indent + 1);
        oss << pad(indent) << "}\n";
        break;
      }
      case StmtKind::kWhile: {
        auto* w = stmtCast<WhileStmt>(stmt);
        oss << pad(indent) << "while {\n";
        printRegion(oss, fn, w->body, indent + 1);
        oss << pad(indent) << "}\n";
        break;
      }
      case StmtKind::kIf: {
        auto* i = stmtCast<IfStmt>(stmt);
        oss << pad(indent) << "if " << fn.regName(i->cond) << " {\n";
        printRegion(oss, fn, i->thenBody, indent + 1);
        if (!i->elseBody.empty()) {
            oss << pad(indent) << "} else {\n";
            printRegion(oss, fn, i->elseBody, indent + 1);
        }
        oss << pad(indent) << "}\n";
        break;
      }
      case StmtKind::kBreak: {
        auto* b = stmtCast<BreakStmt>(stmt);
        oss << pad(indent) << "break";
        if (b->levels > 1)
            oss << " " << b->levels;
        oss << "\n";
        break;
      }
      case StmtKind::kContinue:
        oss << pad(indent) << "continue\n";
        break;
    }
}

void
printRegion(std::ostringstream& oss, const Function& fn, const Region& region,
            int indent)
{
    for (const auto& s : region)
        printStmt(oss, fn, s.get(), indent);
}

} // namespace

std::string
toString(const Function& fn, const Op& op)
{
    std::ostringstream oss;
    if (hasDst(op.opcode) && op.dst != kNoReg)
        oss << fn.regName(op.dst) << " = ";
    oss << opcodeName(op.opcode);
    if (usesQueue(op.opcode))
        oss << " q" << op.queue;
    if (usesArray(op.opcode)) {
        oss << " " << (op.arr >= 0 ? fn.arrays[op.arr].name : "?");
        if (op.opcode == Opcode::kSwapArr)
            oss << ", " << (op.arr2 >= 0 ? fn.arrays[op.arr2].name : "?");
    }
    for (int i = 0; i < numSrcs(op.opcode); ++i) {
        if (op.src[i] == kNoReg)
            continue;
        oss << (i == 0 && !usesQueue(op.opcode) && !usesArray(op.opcode)
                    ? " " : ", ")
            << fn.regName(op.src[i]);
    }
    if (op.opcode == Opcode::kConst || op.opcode == Opcode::kEnqCtrl ||
        op.opcode == Opcode::kWork) {
        oss << " #" << op.imm;
    }
    return oss.str();
}

std::string
toString(const Function& fn)
{
    std::ostringstream oss;
    oss << "func " << fn.name << "(";
    bool first = true;
    for (int i = 0; i < fn.numArrayParams; ++i) {
        if (!first)
            oss << ", ";
        first = false;
        oss << elemTypeName(fn.arrays[i].elem) << "* " << fn.arrays[i].name;
    }
    for (const auto& p : fn.scalarParams) {
        if (!first)
            oss << ", ";
        first = false;
        oss << (p.isFloat ? "f64 " : "i64 ") << p.name;
    }
    oss << ") {\n";
    printRegion(oss, fn, fn.body, 1);
    for (const auto& h : fn.handlers) {
        oss << "  handler q" << h.queue << " {\n";
        printRegion(oss, fn, h.body, 2);
        oss << "  }\n";
    }
    oss << "}\n";
    return oss.str();
}

std::string
toString(const Pipeline& pipeline)
{
    std::ostringstream oss;
    oss << "pipeline " << pipeline.name << " (" << pipeline.stages.size()
        << " stages, " << pipeline.ras.size() << " RAs";
    if (pipeline.replicas > 1)
        oss << ", x" << pipeline.replicas << " replicas";
    oss << ")\n";
    for (const auto& q : pipeline.queues) {
        oss << "  queue q" << q.id << ": stage " << q.producerStage
            << " -> stage " << q.consumerStage;
        if (!q.note.empty())
            oss << " (" << q.note << ")";
        oss << "\n";
    }
    for (const auto& ra : pipeline.ras) {
        oss << "  ra " << (ra.mode == RAMode::kIndirect ? "indirect" : "scan")
            << " " << ra.arrayName << ": q" << ra.inQueue << " -> q"
            << ra.outQueue;
        if (ra.emitRangeCtrl)
            oss << " (emits ctrl " << ra.rangeCtrlCode << ")";
        oss << "\n";
    }
    for (const auto& s : pipeline.stages)
        oss << toString(*s);
    return oss.str();
}

} // namespace phloem::ir
