/**
 * @file
 * Textual dumps of IR functions and pipelines, for debugging, golden
 * tests, and the compiler's -emit-ir mode.
 */

#ifndef PHLOEM_IR_PRINTER_H
#define PHLOEM_IR_PRINTER_H

#include <string>

#include "ir/pipeline.h"

namespace phloem::ir {

/** Render one op as a single line (no indentation, no newline). */
std::string toString(const Function& fn, const Op& op);

/** Render a whole function as indented text. */
std::string toString(const Function& fn);

/** Render a pipeline: all stages plus queue and RA topology. */
std::string toString(const Pipeline& pipeline);

} // namespace phloem::ir

#endif // PHLOEM_IR_PRINTER_H
