#include "ir/simplify.h"

#include <map>
#include <set>
#include <vector>

#include "base/logging.h"
#include "ir/walk.h"

namespace phloem::ir {

namespace {

/** A use or def site with position and enclosing-loop path. */
struct Site
{
    int pos = 0;
    std::vector<const Stmt*> loops;
};

struct IndexedFn
{
    /** Per-register def sites (ops only; induction vars excluded). */
    std::map<RegId, std::vector<Site>> defs;
    /** Per-register use sites (op srcs, loop bounds, if conds). */
    std::map<RegId, std::vector<Site>> uses;
    std::set<RegId> induction;
    std::map<int, Site> opSite;  // by op id
};

void
indexRegion(const Region& region, int& pos,
            std::vector<const Stmt*>& loops, IndexedFn& ix)
{
    for (const auto& s : region) {
        switch (s->kind()) {
          case StmtKind::kOp: {
            const Op& op = stmtCast<OpStmt>(s.get())->op;
            Site site{pos++, loops};
            ix.opSite[op.id] = site;
            for (int i = 0; i < numSrcs(op.opcode); ++i) {
                if (op.src[i] >= 0)
                    ix.uses[op.src[i]].push_back(site);
            }
            if (hasDst(op.opcode) && op.dst >= 0)
                ix.defs[op.dst].push_back(site);
            break;
          }
          case StmtKind::kFor: {
            auto* f = stmtCast<ForStmt>(s.get());
            Site site{pos++, loops};
            ix.uses[f->start].push_back(site);
            ix.uses[f->bound].push_back(site);
            ix.induction.insert(f->var);
            loops.push_back(f);
            indexRegion(f->body, pos, loops, ix);
            loops.pop_back();
            break;
          }
          case StmtKind::kWhile: {
            auto* w = stmtCast<WhileStmt>(s.get());
            pos++;
            loops.push_back(w);
            indexRegion(w->body, pos, loops, ix);
            loops.pop_back();
            break;
          }
          case StmtKind::kIf: {
            auto* i = stmtCast<IfStmt>(s.get());
            Site site{pos++, loops};
            ix.uses[i->cond].push_back(site);
            indexRegion(i->thenBody, pos, loops, ix);
            indexRegion(i->elseBody, pos, loops, ix);
            break;
          }
          default:
            pos++;
            break;
        }
    }
}

/** Is `prefix` a prefix of `path`? */
bool
isLoopPrefix(const std::vector<const Stmt*>& prefix,
             const std::vector<const Stmt*>& path)
{
    if (prefix.size() > path.size())
        return false;
    for (size_t i = 0; i < prefix.size(); ++i)
        if (prefix[i] != path[i])
            return false;
    return true;
}

void
replaceReg(Region& region, RegId from, RegId to)
{
    for (auto& s : region) {
        switch (s->kind()) {
          case StmtKind::kOp: {
            Op& op = stmtCast<OpStmt>(s.get())->op;
            for (int i = 0; i < 3; ++i)
                if (op.src[i] == from)
                    op.src[i] = to;
            break;
          }
          case StmtKind::kFor: {
            auto* f = stmtCast<ForStmt>(s.get());
            if (f->start == from)
                f->start = to;
            if (f->bound == from)
                f->bound = to;
            replaceReg(f->body, from, to);
            break;
          }
          case StmtKind::kWhile:
            replaceReg(stmtCast<WhileStmt>(s.get())->body, from, to);
            break;
          case StmtKind::kIf: {
            auto* i = stmtCast<IfStmt>(s.get());
            if (i->cond == from)
                i->cond = to;
            replaceReg(i->thenBody, from, to);
            replaceReg(i->elseBody, from, to);
            break;
          }
          default:
            break;
        }
    }
}

bool
eraseOp(Region& region, int op_id)
{
    for (size_t i = 0; i < region.size(); ++i) {
        Stmt* s = region[i].get();
        switch (s->kind()) {
          case StmtKind::kOp:
            if (stmtCast<OpStmt>(s)->op.id == op_id) {
                region.erase(region.begin() + static_cast<long>(i));
                return true;
            }
            break;
          case StmtKind::kFor:
            if (eraseOp(stmtCast<ForStmt>(s)->body, op_id))
                return true;
            break;
          case StmtKind::kWhile:
            if (eraseOp(stmtCast<WhileStmt>(s)->body, op_id))
                return true;
            break;
          case StmtKind::kIf: {
            auto* f = stmtCast<IfStmt>(s);
            if (eraseOp(f->thenBody, op_id) || eraseOp(f->elseBody, op_id))
                return true;
            break;
          }
          default:
            break;
        }
    }
    return false;
}

} // namespace

int
copyPropagate(Function& fn)
{
    std::set<RegId> params;
    for (const auto& p : fn.scalarParams)
        params.insert(p.reg);

    int removed = 0;
    bool changed = true;
    while (changed) {
        changed = false;

        IndexedFn ix;
        int pos = 0;
        std::vector<const Stmt*> loops;
        indexRegion(fn.body, pos, loops, ix);

        // Find one applicable mov per iteration (indices go stale after a
        // rewrite).
        const Op* candidate = nullptr;
        forEachOp(fn.body, [&](const Op& op) {
            if (candidate != nullptr || op.opcode != Opcode::kMov)
                return;
            RegId d = op.dst;
            RegId s = op.src[0];
            if (d == s || params.count(d) != 0)
                return;
            if (ix.induction.count(d) || ix.induction.count(s))
                return;
            auto dd = ix.defs.find(d);
            if (dd == ix.defs.end() || dd->second.size() != 1)
                return;
            auto sd = ix.defs.find(s);
            bool s_param = params.count(s) != 0;
            if (!s_param &&
                (sd == ix.defs.end() || sd->second.size() != 1)) {
                return;
            }
            const Site& mov_site = ix.opSite.at(op.id);
            auto du = ix.uses.find(d);
            if (du != ix.uses.end()) {
                for (const Site& use : du->second) {
                    if (use.pos <= mov_site.pos ||
                        !isLoopPrefix(mov_site.loops, use.loops)) {
                        return;
                    }
                }
            }
            candidate = &op;
        });

        if (candidate != nullptr) {
            RegId d = candidate->dst;
            RegId s = candidate->src[0];
            int id = candidate->id;
            replaceReg(fn.body, d, s);
            eraseOp(fn.body, id);
            removed++;
            changed = true;
            continue;
        }

        // Dead pure ops: destination never read anywhere.
        IndexedFn ix2;
        pos = 0;
        loops.clear();
        indexRegion(fn.body, pos, loops, ix2);
        int dead_id = -1;
        forEachOp(fn.body, [&](const Op& op) {
            if (dead_id >= 0)
                return;
            if (!isPure(op.opcode) || op.dst < 0)
                return;
            if (params.count(op.dst) || ix2.induction.count(op.dst))
                return;
            auto u = ix2.uses.find(op.dst);
            if (u == ix2.uses.end() || u->second.empty())
                dead_id = op.id;
        });
        if (dead_id >= 0) {
            eraseOp(fn.body, dead_id);
            removed++;
            changed = true;
        }
    }
    return removed;
}

} // namespace phloem::ir
