/**
 * @file
 * IR-level cleanups applied to serial functions before analysis.
 *
 * copyPropagate folds single-def `mov` chains (a frontend lowering
 * artifact) so that loads feed their consumers directly — both making the
 * serial baseline comparable to gcc -O3 output and letting the
 * reference-accelerator pass see its load->enq patterns.
 */

#ifndef PHLOEM_IR_SIMPLIFY_H
#define PHLOEM_IR_SIMPLIFY_H

#include "ir/function.h"

namespace phloem::ir {

/**
 * Forward-substitute movs `d = mov s` where both d and s have exactly one
 * static definition, s is not a loop induction variable, and every use of
 * d appears after the mov inside the same loop nest. Returns the number
 * of movs removed. Also removes ops whose destination is never read and
 * that have no side effects.
 */
int copyPropagate(Function& fn);

} // namespace phloem::ir

#endif // PHLOEM_IR_SIMPLIFY_H
