/**
 * @file
 * Structured statements of the Phloem IR.
 *
 * Phloem decouples loop nests, so the IR is *structured*: a region is a
 * sequence of statements, and loops/conditionals nest regions. This makes
 * the decoupling transformation (which must clone enclosing-loop skeletons
 * into each stage) and consumer loop reconstruction direct to express.
 */

#ifndef PHLOEM_IR_STMT_H
#define PHLOEM_IR_STMT_H

#include <memory>
#include <vector>

#include "base/logging.h"
#include "ir/op.h"

namespace phloem::ir {

enum class StmtKind : uint8_t {
    kOp,
    kFor,
    kWhile,
    kIf,
    kBreak,
    kContinue,
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** An ordered sequence of statements. */
using Region = std::vector<StmtPtr>;

/**
 * Base class for all structured statements. Each statement has a
 * function-unique id (used by branch-predictor state and pass bookkeeping)
 * and an origin id that survives cloning.
 */
class Stmt
{
  public:
    virtual ~Stmt() = default;

    StmtKind kind() const { return kind_; }
    int id = -1;
    int origin = -1;

  protected:
    explicit Stmt(StmtKind kind) : kind_(kind) {}

  private:
    StmtKind kind_;
};

/** A single fine-grain operation. */
class OpStmt : public Stmt
{
  public:
    OpStmt() : Stmt(StmtKind::kOp) {}
    explicit OpStmt(Op op) : Stmt(StmtKind::kOp), op(std::move(op)) {}

    Op op;
};

/**
 * Counted loop: for (var = start; var < bound; var++) body.
 *
 * start and bound are registers read once at loop entry (the canonical
 * form the frontend produces for loop-invariant bounds). The induction
 * variable is a normal register; the body must not write it.
 */
class ForStmt : public Stmt
{
  public:
    ForStmt() : Stmt(StmtKind::kFor) {}

    RegId var = kNoReg;
    RegId start = kNoReg;
    RegId bound = kNoReg;
    Region body;
};

/**
 * Unbounded loop: while (true) body. Exits only through Break statements
 * (the frontend lowers `while (cond)` to `while (true) { if (!cond) break;
 * ... }`). Decoupled consumer stages use this form with control values.
 */
class WhileStmt : public Stmt
{
  public:
    WhileStmt() : Stmt(StmtKind::kWhile) {}

    Region body;
};

/** Two-armed conditional on a register. */
class IfStmt : public Stmt
{
  public:
    IfStmt() : Stmt(StmtKind::kIf) {}

    RegId cond = kNoReg;
    Region thenBody;
    Region elseBody;
};

/** Break out of `levels` enclosing loops (1 = innermost). */
class BreakStmt : public Stmt
{
  public:
    BreakStmt() : Stmt(StmtKind::kBreak) {}
    explicit BreakStmt(int levels) : Stmt(StmtKind::kBreak), levels(levels) {}

    int levels = 1;
};

/** Continue the innermost enclosing loop. */
class ContinueStmt : public Stmt
{
  public:
    ContinueStmt() : Stmt(StmtKind::kContinue) {}
};

/** Checked downcast helpers. */
template <typename T>
T*
stmtCast(Stmt* s)
{
    auto* t = dynamic_cast<T*>(s);
    phloem_assert(t != nullptr, "bad stmt cast");
    return t;
}

template <typename T>
const T*
stmtCast(const Stmt* s)
{
    auto* t = dynamic_cast<const T*>(s);
    phloem_assert(t != nullptr, "bad stmt cast");
    return t;
}

} // namespace phloem::ir

#endif // PHLOEM_IR_STMT_H
