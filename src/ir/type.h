/**
 * @file
 * Core value and type definitions for the Phloem IR.
 *
 * Phloem registers are untyped 64-bit containers interpreted by each
 * operation as either a signed integer or an IEEE double. A register (or
 * queue entry) additionally carries a *control tag*: Pipette's queues pass
 * control values in-band with data, and is_control() distinguishes them
 * (paper Sec. III, Table I).
 */

#ifndef PHLOEM_IR_TYPE_H
#define PHLOEM_IR_TYPE_H

#include <bit>
#include <cstdint>
#include <string>

namespace phloem::ir {

/** Element type of an array in simulated memory. */
enum class ElemType : uint8_t {
    kI32,
    kI64,
    kF64,
};

/** Size in bytes of one array element. */
inline int
elemSize(ElemType t)
{
    switch (t) {
      case ElemType::kI32: return 4;
      case ElemType::kI64: return 8;
      case ElemType::kF64: return 8;
    }
    return 8;
}

inline const char*
elemTypeName(ElemType t)
{
    switch (t) {
      case ElemType::kI32: return "i32";
      case ElemType::kI64: return "i64";
      case ElemType::kF64: return "f64";
    }
    return "?";
}

/**
 * A 64-bit machine value with an in-band control tag.
 *
 * ctrl == 0 means a data value whose payload is in bits. ctrl != 0 means a
 * control value with code (ctrl - 1); the bits field is unused for control
 * values. This mirrors Pipette's tagged queue entries.
 */
struct Value
{
    uint64_t bits = 0;
    uint32_t ctrl = 0;

    static Value
    fromInt(int64_t v)
    {
        return Value{static_cast<uint64_t>(v), 0};
    }

    static Value
    fromDouble(double v)
    {
        return Value{std::bit_cast<uint64_t>(v), 0};
    }

    /** Make a control value with the given code (>= 0). */
    static Value
    makeControl(uint32_t code)
    {
        return Value{0, code + 1};
    }

    bool isControl() const { return ctrl != 0; }

    /** Control code; only meaningful when isControl(). */
    uint32_t controlCode() const { return ctrl - 1; }

    int64_t asInt() const { return static_cast<int64_t>(bits); }
    double asDouble() const { return std::bit_cast<double>(bits); }

    bool
    operator==(const Value& o) const
    {
        return bits == o.bits && ctrl == o.ctrl;
    }
};

/** Virtual register index within one Function; -1 means "none". */
using RegId = int32_t;
/** Array slot index within one Function; -1 means "none". */
using ArrayId = int32_t;
/** Pipeline-global hardware queue number; -1 means "none". */
using QueueId = int32_t;

constexpr RegId kNoReg = -1;
constexpr ArrayId kNoArray = -1;
constexpr QueueId kNoQueue = -1;

/**
 * Well-known control-value codes. Applications and the compiler may use
 * further codes; these are the ones the pass pipeline emits.
 */
enum ControlCode : uint32_t {
    /** End of one inner group (e.g., one vertex's edge list). */
    kCtrlNext = 0,
    /** End of one outer iteration (e.g., one BFS fringe). */
    kCtrlDone = 1,
    /** End of the whole stream; consumers terminate. */
    kCtrlLast = 2,
};

} // namespace phloem::ir

#endif // PHLOEM_IR_TYPE_H
