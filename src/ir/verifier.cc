#include "ir/verifier.h"

#include <map>
#include <set>
#include <sstream>

#include "ir/walk.h"

namespace phloem::ir {

namespace {

struct Checker
{
    const Function& fn;
    std::vector<std::string>& problems;

    void
    problem(const std::string& msg)
    {
        problems.push_back(fn.name + ": " + msg);
    }

    bool
    regOk(RegId r) const
    {
        return r >= 0 && r < fn.numRegs;
    }

    void
    checkOp(const Op& op)
    {
        std::ostringstream where;
        where << opcodeName(op.opcode) << " (op " << op.id << ")";
        if (hasDst(op.opcode) && !regOk(op.dst))
            problem("bad dst register in " + where.str());
        for (int i = 0; i < numSrcs(op.opcode); ++i) {
            // enq_dist with src0 == -1 broadcasts a control value.
            if (op.opcode == Opcode::kEnqDist && i == 0 &&
                op.src[0] == kNoReg) {
                continue;
            }
            if (!regOk(op.src[i]))
                problem("bad src register in " + where.str());
        }
        if (usesArray(op.opcode)) {
            if (op.arr < 0 || op.arr >= static_cast<int>(fn.arrays.size()))
                problem("bad array slot in " + where.str());
            if (op.opcode == Opcode::kSwapArr &&
                (op.arr2 < 0 ||
                 op.arr2 >= static_cast<int>(fn.arrays.size()))) {
                problem("bad second array slot in " + where.str());
            }
            if (isMemWrite(op.opcode) && op.arr >= 0 &&
                op.arr < static_cast<int>(fn.arrays.size()) &&
                !fn.arrays[op.arr].writable) {
                problem("write to read-only array " + fn.arrays[op.arr].name +
                        " in " + where.str());
            }
        }
        if (usesQueue(op.opcode) && op.queue < 0)
            problem("missing queue id in " + where.str());
    }

    void
    checkRegion(const Region& region, int loop_depth,
                std::set<RegId>& loop_vars)
    {
        for (const auto& s : region) {
            switch (s->kind()) {
              case StmtKind::kOp: {
                const Op& op = stmtCast<OpStmt>(s.get())->op;
                checkOp(op);
                if (hasDst(op.opcode) && loop_vars.count(op.dst))
                    problem("loop induction register written in body");
                break;
              }
              case StmtKind::kFor: {
                auto* f = stmtCast<ForStmt>(s.get());
                if (!regOk(f->var) || !regOk(f->start) || !regOk(f->bound))
                    problem("bad registers in for statement");
                loop_vars.insert(f->var);
                checkRegion(f->body, loop_depth + 1, loop_vars);
                loop_vars.erase(f->var);
                break;
              }
              case StmtKind::kWhile:
                checkRegion(stmtCast<WhileStmt>(s.get())->body,
                            loop_depth + 1, loop_vars);
                break;
              case StmtKind::kIf: {
                auto* i = stmtCast<IfStmt>(s.get());
                if (!regOk(i->cond))
                    problem("bad condition register in if statement");
                checkRegion(i->thenBody, loop_depth, loop_vars);
                checkRegion(i->elseBody, loop_depth, loop_vars);
                break;
              }
              case StmtKind::kBreak: {
                auto* b = stmtCast<BreakStmt>(s.get());
                if (b->levels < 1 || b->levels > loop_depth)
                    problem("break levels exceed loop depth");
                break;
              }
              case StmtKind::kContinue:
                if (loop_depth < 1)
                    problem("continue outside loop");
                break;
            }
        }
    }
};

} // namespace

std::vector<std::string>
verify(const Function& fn)
{
    std::vector<std::string> problems;
    Checker checker{fn, problems};

    std::set<int> op_ids;
    forEachOp(fn.body, [&](const Op& op) {
        if (!op_ids.insert(op.id).second)
            checker.problem("duplicate op id " + std::to_string(op.id));
    });

    std::set<RegId> loop_vars;
    checker.checkRegion(fn.body, 0, loop_vars);

    // Handlers execute at a deq site nested in at least one loop; allow
    // breaks up to a reasonable depth there (checked against the real deq
    // site at flattening time).
    for (const auto& h : fn.handlers) {
        if (h.queue < 0)
            checker.problem("handler with no queue");
        std::set<RegId> hv;
        checker.checkRegion(h.body, /*loop_depth=*/8, hv);
    }
    return problems;
}

std::vector<std::string>
verify(const Pipeline& pipeline, int max_queues, int max_ras)
{
    std::vector<std::string> problems;
    for (const auto& stage : pipeline.stages) {
        auto p = verify(*stage);
        problems.insert(problems.end(), p.begin(), p.end());
    }

    // Collect queue endpoints: stage programs plus RA legs.
    std::map<QueueId, int> producers;
    std::map<QueueId, int> consumers;
    std::set<QueueId> used;
    for (const auto& stage : pipeline.stages) {
        forEachOp(stage->body, [&](const Op& op) {
            if (!usesQueue(op.opcode))
                return;
            used.insert(op.queue);
            if (op.opcode == Opcode::kEnq || op.opcode == Opcode::kEnqCtrl ||
                op.opcode == Opcode::kEnqDist) {
                producers[op.queue]++;
            } else {
                consumers[op.queue]++;
            }
        });
        for (const auto& h : stage->handlers) {
            forEachOp(h.body, [&](const Op& op) {
                if (!usesQueue(op.opcode))
                    return;
                used.insert(op.queue);
                if (op.opcode == Opcode::kEnq ||
                    op.opcode == Opcode::kEnqCtrl ||
                    op.opcode == Opcode::kEnqDist) {
                    producers[op.queue]++;
                }
            });
        }
    }
    for (const auto& ra : pipeline.ras) {
        used.insert(ra.inQueue);
        used.insert(ra.outQueue);
        consumers[ra.inQueue]++;
        producers[ra.outQueue]++;
        if (ra.arrayName.empty())
            problems.push_back(pipeline.name + ": RA with no array");
    }

    for (QueueId q : used) {
        if (producers[q] == 0)
            problems.push_back(pipeline.name + ": queue " +
                               std::to_string(q) + " has no producer");
        if (consumers[q] == 0)
            problems.push_back(pipeline.name + ": queue " +
                               std::to_string(q) + " has no consumer");
    }

    if (static_cast<int>(used.size()) > max_queues) {
        problems.push_back(pipeline.name + ": uses " +
                           std::to_string(used.size()) + " queues, max " +
                           std::to_string(max_queues));
    }
    if (static_cast<int>(pipeline.ras.size()) > max_ras) {
        problems.push_back(pipeline.name + ": uses " +
                           std::to_string(pipeline.ras.size()) +
                           " RAs, max " + std::to_string(max_ras));
    }
    return problems;
}

} // namespace phloem::ir
