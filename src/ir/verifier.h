/**
 * @file
 * Structural well-formedness checks for IR functions and pipelines.
 *
 * The verifier runs between compiler passes (cheap insurance that each
 * "simple pass" leaves the IR legal) and before simulation.
 */

#ifndef PHLOEM_IR_VERIFIER_H
#define PHLOEM_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/pipeline.h"

namespace phloem::ir {

/** Returns a list of problems; empty means the function is well-formed. */
std::vector<std::string> verify(const Function& fn);

/**
 * Verify a whole pipeline: per-stage checks plus topology checks (every
 * queue has exactly one producer and one consumer endpoint counting RAs,
 * resource limits are not exceeded).
 */
std::vector<std::string> verify(const Pipeline& pipeline, int max_queues = 16,
                                int max_ras = 4);

} // namespace phloem::ir

#endif // PHLOEM_IR_VERIFIER_H
