/**
 * @file
 * Traversal helpers over structured IR regions.
 */

#ifndef PHLOEM_IR_WALK_H
#define PHLOEM_IR_WALK_H

#include <functional>
#include <vector>

#include "ir/function.h"

namespace phloem::ir {

/** Pre-order walk over every statement (including nested regions). */
inline void
forEachStmt(const Region& region, const std::function<void(const Stmt*)>& fn)
{
    for (const auto& s : region) {
        fn(s.get());
        switch (s->kind()) {
          case StmtKind::kFor:
            forEachStmt(stmtCast<ForStmt>(s.get())->body, fn);
            break;
          case StmtKind::kWhile:
            forEachStmt(stmtCast<WhileStmt>(s.get())->body, fn);
            break;
          case StmtKind::kIf: {
            auto* i = stmtCast<IfStmt>(s.get());
            forEachStmt(i->thenBody, fn);
            forEachStmt(i->elseBody, fn);
            break;
          }
          default:
            break;
        }
    }
}

inline void
forEachStmt(Region& region, const std::function<void(Stmt*)>& fn)
{
    for (auto& s : region) {
        fn(s.get());
        switch (s->kind()) {
          case StmtKind::kFor:
            forEachStmt(stmtCast<ForStmt>(s.get())->body, fn);
            break;
          case StmtKind::kWhile:
            forEachStmt(stmtCast<WhileStmt>(s.get())->body, fn);
            break;
          case StmtKind::kIf: {
            auto* i = stmtCast<IfStmt>(s.get());
            forEachStmt(i->thenBody, fn);
            forEachStmt(i->elseBody, fn);
            break;
          }
          default:
            break;
        }
    }
}

/** Walk every Op in a region tree. */
inline void
forEachOp(Region& region, const std::function<void(Op&)>& fn)
{
    forEachStmt(region, [&](Stmt* s) {
        if (s->kind() == StmtKind::kOp)
            fn(stmtCast<OpStmt>(s)->op);
    });
}

inline void
forEachOp(const Region& region, const std::function<void(const Op&)>& fn)
{
    forEachStmt(region, [&](const Stmt* s) {
        if (s->kind() == StmtKind::kOp)
            fn(stmtCast<OpStmt>(s)->op);
    });
}

/**
 * Context for a contextual walk: the stack of enclosing loops (innermost
 * last) and the stack of enclosing if statements.
 */
struct WalkContext
{
    std::vector<const Stmt*> loops;
    std::vector<const IfStmt*> ifs;

    int loopDepth() const { return static_cast<int>(loops.size()); }
};

namespace detail {

inline void
walkOpsImpl(const Region& region, WalkContext& ctx,
            const std::function<void(const Op&, const WalkContext&)>& fn)
{
    for (const auto& s : region) {
        switch (s->kind()) {
          case StmtKind::kOp:
            fn(stmtCast<OpStmt>(s.get())->op, ctx);
            break;
          case StmtKind::kFor: {
            auto* f = stmtCast<ForStmt>(s.get());
            ctx.loops.push_back(f);
            walkOpsImpl(f->body, ctx, fn);
            ctx.loops.pop_back();
            break;
          }
          case StmtKind::kWhile: {
            auto* w = stmtCast<WhileStmt>(s.get());
            ctx.loops.push_back(w);
            walkOpsImpl(w->body, ctx, fn);
            ctx.loops.pop_back();
            break;
          }
          case StmtKind::kIf: {
            auto* i = stmtCast<IfStmt>(s.get());
            ctx.ifs.push_back(i);
            walkOpsImpl(i->thenBody, ctx, fn);
            walkOpsImpl(i->elseBody, ctx, fn);
            ctx.ifs.pop_back();
            break;
          }
          default:
            break;
        }
    }
}

} // namespace detail

/** Walk ops with loop/if context. */
inline void
walkOps(const Region& region,
        const std::function<void(const Op&, const WalkContext&)>& fn)
{
    WalkContext ctx;
    detail::walkOpsImpl(region, ctx, fn);
}

/** Count the ops in a region tree. */
inline int
countOps(const Region& region)
{
    int n = 0;
    forEachOp(region, [&](const Op&) { ++n; });
    return n;
}

/** Count dynamic statements of all kinds. */
inline int
countStmts(const Region& region)
{
    int n = 0;
    forEachStmt(region, [&](const Stmt*) { ++n; });
    return n;
}

} // namespace phloem::ir

#endif // PHLOEM_IR_WALK_H
