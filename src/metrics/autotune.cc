#include "metrics/autotune.h"

#include <sstream>

namespace phloem::metrics {

namespace {

std::string
cutsLabel(const comp::SearchPoint& p)
{
    std::ostringstream oss;
    for (size_t i = 0; i < p.cutOps.size(); ++i)
        oss << (i > 0 ? "+" : "") << p.cutOps[i];
    return oss.str();
}

} // namespace

Run
autotuneToMetrics(const std::string& name,
                  const comp::AutotuneResult& result,
                  const std::string& mode)
{
    Run run;
    run.name = name;
    run.labels["phase"] = "autotune";
    run.labels["mode"] = mode;

    MetricSet& top = run.top;
    top.addCounter("candidates", result.entries.size());
    top.addCounter("rejects", result.rejects.size());
    top.addCounter("profiled", static_cast<uint64_t>(result.profiled));
    top.setGauge("best_training_speedup", result.bestTrainingSpeedup);
    top.setGauge("seed_candidates",
                 static_cast<double>(result.calibration.seedCandidates));
    if (result.calibration.predictedTop1MeasuredRank >= 0) {
        top.setGauge("predicted_top1_measured_rank",
                     static_cast<double>(
                         result.calibration.predictedTop1MeasuredRank));
        top.setGauge("mean_rank_displacement",
                     result.calibration.meanRankDisplacement);
    }
    if (result.best.pipeline != nullptr) {
        top.setGauge("best_length_with_ras",
                     static_cast<double>(
                         result.best.pipeline->lengthWithRAs()));
        top.setGauge("best_replicas",
                     static_cast<double>(result.bestPoint.replicas));
        top.setGauge("best_queue_depth",
                     static_cast<double>(result.bestPoint.queueDepth));
    }
    // Fig. 13's x-axis: the distribution of training speedups over the
    // accepted candidates (rejects are counted, never observed here).
    Distribution& d = top.dist("candidate_speedup",
                               {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0});
    for (const auto& e : result.entries)
        d.observe(e.trainingSpeedup);

    Family& cands = run.families["autotune_candidate"];
    for (size_t i = 0; i < result.entries.size(); ++i) {
        const comp::AutotuneEntry& e = result.entries[i];
        MetricSet& ms = cands.at({{"candidate", std::to_string(i)},
                                  {"cuts", cutsLabel(e.point)},
                                  {"phase", e.phase}});
        ms.setGauge("predicted_score", e.predictedScore);
        ms.setGauge("training_speedup", e.trainingSpeedup);
        ms.setGauge("length_with_ras",
                    static_cast<double>(e.lengthWithRAs));
        ms.setGauge("replicas", static_cast<double>(e.point.replicas));
        ms.setGauge("queue_depth",
                    static_cast<double>(e.point.queueDepth));
        if (e.predictedRank >= 0) {
            ms.setGauge("predicted_rank",
                        static_cast<double>(e.predictedRank));
            ms.setGauge("measured_rank",
                        static_cast<double>(e.measuredRank));
        }
    }

    Family& rejects = run.families["autotune_reject"];
    for (const auto& r : result.rejects)
        rejects.at({{"reason", r.reason}, {"phase", r.phase}})
            .addCounter("count", 1);

    return run;
}

} // namespace phloem::metrics
