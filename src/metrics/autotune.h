/**
 * @file
 * Report form of one autotuner search: the Fig. 13 candidate
 * distribution plus the model-vs-measurement calibration record, as a
 * metrics Run every report consumer (phloem-report, the CI gates) can
 * read with the standard vocabulary.
 *
 * Families:
 *  - "autotune_candidate": one point per accepted candidate, labeled by
 *    index/cuts/phase, with predicted_score, training_speedup, the
 *    non-cut knobs (replicas, queue_depth), and both calibration ranks.
 *  - "autotune_reject": rejected candidates aggregated by reason, so
 *    failed pipelines are counted without polluting the speedup
 *    distribution.
 */

#ifndef PHLOEM_METRICS_AUTOTUNE_H
#define PHLOEM_METRICS_AUTOTUNE_H

#include <string>

#include "compiler/autotune.h"
#include "metrics/metrics.h"

namespace phloem::metrics {

/**
 * Convert one search. `mode` labels the profiler that measured the
 * candidates ("sim" or "native").
 */
Run autotuneToMetrics(const std::string& name,
                      const comp::AutotuneResult& result,
                      const std::string& mode);

} // namespace phloem::metrics

#endif // PHLOEM_METRICS_AUTOTUNE_H
