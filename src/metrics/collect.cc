#include "metrics/collect.h"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "base/logging.h"
#include "ir/op.h"

namespace phloem::metrics {

namespace {

/** Batch-size histogram edges matching rt::QueueStats's log2 buckets. */
const std::vector<double> kBatchEdges = {2, 4, 8, 16, 32, 64, 128};

/**
 * Run the accounting checks and enforce the policy: loud warnings in
 * debug builds, throw under PHLOEM_STRICT_STATS=1 in any build.
 */
void
enforce(const std::vector<std::string>& problems, const char* what)
{
    if (problems.empty())
        return;
#if defined(NDEBUG)
    if (!strictStats())
        return;
#endif
    for (const auto& p : problems)
        phloem_warn("stats self-consistency (", what, "): ", p);
    if (strictStats()) {
        std::string all = "PHLOEM_STRICT_STATS: inconsistent ";
        all += what;
        all += " stats:";
        for (const auto& p : problems)
            all += "\n  " + p;
        throw std::runtime_error(all);
    }
}

std::string
fmtDouble(double v)
{
    std::ostringstream oss;
    oss << v;
    return oss.str();
}

} // namespace

bool
strictStats()
{
    const char* v = std::getenv("PHLOEM_STRICT_STATS");
    if (v == nullptr)
        return false;
    return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
           std::strcmp(v, "on") == 0;
}

std::vector<std::string>
checkSimStats(const sim::RunStats& stats)
{
    std::vector<std::string> problems;
    for (const auto& t : stats.threads) {
        if (t.cycles < t.startCycle) {
            problems.push_back("thread '" + t.name + "': cycles (" +
                               std::to_string(t.cycles) +
                               ") < startCycle (" +
                               std::to_string(t.startCycle) + ")");
            continue;
        }
        double total = static_cast<double>(t.cycles - t.startCycle);
        double busy =
            t.issueCycles + t.queueStallCycles + t.frontendCycles;
        // Tolerate double-accumulation rounding, not real overruns.
        double slack = 1e-9 * total + 1e-6;
        if (busy > total + slack) {
            problems.push_back(
                "thread '" + t.name + "': issue (" +
                fmtDouble(t.issueCycles) + ") + queue-stall (" +
                fmtDouble(t.queueStallCycles) + ") + frontend (" +
                fmtDouble(t.frontendCycles) + ") = " + fmtDouble(busy) +
                " exceeds active cycles " + fmtDouble(total) +
                "; backendCycles() would clamp a negative residual");
        }
    }
    for (const auto& q : stats.queues) {
        if (q.enq != q.deq + q.residual) {
            problems.push_back(
                "queue " + std::to_string(q.id) + ": pushes (" +
                std::to_string(q.enq) + ") != pops (" +
                std::to_string(q.deq) + ") + residual (" +
                std::to_string(q.residual) + ")");
        }
    }
    return problems;
}

std::vector<std::string>
checkNativeStats(const rt::NativeStats& stats)
{
    std::vector<std::string> problems;
    for (const auto& q : stats.queues) {
        if (q.enq != q.deq + q.residual) {
            problems.push_back(
                "queue " + std::to_string(q.id) + ": pushes (" +
                std::to_string(q.enq) + ") != pops (" +
                std::to_string(q.deq) + ") + residual (" +
                std::to_string(q.residual) + ")");
        }
    }
    return problems;
}

Run
simRunToMetrics(const std::string& name, const sim::RunStats& stats,
                const sim::EnergyBreakdown* energy)
{
    enforce(checkSimStats(stats), "sim");

    Run run;
    run.name = name;
    run.labels["backend"] = "sim";

    MetricSet& top = run.top;
    top.setGauge("cycles", static_cast<double>(stats.cycles));
    top.setGauge("thread_cycles", stats.totalThreadCycles());
    top.setGauge("issue_cycles", stats.totalIssueCycles());
    top.setGauge("queue_stall_cycles", stats.totalQueueStallCycles());
    top.setGauge("frontend_cycles", stats.totalFrontendCycles());
    top.setGauge("backend_cycles", stats.totalBackendCycles());
    top.addCounter("instructions", stats.totalInstructions());
    top.addCounter("uops", stats.totalUops());
    top.addCounter("queue_ops", stats.totalQueueOps());
    top.addCounter("ra_elements", stats.totalRAElements());
    top.addCounter("ra_mem_accesses", stats.totalRAMemAccesses());
    top.addCounter("l1_hits", stats.mem.l1Hits);
    top.addCounter("l2_hits", stats.mem.l2Hits);
    top.addCounter("l3_hits", stats.mem.l3Hits);
    top.addCounter("dram_accesses", stats.mem.dramAccesses);
    top.addCounter("deadlocks", stats.deadlock ? 1 : 0);
    if (energy != nullptr) {
        top.setGauge("energy_core_mj", energy->coreDynamic);
        top.setGauge("energy_cache_mj", energy->cache);
        top.setGauge("energy_dram_mj", energy->dram);
        top.setGauge("energy_static_mj", energy->staticEnergy);
        top.setGauge("energy_total_mj", energy->total());
    }

    Family& stages = run.families["stage"];
    for (const auto& t : stats.threads) {
        MetricSet& ms = stages.at(
            {{"stage", t.name}, {"core", std::to_string(t.core)}});
        ms.addCounter("uops", t.uops);
        ms.addCounter("instructions", t.instructions);
        ms.addCounter("loads", t.loads);
        ms.addCounter("stores", t.stores);
        ms.addCounter("queue_ops", t.queueOps);
        ms.addCounter("branches", t.branches);
        ms.addCounter("mispredicts", t.mispredicts);
        ms.setGauge("cycles",
                    static_cast<double>(t.cycles - t.startCycle));
        ms.setGauge("issue_cycles", t.issueCycles);
        ms.setGauge("queue_stall_cycles", t.queueStallCycles);
        ms.setGauge("frontend_cycles", t.frontendCycles);
        ms.setGauge("backend_cycles", t.backendCycles());
    }

    if (!stats.queues.empty()) {
        Family& queues = run.families["queue"];
        for (const auto& q : stats.queues) {
            MetricSet& ms = queues.at({{"queue", std::to_string(q.id)}});
            ms.addCounter("enq", q.enq);
            ms.addCounter("deq", q.deq);
            ms.addCounter("residual", q.residual);
        }
    }

    if (!stats.ras.empty()) {
        Family& ras = run.families["ra"];
        int idx = 0;
        for (const auto& r : stats.ras) {
            MetricSet& ms = ras.at({{"ra", std::to_string(idx++)}});
            ms.addCounter("elements", r.elements);
            ms.addCounter("ctrl_forwarded", r.ctrlForwarded);
            ms.addCounter("mem_accesses", r.memAccesses);
        }
    }
    return run;
}

Run
nativeRunToMetrics(const std::string& name, const rt::NativeStats& stats)
{
    enforce(checkNativeStats(stats), "native");

    Run run;
    run.name = name;
    run.labels["backend"] = "native";

    MetricSet& top = run.top;
    top.setGauge("wall_ns", stats.wallNs);
    top.addCounter("stage_threads",
                   static_cast<uint64_t>(stats.numStageThreads));
    top.addCounter("ra_workers",
                   static_cast<uint64_t>(stats.numRAWorkers));
    top.addCounter("engine", stats.engine ? 1 : 0);
    top.addCounter("failures", stats.ok ? 0 : 1);
    // Resolved stage execution tier, plus the JIT pipeline's own costs
    // when it ran: stages compiled vs. downgraded, and where the
    // compile time went (emit C / cc / dlopen).
    if (!stats.tier.empty()) run.labels["tier"] = stats.tier;
    if (stats.tier == "jit") {
        top.addCounter("jit_stages",
                       static_cast<uint64_t>(stats.jitStages));
        top.addCounter("jit_fallbacks",
                       static_cast<uint64_t>(stats.jitFallbacks));
        top.setGauge("jit_emit_ns", stats.jitEmitNs);
        top.setGauge("jit_compile_ns", stats.jitCompileNs);
        top.setGauge("jit_load_ns", stats.jitLoadNs);
    }
    top.addCounter("instructions", stats.totalInstructions());
    top.addCounter("branches", stats.totalBranches());
    top.addCounter("enq_blocks", stats.totalEnqBlocks());
    top.addCounter("deq_blocks", stats.totalDeqBlocks());
    // Task-pool scheduling counters: only when the run actually ran on
    // the shared pool, so sim/serial/legacy reports are unchanged.
    if (stats.sched.shared) {
        top.setGauge("sched_pool_size",
                     static_cast<double>(stats.sched.poolSize));
        top.addCounter("sched_stealing", stats.sched.stealing ? 1 : 0);
        top.addCounter("sched_parks", stats.sched.parks);
        top.addCounter("sched_unparks", stats.sched.unparks);
        top.addCounter("sched_steals", stats.sched.steals);
        top.addCounter("sched_yields", stats.sched.yields);
    }

    // Hardware-counter family: absent entirely when the PMU is
    // unavailable (the documented graceful degradation); the getrusage
    // floor is always present.
    if (stats.hwValid) {
        rt::HwCounts total = stats.hwTotal();
        top.addCounter("hw_cycles", total.cycles);
        top.addCounter("hw_instructions", total.instructions);
        top.addCounter("hw_llc_refs", total.llcRefs);
        top.addCounter("hw_llc_misses", total.llcMisses);
        top.addCounter("hw_stalled_cycles", total.stalledCycles);
        top.setGauge("hw_ipc", total.ipc());
        top.setGauge("hw_llc_miss_rate", total.llcMissRate());
        Family& hw = run.families["hw"];
        for (const auto& lane : stats.hwLanes) {
            if (!lane.counts.valid)
                continue;
            MetricSet& ms = hw.at({{"lane", lane.name}});
            ms.addCounter("cycles", lane.counts.cycles);
            ms.addCounter("instructions", lane.counts.instructions);
            ms.addCounter("llc_refs", lane.counts.llcRefs);
            ms.addCounter("llc_misses", lane.counts.llcMisses);
            ms.addCounter("stalled_cycles", lane.counts.stalledCycles);
            ms.setGauge("ipc", lane.counts.ipc());
            ms.setGauge("llc_miss_rate", lane.counts.llcMissRate());
        }
    }
    top.setGauge("ru_maxrss_kb", stats.rusage.maxRssKb);
    top.addCounter("ru_ctxsw_voluntary", stats.rusage.voluntaryCtxSw);
    top.addCounter("ru_ctxsw_involuntary",
                   stats.rusage.involuntaryCtxSw);
    top.setGauge("ru_user_ns", stats.rusage.userNs);
    top.setGauge("ru_system_ns", stats.rusage.systemNs);

    uint64_t queue_ops = 0, ra_elements = 0, ra_ctrl = 0, fused = 0;
    for (const auto& w : stats.workers) {
        queue_ops += w.queueOps;
        ra_elements += w.raElements;
        ra_ctrl += w.raCtrlForwarded;
        fused += w.fusedSites;
    }
    top.addCounter("queue_ops", queue_ops);
    top.addCounter("ra_elements", ra_elements);
    top.addCounter("ra_ctrl_forwarded", ra_ctrl);
    top.addCounter("fused_sites", fused);

    Family& workers = run.families["worker"];
    for (const auto& w : stats.workers) {
        MetricSet& ms =
            workers.at({{"worker", w.name},
                        {"kind", w.isStage ? "stage" : "ra"}});
        ms.addCounter("instructions", w.instructions);
        ms.addCounter("queue_ops", w.queueOps);
        ms.addCounter("branches", w.branches);
        ms.addCounter("fused_sites", w.fusedSites);
        // Stage tier outcome: ran JIT-compiled code (1) vs. fell back
        // to the engine (0 with jit_fallback=1). Absent off-JIT runs.
        if (w.tier == "jit") ms.addCounter("jit", 1);
        if (!w.jitFallback.empty()) ms.addCounter("jit_fallback", 1);
        if (!w.isStage) {
            ms.addCounter("elements", w.raElements);
            ms.addCounter("ctrl_forwarded", w.raCtrlForwarded);
        }
    }

    std::vector<uint64_t> op_counts = stats.totalOpCounts();
    if (!op_counts.empty()) {
        Family& ops = run.families["opcode"];
        for (size_t op = 0; op < op_counts.size(); ++op) {
            if (op_counts[op] == 0)
                continue;
            ops.at({{"op", ir::opcodeName(static_cast<ir::Opcode>(op))}})
                .addCounter("count", op_counts[op]);
        }
    }

    if (!stats.queues.empty()) {
        Family& queues = run.families["queue"];
        for (const auto& q : stats.queues) {
            MetricSet& ms = queues.at({{"queue", std::to_string(q.id)}});
            ms.addCounter("enq", q.enq);
            ms.addCounter("deq", q.deq);
            ms.addCounter("enq_blocks", q.enqBlocks);
            ms.addCounter("deq_blocks", q.deqBlocks);
            ms.addCounter("residual", q.residual);
            ms.setGauge("max_occupancy",
                        static_cast<double>(q.maxOccupancy));
            // Rebuild the distributions from the log2 histograms: bucket
            // b of QueueStats covers [2^b, 2^(b+1)), which is exactly
            // the model's lower-inclusive bucket b for edges 2,4,...,128.
            Distribution& push = ms.dist("push_batch", kBatchEdges);
            Distribution& pop = ms.dist("pop_batch", kBatchEdges);
            for (int b = 0; b < rt::QueueStats::kBatchHistBuckets; ++b) {
                push.counts[static_cast<size_t>(b)] += q.pushHist[b];
                pop.counts[static_cast<size_t>(b)] += q.popHist[b];
                push.total += q.pushHist[b];
                pop.total += q.popHist[b];
            }
            push.sum += static_cast<double>(q.pushBatchElems);
            pop.sum += static_cast<double>(q.popBatchElems);
        }
    }
    return run;
}

void
addTraceSummary(Run& run, const trace::Tracer& tracer)
{
    if (tracer.buffers().empty())
        return;
    Family& lanes = run.families["lane"];
    for (const auto& buf : tracer.buffers()) {
        MetricSet& ms =
            lanes.at({{"lane", buf->workerName()},
                      {"kind", buf->isStage() ? "stage" : "aux"}});
        buf->forEachRetained([&](const trace::Event& e) {
            uint64_t span = e.end - e.begin;
            switch (e.kind) {
            case trace::EventKind::kEnqBlock:
                ms.addCounter("enq_block_spans", 1);
                ms.addCounter("enq_block_time", span);
                break;
            case trace::EventKind::kDeqBlock:
                ms.addCounter("deq_block_spans", 1);
                ms.addCounter("deq_block_time", span);
                break;
            case trace::EventKind::kBarrierWait:
                ms.addCounter("barrier_spans", 1);
                ms.addCounter("barrier_time", span);
                break;
            case trace::EventKind::kRaService:
                ms.addCounter("ra_bursts", 1);
                ms.addCounter("ra_burst_elements", e.arg);
                break;
            case trace::EventKind::kHalt:
                ms.addCounter("halts", 1);
                break;
            case trace::EventKind::kQueueOcc:
                // Occupancy samples are a counter series, not spans;
                // keep the sample count so lanes stay comparable.
                ms.addCounter("occupancy_samples", 1);
                break;
            case trace::EventKind::kSvcQueueWait:
            case trace::EventKind::kSvcCacheLookup:
            case trace::EventKind::kSvcCompile:
            case trace::EventKind::kSvcRun:
                // Service lifecycle spans (phloemd request lane).
                ms.addCounter(std::string(trace::eventKindName(e.kind)) +
                                  "_spans",
                              1);
                ms.addCounter(std::string(trace::eventKindName(e.kind)) +
                                  "_time",
                              span);
                break;
            }
        });
        if (buf->recorded() > buf->retained()) {
            ms.addCounter("events_dropped",
                          buf->recorded() - buf->retained());
        }
    }
}

std::string
configFingerprint(const sim::SysConfig& cfg)
{
    std::ostringstream oss;
    oss << cfg.numCores << '|' << cfg.threadsPerCore << '|'
        << cfg.issueWidth << '|' << cfg.robSize << '|'
        << cfg.mispredictPenalty << '|' << cfg.freqGHz << '|'
        << cfg.mshrsPerCore << '|' << cfg.maxQueues << '|'
        << cfg.queueDepth << '|' << cfg.maxRAs << '|' << cfg.queueLatency
        << '|' << cfg.interCoreQueueLatency << '|' << cfg.raMaxInflight
        << '|' << cfg.l1.sizeBytes << ',' << cfg.l1.ways << ','
        << cfg.l1.latency << '|' << cfg.l2.sizeBytes << ',' << cfg.l2.ways
        << ',' << cfg.l2.latency << '|' << cfg.l3PerCore.sizeBytes << ','
        << cfg.l3PerCore.ways << ',' << cfg.l3PerCore.latency << '|'
        << cfg.lineBytes << '|' << cfg.memMinLatency << '|'
        << cfg.memControllers << '|' << cfg.memGBps << '|'
        << cfg.atomicExtraLatency;
    std::string s = oss.str();
    uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace phloem::metrics
