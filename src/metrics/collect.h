/**
 * @file
 * Collectors: turn each backend's raw stats structs into metrics Runs,
 * and validate their internal consistency while doing so.
 *
 * Every producer (simulator, native runtime, trace summaries) routes
 * through these functions, so a report written by phloemc, bench_native,
 * or any figure harness uses identical metric names and families — the
 * property the diff tool and the CI perf gate depend on.
 *
 * Consistency checking: finalizing a run into metrics is the one moment
 * both sides of each accounting identity are in hand, so the collectors
 * verify them:
 *   - per thread: issueCycles + queueStallCycles + frontendCycles
 *     <= cycles - startCycle (otherwise backendCycles() silently clamps
 *     a negative residual and the Fig. 10 buckets lie)
 *   - per queue: pushes == pops + residual
 * Violations are loudly warned in debug builds; under PHLOEM_STRICT_STATS=1
 * (any build) they throw, which is how CI can turn accounting rot into a
 * hard failure.
 */

#ifndef PHLOEM_METRICS_COLLECT_H
#define PHLOEM_METRICS_COLLECT_H

#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "runtime/stats.h"
#include "runtime/trace.h"
#include "sim/config.h"
#include "sim/energy.h"
#include "sim/stats.h"

namespace phloem::metrics {

/**
 * Convert one simulator run. Families: "stage" (per thread), "queue",
 * "ra". Pass `energy` to add the Fig. 11 gauges.
 */
Run simRunToMetrics(const std::string& name, const sim::RunStats& stats,
                    const sim::EnergyBreakdown* energy = nullptr);

/**
 * Convert one native-runtime run. Families: "worker" (stages + RAs),
 * "queue" (with push/pop batch-size distributions), "opcode" (dynamic
 * instruction counts from --profile-grade stats when present).
 */
Run nativeRunToMetrics(const std::string& name,
                       const rt::NativeStats& stats);

/**
 * Summarize a stall-attribution trace into the run's "lane" family:
 * per-lane blocked-span counts and total blocked time (enq/deq/barrier),
 * RA service bursts and streamed elements. Units follow the tracer's
 * timebase (wall-ns native, cycles sim).
 */
void addTraceSummary(Run& run, const trace::Tracer& tracer);

/**
 * Accounting-identity violations, one human-readable string each
 * (empty = consistent). Exposed so tests can inject broken stats.
 */
std::vector<std::string> checkSimStats(const sim::RunStats& stats);
std::vector<std::string> checkNativeStats(const rt::NativeStats& stats);

/** True when PHLOEM_STRICT_STATS=1/true/on is set in the environment. */
bool strictStats();

/**
 * Stable fingerprint of the simulated-system configuration (FNV-1a over
 * every Table III parameter). Two reports with different fingerprints
 * measured different machines; the diff tool warns before comparing.
 */
std::string configFingerprint(const sim::SysConfig& cfg);

} // namespace phloem::metrics

#endif // PHLOEM_METRICS_COLLECT_H
