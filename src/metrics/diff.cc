#include "metrics/diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace phloem::metrics {

namespace {

bool
contains(const std::string& s, const char* needle)
{
    return s.find(needle) != std::string::npos;
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Leaf metric name of a path ("run/queue[queue=3]/enq" -> "enq"). */
std::string
leafOf(const std::string& path)
{
    size_t slash = path.rfind('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

Tolerance
classifyMetric(const std::string& path, bool isCounter)
{
    std::string leaf = leafOf(path);

    // Hardware counters and resource usage are host measurements, not
    // model outputs: IPC, miss rates, rss, and context switches vary
    // with the machine and its load, so they inform but never gate.
    // Must precede the "cycles" rule below (hw_cycles, stalled_cycles).
    if (leaf.rfind("hw_", 0) == 0 || leaf.rfind("ru_", 0) == 0 ||
        contains(path, "hw[")) {
        return {Direction::kInfo, 0.0};
    }
    // Scheduling noise: meaningful to read, meaningless to gate. Block
    // counts, occupancy high-water marks, batch shapes, and trace-lane
    // timings all vary run-to-run on a loaded host.
    if (contains(path, "lane[") || contains(leaf, "block") ||
        contains(leaf, "occupancy") || contains(leaf, "residual") ||
        contains(leaf, "batch") || contains(leaf, "halts") ||
        contains(leaf, "events_dropped")) {
        return {Direction::kInfo, 0.0};
    }
    // Wall-clock: lower is better, host-noisy.
    if (leaf == "wall_ns" || endsWith(leaf, "_ms") ||
        endsWith(leaf, "_ns")) {
        return {Direction::kLowerBetter, 1.0};
    }
    // Simulated cycles (and derived stall buckets) are deterministic;
    // small drift is a real model change.
    if (contains(leaf, "cycles"))
        return {Direction::kLowerBetter, 0.05};
    if (leaf.rfind("energy_", 0) == 0)
        return {Direction::kLowerBetter, 0.05};
    if (contains(leaf, "speedup"))
        return {Direction::kHigherBetter, 0.10};
    // Functional counters (instructions, queue ops, pushes/pops, ...):
    // exact — any drift means the program executed differently.
    if (isCounter)
        return {Direction::kExact, 0.0};
    return {Direction::kExact, -1.0};  // -1 = "use opts.defaultTol"
}

namespace {

struct FlatMetric
{
    std::string path;
    double value = 0.0;
    bool isCounter = false;
};

void
flattenSet(const std::string& prefix, const MetricSet& ms,
           std::vector<FlatMetric>* out)
{
    for (const auto& [k, v] : ms.counters)
        out->push_back({prefix + k, static_cast<double>(v), true});
    for (const auto& [k, v] : ms.gauges)
        out->push_back({prefix + k, v, false});
    // Distributions gate through their total/mean; bucket shapes are
    // classified as noise by name ("batch") or the default class.
    for (const auto& [k, v] : ms.dists) {
        out->push_back(
            {prefix + k + ".total", static_cast<double>(v.total), true});
        out->push_back({prefix + k + ".mean", v.mean(), false});
    }
}

std::string
labelsKey(const std::map<std::string, std::string>& labels)
{
    std::string out;
    for (const auto& [k, v] : labels) {
        if (!out.empty())
            out += ",";
        out += k + "=" + v;
    }
    return out;
}

std::vector<FlatMetric>
flattenRun(const Run& r)
{
    std::vector<FlatMetric> out;
    std::string base = r.name;
    std::string lk = labelsKey(r.labels);
    if (!lk.empty())
        base += "{" + lk + "}";
    flattenSet(base + "/", r.top, &out);
    for (const auto& [fname, fam] : r.families) {
        for (const auto& p : fam.points) {
            flattenSet(base + "/" + fname + "[" + labelsKey(p.labels) +
                           "]/",
                       p.metrics, &out);
        }
    }
    return out;
}

int
verdictRank(Verdict v)
{
    switch (v) {
    case Verdict::kRegression: return 0;
    case Verdict::kMissing: return 1;
    case Verdict::kImproved: return 2;
    case Verdict::kInfo: return 3;
    case Verdict::kNew: return 4;
    case Verdict::kOk: return 5;
    }
    return 6;
}

const char*
verdictName(Verdict v)
{
    switch (v) {
    case Verdict::kRegression: return "REGRESSION";
    case Verdict::kMissing: return "missing";
    case Verdict::kImproved: return "improved";
    case Verdict::kInfo: return "info";
    case Verdict::kNew: return "new";
    case Verdict::kOk: return "ok";
    }
    return "?";
}

} // namespace

DiffResult
diffReports(const Report& oldRep, const Report& newRep,
            const DiffOptions& opts)
{
    DiffResult result;

    auto fp_old = oldRep.meta.find("config_fingerprint");
    auto fp_new = newRep.meta.find("config_fingerprint");
    if (fp_old != oldRep.meta.end() && fp_new != newRep.meta.end() &&
        fp_old->second != fp_new->second) {
        result.configMismatch = true;
    }

    // Flatten both sides into path -> value maps.
    std::map<std::string, FlatMetric> oldFlat, newFlat;
    for (const auto& r : oldRep.runs)
        for (auto& m : flattenRun(r))
            oldFlat[m.path] = m;
    for (const auto& r : newRep.runs)
        for (auto& m : flattenRun(r))
            newFlat[m.path] = m;

    auto resolveTol = [&](const std::string& path,
                          bool is_counter) -> Tolerance {
        Tolerance tol = classifyMetric(path, is_counter);
        if (tol.rel < 0.0)
            tol.rel = opts.defaultTol;
        for (const auto& [suffix, rel] : opts.tolOverrides) {
            if (endsWith(path, suffix) || leafOf(path) == suffix) {
                tol.rel = rel;
                // An explicit override on a noise-class metric means
                // the caller wants it gated after all.
                if (tol.direction == Direction::kInfo)
                    tol.direction = Direction::kExact;
                break;
            }
        }
        return tol;
    };

    for (const auto& [path, oldM] : oldFlat) {
        DiffEntry e;
        e.path = path;
        e.oldValue = oldM.value;
        e.isCounter = oldM.isCounter;
        e.tol = resolveTol(path, oldM.isCounter);

        auto it = newFlat.find(path);
        if (it == newFlat.end()) {
            e.verdict = e.tol.direction == Direction::kInfo
                            ? Verdict::kInfo
                            : Verdict::kMissing;
            if (e.verdict == Verdict::kMissing)
                result.regressions++;
            result.entries.push_back(std::move(e));
            continue;
        }
        e.newValue = it->second.value;
        double denom = std::max(std::abs(e.oldValue), 1e-9);
        e.relDelta = (e.newValue - e.oldValue) / denom;

        bool within = std::abs(e.relDelta) <= e.tol.rel + 1e-12;
        switch (e.tol.direction) {
        case Direction::kInfo:
            e.verdict = within ? Verdict::kOk : Verdict::kInfo;
            if (!within)
                result.infoChanges++;
            break;
        case Direction::kExact:
            e.verdict = within ? Verdict::kOk : Verdict::kRegression;
            break;
        case Direction::kLowerBetter:
            e.verdict = e.relDelta > e.tol.rel
                            ? Verdict::kRegression
                            : (e.relDelta < -e.tol.rel ? Verdict::kImproved
                                                       : Verdict::kOk);
            break;
        case Direction::kHigherBetter:
            e.verdict = e.relDelta < -e.tol.rel
                            ? Verdict::kRegression
                            : (e.relDelta > e.tol.rel ? Verdict::kImproved
                                                      : Verdict::kOk);
            break;
        }
        if (e.verdict == Verdict::kRegression)
            result.regressions++;
        if (e.verdict == Verdict::kImproved)
            result.improvements++;
        if (e.verdict != Verdict::kOk || opts.keepUnchanged)
            result.entries.push_back(std::move(e));
    }

    for (const auto& [path, newM] : newFlat) {
        if (oldFlat.count(path) > 0)
            continue;
        DiffEntry e;
        e.path = path;
        e.newValue = newM.value;
        e.isCounter = newM.isCounter;
        e.tol = resolveTol(path, newM.isCounter);
        e.verdict = Verdict::kNew;
        result.entries.push_back(std::move(e));
    }

    std::stable_sort(result.entries.begin(), result.entries.end(),
                     [](const DiffEntry& a, const DiffEntry& b) {
                         if (verdictRank(a.verdict) !=
                             verdictRank(b.verdict))
                             return verdictRank(a.verdict) <
                                    verdictRank(b.verdict);
                         return std::abs(a.relDelta) > std::abs(b.relDelta);
                     });
    return result;
}

std::string
formatDiff(const DiffResult& result, size_t maxRows)
{
    std::ostringstream oss;
    if (result.configMismatch) {
        oss << "WARNING: config fingerprints differ between the reports; "
               "the runs measured different machines\n";
    }
    if (result.entries.empty()) {
        oss << "no metric changes\n";
        return oss.str();
    }
    size_t width = 24;
    size_t rows = maxRows > 0 ? std::min(maxRows, result.entries.size())
                              : result.entries.size();
    for (size_t i = 0; i < rows; ++i)
        width = std::max(width, result.entries[i].path.size());

    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-*s %14s %14s %9s %7s  %s\n",
                  static_cast<int>(width), "metric", "old", "new",
                  "delta", "tol", "verdict");
    oss << buf;
    auto cell = [](double v, bool is_counter) {
        char out[32];
        if (is_counter)
            std::snprintf(out, sizeof(out), "%lld",
                          static_cast<long long>(v));
        else
            std::snprintf(out, sizeof(out), "%.6g", v);
        return std::string(out);
    };
    for (size_t i = 0; i < rows; ++i) {
        const DiffEntry& e = result.entries[i];
        std::snprintf(buf, sizeof(buf),
                      "%-*s %14s %14s %+8.1f%% %6.0f%%  %s\n",
                      static_cast<int>(width), e.path.c_str(),
                      cell(e.oldValue, e.isCounter).c_str(),
                      cell(e.newValue, e.isCounter).c_str(),
                      100.0 * e.relDelta, 100.0 * e.tol.rel,
                      verdictName(e.verdict));
        oss << buf;
    }
    if (rows < result.entries.size()) {
        oss << "  ... " << (result.entries.size() - rows)
            << " more rows\n";
    }
    std::snprintf(buf, sizeof(buf),
                  "%d regression(s), %d improvement(s), %d informational "
                  "change(s)\n",
                  result.regressions, result.improvements,
                  result.infoChanges);
    oss << buf;
    return oss.str();
}

} // namespace phloem::metrics
