/**
 * @file
 * Metric-by-metric comparison of two reports — the perf-regression gate.
 *
 * Comparing "this PR's bench run" against a committed baseline requires
 * per-metric judgement, not one global threshold: simulated cycles are
 * deterministic (tight tolerance), wall-clock is host-noisy (loose,
 * lower-is-better), functional counters are exact (any drift is a
 * correctness smell), and scheduling artifacts (block counts, occupancy
 * high-water marks, batch shapes) vary run to run and must never gate.
 * The default policy encodes those classes by metric name; callers can
 * override any metric's tolerance.
 */

#ifndef PHLOEM_METRICS_DIFF_H
#define PHLOEM_METRICS_DIFF_H

#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace phloem::metrics {

/** How a metric's delta is judged. */
enum class Direction {
    kExact,        ///< any relative deviation beyond tol regresses
    kLowerBetter,  ///< regression only when the new value is higher
    kHigherBetter, ///< regression only when the new value is lower
    kInfo,         ///< reported, never a regression (scheduling noise)
};

struct Tolerance
{
    Direction direction = Direction::kExact;
    /** Relative tolerance: |delta| / max(|old|, eps) must stay within. */
    double rel = 0.0;
};

enum class Verdict { kOk, kImproved, kRegression, kInfo, kMissing, kNew };

/** One compared metric. */
struct DiffEntry
{
    /** "run-name/family[label]/metric" path, stable across runs. */
    std::string path;
    double oldValue = 0.0;
    double newValue = 0.0;
    double relDelta = 0.0;  ///< (new - old) / max(|old|, eps)
    bool isCounter = false; ///< render as integer, not %g
    Tolerance tol;
    Verdict verdict = Verdict::kOk;
};

struct DiffOptions
{
    /**
     * Per-metric overrides, matched by suffix against the entry path
     * (so "cycles" matches every run's "cycles" and "stage[...]/cycles").
     * Overrides replace the built-in class's tolerance but keep its
     * direction unless the metric is unknown (then kExact).
     */
    std::map<std::string, double> tolOverrides;
    /** Tolerance for metrics no built-in class matches. */
    double defaultTol = 0.25;
    /** Include unchanged metrics in `entries` (the diff table). */
    bool keepUnchanged = false;
};

struct DiffResult
{
    std::vector<DiffEntry> entries;  ///< regressions first
    int regressions = 0;
    int improvements = 0;
    int infoChanges = 0;
    /** Baseline/new config fingerprints differ: deltas are suspect. */
    bool configMismatch = false;
};

/** The built-in tolerance class for a metric path (see diff.cc table). */
Tolerance classifyMetric(const std::string& path, bool isCounter);

/** Compare `oldRep` (baseline) against `newRep`. */
DiffResult diffReports(const Report& oldRep, const Report& newRep,
                       const DiffOptions& opts = DiffOptions{});

/** Render the diff as an aligned text table (for logs / CI annotation). */
std::string formatDiff(const DiffResult& result, size_t maxRows = 0);

} // namespace phloem::metrics

#endif // PHLOEM_METRICS_DIFF_H
