#include "metrics/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace phloem::metrics {

namespace {

const Json kNullJson{};

void
appendUtf8(std::string& out, uint32_t cp)
{
    if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
}

class Parser
{
  public:
    Parser(const std::string& text, std::string* err)
        : text_(text), err_(err)
    {
    }

    bool
    parseDocument(Json* out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after JSON document");
        return true;
    }

  private:
    const std::string& text_;
    std::string* err_;
    size_t pos_ = 0;

    bool
    fail(const std::string& msg)
    {
        if (err_ != nullptr) {
            *err_ = msg + " at byte " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    bool
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        pos_++;
        return true;
    }

    bool
    literal(const char* word, Json v, Json* out)
    {
        size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(std::string("invalid literal (expected ") + word +
                        ")");
        pos_ += n;
        *out = std::move(v);
        return true;
    }

    bool
    parseValue(Json* out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json::str(std::move(s));
            return true;
        }
        case 't':
            return literal("true", Json::boolean(true), out);
        case 'f':
            return literal("false", Json::boolean(false), out);
        case 'n':
            return literal("null", Json::null(), out);
        default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Json* out)
    {
        pos_++;  // '{'
        Json obj = Json::object();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            *out = std::move(obj);
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            Json v;
            if (!parseValue(&v))
                return false;
            obj.set(key, std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == '}') {
                pos_++;
                *out = std::move(obj);
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Json* out)
    {
        pos_++;  // '['
        Json arr = Json::array();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            *out = std::move(arr);
            return true;
        }
        for (;;) {
            skipWs();
            Json v;
            if (!parseValue(&v))
                return false;
            arr.push(std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == ']') {
                pos_++;
                *out = std::move(arr);
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    hex4(uint32_t* out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + static_cast<size_t>(i)];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        pos_ += 4;
        *out = v;
        return true;
    }

    bool
    parseString(std::string* out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        pos_++;
        out->clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                pos_++;
                return true;
            }
            if (c == '\\') {
                pos_++;
                if (pos_ >= text_.size())
                    return fail("truncated escape");
                char e = text_[pos_++];
                switch (e) {
                case '"': out->push_back('"'); break;
                case '\\': out->push_back('\\'); break;
                case '/': out->push_back('/'); break;
                case 'b': out->push_back('\b'); break;
                case 'f': out->push_back('\f'); break;
                case 'n': out->push_back('\n'); break;
                case 'r': out->push_back('\r'); break;
                case 't': out->push_back('\t'); break;
                case 'u': {
                    uint32_t cp = 0;
                    if (!hex4(&cp))
                        return false;
                    // Surrogate pair: combine with the low half.
                    if (cp >= 0xD800 && cp <= 0xDBFF &&
                        pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                        text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        uint32_t lo = 0;
                        if (!hex4(&lo))
                            return false;
                        if (lo >= 0xDC00 && lo <= 0xDFFF) {
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        } else {
                            return fail("unpaired surrogate");
                        }
                    }
                    appendUtf8(*out, cp);
                    break;
                }
                default:
                    return fail("unknown escape");
                }
                continue;
            }
            out->push_back(c);
            pos_++;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Json* out)
    {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            pos_++;
        bool is_double = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                pos_++;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = true;
                pos_++;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("invalid value");
        std::string num = text_.substr(start, pos_ - start);
        errno = 0;
        char* end = nullptr;
        if (!is_double) {
            long long v = std::strtoll(num.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') {
                *out = Json::integer(static_cast<int64_t>(v));
                return true;
            }
            // Overflowed int64: fall through to double.
        }
        errno = 0;
        double d = std::strtod(num.c_str(), &end);
        if (errno != 0 || end == nullptr || *end != '\0') {
            pos_ = start;
            return fail("malformed number");
        }
        *out = Json::number(d);
        return true;
    }
};

} // namespace

Json
Json::boolean(bool b)
{
    Json j;
    j.kind_ = Kind::kBool;
    j.b_ = b;
    return j;
}

Json
Json::integer(int64_t v)
{
    Json j;
    j.kind_ = Kind::kInt;
    j.i_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::kDouble;
    j.d_ = v;
    return j;
}

Json
Json::str(std::string s)
{
    Json j;
    j.kind_ = Kind::kString;
    j.s_ = std::move(s);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::kObject;
    return j;
}

int64_t
Json::asInt() const
{
    if (kind_ == Kind::kInt)
        return i_;
    if (kind_ == Kind::kDouble)
        return static_cast<int64_t>(d_);
    return 0;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::kDouble)
        return d_;
    if (kind_ == Kind::kInt)
        return static_cast<double>(i_);
    return 0.0;
}

const Json&
Json::at(const std::string& key) const
{
    if (kind_ == Kind::kObject) {
        auto it = obj_.find(key);
        if (it != obj_.end())
            return it->second;
    }
    return kNullJson;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                // UTF-8 bytes pass through untouched.
                out.push_back(static_cast<char>(c));
            }
        }
    }
    return out;
}

void
Json::dumpTo(std::string& out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent < 0)
            return;
        out.push_back('\n');
        out.append(static_cast<size_t>(indent + 2 * d), ' ');
    };

    switch (kind_) {
    case Kind::kNull:
        out += "null";
        break;
    case Kind::kBool:
        out += b_ ? "true" : "false";
        break;
    case Kind::kInt:
        out += std::to_string(i_);
        break;
    case Kind::kDouble: {
        if (std::isnan(d_) || std::isinf(d_)) {
            // JSON has no NaN/Inf; null is the conventional stand-in.
            out += "null";
            break;
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", d_);
        out += buf;
        break;
    }
    case Kind::kString:
        out.push_back('"');
        out += jsonEscape(s_);
        out.push_back('"');
        break;
    case Kind::kArray: {
        out.push_back('[');
        bool first = true;
        for (const auto& v : arr_) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out.push_back(']');
        break;
    }
    case Kind::kObject: {
        out.push_back('{');
        bool first = true;
        for (const auto& [k, v] : obj_) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            out.push_back('"');
            out += jsonEscape(k);
            out += indent < 0 ? "\":" : "\": ";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out.push_back('}');
        break;
    }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

bool
Json::parse(const std::string& text, Json* out, std::string* err)
{
    Parser p(text, err);
    return p.parseDocument(out);
}

} // namespace phloem::metrics
