/**
 * @file
 * Minimal JSON value, parser, and serializer for the metrics subsystem.
 *
 * The repo previously had three hand-rolled JSON emitters (bench_native,
 * the tracer, a test-local parser); the report reader/writer needs one
 * implementation that both sides share so escaping bugs cannot hide in a
 * producer the consumer never exercises. Scope is deliberately small:
 * the six JSON types, UTF-8 pass-through, \uXXXX escapes on input,
 * and deterministic (sorted-key) output so reports diff cleanly as text.
 */

#ifndef PHLOEM_METRICS_JSON_H
#define PHLOEM_METRICS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace phloem::metrics {

class Json;
using JsonPtr = std::shared_ptr<Json>;

/**
 * One JSON value. Numbers keep the int64/double distinction so uint
 * counters up to 2^63-1 round-trip exactly (doubles lose integers above
 * 2^53, which real instruction counters exceed).
 */
class Json
{
  public:
    enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

    Json() = default;
    static Json null() { return Json{}; }
    static Json boolean(bool b);
    static Json integer(int64_t v);
    static Json number(double v);
    static Json str(std::string s);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::kNull; }
    bool isNumber() const
    {
        return kind_ == Kind::kInt || kind_ == Kind::kDouble;
    }

    bool asBool() const { return b_; }
    int64_t asInt() const;
    double asDouble() const;
    const std::string& asString() const { return s_; }

    std::vector<Json>& items() { return arr_; }
    const std::vector<Json>& items() const { return arr_; }
    std::map<std::string, Json>& fields() { return obj_; }
    const std::map<std::string, Json>& fields() const { return obj_; }

    /** Object member or null-kind sentinel when absent / not an object. */
    const Json& at(const std::string& key) const;
    bool has(const std::string& key) const
    {
        return kind_ == Kind::kObject && obj_.count(key) > 0;
    }

    void push(Json v) { arr_.push_back(std::move(v)); }
    void set(const std::string& key, Json v) { obj_[key] = std::move(v); }

    /** Serialize; indent >= 0 pretty-prints with that base indent. */
    std::string dump(int indent = -1) const;

    /**
     * Parse one JSON document (trailing whitespace allowed, trailing
     * garbage rejected). Returns false and fills *err with a
     * position-annotated message on malformed input.
     */
    static bool parse(const std::string& text, Json* out, std::string* err);

  private:
    Kind kind_ = Kind::kNull;
    bool b_ = false;
    int64_t i_ = 0;
    double d_ = 0.0;
    std::string s_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;

    void dumpTo(std::string& out, int indent, int depth) const;
};

/** JSON string escaping (quotes, backslashes, control chars; UTF-8 raw). */
std::string jsonEscape(const std::string& s);

} // namespace phloem::metrics

#endif // PHLOEM_METRICS_JSON_H
