#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "base/logging.h"
#include "metrics/json.h"

namespace phloem::metrics {

// ---------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------

Distribution::Distribution(std::vector<double> bucket_edges)
    : edges(std::move(bucket_edges))
{
    phloem_assert(std::is_sorted(edges.begin(), edges.end()),
                  "distribution edges must be sorted");
    counts.assign(edges.size() + 1, 0);
}

size_t
Distribution::bucketOf(double v) const
{
    // First edge strictly greater than v; a value exactly on an edge
    // belongs to the higher (lower-inclusive) bucket.
    size_t i = 0;
    while (i < edges.size() && v >= edges[i])
        i++;
    return i;
}

void
Distribution::observe(double v, uint64_t times)
{
    if (counts.size() != edges.size() + 1)
        counts.assign(edges.size() + 1, 0);
    counts[bucketOf(v)] += times;
    total += times;
    sum += v * static_cast<double>(times);
}

double
Distribution::quantile(double q) const
{
    if (total == 0 || counts.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the wanted observation, 1-based and clamped into
    // [1, total] so q=0 and q=1 hit the first/last observation.
    double rank = q * static_cast<double>(total);
    if (rank < 1.0)
        rank = 1.0;
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        double before = static_cast<double>(cum);
        cum += counts[i];
        if (rank > static_cast<double>(cum))
            continue;
        // Bucket i spans [lo, hi): underflow starts at 0 (nonnegative
        // data), overflow saturates at the last edge.
        if (i == counts.size() - 1 && !edges.empty())
            return edges.back();
        double lo = i == 0 ? 0.0 : edges[i - 1];
        double hi = edges.empty() ? lo : edges[i];
        double frac =
            (rank - before) / static_cast<double>(counts[i]);
        return lo + (hi - lo) * frac;
    }
    return edges.empty() ? 0.0 : edges.back();
}

std::vector<double>
logSpacedEdges(double lo, double hi, int per_decade)
{
    phloem_assert(lo > 0.0 && hi > lo && per_decade >= 1,
                  "logSpacedEdges needs 0 < lo < hi, per_decade >= 1");
    // Each edge from its integer step index (not repeated
    // multiplication) so decade boundaries stay exact and the range is
    // guaranteed to be covered.
    std::vector<double> edges;
    for (int i = 0;; ++i) {
        double e = lo * std::pow(10.0, static_cast<double>(i) /
                                           static_cast<double>(per_decade));
        edges.push_back(e);
        if (e >= hi)
            break;
    }
    // Floating-point drift must never produce equal adjacent edges.
    phloem_assert(std::adjacent_find(edges.begin(), edges.end(),
                                     [](double a, double b) {
                                         return a >= b;
                                     }) == edges.end(),
                  "log edges not strictly increasing");
    return edges;
}

void
Distribution::merge(const Distribution& other)
{
    if (edges.empty() && total == 0) {
        *this = other;
        return;
    }
    phloem_assert(edges == other.edges,
                  "cannot merge distributions with different edges");
    if (counts.size() != edges.size() + 1)
        counts.assign(edges.size() + 1, 0);
    for (size_t i = 0; i < other.counts.size() && i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    sum += other.sum;
}

Distribution&
MetricSet::dist(const std::string& name, const std::vector<double>& edges)
{
    auto it = dists.find(name);
    if (it == dists.end())
        it = dists.emplace(name, Distribution{edges}).first;
    return it->second;
}

void
MetricSet::merge(const MetricSet& other)
{
    for (const auto& [k, v] : other.counters)
        counters[k] += v;
    for (const auto& [k, v] : other.gauges)
        gauges[k] = v;
    for (const auto& [k, v] : other.dists)
        dists[k].merge(v);
}

MetricSet&
Family::at(const std::map<std::string, std::string>& labels)
{
    for (auto& p : points)
        if (p.labels == labels)
            return p.metrics;
    points.push_back(FamilyPoint{labels, {}});
    return points.back().metrics;
}

const FamilyPoint*
Family::find(const std::map<std::string, std::string>& labels) const
{
    for (const auto& p : points)
        if (p.labels == labels)
            return &p;
    return nullptr;
}

void
Family::merge(const Family& other)
{
    for (const auto& p : other.points)
        at(p.labels).merge(p.metrics);
}

Run&
Report::run(const std::string& name,
            const std::map<std::string, std::string>& labels)
{
    for (auto& r : runs)
        if (r.name == name && r.labels == labels)
            return r;
    runs.push_back(Run{name, labels, {}, {}});
    return runs.back();
}

const Run*
Report::findRun(const std::string& name,
                const std::map<std::string, std::string>& labels) const
{
    for (const auto& r : runs)
        if (r.name == name && r.labels == labels)
            return &r;
    return nullptr;
}

void
Report::merge(const Report& other)
{
    for (const auto& [k, v] : other.meta)
        meta.emplace(k, v);  // existing keys win: the aggregate's meta
    for (const auto& r : other.runs) {
        Run& mine = run(r.name, r.labels);
        mine.top.merge(r.top);
        for (const auto& [fname, fam] : r.families)
            mine.families[fname].merge(fam);
    }
}

// ---------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------

namespace {

Json
stringMapToJson(const std::map<std::string, std::string>& m)
{
    Json obj = Json::object();
    for (const auto& [k, v] : m)
        obj.set(k, Json::str(v));
    return obj;
}

Json
metricSetToJson(const MetricSet& ms)
{
    Json obj = Json::object();
    if (!ms.counters.empty()) {
        Json c = Json::object();
        for (const auto& [k, v] : ms.counters)
            c.set(k, Json::integer(static_cast<int64_t>(v)));
        obj.set("counters", std::move(c));
    }
    if (!ms.gauges.empty()) {
        Json g = Json::object();
        for (const auto& [k, v] : ms.gauges)
            g.set(k, Json::number(v));
        obj.set("gauges", std::move(g));
    }
    if (!ms.dists.empty()) {
        Json d = Json::object();
        for (const auto& [k, v] : ms.dists) {
            Json h = Json::object();
            Json edges = Json::array();
            for (double e : v.edges)
                edges.push(Json::number(e));
            Json counts = Json::array();
            for (uint64_t c : v.counts)
                counts.push(Json::integer(static_cast<int64_t>(c)));
            h.set("edges", std::move(edges));
            h.set("counts", std::move(counts));
            h.set("total", Json::integer(static_cast<int64_t>(v.total)));
            h.set("sum", Json::number(v.sum));
            d.set(k, std::move(h));
        }
        obj.set("dists", std::move(d));
    }
    return obj;
}

Json
runToJson(const Run& r)
{
    Json obj = Json::object();
    obj.set("name", Json::str(r.name));
    if (!r.labels.empty())
        obj.set("labels", stringMapToJson(r.labels));
    obj.set("metrics", metricSetToJson(r.top));
    if (!r.families.empty()) {
        Json fams = Json::object();
        for (const auto& [fname, fam] : r.families) {
            Json pts = Json::array();
            for (const auto& p : fam.points) {
                Json pj = Json::object();
                pj.set("labels", stringMapToJson(p.labels));
                pj.set("metrics", metricSetToJson(p.metrics));
                pts.push(std::move(pj));
            }
            fams.set(fname, std::move(pts));
        }
        obj.set("families", std::move(fams));
    }
    return obj;
}

bool
stringMapFromJson(const Json& j, std::map<std::string, std::string>* out,
                  std::string* err)
{
    if (j.isNull())
        return true;
    if (j.kind() != Json::Kind::kObject) {
        *err = "expected object of strings";
        return false;
    }
    for (const auto& [k, v] : j.fields()) {
        if (v.kind() != Json::Kind::kString) {
            *err = "expected string value for key '" + k + "'";
            return false;
        }
        out->emplace(k, v.asString());
    }
    return true;
}

bool
metricSetFromJson(const Json& j, MetricSet* out, std::string* err)
{
    for (const auto& [k, v] : j.at("counters").fields()) {
        if (!v.isNumber()) {
            *err = "counter '" + k + "' is not a number";
            return false;
        }
        out->counters[k] = static_cast<uint64_t>(v.asInt());
    }
    for (const auto& [k, v] : j.at("gauges").fields()) {
        // NaN/Inf serialize as null (JSON has no spelling for them).
        if (!v.isNumber() && !v.isNull()) {
            *err = "gauge '" + k + "' is not a number";
            return false;
        }
        out->gauges[k] = v.asDouble();
    }
    for (const auto& [k, v] : j.at("dists").fields()) {
        Distribution d;
        for (const auto& e : v.at("edges").items())
            d.edges.push_back(e.asDouble());
        for (const auto& c : v.at("counts").items())
            d.counts.push_back(static_cast<uint64_t>(c.asInt()));
        if (d.counts.size() != d.edges.size() + 1) {
            *err = "distribution '" + k + "' has " +
                   std::to_string(d.counts.size()) + " counts for " +
                   std::to_string(d.edges.size()) + " edges";
            return false;
        }
        d.total = static_cast<uint64_t>(v.at("total").asInt());
        d.sum = v.at("sum").asDouble();
        out->dists[k] = std::move(d);
    }
    return true;
}

} // namespace

std::string
toJson(const Report& report)
{
    Json root = Json::object();
    root.set("schema", Json::str(Report::kSchemaName));
    root.set("version", Json::integer(Report::kSchemaVersion));
    root.set("meta", stringMapToJson(report.meta));
    Json runs = Json::array();
    for (const auto& r : report.runs)
        runs.push(runToJson(r));
    root.set("runs", std::move(runs));
    return root.dump(0) + "\n";
}

bool
parseReport(const std::string& text, Report* out, std::string* err)
{
    std::string dummy;
    if (err == nullptr)
        err = &dummy;
    Json root;
    if (!Json::parse(text, &root, err)) {
        *err = "malformed JSON: " + *err;
        return false;
    }
    if (root.at("schema").asString() != Report::kSchemaName) {
        *err = "not a " + std::string(Report::kSchemaName) +
               " document (schema = '" + root.at("schema").asString() +
               "')";
        return false;
    }
    int64_t version = root.at("version").asInt();
    if (version != Report::kSchemaVersion) {
        *err = "unsupported report schema version " +
               std::to_string(version) + " (this reader supports version " +
               std::to_string(Report::kSchemaVersion) +
               "; regenerate the report or upgrade phloem-report)";
        return false;
    }

    Report rep;
    if (!stringMapFromJson(root.at("meta"), &rep.meta, err))
        return false;
    for (const auto& rj : root.at("runs").items()) {
        Run r;
        r.name = rj.at("name").asString();
        if (!stringMapFromJson(rj.at("labels"), &r.labels, err))
            return false;
        if (!metricSetFromJson(rj.at("metrics"), &r.top, err))
            return false;
        for (const auto& [fname, pts] : rj.at("families").fields()) {
            Family fam;
            for (const auto& pj : pts.items()) {
                FamilyPoint p;
                if (!stringMapFromJson(pj.at("labels"), &p.labels, err))
                    return false;
                if (!metricSetFromJson(pj.at("metrics"), &p.metrics, err))
                    return false;
                fam.points.push_back(std::move(p));
            }
            r.families[fname] = std::move(fam);
        }
        rep.runs.push_back(std::move(r));
    }
    *out = std::move(rep);
    return true;
}

bool
writeFile(const Report& report, const std::string& path, std::string* err)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (err != nullptr)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    out << toJson(report);
    out.flush();
    if (!out) {
        if (err != nullptr)
            *err = "write failed for " + path;
        return false;
    }
    return true;
}

bool
readFile(const std::string& path, Report* out, std::string* err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err != nullptr)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!parseReport(buf.str(), out, err)) {
        if (err != nullptr)
            *err = path + ": " + *err;
        return false;
    }
    return true;
}

} // namespace phloem::metrics
