/**
 * @file
 * The unified metrics model every Phloem producer reports through.
 *
 * The paper's whole evaluation is aggregate metrics — Fig. 9 speedups,
 * Fig. 10 cycle buckets, Fig. 11 energy, Table V queue/RA activity —
 * yet the repo historically had three disjoint stats structs
 * (sim::RunStats, rt::NativeStats, rt::QueueStats) and ad-hoc text or
 * hand-rolled JSON per harness. This model gives them one vocabulary:
 *
 *  - counter:      monotonically accumulated event count (uint64)
 *  - gauge:        a measured value (double): cycles, wall-ns, mJ, x
 *  - distribution: histogram over fixed bucket edges, plus count/sum
 *  - family:       metric sets keyed by a label (per stage / queue /
 *                  RA / core), so per-entity data stays addressable
 *                  instead of being flattened into name suffixes
 *
 * A Report is a set of named runs (one per backend/variant execution)
 * plus string metadata (git sha, config fingerprint), serialized as
 * schema-versioned JSON via toJson()/writeFile() and read back with
 * parseReport()/readFile(). The reader rejects unknown schema versions
 * so downstream tooling (phloem-report, the CI perf gate) never
 * misinterprets a report written by a different vocabulary.
 */

#ifndef PHLOEM_METRICS_METRICS_H
#define PHLOEM_METRICS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace phloem::metrics {

/**
 * Histogram over fixed, strictly increasing bucket edges.
 *
 * Bucket semantics (half-open, lower-inclusive): with edges
 * e0 < e1 < ... < e(n-1) there are n+1 counts:
 *   counts[0]   : v <  e0
 *   counts[i]   : e(i-1) <= v < e(i)
 *   counts[n]   : v >= e(n-1)   (the overflow bucket)
 * A value exactly on an edge therefore lands in the *higher* bucket.
 */
struct Distribution
{
    std::vector<double> edges;
    std::vector<uint64_t> counts;  ///< edges.size() + 1 entries
    uint64_t total = 0;            ///< number of observations
    double sum = 0.0;              ///< sum of observed values

    Distribution() = default;
    explicit Distribution(std::vector<double> bucket_edges);

    void observe(double v, uint64_t times = 1);
    /** Index of the bucket `v` falls into (see semantics above). */
    size_t bucketOf(double v) const;
    double mean() const { return total > 0 ? sum / static_cast<double>(total) : 0.0; }

    /**
     * Estimated q-quantile (q in [0, 1]) of the observed values,
     * reconstructed from the histogram: find the bucket holding the
     * q*total-th observation and interpolate linearly inside it. Made
     * for nonnegative data (service latencies): the underflow bucket
     * interpolates over [0, edges[0]). Values in the overflow bucket
     * are only known to be >= the last edge, so the estimate saturates
     * there — pick edges that cover the expected range (logSpacedEdges).
     * Returns 0 when no observations were made. Accuracy is bounded by
     * bucket width; log-spaced edges keep the relative error constant.
     */
    double quantile(double q) const;

    /** Element-wise accumulate; edges must match exactly. */
    void merge(const Distribution& other);
};

/**
 * Logarithmically spaced bucket edges from `lo` to at least `hi`
 * (both > 0), with `per_decade` edges per power of ten — the standard
 * edge vector for latency distributions, where a 5 us and a 5 ms
 * request must both land in proportionally sized buckets. The service
 * families use logSpacedEdges(1e3, 1e10, 4): 1 us .. 10 s in wall-ns
 * with ~78% bucket-width steps.
 */
std::vector<double> logSpacedEdges(double lo, double hi, int per_decade);

/** One labeled point: the counters/gauges/distributions of one entity. */
struct MetricSet
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Distribution> dists;

    void addCounter(const std::string& name, uint64_t v)
    {
        counters[name] += v;
    }
    void setGauge(const std::string& name, double v) { gauges[name] = v; }
    Distribution& dist(const std::string& name,
                       const std::vector<double>& edges);

    bool empty() const
    {
        return counters.empty() && gauges.empty() && dists.empty();
    }

    /**
     * Accumulate another set: counters add, gauges overwrite (last
     * writer wins), distributions merge bucket-wise.
     */
    void merge(const MetricSet& other);
};

/** One member of a labeled family (e.g. the metrics of stage "walk@2"). */
struct FamilyPoint
{
    std::map<std::string, std::string> labels;
    MetricSet metrics;
};

/**
 * A family of metric sets keyed by labels: family "stage" holds one
 * point per stage thread, "queue" one per queue, "ra" one per
 * accelerator, "lane" one per trace lane. Merging the same label set
 * merges the underlying metrics (how per-replica stages aggregate).
 */
struct Family
{
    std::vector<FamilyPoint> points;

    /** Find-or-create the point with exactly these labels. */
    MetricSet& at(const std::map<std::string, std::string>& labels);
    const FamilyPoint* find(
        const std::map<std::string, std::string>& labels) const;

    /** Merge every point of `other` into this family. */
    void merge(const Family& other);
};

/** One execution's metrics: a top-level set plus labeled families. */
struct Run
{
    std::string name;
    std::map<std::string, std::string> labels;
    MetricSet top;
    std::map<std::string, Family> families;
};

/** A full report: schema id + version, metadata, runs. */
struct Report
{
    static constexpr const char* kSchemaName = "phloem-report";
    static constexpr int kSchemaVersion = 1;

    std::map<std::string, std::string> meta;
    std::vector<Run> runs;

    /** Find-or-create a run by name + labels. */
    Run& run(const std::string& name,
             const std::map<std::string, std::string>& labels = {});
    const Run* findRun(const std::string& name,
                       const std::map<std::string, std::string>& labels =
                           {}) const;

    /** Append (merge) another report's runs and meta into this one. */
    void merge(const Report& other);
};

/** Serialize a report as schema-versioned, pretty-printed JSON. */
std::string toJson(const Report& report);

/**
 * Parse a report. Fails (with a clear *err naming the found and the
 * supported version) on malformed JSON, a wrong "schema" id, or an
 * unknown "version".
 */
bool parseReport(const std::string& text, Report* out, std::string* err);

/** toJson() to a file; false (and *err) on I/O failure. */
bool writeFile(const Report& report, const std::string& path,
               std::string* err = nullptr);

/** Read + parse a report file. */
bool readFile(const std::string& path, Report* out, std::string* err);

} // namespace phloem::metrics

#endif // PHLOEM_METRICS_METRICS_H
