#include "metrics/rolling.h"

#include "base/logging.h"

namespace phloem::metrics {

std::vector<double>
RollingWindow::defaultEdges()
{
    return logSpacedEdges(1e3, 1e10, 4);
}

RollingWindow::RollingWindow(int window_sec, std::vector<double> edges)
    : windowSec_(window_sec), edges_(std::move(edges))
{
    phloem_assert(windowSec_ > 0, "rolling window must be >= 1 s");
    ring_.resize(static_cast<size_t>(windowSec_));
}

void
RollingWindow::observe(const std::string& kind, double latencyNs,
                       uint64_t nowNs)
{
    uint64_t sec = nowNs / 1'000'000'000ull;
    std::lock_guard<std::mutex> g(mu_);
    Bucket& b = ring_[static_cast<size_t>(sec % ring_.size())];
    if (b.epochSec != sec) {
        // This slot last held a bucket from >= one lap ago: recycle it.
        b.epochSec = sec;
        b.byKind.clear();
    }
    auto it = b.byKind.find(kind);
    if (it == b.byKind.end())
        it = b.byKind.emplace(kind, Distribution(edges_)).first;
    it->second.observe(latencyNs);
}

RollingWindow::Snapshot
RollingWindow::snapshot(uint64_t nowNs) const
{
    uint64_t sec = nowNs / 1'000'000'000ull;
    uint64_t window = static_cast<uint64_t>(windowSec_);
    Snapshot out;
    out.windowSec = windowSec_;
    out.total = Distribution(edges_);
    std::lock_guard<std::mutex> g(mu_);
    for (const Bucket& b : ring_) {
        // Live iff its second lies in (sec - window, sec]; a bucket an
        // observe() has not recycled yet fails this and is skipped.
        if (b.epochSec == ~0ull || b.epochSec > sec ||
            b.epochSec + window <= sec)
            continue;
        for (const auto& [kind, dist] : b.byKind) {
            auto it = out.byKind.find(kind);
            if (it == out.byKind.end())
                it = out.byKind.emplace(kind, Distribution(edges_)).first;
            it->second.merge(dist);
            out.total.merge(dist);
        }
    }
    return out;
}

} // namespace phloem::metrics
