/**
 * @file
 * Rolling-window latency aggregation for live telemetry.
 *
 * phloemd's `stats` verb must answer "what is the p95 *right now*", not
 * since process start: a daemon that has served a week of traffic would
 * otherwise bury a fresh latency regression under 10^9 old samples.
 * The window is a ring of one-second buckets keyed by absolute epoch
 * second. observe() drops a sample into bucket `sec % N`, first
 * clearing it if it still holds data from a lap ago; snapshot() merges
 * exactly the buckets whose epoch second lies in (now - N, now], so
 * stale laps never leak in and an idle window reads as empty.
 *
 * Samples are keyed by a small string kind (the cache verdict: "hit",
 * "miss", "bypass") so the snapshot can report per-verdict
 * distributions — a cache regression shows up as the miss lane growing,
 * not as an unexplained blended p95 shift.
 *
 * Time is injected (nowNs) rather than read from a clock: the server
 * passes a monotonic now, tests pass synthetic timestamps to exercise
 * rotation at window edges deterministically.
 *
 * Thread safety: all methods take an internal mutex; observe() is a
 * handful of histogram increments and snapshot() copies ~N*kinds small
 * histograms, so the critical sections are microseconds. This is the
 * coherence fix the stats verb needs — readers see a consistent window,
 * never torn doubles.
 */

#ifndef PHLOEM_METRICS_ROLLING_H
#define PHLOEM_METRICS_ROLLING_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "metrics/metrics.h"

namespace phloem::metrics {

class RollingWindow
{
  public:
    /** Window length in seconds (ring of one 1 s bucket each). */
    explicit RollingWindow(int window_sec,
                           std::vector<double> edges = defaultEdges());

    RollingWindow(const RollingWindow&) = delete;
    RollingWindow& operator=(const RollingWindow&) = delete;

    /** Record one sample of `kind` ("hit"/"miss"/...) at time nowNs. */
    void observe(const std::string& kind, double latencyNs,
                 uint64_t nowNs);

    struct Snapshot
    {
        /** Per-kind distributions over the live window. */
        std::map<std::string, Distribution> byKind;
        /** All kinds merged. */
        Distribution total;
        /** Window length the snapshot covers (seconds). */
        int windowSec = 0;
    };

    /** Merged view of the buckets still inside (nowNs - window, nowNs]. */
    Snapshot snapshot(uint64_t nowNs) const;

    int windowSec() const { return windowSec_; }

    /** The service latency edges: 1 us .. 10 s, 4 per decade. */
    static std::vector<double> defaultEdges();

  private:
    struct Bucket
    {
        /** Epoch second these counts belong to; ~0 = never used. */
        uint64_t epochSec = ~0ull;
        std::map<std::string, Distribution> byKind;
    };

    int windowSec_;
    std::vector<double> edges_;
    mutable std::mutex mu_;
    std::vector<Bucket> ring_;
};

} // namespace phloem::metrics

#endif // PHLOEM_METRICS_ROLLING_H
