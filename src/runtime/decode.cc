#include "runtime/decode.h"

#include "base/logging.h"
#include "ir/op.h"

namespace phloem::rt {

namespace {

/**
 * Is this raw instruction a plain scalar op (evalScalarOp-eligible)?
 * Queue, memory, barrier, halt, and kWork ops all have side effects or
 * special handling and stay out of the scalar fusion patterns.
 */
bool
isPlainScalar(const sim::Inst& inst)
{
    if (inst.kind != sim::Inst::Kind::kOp)
        return false;
    if (ir::usesQueue(inst.opcode) || ir::usesArray(inst.opcode))
        return false;
    switch (inst.opcode) {
      case ir::Opcode::kBarrier:
      case ir::Opcode::kHalt:
      case ir::Opcode::kWork:
        return false;
      default:
        return true;
    }
}

/** Decode one raw instruction standalone (no fusion, no relocation). */
DInst
decodeOne(const sim::Inst& inst)
{
    DInst d;
    d.raw = &inst;
    d.opcode = inst.opcode;
    d.dst = inst.dst;
    d.src0 = inst.src0;
    d.src1 = inst.src1;
    d.imm = inst.imm;
    d.arr = inst.arr;
    d.arr2 = inst.arr2;
    d.target = inst.target;
    d.handlerPc = inst.handlerPc;

    switch (inst.kind) {
      case sim::Inst::Kind::kBr:
        d.op = DOp::kBr;
        return d;
      case sim::Inst::Kind::kBrIf:
        d.op = DOp::kBrIf;
        return d;
      case sim::Inst::Kind::kBrIfNot:
        d.op = DOp::kBrIfNot;
        return d;
      case sim::Inst::Kind::kOp:
        break;
    }

    if (ir::usesQueue(inst.opcode)) {
        switch (inst.opcode) {
          case ir::Opcode::kEnq:
            d.op = DOp::kEnq;
            d.queueRel = inst.queue;
            return d;
          case ir::Opcode::kEnqCtrl:
            d.op = DOp::kEnqCtrl;
            d.queueRel = inst.queue;
            return d;
          case ir::Opcode::kEnqDist:
            // Target replica depends on the selector value; only the
            // per-replica base id can be resolved statically.
            d.op = DOp::kEnqDist;
            d.queueBase = inst.queue;
            return d;
          case ir::Opcode::kDeq:
            d.op = DOp::kDeq;
            d.queueRel = inst.queue;
            return d;
          case ir::Opcode::kPeek:
            d.op = DOp::kPeek;
            d.queueRel = inst.queue;
            return d;
          default:
            phloem_panic("not a queue op");
        }
    }

    if (ir::usesArray(inst.opcode) &&
        inst.opcode != ir::Opcode::kSwapArr) {
        switch (inst.opcode) {
          case ir::Opcode::kLoad:
            d.op = DOp::kLoad;
            return d;
          case ir::Opcode::kStore:
            d.op = DOp::kStore;
            return d;
          case ir::Opcode::kAtomicMin:
          case ir::Opcode::kAtomicAdd:
          case ir::Opcode::kAtomicFAdd:
          case ir::Opcode::kAtomicOr:
            d.op = DOp::kAtomic;
            return d;
          default:
            d.op = DOp::kMemOther;  // kPrefetch
            return d;
        }
    }

    switch (inst.opcode) {
      case ir::Opcode::kBarrier:
        d.op = DOp::kBarrier;
        return d;
      case ir::Opcode::kHalt:
        d.op = DOp::kHalt;
        return d;
      case ir::Opcode::kSwapArr:
        d.op = DOp::kSwapArr;
        return d;
      case ir::Opcode::kWork:
        d.op = DOp::kWork;
        return d;
      default:
        d.op = DOp::kScalar;
        return d;
    }
}

} // namespace

DecodedProgram
decodeShape(const sim::Program& prog)
{
    DecodedProgram out;
    const auto& code = prog.code;
    out.code.reserve(code.size() + 1);
    for (const auto& inst : code)
        out.code.push_back(decodeOne(inst));

    // Sentinel: running off the end halts without counting an
    // instruction, exactly like the interpreter's pc bound check.
    // Branch targets may legally point here (loops ending the body).
    DInst end;
    end.op = DOp::kEnd;
    out.code.push_back(end);

    // Fusion pass. A pair (i, i+1) may fuse only when i falls through
    // unconditionally — which every pattern below guarantees, since the
    // first half is always a plain scalar op or a load. Slot i+1 keeps
    // its standalone decoding so branches targeting it still work.
    for (size_t i = 0; i + 1 < code.size(); ++i) {
        const sim::Inst& a = code[i];
        const sim::Inst& b = code[i + 1];
        DInst& d = out.code[i];

        // load ; enq(dst)  →  kLoadEnq   (gather feeding a queue)
        if (a.kind == sim::Inst::Kind::kOp &&
            a.opcode == ir::Opcode::kLoad && a.dst >= 0 &&
            b.kind == sim::Inst::Kind::kOp &&
            b.opcode == ir::Opcode::kEnq && b.src0 == a.dst) {
            d.op = DOp::kLoadEnq;
            d.opcode2 = b.opcode;
            d.raw2 = &b;
            d.queueRel = b.queue;
            out.fusedSites++;
            continue;
        }

        if (!isPlainScalar(a) || a.dst < 0)
            continue;

        // scalar ; br-if(dst)  →  kScalarBr  (loop headers: cmp+brIfNot,
        // explicit control checks: is_control+brIf, const+cmp+brif tails)
        if ((b.kind == sim::Inst::Kind::kBrIf ||
             b.kind == sim::Inst::Kind::kBrIfNot) &&
            b.src0 == a.dst) {
            d.op = DOp::kScalarBr;
            d.negate = b.kind == sim::Inst::Kind::kBrIfNot;
            d.raw2 = &b;  // second half is a branch, not an opcode
            d.target = b.target;
            out.fusedSites++;
            continue;
        }

        // scalar ; br  →  kScalarJmp  (loop backedges: add+br)
        if (b.kind == sim::Inst::Kind::kBr) {
            d.op = DOp::kScalarJmp;
            d.raw2 = &b;
            d.target = b.target;
            out.fusedSites++;
            continue;
        }

        // scalar ; enq(dst)  →  kScalarEnq  (compute feeding a queue)
        if (b.kind == sim::Inst::Kind::kOp &&
            b.opcode == ir::Opcode::kEnq && b.src0 == a.dst) {
            d.op = DOp::kScalarEnq;
            d.opcode2 = b.opcode;
            d.raw2 = &b;
            d.queueRel = b.queue;
            out.fusedSites++;
            continue;
        }
    }

    // Validate control-flow targets once so the engine's dispatch loop
    // can index code[target] unchecked. A target equal to code.size()
    // lands on the kEnd sentinel (a loop whose body ends the program).
    const int32_t limit = static_cast<int32_t>(code.size());
    for (const DInst& d : out.code) {
        bool is_branch = d.op == DOp::kBr || d.op == DOp::kBrIf ||
                         d.op == DOp::kBrIfNot || d.op == DOp::kScalarBr ||
                         d.op == DOp::kScalarJmp;
        if (is_branch)
            phloem_assert(d.target >= 0 && d.target <= limit,
                          "branch target out of range");
        if (d.op == DOp::kDeq && d.handlerPc >= 0)
            phloem_assert(d.handlerPc <= limit,
                          "control handler pc out of range");
    }
    return out;
}

void
relocateProgram(DecodedProgram& dp, int queue_offset,
                const std::vector<SpscQueue*>& queues)
{
    for (DInst& d : dp.code) {
        if (d.queueRel < 0)
            continue;
        d.absQ = queue_offset + d.queueRel;
        phloem_assert(d.absQ >= 0 &&
                          d.absQ < static_cast<int>(queues.size()),
                      "decoded queue id out of range");
        d.q = queues[static_cast<size_t>(d.absQ)];
    }
}

DecodedProgram
decodeProgram(const sim::Program& prog, int queue_offset,
              int queue_stride, int num_replicas,
              const std::vector<SpscQueue*>& queues)
{
    (void)queue_stride;
    (void)num_replicas;
    DecodedProgram out = decodeShape(prog);
    relocateProgram(out, queue_offset, queues);
    return out;
}

} // namespace phloem::rt
