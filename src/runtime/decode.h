/**
 * @file
 * Pre-decoded instruction form for the native runtime's execution
 * engine.
 *
 * The stage interpreter (runtime/worker.cc) walks the raw sim::Inst
 * stream, paying a kind-switch, an opcode classification chain
 * (usesQueue / usesArray), a full opcode switch, and a
 * `queueOffset_ + inst.queue` pointer lookup on every dynamic
 * instruction. Decoding performs all of that classification once per
 * stage at pipeline setup:
 *
 *  - every instruction is mapped to a small dispatch code (DOp) that a
 *    handler table indexes directly — one indirect call replaces the
 *    nested switches;
 *  - queue operands are resolved to absolute SpscQueue pointers (the
 *    replica-strided arithmetic happens at decode time; only kEnqDist,
 *    whose target depends on a runtime value, still selects a ring per
 *    element);
 *  - the dominant adjacent pairs the flattener emits are fused into
 *    superinstructions (see kFusedOps below) so loop headers, backedges,
 *    and produce-enqueue bodies cost one dispatch instead of two.
 *
 * Fusion keeps the 1:1 pc mapping: a fused instruction at pc i executes
 * raw instructions i and i+1 and then continues at i+2 (or the branch
 * target), while slot i+1 keeps its own standalone decoding as the
 * landing pad for branches that enter the pair in the middle. Branch
 * targets and control-handler pcs therefore need no remapping, and the
 * engine's dynamic instruction counts stay exactly equal to the raw
 * interpreter's (which the differential tests assert against the
 * simulator).
 */

#ifndef PHLOEM_RUNTIME_DECODE_H
#define PHLOEM_RUNTIME_DECODE_H

#include <vector>

#include "runtime/queue.h"
#include "sim/program.h"

namespace phloem::rt {

/** Dispatch code of one decoded instruction. */
enum class DOp : uint8_t {
    kEnd,        ///< fell off the end of the program (counts no inst)
    kHalt,       ///< explicit kHalt op (counts one inst)
    kBr,         ///< unconditional branch
    kBrIf,       ///< branch when regs[src0] != 0
    kBrIfNot,    ///< branch when regs[src0] == 0
    kScalar,     ///< any plain scalar op, via sim::evalScalarOp
    kWork,       ///< kWork with its imm-sized burn loop
    kLoad,       ///< dst = arr[src0]
    kStore,      ///< arr[src0] = src1
    kMemOther,   ///< kPrefetch, via sim::applyMemOp
    kAtomic,     ///< RMW ops, serialized on RunControl::atomicsMu
    kSwapArr,    ///< swap two array bindings
    kBarrier,    ///< stage barrier
    kEnq,        ///< push regs[src0] to the resolved ring
    kEnqCtrl,    ///< push a control value to the resolved ring
    kEnqDist,    ///< push to the replica selected by regs[src1]
    kDeq,        ///< pop into dst; control values may transfer to handler
    kPeek,       ///< read the ring front into dst without consuming

    // Fused superinstructions (two raw instructions, one dispatch).
    kScalarBr,   ///< scalar op; conditional branch on its dst
    kScalarJmp,  ///< scalar op; unconditional branch (loop backedge)
    kScalarEnq,  ///< scalar op; enq of its dst
    kLoadEnq,    ///< load; enq of its dst

    kCount_,
};

/** Number of distinct dispatch codes (handler table size). */
constexpr size_t kNumDOps = static_cast<size_t>(DOp::kCount_);

/**
 * One decoded instruction. Hot operands are copied inline; the generic
 * scalar/memory paths evaluate through pointers to the original
 * sim::Inst so the functional semantics stay byte-identical to the
 * interpreter (both call the same sim/eval.h helpers).
 */
struct DInst
{
    DOp op = DOp::kEnd;
    /** Conditional part of kScalarBr: true = branch when dst == 0. */
    bool negate = false;
    /** Primary raw opcode (per-opcode profile counts). */
    ir::Opcode opcode = ir::Opcode::kConst;
    /** Second raw opcode of a fused pair (profile counts). */
    ir::Opcode opcode2 = ir::Opcode::kConst;

    ir::RegId dst = ir::kNoReg;
    ir::RegId src0 = ir::kNoReg;
    ir::RegId src1 = ir::kNoReg;
    int64_t imm = 0;
    int32_t arr = ir::kNoArray;
    int32_t arr2 = ir::kNoArray;

    /** Branch target (branches and the branch half of fused ops). */
    int32_t target = -1;
    /** Control-handler entry pc for kDeq, or -1. */
    int32_t handlerPc = -1;

    /**
     * Replica-relative queue id (the raw instruction's queue operand);
     * -1 when no queue. Survives relocation, so one decoded shape can
     * be re-based for any replica or run (the compilation service
     * caches shapes and the JIT bakes this id into emitted code).
     */
    int32_t queueRel = -1;
    /** Absolute (replica-resolved) queue id; -1 until relocated. */
    int32_t absQ = -1;
    /** Resolved ring; null until relocated, and for kEnqDist. */
    SpscQueue* q = nullptr;
    /** Per-replica base queue id of a kEnqDist (already relative). */
    int32_t queueBase = -1;

    /** Original instruction (generic eval paths, diagnostics). */
    const sim::Inst* raw = nullptr;
    /** Second original instruction of a fused pair. */
    const sim::Inst* raw2 = nullptr;
};

struct DecodedProgram
{
    std::vector<DInst> code;  ///< raw length + 1 (kEnd sentinel)
    /** Static fusion sites found (profiling/tests). */
    int fusedSites = 0;
};

/**
 * Decode one stage's flat program into its replica-independent shape:
 * classification, fusion, and control-flow validation, with queue
 * operands kept as relative ids (queueRel/queueBase) and absQ/q left
 * unresolved. A shape can be cached and shared (the compilation
 * service decodes once per pipeline, not once per worker per run) —
 * relocateProgram() re-bases a copy for a concrete replica.
 *
 * The returned DecodedProgram stores pointers into `prog.code`; the
 * program must outlive it (and every relocated copy).
 */
DecodedProgram decodeShape(const sim::Program& prog);

/**
 * Resolve a decoded shape's relative queue ids against one replica's
 * queue window: absQ = queue_offset + queueRel, q = queues[absQ].
 * `queues` may be empty for serial functions (which the runtime
 * verifies contain no queue ops). Idempotent on a fresh copy of a
 * cached shape; kEnqDist stays runtime-selected (queueBase only).
 */
void relocateProgram(DecodedProgram& dp, int queue_offset,
                     const std::vector<SpscQueue*>& queues);

/**
 * Decode one stage's flat program for one replica: decodeShape +
 * relocateProgram in one step (the per-worker path when no cached
 * shape is available).
 */
DecodedProgram decodeProgram(const sim::Program& prog, int queue_offset,
                             int queue_stride, int num_replicas,
                             const std::vector<SpscQueue*>& queues);

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_DECODE_H
