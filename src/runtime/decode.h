/**
 * @file
 * Pre-decoded instruction form for the native runtime's execution
 * engine.
 *
 * The stage interpreter (runtime/worker.cc) walks the raw sim::Inst
 * stream, paying a kind-switch, an opcode classification chain
 * (usesQueue / usesArray), a full opcode switch, and a
 * `queueOffset_ + inst.queue` pointer lookup on every dynamic
 * instruction. Decoding performs all of that classification once per
 * stage at pipeline setup:
 *
 *  - every instruction is mapped to a small dispatch code (DOp) that a
 *    handler table indexes directly — one indirect call replaces the
 *    nested switches;
 *  - queue operands are resolved to absolute SpscQueue pointers (the
 *    replica-strided arithmetic happens at decode time; only kEnqDist,
 *    whose target depends on a runtime value, still selects a ring per
 *    element);
 *  - the dominant adjacent pairs the flattener emits are fused into
 *    superinstructions (see kFusedOps below) so loop headers, backedges,
 *    and produce-enqueue bodies cost one dispatch instead of two.
 *
 * Fusion keeps the 1:1 pc mapping: a fused instruction at pc i executes
 * raw instructions i and i+1 and then continues at i+2 (or the branch
 * target), while slot i+1 keeps its own standalone decoding as the
 * landing pad for branches that enter the pair in the middle. Branch
 * targets and control-handler pcs therefore need no remapping, and the
 * engine's dynamic instruction counts stay exactly equal to the raw
 * interpreter's (which the differential tests assert against the
 * simulator).
 */

#ifndef PHLOEM_RUNTIME_DECODE_H
#define PHLOEM_RUNTIME_DECODE_H

#include <vector>

#include "runtime/queue.h"
#include "sim/program.h"

namespace phloem::rt {

/** Dispatch code of one decoded instruction. */
enum class DOp : uint8_t {
    kEnd,        ///< fell off the end of the program (counts no inst)
    kHalt,       ///< explicit kHalt op (counts one inst)
    kBr,         ///< unconditional branch
    kBrIf,       ///< branch when regs[src0] != 0
    kBrIfNot,    ///< branch when regs[src0] == 0
    kScalar,     ///< any plain scalar op, via sim::evalScalarOp
    kWork,       ///< kWork with its imm-sized burn loop
    kLoad,       ///< dst = arr[src0]
    kStore,      ///< arr[src0] = src1
    kMemOther,   ///< kPrefetch, via sim::applyMemOp
    kAtomic,     ///< RMW ops, serialized on RunControl::atomicsMu
    kSwapArr,    ///< swap two array bindings
    kBarrier,    ///< stage barrier
    kEnq,        ///< push regs[src0] to the resolved ring
    kEnqCtrl,    ///< push a control value to the resolved ring
    kEnqDist,    ///< push to the replica selected by regs[src1]
    kDeq,        ///< pop into dst; control values may transfer to handler
    kPeek,       ///< read the ring front into dst without consuming

    // Fused superinstructions (two raw instructions, one dispatch).
    kScalarBr,   ///< scalar op; conditional branch on its dst
    kScalarJmp,  ///< scalar op; unconditional branch (loop backedge)
    kScalarEnq,  ///< scalar op; enq of its dst
    kLoadEnq,    ///< load; enq of its dst

    kCount_,
};

/** Number of distinct dispatch codes (handler table size). */
constexpr size_t kNumDOps = static_cast<size_t>(DOp::kCount_);

/**
 * One decoded instruction. Hot operands are copied inline; the generic
 * scalar/memory paths evaluate through pointers to the original
 * sim::Inst so the functional semantics stay byte-identical to the
 * interpreter (both call the same sim/eval.h helpers).
 */
struct DInst
{
    DOp op = DOp::kEnd;
    /** Conditional part of kScalarBr: true = branch when dst == 0. */
    bool negate = false;
    /** Primary raw opcode (per-opcode profile counts). */
    ir::Opcode opcode = ir::Opcode::kConst;
    /** Second raw opcode of a fused pair (profile counts). */
    ir::Opcode opcode2 = ir::Opcode::kConst;

    ir::RegId dst = ir::kNoReg;
    ir::RegId src0 = ir::kNoReg;
    ir::RegId src1 = ir::kNoReg;
    int64_t imm = 0;
    int32_t arr = ir::kNoArray;
    int32_t arr2 = ir::kNoArray;

    /** Branch target (branches and the branch half of fused ops). */
    int32_t target = -1;
    /** Control-handler entry pc for kDeq, or -1. */
    int32_t handlerPc = -1;

    /** Absolute (replica-resolved) queue id; -1 when no queue. */
    int32_t absQ = -1;
    /** Resolved ring; null for kEnqDist (selected per element). */
    SpscQueue* q = nullptr;
    /** Per-replica base queue id of a kEnqDist. */
    int32_t queueBase = -1;

    /** Original instruction (generic eval paths, diagnostics). */
    const sim::Inst* raw = nullptr;
    /** Second original instruction of a fused pair. */
    const sim::Inst* raw2 = nullptr;
};

struct DecodedProgram
{
    std::vector<DInst> code;  ///< raw length + 1 (kEnd sentinel)
    /** Static fusion sites found (profiling/tests). */
    int fusedSites = 0;
};

/**
 * Decode one stage's flat program for one replica. `queues` holds the
 * pipeline's rings indexed by absolute id; it may be empty for serial
 * functions (which the runtime verifies contain no queue ops).
 *
 * The returned DecodedProgram stores pointers into `prog.code`; the
 * program must outlive it.
 */
DecodedProgram decodeProgram(const sim::Program& prog, int queue_offset,
                             int queue_stride, int num_replicas,
                             const std::vector<SpscQueue*>& queues);

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_DECODE_H
