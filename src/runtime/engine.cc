#include "runtime/engine.h"

#include <stdexcept>

#include "base/logging.h"
#include "ir/op.h"
#include "runtime/sched.h"
#include "sim/eval.h"

namespace phloem::rt {

Engine::Engine(const DecodedProgram& prog, const EngineEnv& env)
    : prog_(prog), env_(env)
{
    phloem_assert(env_.regs != nullptr && env_.ctl != nullptr &&
                      env_.stats != nullptr && env_.queues != nullptr,
                  "engine env incomplete");
    bufs_.resize(env_.queues->size());
}

// ---------------------------------------------------------------------
// Bookkeeping.
// ---------------------------------------------------------------------

bool
Engine::slowTick()
{
    // Mirrors the interpreter's heartbeat: long compute phases without
    // queue ops must still look alive to blocked peers' watchdogs, and
    // abort/budget are polled here rather than per instruction.
    env_.ctl->progress.fetch_add(1, std::memory_order_relaxed);
    heartbeat_ = 0;
    if (env_.ctl->aborted())
        return false;
    if (env_.stats->instructions > env_.ctl->opt.maxInstructions) {
        std::string msg = "instruction budget exceeded (" +
                          std::to_string(env_.ctl->opt.maxInstructions) +
                          ") in " + env_.stats->name;
        env_.ctl->fail(msg);
        throw std::runtime_error(msg);
    }
    // Shared pool: long compute phases must not monopolize the worker
    // while runnable peers wait (no-op off the pool).
    Scheduler::maybeYield();
    return true;
}

inline bool
Engine::tick(uint64_t n)
{
    env_.stats->instructions += n;
    heartbeat_ += n;
    if (heartbeat_ >= kHeartbeatInterval)
        return slowTick();
    return true;
}

void
Engine::reportDeadlock(const char* what, int abs_q)
{
    std::string msg = "deadlock: " + env_.stats->name + " blocked on " +
                      what + " q" + std::to_string(abs_q) + " at pc=" +
                      std::to_string(pc_) + " with no global progress for " +
                      std::to_string(env_.ctl->opt.deadlockTimeoutMs) +
                      " ms";
    env_.ctl->fail(msg);
    throw std::runtime_error(msg);
}

// ---------------------------------------------------------------------
// Blocking queue primitives.
// ---------------------------------------------------------------------

bool
Engine::waitPush(SpscQueue& q, int abs_q, const ir::Value& v)
{
    // Fast path: no shared-counter traffic; the instruction heartbeat
    // keeps the watchdog fed while this worker runs.
    if (q.tryPush(v))
        return true;
    q.noteEnqBlocked();
    uint64_t t0 = env_.trace ? env_.trace->now() : 0;
    ParkTarget pt = makePushTarget(q, abs_q);
    Backoff backoff(*env_.ctl);
    for (;;) {
        if (q.tryPush(v)) {
            env_.ctl->progress.fetch_add(1, std::memory_order_relaxed);
            if (env_.trace)
                env_.trace->record(trace::EventKind::kEnqBlock, abs_q,
                                   t0, env_.trace->now());
            return true;
        }
        switch (backoff.step(*env_.ctl, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kEnqBlock, abs_q,
                                   t0, env_.trace->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kEnqBlock, abs_q,
                                   t0, env_.trace->now());
            reportDeadlock("enq", abs_q);
        }
    }
}

bool
Engine::popValue(const DInst& d, ir::Value& v)
{
    ConsumerBuf& b = bufs_[static_cast<size_t>(d.absQ)];
    if (b.pos < b.len) {
        v = b.data[b.pos++];
        return true;
    }
    if (!b.data)
        b.data = std::make_unique<ir::Value[]>(kBatchCap);
    size_t n = d.q->popBatch(kBatchCap, b.data.get());
    if (n == 0) {
        d.q->noteDeqBlocked();
        uint64_t t0 = env_.trace ? env_.trace->now() : 0;
        ParkTarget pt = makePopTarget(*d.q, d.absQ);
        Backoff backoff(*env_.ctl);
        for (;;) {
            n = d.q->popBatch(kBatchCap, b.data.get());
            if (n != 0) {
                env_.ctl->progress.fetch_add(1,
                                             std::memory_order_relaxed);
                if (env_.trace)
                    env_.trace->record(trace::EventKind::kDeqBlock,
                                       d.absQ, t0, env_.trace->now());
                break;
            }
            switch (backoff.step(*env_.ctl, /*stoppable=*/false, &pt)) {
              case Backoff::Result::kRetry:
                break;
              case Backoff::Result::kStopped:
                if (env_.trace)
                    env_.trace->record(trace::EventKind::kDeqBlock,
                                       d.absQ, t0, env_.trace->now());
                return false;
              case Backoff::Result::kDeadlock:
                if (env_.trace)
                    env_.trace->record(trace::EventKind::kDeqBlock,
                                       d.absQ, t0, env_.trace->now());
                reportDeadlock("deq", d.absQ);
            }
        }
    }
    b.len = static_cast<uint32_t>(n);
    b.pos = 1;
    v = b.data[0];
    return true;
}

bool
Engine::peekValue(const DInst& d, ir::Value& v)
{
    // Peek must not consume, so it never triggers a refill: serve the
    // buffer front when one is pending, otherwise read the ring front.
    const ConsumerBuf& b = bufs_[static_cast<size_t>(d.absQ)];
    if (b.pos < b.len) {
        v = b.data[b.pos];
        return true;
    }
    if (d.q->tryPeek(v))
        return true;
    d.q->noteDeqBlocked();
    uint64_t t0 = env_.trace ? env_.trace->now() : 0;
    ParkTarget pt = makePopTarget(*d.q, d.absQ, "peek");
    Backoff backoff(*env_.ctl);
    for (;;) {
        if (d.q->tryPeek(v)) {
            env_.ctl->progress.fetch_add(1, std::memory_order_relaxed);
            if (env_.trace)
                env_.trace->record(trace::EventKind::kDeqBlock, d.absQ,
                                   t0, env_.trace->now());
            return true;
        }
        switch (backoff.step(*env_.ctl, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kDeqBlock, d.absQ,
                                   t0, env_.trace->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kDeqBlock, d.absQ,
                                   t0, env_.trace->now());
            reportDeadlock("peek", d.absQ);
        }
    }
}

// ---------------------------------------------------------------------
// Handlers.
// ---------------------------------------------------------------------

bool
Engine::hEnd(Engine& e, const DInst&)
{
    // Fell off the end: halt without counting an instruction, exactly
    // like the interpreter's pc bound check.
    (void)e;
    return false;
}

bool
Engine::hHalt(Engine& e, const DInst& d)
{
    e.tick(1);
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    return false;
}

bool
Engine::hBr(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->branches++;
    e.pc_ = d.target;
    return true;
}

bool
Engine::hBrIf(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->branches++;
    bool truth =
        e.env_.regs[static_cast<size_t>(d.src0)].asInt() != 0;
    e.pc_ = truth ? d.target : e.pc_ + 1;
    return true;
}

bool
Engine::hBrIfNot(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->branches++;
    bool truth =
        e.env_.regs[static_cast<size_t>(d.src0)].asInt() != 0;
    e.pc_ = truth ? e.pc_ + 1 : d.target;
    return true;
}

bool
Engine::hScalar(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    ir::Value out = sim::evalScalarOp(*d.raw, e.env_.regs);
    if (d.dst >= 0)
        e.env_.regs[static_cast<size_t>(d.dst)] = out;
    e.pc_++;
    return true;
}

bool
Engine::hWork(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    ir::Value out = sim::evalScalarOp(*d.raw, e.env_.regs);
    if (d.imm > 1) {
        // The simulator charges kWork as `imm` uops; natively we burn
        // the same amount of real compute. Only the first mix lands in
        // the destination register so results stay bit-identical.
        uint64_t burn = out.bits;
        for (int64_t k = 1; k < d.imm; ++k)
            burn = sim::workMix(burn);
        e.workSink_ += burn;
    }
    if (d.dst >= 0)
        e.env_.regs[static_cast<size_t>(d.dst)] = out;
    e.pc_++;
    return true;
}

bool
Engine::hLoad(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    // Array bindings are looked up per execution: kSwapArr may retarget
    // them at runtime, so decoded instructions never cache the buffer.
    sim::ArrayBuffer* buf = e.env_.arrayBind[static_cast<size_t>(d.arr)];
    int64_t idx = e.env_.regs[static_cast<size_t>(d.src0)].asInt();
    ir::Value out = buf->load(idx);
    if (d.dst >= 0)
        e.env_.regs[static_cast<size_t>(d.dst)] = out;
    e.pc_++;
    return true;
}

bool
Engine::hStore(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    sim::ArrayBuffer* buf = e.env_.arrayBind[static_cast<size_t>(d.arr)];
    int64_t idx = e.env_.regs[static_cast<size_t>(d.src0)].asInt();
    buf->store(idx, e.env_.regs[static_cast<size_t>(d.src1)]);
    if (d.dst >= 0)
        e.env_.regs[static_cast<size_t>(d.dst)] = ir::Value{};
    e.pc_++;
    return true;
}

bool
Engine::hMemOther(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    sim::ArrayBuffer* buf = e.env_.arrayBind[static_cast<size_t>(d.arr)];
    ir::Value out = sim::applyMemOp(*d.raw, *buf, e.env_.regs);
    if (d.dst >= 0)
        e.env_.regs[static_cast<size_t>(d.dst)] = out;
    e.pc_++;
    return true;
}

bool
Engine::hAtomic(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    sim::ArrayBuffer* buf = e.env_.arrayBind[static_cast<size_t>(d.arr)];
    ir::Value out;
    {
        // applyMemOp implements RMWs as load+store; serialize them
        // across stages so concurrent updates are not lost.
        std::lock_guard<std::mutex> g(e.env_.ctl->atomicsMu);
        out = sim::applyMemOp(*d.raw, *buf, e.env_.regs);
    }
    if (d.dst >= 0)
        e.env_.regs[static_cast<size_t>(d.dst)] = out;
    e.pc_++;
    return true;
}

bool
Engine::hSwapArr(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    std::swap(e.env_.arrayBind[static_cast<size_t>(d.arr)],
              e.env_.arrayBind[static_cast<size_t>(d.arr2)]);
    e.pc_++;
    return true;
}

bool
Engine::hBarrier(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    e.pc_++;
    if (!e.env_.trace)
        return e.env_.barrier->arriveAndWait(*e.env_.ctl);
    uint64_t t0 = e.env_.trace->now();
    bool ok = e.env_.barrier->arriveAndWait(*e.env_.ctl);
    e.env_.trace->record(trace::EventKind::kBarrierWait, -1, t0,
                         e.env_.trace->now());
    return ok;
}

bool
Engine::hEnq(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    if (!e.waitPush(*d.q, d.absQ,
                    e.env_.regs[static_cast<size_t>(d.src0)]))
        return false;
    e.pc_++;
    return true;
}

bool
Engine::hEnqCtrl(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    if (!e.waitPush(*d.q, d.absQ,
                    ir::Value::makeControl(static_cast<uint32_t>(d.imm))))
        return false;
    e.pc_++;
    return true;
}

bool
Engine::hEnqDist(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    int64_t sel = e.env_.regs[static_cast<size_t>(d.src1)].asInt();
    int target = sim::distTargetReplica(sel, e.env_.numReplicas);
    int abs_q = d.queueBase + target * e.env_.queueStride;
    SpscQueue& q = *(*e.env_.queues)[static_cast<size_t>(abs_q)];
    ir::Value v =
        d.src0 < 0 ? ir::Value::makeControl(static_cast<uint32_t>(d.imm))
                   : e.env_.regs[static_cast<size_t>(d.src0)];
    if (!e.waitPush(q, abs_q, v))
        return false;
    e.pc_++;
    return true;
}

bool
Engine::hDeq(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    ir::Value v;
    if (!e.popValue(d, v))
        return false;
    e.env_.regs[static_cast<size_t>(d.dst)] = v;
    // Control-value handler: transfer when a control value is dequeued,
    // exactly as the simulated hardware does.
    if (v.isControl() && d.handlerPc >= 0)
        e.pc_ = d.handlerPc;
    else
        e.pc_++;
    return true;
}

bool
Engine::hPeek(Engine& e, const DInst& d)
{
    if (!e.tick(1))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    ir::Value v;
    if (!e.peekValue(d, v))
        return false;
    e.env_.regs[static_cast<size_t>(d.dst)] = v;
    e.pc_++;
    return true;
}

// --- Fused superinstructions (two raw instructions per dispatch). ----

bool
Engine::hScalarBr(Engine& e, const DInst& d)
{
    if (!e.tick(2))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    e.env_.stats->branches++;
    ir::Value out = sim::evalScalarOp(*d.raw, e.env_.regs);
    e.env_.regs[static_cast<size_t>(d.dst)] = out;
    bool truth = out.asInt() != 0;
    if (d.negate)
        truth = !truth;
    e.pc_ = truth ? d.target : e.pc_ + 2;
    return true;
}

bool
Engine::hScalarJmp(Engine& e, const DInst& d)
{
    if (!e.tick(2))
        return false;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    e.env_.stats->branches++;
    e.env_.regs[static_cast<size_t>(d.dst)] =
        sim::evalScalarOp(*d.raw, e.env_.regs);
    e.pc_ = d.target;
    return true;
}

bool
Engine::hScalarEnq(Engine& e, const DInst& d)
{
    if (!e.tick(2))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode2)]++;
    ir::Value out = sim::evalScalarOp(*d.raw, e.env_.regs);
    e.env_.regs[static_cast<size_t>(d.dst)] = out;
    if (!e.waitPush(*d.q, d.absQ, out))
        return false;
    e.pc_ += 2;
    return true;
}

bool
Engine::hLoadEnq(Engine& e, const DInst& d)
{
    if (!e.tick(2))
        return false;
    e.env_.stats->queueOps++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode)]++;
    e.env_.stats->opCounts[static_cast<size_t>(d.opcode2)]++;
    sim::ArrayBuffer* buf = e.env_.arrayBind[static_cast<size_t>(d.arr)];
    int64_t idx = e.env_.regs[static_cast<size_t>(d.src0)].asInt();
    ir::Value out = buf->load(idx);
    e.env_.regs[static_cast<size_t>(d.dst)] = out;
    if (!e.waitPush(*d.q, d.absQ, out))
        return false;
    e.pc_ += 2;
    return true;
}

// Order must match the DOp enumerators exactly.
const Engine::Handler Engine::kDispatch[kNumDOps] = {
    &Engine::hEnd,       // kEnd
    &Engine::hHalt,      // kHalt
    &Engine::hBr,        // kBr
    &Engine::hBrIf,      // kBrIf
    &Engine::hBrIfNot,   // kBrIfNot
    &Engine::hScalar,    // kScalar
    &Engine::hWork,      // kWork
    &Engine::hLoad,      // kLoad
    &Engine::hStore,     // kStore
    &Engine::hMemOther,  // kMemOther
    &Engine::hAtomic,    // kAtomic
    &Engine::hSwapArr,   // kSwapArr
    &Engine::hBarrier,   // kBarrier
    &Engine::hEnq,       // kEnq
    &Engine::hEnqCtrl,   // kEnqCtrl
    &Engine::hEnqDist,   // kEnqDist
    &Engine::hDeq,       // kDeq
    &Engine::hPeek,      // kPeek
    &Engine::hScalarBr,  // kScalarBr
    &Engine::hScalarJmp, // kScalarJmp
    &Engine::hScalarEnq, // kScalarEnq
    &Engine::hLoadEnq,   // kLoadEnq
};

void
Engine::run()
{
    const DInst* code = prog_.code.data();
    for (;;) {
        const DInst& d = code[pc_];
        if (!kDispatch[static_cast<size_t>(d.op)](*this, d))
            return;
    }
}

std::vector<std::pair<int, uint64_t>>
Engine::unconsumed() const
{
    std::vector<std::pair<int, uint64_t>> out;
    for (size_t q = 0; q < bufs_.size(); ++q) {
        const ConsumerBuf& b = bufs_[q];
        if (b.pos < b.len)
            out.emplace_back(static_cast<int>(q),
                             static_cast<uint64_t>(b.len - b.pos));
    }
    return out;
}

} // namespace phloem::rt
