/**
 * @file
 * Pre-decoded batching execution engine for stage workers.
 *
 * The engine executes a DecodedProgram (runtime/decode.h) through a
 * function-pointer handler table: one indirect call per decoded
 * instruction replaces the interpreter's kind-switch + opcode
 * classification + opcode-switch, queue pointers are already absolute,
 * and fused superinstructions retire the flattener's dominant pairs in
 * one dispatch.
 *
 * Dequeues additionally drain the ring in batches: a blocked-or-empty
 * consumer refills a small per-queue buffer with SpscQueue::popBatch —
 * one acquire/release pair per run of values instead of one per element
 * — and subsequent deqs are served from the buffer. Buffering is
 * consumer-side only: values a stage *produces* are always published
 * immediately (blocking semantics and the deadlock watchdog depend on
 * enqueued values being visible to peers), while values already
 * published by a peer may be drained eagerly without changing any
 * observable ordering. Values drained but never architecturally
 * dequeued when the stage halts are reported via unconsumed() so queue
 * statistics (deq counts, residual occupancy) stay truthful.
 *
 * Semantics are bit-identical to the raw interpreter: both run the same
 * sim/eval.h functional core, and dynamic instruction counts match
 * exactly (fused pairs count two). The fuzzing oracle and the
 * differential tests exercise engine-on vs engine-off vs simulator.
 */

#ifndef PHLOEM_RUNTIME_ENGINE_H
#define PHLOEM_RUNTIME_ENGINE_H

#include <memory>
#include <utility>
#include <vector>

#include "runtime/decode.h"
#include "runtime/queue.h"
#include "runtime/stats.h"
#include "runtime/worker.h"
#include "sim/binding.h"

namespace phloem::rt {

/** Borrowed per-stage execution state the engine operates on. */
struct EngineEnv
{
    ir::Value* regs = nullptr;
    sim::ArrayBuffer** arrayBind = nullptr;
    const std::vector<SpscQueue*>* queues = nullptr;
    StageBarrier* barrier = nullptr;
    RunControl* ctl = nullptr;
    WorkerStats* stats = nullptr;
    /** Owning worker's trace ring, or null when tracing is off. */
    trace::TraceBuffer* trace = nullptr;
    int queueStride = 0;
    int numReplicas = 1;
};

class Engine
{
  public:
    Engine(const DecodedProgram& prog, const EngineEnv& env);

    /**
     * Execute until halt or abort. Throws (like the interpreter) on
     * deadlock watchdog or instruction-budget violations; the caller's
     * thread wrapper routes that to RunControl::fail.
     */
    void run();

    /**
     * Per-queue counts of values drained into the consumer buffer but
     * never dequeued by the program (pairs of absolute queue id,
     * count). Valid after run() returns.
     */
    std::vector<std::pair<int, uint64_t>> unconsumed() const;

  private:
    using Handler = bool (*)(Engine&, const DInst&);
    static const Handler kDispatch[kNumDOps];

    /** Values drained per popBatch refill (and buffer capacity). */
    static constexpr size_t kBatchCap = 256;

    struct ConsumerBuf
    {
        std::unique_ptr<ir::Value[]> data;
        uint32_t pos = 0;
        uint32_t len = 0;
    };

    // --- Bookkeeping ------------------------------------------------
    /** Count n retired instructions; false when the run aborted. */
    bool tick(uint64_t n);
    bool slowTick();
    [[noreturn]] void reportDeadlock(const char* what, int abs_q);

    // --- Blocking queue primitives ----------------------------------
    bool waitPush(SpscQueue& q, int abs_q, const ir::Value& v);
    /** Buffered pop: serve from the batch buffer, refilling as needed. */
    bool popValue(const DInst& d, ir::Value& v);
    bool peekValue(const DInst& d, ir::Value& v);

    // --- Handlers (indexed by DOp) ----------------------------------
    static bool hEnd(Engine& e, const DInst& d);
    static bool hHalt(Engine& e, const DInst& d);
    static bool hBr(Engine& e, const DInst& d);
    static bool hBrIf(Engine& e, const DInst& d);
    static bool hBrIfNot(Engine& e, const DInst& d);
    static bool hScalar(Engine& e, const DInst& d);
    static bool hWork(Engine& e, const DInst& d);
    static bool hLoad(Engine& e, const DInst& d);
    static bool hStore(Engine& e, const DInst& d);
    static bool hMemOther(Engine& e, const DInst& d);
    static bool hAtomic(Engine& e, const DInst& d);
    static bool hSwapArr(Engine& e, const DInst& d);
    static bool hBarrier(Engine& e, const DInst& d);
    static bool hEnq(Engine& e, const DInst& d);
    static bool hEnqCtrl(Engine& e, const DInst& d);
    static bool hEnqDist(Engine& e, const DInst& d);
    static bool hDeq(Engine& e, const DInst& d);
    static bool hPeek(Engine& e, const DInst& d);
    static bool hScalarBr(Engine& e, const DInst& d);
    static bool hScalarJmp(Engine& e, const DInst& d);
    static bool hScalarEnq(Engine& e, const DInst& d);
    static bool hLoadEnq(Engine& e, const DInst& d);

    const DecodedProgram& prog_;
    EngineEnv env_;

    int32_t pc_ = 0;
    uint64_t heartbeat_ = 0;
    /** Sink for kWork's burned mixes; keeps the burn loop observable. */
    uint64_t workSink_ = 0;
    /** Consumer-side batch buffers, indexed by absolute queue id. */
    std::vector<ConsumerBuf> bufs_;
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_ENGINE_H
