#include "hwcount.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "base/logging.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#include <sys/resource.h>
#endif

namespace phloem::rt {

#if defined(__linux__)

namespace {

struct EventDesc
{
    uint32_t type;
    uint64_t config;
};

// Slot order matches HwThreadCounters::fds_. Cycles and instructions
// are the required pair (IPC); the rest are best-effort.
constexpr EventDesc kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

int
openEvent(const EventDesc& ev)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = ev.type;
    attr.config = ev.config;
    attr.disabled = 0;
    // User-space only so perf_event_paranoid=2 (distro default) works.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.inherit = 0;
    // ENABLED/RUNNING let read() undo counter multiplexing.
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    // pid=0, cpu=-1: this thread, any CPU.
    return static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

struct ReadValue
{
    uint64_t value;
    uint64_t timeEnabled;
    uint64_t timeRunning;
};

// Scaled counter value, or 0 when the fd never got PMU time.
uint64_t
readScaled(int fd)
{
    if (fd < 0)
        return 0;
    ReadValue v{};
    ssize_t n = ::read(fd, &v, sizeof(v));
    if (n != static_cast<ssize_t>(sizeof(v)))
        return 0;
    if (v.timeRunning == 0)
        return 0;
    if (v.timeRunning >= v.timeEnabled)
        return v.value;
    double scale = static_cast<double>(v.timeEnabled) /
                   static_cast<double>(v.timeRunning);
    return static_cast<uint64_t>(static_cast<double>(v.value) * scale);
}

std::string gUnavailableReason;
std::once_flag gProbeOnce;
std::atomic<bool> gAvailable{false};

void
probeOnce()
{
    const char* env = std::getenv("PHLOEM_HWCOUNT");
    if (env && (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
        gUnavailableReason = "disabled via PHLOEM_HWCOUNT";
        gAvailable.store(false, std::memory_order_release);
        return;
    }
    int fd = openEvent(kEvents[0]);
    if (fd >= 0) {
        ::close(fd);
        gAvailable.store(true, std::memory_order_release);
        return;
    }
    int err = errno;
    gUnavailableReason = std::string("perf_event_open failed: ") +
                         std::strerror(err);
    if (err == EACCES || err == EPERM)
        gUnavailableReason +=
            " (check /proc/sys/kernel/perf_event_paranoid <= 2)";
    phloem_warn("hardware counters unavailable, hw_* metrics omitted: ",
                gUnavailableReason);
    gAvailable.store(false, std::memory_order_release);
}

} // namespace

bool
hwCountersAvailable()
{
    std::call_once(gProbeOnce, probeOnce);
    return gAvailable.load(std::memory_order_acquire);
}

const std::string&
hwUnavailableReason()
{
    std::call_once(gProbeOnce, probeOnce);
    return gUnavailableReason;
}

bool
HwThreadCounters::open()
{
    if (!hwCountersAvailable())
        return false;
    close();
    for (int i = 0; i < kNumEvents; ++i)
        fds_[i] = openEvent(kEvents[i]);
    // Cycles + instructions are the contract; cache/stall events may be
    // absent on this PMU (common in VMs) without invalidating the lane.
    if (fds_[0] < 0 || fds_[1] < 0) {
        close();
        return false;
    }
    return true;
}

HwCounts
HwThreadCounters::read() const
{
    HwCounts c;
    if (!isOpen())
        return c;
    c.valid = true;
    c.cycles = readScaled(fds_[0]);
    c.instructions = readScaled(fds_[1]);
    c.llcRefs = readScaled(fds_[2]);
    c.llcMisses = readScaled(fds_[3]);
    c.stalledCycles = readScaled(fds_[4]);
    return c;
}

void
HwThreadCounters::close()
{
    for (int i = 0; i < kNumEvents; ++i) {
        if (fds_[i] >= 0)
            ::close(fds_[i]);
        fds_[i] = -1;
    }
}

#else // !__linux__

bool
hwCountersAvailable()
{
    return false;
}

const std::string&
hwUnavailableReason()
{
    static const std::string reason = "perf_event_open requires Linux";
    return reason;
}

bool
HwThreadCounters::open()
{
    return false;
}

HwCounts
HwThreadCounters::read() const
{
    return {};
}

void
HwThreadCounters::close()
{
}

#endif // __linux__

ResourceUsage
ResourceUsage::processNow()
{
    ResourceUsage r;
    rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return r;
    r.maxRssKb = static_cast<double>(ru.ru_maxrss);
    r.voluntaryCtxSw = static_cast<uint64_t>(ru.ru_nvcsw);
    r.involuntaryCtxSw = static_cast<uint64_t>(ru.ru_nivcsw);
    auto tvNs = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) * 1e9 +
               static_cast<double>(tv.tv_usec) * 1e3;
    };
    r.userNs = tvNs(ru.ru_utime);
    r.systemNs = tvNs(ru.ru_stime);
    return r;
}

} // namespace phloem::rt
