/**
 * @file
 * Hardware performance counters for native-runtime worker threads.
 *
 * The paper's stall-breakdown arguments (Fig. 10) are about where
 * cycles go; the runtime's software counters say how often a worker
 * blocked, but only the PMU can say whether the unblocked time was
 * spent retiring instructions or stalled on misses. This layer samples
 * cycles, instructions, LLC references/misses, and stalled cycles per
 * worker thread through `perf_event_open(2)` and folds the deltas into
 * NativeStats as per-lane counts (one lane per counted OS thread:
 * shared-pool workers in scheduler mode, stage/RA threads in legacy
 * mode).
 *
 * Graceful degradation is the contract: `perf_event_paranoid`, seccomp,
 * or a missing PMU (VMs, containers) must not change behavior beyond
 * one warning and an absent `hw_*` metrics family. Counters are opened
 * user-space-only (`exclude_kernel`) so paranoid level 2 — the common
 * distro default — still works. A portable `getrusage` capture (maxrss,
 * voluntary/involuntary context switches) is always present regardless.
 *
 * Counters are opened individually, not as a PMU group: a group larger
 * than the PMU's programmable-counter budget would never be scheduled
 * at all, whereas individual events time-multiplex. Each read scales by
 * time-enabled / time-running to undo the multiplexing, which is the
 * standard estimate and exact whenever the event set fits the PMU.
 *
 * Threading contract: open() must be called by the thread being
 * counted (the events attach to the calling thread); read() may be
 * called from any thread — coordinators snapshot pool workers' fds
 * before and after a run and subtract.
 */

#ifndef PHLOEM_RUNTIME_HWCOUNT_H
#define PHLOEM_RUNTIME_HWCOUNT_H

#include <cstdint>
#include <string>

namespace phloem::rt {

/** One thread's scaled counter values (cumulative since open()). */
struct HwCounts
{
    bool valid = false;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llcRefs = 0;
    uint64_t llcMisses = 0;
    /** Backend-stall cycles; 0 on PMUs that lack the event. */
    uint64_t stalledCycles = 0;

    double
    ipc() const
    {
        return cycles > 0 ? static_cast<double>(instructions) /
                                static_cast<double>(cycles)
                          : 0.0;
    }

    /** LLC miss ratio in [0, 1]; 0 when no references were counted. */
    double
    llcMissRate() const
    {
        return llcRefs > 0 ? static_cast<double>(llcMisses) /
                                 static_cast<double>(llcRefs)
                           : 0.0;
    }

    void
    accumulate(const HwCounts& other)
    {
        if (!other.valid)
            return;
        valid = true;
        cycles += other.cycles;
        instructions += other.instructions;
        llcRefs += other.llcRefs;
        llcMisses += other.llcMisses;
        stalledCycles += other.stalledCycles;
    }

    /** this - earlier, clamped at 0 per counter (multiplexing jitter). */
    HwCounts
    minus(const HwCounts& earlier) const
    {
        HwCounts d;
        d.valid = valid && earlier.valid;
        auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
        d.cycles = sub(cycles, earlier.cycles);
        d.instructions = sub(instructions, earlier.instructions);
        d.llcRefs = sub(llcRefs, earlier.llcRefs);
        d.llcMisses = sub(llcMisses, earlier.llcMisses);
        d.stalledCycles = sub(stalledCycles, earlier.stalledCycles);
        return d;
    }
};

/**
 * The perf fds of one counted thread. open() attaches to the calling
 * thread; read() is thread-safe relative to the counted thread (perf
 * fds may be read from anywhere). Not copyable: the fds are owned.
 */
class HwThreadCounters
{
  public:
    HwThreadCounters() = default;
    ~HwThreadCounters() { close(); }

    HwThreadCounters(const HwThreadCounters&) = delete;
    HwThreadCounters& operator=(const HwThreadCounters&) = delete;

    /**
     * Open counters for the calling thread. False when the kernel
     * forbids it (see hwCountersAvailable) or PHLOEM_HWCOUNT=0; cycles
     * and instructions must both open for the set to count as valid,
     * the cache/stall events are best-effort (PMU-dependent).
     */
    bool open();

    /** Scaled cumulative counts; valid=false when not open. */
    HwCounts read() const;

    bool isOpen() const { return fds_[0] >= 0; }

    void close();

  private:
    static constexpr int kNumEvents = 5;
    int fds_[kNumEvents] = {-1, -1, -1, -1, -1};
};

/**
 * One-time probe: can this process open a perf counter at all?
 * The first failing probe emits a single warning naming the errno and
 * the perf_event_paranoid remedy; every later call is a cached load.
 * PHLOEM_HWCOUNT=0/off force-disables without warning.
 */
bool hwCountersAvailable();

/** Why counters are unavailable ("" when hwCountersAvailable()). */
const std::string& hwUnavailableReason();

/**
 * Portable resource usage, captured before/after a run and differenced.
 * Always available: this is the fallback observability floor when the
 * PMU is not.
 */
struct ResourceUsage
{
    /** Process high-water RSS in KiB (absolute, not a delta). */
    double maxRssKb = 0.0;
    uint64_t voluntaryCtxSw = 0;
    uint64_t involuntaryCtxSw = 0;
    double userNs = 0.0;
    double systemNs = 0.0;

    /** getrusage(RUSAGE_SELF) snapshot. */
    static ResourceUsage processNow();

    /** Delta of the accumulating fields; maxRssKb stays absolute. */
    ResourceUsage
    minus(const ResourceUsage& earlier) const
    {
        ResourceUsage d;
        d.maxRssKb = maxRssKb;
        auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
        d.voluntaryCtxSw = sub(voluntaryCtxSw, earlier.voluntaryCtxSw);
        d.involuntaryCtxSw =
            sub(involuntaryCtxSw, earlier.involuntaryCtxSw);
        d.userNs = userNs > earlier.userNs ? userNs - earlier.userNs : 0.0;
        d.systemNs =
            systemNs > earlier.systemNs ? systemNs - earlier.systemNs : 0.0;
        return d;
    }
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_HWCOUNT_H
