#include "runtime/jit.h"

#include <dlfcn.h>

#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "base/logging.h"
#include "ir/op.h"
#include "runtime/sched.h"
#include "sim/eval.h"

namespace phloem::rt {

// The emitted C file defines its own copy of these structs; the host
// passes its register file straight through, so the layouts must agree.
static_assert(sizeof(PhloemJitValue) == sizeof(ir::Value),
              "PhloemJitValue must mirror ir::Value");
static_assert(offsetof(PhloemJitValue, bits) == offsetof(ir::Value, bits) &&
                  offsetof(PhloemJitValue, ctrl) == offsetof(ir::Value, ctrl),
              "PhloemJitValue must mirror ir::Value");
static_assert(alignof(PhloemJitValue) == alignof(ir::Value),
              "PhloemJitValue must mirror ir::Value");

namespace {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Opcode names the emitter must pretend not to support (tests). */
std::set<std::string>
deniedOps()
{
    std::set<std::string> out;
    const char* env = std::getenv("PHLOEM_JIT_DENY_OPS");
    if (env == nullptr)
        return out;
    std::string s(env);
    size_t pos = 0;
    while (pos <= s.size()) {
        size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        std::string tok = s.substr(pos, comma - pos);
        for (char& c : tok)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (!tok.empty())
            out.insert(tok);
        pos = comma + 1;
    }
    return out;
}

std::string
sanitizeName(const std::string& name)
{
    std::string out;
    for (char c : name)
        out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0
                          ? c
                          : '_');
    if (out.empty())
        out = "stage";
    return out;
}

std::string
reg(ir::RegId r)
{
    return "regs[" + std::to_string(r) + "]";
}

/** `(int64_t)regs[r].bits` — asInt() of a source register. */
std::string
ival(ir::RegId r)
{
    return "(int64_t)" + reg(r) + ".bits";
}

/** `pj_f(regs[r].bits)` — asDouble() of a source register. */
std::string
fval(ir::RegId r)
{
    return "pj_f(" + reg(r) + ".bits)";
}

/**
 * Emit C statements assigning sim::evalScalarOp(inst) to `dst` (a
 * pj_value lvalue). Every statement reads sources before `dst.ctrl` is
 * cleared, so dst may alias a source. Returns false (with *err set) on
 * an opcode the emitter does not support.
 */
bool
emitScalarAssign(std::ostringstream& o, const sim::Inst& inst,
                 const std::string& dst, std::string* err)
{
    using ir::Opcode;
    const ir::RegId a = inst.src0;
    const ir::RegId b = inst.src1;

    auto bin = [&](const char* op) {
        o << "    " << dst << ".bits = " << reg(a) << ".bits " << op << " "
          << reg(b) << ".bits; " << dst << ".ctrl = 0u;\n";
    };
    auto cmp = [&](const char* op) {
        o << "    " << dst << ".bits = (" << ival(a) << " " << op << " "
          << ival(b) << ") ? 1u : 0u; " << dst << ".ctrl = 0u;\n";
    };
    auto fbin = [&](const char* op) {
        o << "    " << dst << ".bits = pj_fb(" << fval(a) << " " << op << " "
          << fval(b) << "); " << dst << ".ctrl = 0u;\n";
    };
    auto fcmp = [&](const char* op) {
        o << "    " << dst << ".bits = (" << fval(a) << " " << op << " "
          << fval(b) << ") ? 1u : 0u; " << dst << ".ctrl = 0u;\n";
    };

    switch (inst.opcode) {
      case Opcode::kConst:
        o << "    " << dst << ".bits = "
          << static_cast<uint64_t>(inst.imm) << "ULL; " << dst
          << ".ctrl = 0u;\n";
        return true;
      case Opcode::kMov:
        o << "    " << dst << " = " << reg(a) << ";\n";
        return true;
      case Opcode::kAdd: bin("+"); return true;
      case Opcode::kSub: bin("-"); return true;
      case Opcode::kMul: bin("*"); return true;
      case Opcode::kDiv:
        o << "    " << dst << ".bits = (uint64_t)pj_div(" << ival(a) << ", "
          << ival(b) << "); " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kRem:
        o << "    " << dst << ".bits = (uint64_t)pj_rem(" << ival(a) << ", "
          << ival(b) << "); " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kAnd: bin("&"); return true;
      case Opcode::kOr: bin("|"); return true;
      case Opcode::kXor: bin("^"); return true;
      case Opcode::kShl:
        o << "    " << dst << ".bits = " << reg(a) << ".bits << ("
          << reg(b) << ".bits & 63u); " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kShr:
        o << "    " << dst << ".bits = " << reg(a) << ".bits >> ("
          << reg(b) << ".bits & 63u); " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kMin:
        o << "    " << dst << ".bits = (" << ival(a) << " < " << ival(b)
          << ") ? " << reg(a) << ".bits : " << reg(b) << ".bits; " << dst
          << ".ctrl = 0u;\n";
        return true;
      case Opcode::kMax:
        o << "    " << dst << ".bits = (" << ival(a) << " < " << ival(b)
          << ") ? " << reg(b) << ".bits : " << reg(a) << ".bits; " << dst
          << ".ctrl = 0u;\n";
        return true;
      case Opcode::kCmpEq: cmp("=="); return true;
      case Opcode::kCmpNe: cmp("!="); return true;
      case Opcode::kCmpLt: cmp("<"); return true;
      case Opcode::kCmpLe: cmp("<="); return true;
      case Opcode::kCmpGt: cmp(">"); return true;
      case Opcode::kCmpGe: cmp(">="); return true;
      case Opcode::kNot:
        o << "    " << dst << ".bits = (" << ival(a) << " == 0) ? 1u : 0u; "
          << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kSelect:
        o << "    " << dst << " = (" << ival(a) << " != 0) ? " << reg(b)
          << " : " << reg(inst.src2) << ";\n";
        return true;
      case Opcode::kFAdd: fbin("+"); return true;
      case Opcode::kFSub: fbin("-"); return true;
      case Opcode::kFMul: fbin("*"); return true;
      case Opcode::kFDiv: fbin("/"); return true;
      case Opcode::kFNeg:
        o << "    " << dst << ".bits = pj_fb(-" << fval(a) << "); " << dst
          << ".ctrl = 0u;\n";
        return true;
      case Opcode::kFAbs:
        o << "    " << dst << ".bits = pj_fb(__builtin_fabs(" << fval(a)
          << ")); " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kFMin:
        // std::min(f0, f1) returns f0 unless f1 < f0 (incl. NaN cases).
        o << "    " << dst << ".bits = pj_fb((" << fval(b) << " < "
          << fval(a) << ") ? " << fval(b) << " : " << fval(a) << "); "
          << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kFMax:
        // std::max(f0, f1) returns f0 unless f0 < f1 (incl. NaN cases).
        o << "    " << dst << ".bits = pj_fb((" << fval(a) << " < "
          << fval(b) << ") ? " << fval(b) << " : " << fval(a) << "); "
          << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kFCmpEq: fcmp("=="); return true;
      case Opcode::kFCmpNe: fcmp("!="); return true;
      case Opcode::kFCmpLt: fcmp("<"); return true;
      case Opcode::kFCmpLe: fcmp("<="); return true;
      case Opcode::kFCmpGt: fcmp(">"); return true;
      case Opcode::kFCmpGe: fcmp(">="); return true;
      case Opcode::kI2F:
        o << "    " << dst << ".bits = pj_fb((double)" << ival(a) << "); "
          << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kF2I:
        o << "    " << dst << ".bits = (uint64_t)pj_f2i(" << fval(a)
          << "); " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kIsControl:
        o << "    " << dst << ".bits = (" << reg(a)
          << ".ctrl != 0u) ? 1u : 0u; " << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kCtrlCode:
        o << "    " << dst << ".bits = (" << reg(a) << ".ctrl != 0u)"
          << " ? (uint64_t)(" << reg(a) << ".ctrl - 1u) : (uint64_t)-1; "
          << dst << ".ctrl = 0u;\n";
        return true;
      case Opcode::kWork:
        o << "    " << dst << ".bits = pj_workmix(" << reg(a)
          << ".bits); " << dst << ".ctrl = 0u;\n";
        return true;
      default:
        *err = std::string("unsupported scalar opcode '") +
               ir::opcodeName(inst.opcode) + "'";
        return false;
    }
}

/** `opc[<opcode>] += 1;` with the name as a comment. */
std::string
countOp(ir::Opcode op)
{
    return "    opc[" + std::to_string(static_cast<int>(op)) +
           "] += 1; /* " + ir::opcodeName(op) + " */\n";
}

} // namespace

// ---------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------

std::string
jitEmitC(const sim::Program& prog, const DecodedProgram& shape,
         const std::string& stage_name, std::string* err)
{
    const std::set<std::string> deny = deniedOps();
    for (const sim::Inst& inst : prog.code) {
        if (inst.kind != sim::Inst::Kind::kOp)
            continue;
        if (deny.count(ir::opcodeName(inst.opcode)) != 0) {
            *err = std::string("emitter: opcode '") +
                   ir::opcodeName(inst.opcode) +
                   "' denied by PHLOEM_JIT_DENY_OPS";
            return "";
        }
    }

    std::ostringstream o;
    o << "/* Generated by the Phloem JIT tier; do not edit.\n"
      << " * Stage: " << stage_name << " (" << prog.code.size()
      << " raw instructions, " << shape.fusedSites << " fused sites)\n"
      << " * Semantics mirror sim/eval.h and runtime/engine.cc exactly;\n"
      << " * queue ids are replica-relative (the host re-bases them). */\n"
      << "#include <stdint.h>\n"
      << "#include <string.h>\n"
      << "\n"
      << "typedef struct { uint64_t bits; uint32_t ctrl; } pj_value;\n"
      << "typedef struct pj_ctx pj_ctx;\n"
      << "struct pj_ctx {\n"
      << "    pj_value* regs;\n"
      << "    uint64_t* insns;\n"
      << "    uint64_t* branches;\n"
      << "    uint64_t* queue_ops;\n"
      << "    uint64_t* op_counts;\n"
      << "    uint64_t* work_sink;\n"
      << "    int32_t* pc;\n"
      << "    void* host;\n"
      << "    int (*slow_tick)(pj_ctx*);\n"
      << "    int (*push)(pj_ctx*, int32_t, const pj_value*);\n"
      << "    int (*push_dist)(pj_ctx*, int32_t, int64_t, const pj_value*);\n"
      << "    int (*pop)(pj_ctx*, int32_t, pj_value*);\n"
      << "    int (*peek)(pj_ctx*, int32_t, pj_value*);\n"
      << "    int (*barrier)(pj_ctx*);\n"
      << "    int (*load)(pj_ctx*, int32_t, int64_t, pj_value*);\n"
      << "    int (*store)(pj_ctx*, int32_t, int64_t, const pj_value*);\n"
      << "    int (*mem_op)(pj_ctx*, int32_t, pj_value*);\n"
      << "    int (*swap_arr)(pj_ctx*, int32_t, int32_t);\n"
      << "};\n"
      << "\n"
      << "static double pj_f(uint64_t b) "
      << "{ double d; memcpy(&d, &b, 8); return d; }\n"
      << "static uint64_t pj_fb(double d) "
      << "{ uint64_t b; memcpy(&b, &d, 8); return b; }\n"
      << "static uint64_t pj_workmix(uint64_t x)\n"
      << "{\n"
      << "    x ^= x >> 33;\n"
      << "    x *= 0xff51afd7ed558ccdULL;\n"
      << "    x ^= x >> 33;\n"
      << "    return x;\n"
      << "}\n"
      << "static int64_t pj_div(int64_t a, int64_t b)\n"
      << "{\n"
      << "    if (b == 0) return 0;\n"
      << "    if (b == -1 && a == INT64_MIN) return a;\n"
      << "    return a / b;\n"
      << "}\n"
      << "static int64_t pj_rem(int64_t a, int64_t b)\n"
      << "{\n"
      << "    if (b == 0 || b == -1) return 0;\n"
      << "    return a % b;\n"
      << "}\n"
      << "static int64_t pj_f2i(double v)\n"
      << "{\n"
      << "    if (v != v) return 0;\n"
      << "    if (v < -9223372036854775808.0) return INT64_MIN;\n"
      << "    if (v >= 9223372036854775808.0) return INT64_MAX;\n"
      << "    return (int64_t)v;\n"
      << "}\n"
      << "\n"
      << "#define PJ_TICK(n)                                        \\\n"
      << "    do {                                                  \\\n"
      << "        *insns += (n);                                    \\\n"
      << "        hb += (n);                                        \\\n"
      << "        if (hb >= " << kHeartbeatInterval << "u) {        \\\n"
      << "            if (!ctx->slow_tick(ctx))                     \\\n"
      << "                goto done;                                \\\n"
      << "            hb = 0u;                                      \\\n"
      << "        }                                                 \\\n"
      << "    } while (0)\n"
      << "\n"
      << "void phloem_jit_run(pj_ctx* ctx)\n"
      << "{\n"
      << "    pj_value* regs = ctx->regs;\n"
      << "    uint64_t* insns = ctx->insns;\n"
      << "    uint64_t* brs = ctx->branches;\n"
      << "    uint64_t* qops = ctx->queue_ops;\n"
      << "    uint64_t* opc = ctx->op_counts;\n"
      << "    int32_t* pcs = ctx->pc;\n"
      << "    uint64_t hb = 0u;\n"
      << "    pj_value t;\n"
      << "    t.bits = 0u; t.ctrl = 0u;\n"
      << "    (void)regs; (void)brs; (void)qops; (void)opc;\n"
      << "    (void)pcs; (void)t;\n";

    for (size_t i = 0; i < shape.code.size(); ++i) {
        const DInst& d = shape.code[i];
        o << "L" << i << ":;\n";
        switch (d.op) {
          case DOp::kEnd:
            o << "    goto done;\n";
            break;

          case DOp::kHalt:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    goto done;\n";
            break;

          case DOp::kBr:
            o << "    PJ_TICK(1);\n"
              << "    *brs += 1;\n"
              << "    goto L" << d.target << ";\n";
            break;

          case DOp::kBrIf:
          case DOp::kBrIfNot:
            o << "    PJ_TICK(1);\n"
              << "    *brs += 1;\n"
              << "    if (" << ival(d.src0)
              << (d.op == DOp::kBrIf ? " != 0" : " == 0") << ") goto L"
              << d.target << ";\n";
            break;

          case DOp::kScalar:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode);
            if (d.dst >= 0) {
                if (!emitScalarAssign(o, *d.raw, reg(d.dst), err))
                    return "";
            }
            break;

          case DOp::kWork:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    t.bits = pj_workmix(" << reg(d.src0)
              << ".bits); t.ctrl = 0u;\n";
            if (d.imm > 1) {
                // The simulator charges kWork as imm uops; burn the
                // same real compute, only the first mix lands in dst.
                o << "    {\n"
                  << "        uint64_t burn = t.bits;\n"
                  << "        int64_t k;\n"
                  << "        for (k = 1; k < " << d.imm << "LL; ++k)\n"
                  << "            burn = pj_workmix(burn);\n"
                  << "        *ctx->work_sink += burn;\n"
                  << "    }\n";
            }
            if (d.dst >= 0)
                o << "    " << reg(d.dst) << " = t;\n";
            break;

          case DOp::kLoad:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->load(ctx, " << d.arr << ", " << ival(d.src0)
              << ", &t)) goto done;\n";
            if (d.dst >= 0)
                o << "    " << reg(d.dst) << " = t;\n";
            break;

          case DOp::kStore:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->store(ctx, " << d.arr << ", " << ival(d.src0)
              << ", &" << reg(d.src1) << ")) goto done;\n";
            if (d.dst >= 0)
                o << "    " << reg(d.dst) << ".bits = 0u; " << reg(d.dst)
                  << ".ctrl = 0u;\n";
            break;

          case DOp::kMemOther:
          case DOp::kAtomic:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->mem_op(ctx, " << i << ", &t)) goto done;\n";
            if (d.dst >= 0)
                o << "    " << reg(d.dst) << " = t;\n";
            break;

          case DOp::kSwapArr:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    if (!ctx->swap_arr(ctx, " << d.arr << ", " << d.arr2
              << ")) goto done;\n";
            break;

          case DOp::kBarrier:
            o << "    PJ_TICK(1);\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->barrier(ctx)) goto done;\n";
            break;

          case DOp::kEnq:
            o << "    PJ_TICK(1);\n"
              << "    *qops += 1;\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->push(ctx, " << d.queueRel << ", &"
              << reg(d.src0) << ")) goto done;\n";
            break;

          case DOp::kEnqCtrl:
            o << "    PJ_TICK(1);\n"
              << "    *qops += 1;\n" << countOp(d.opcode)
              << "    t.bits = 0u; t.ctrl = "
              << static_cast<uint32_t>(d.imm) + 1u << "u;\n"
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->push(ctx, " << d.queueRel
              << ", &t)) goto done;\n";
            break;

          case DOp::kEnqDist: {
            o << "    PJ_TICK(1);\n"
              << "    *qops += 1;\n" << countOp(d.opcode);
            std::string v;
            if (d.src0 < 0) {
                o << "    t.bits = 0u; t.ctrl = "
                  << static_cast<uint32_t>(d.imm) + 1u << "u;\n";
                v = "&t";
            } else {
                v = "&" + reg(d.src0);
            }
            o << "    *pcs = " << i << ";\n"
              << "    if (!ctx->push_dist(ctx, " << d.queueBase << ", "
              << ival(d.src1) << ", " << v << ")) goto done;\n";
            break;
          }

          case DOp::kDeq:
            o << "    PJ_TICK(1);\n"
              << "    *qops += 1;\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->pop(ctx, " << d.queueRel
              << ", &t)) goto done;\n"
              << "    " << reg(d.dst) << " = t;\n";
            if (d.handlerPc >= 0)
                o << "    if (t.ctrl != 0u) goto L" << d.handlerPc << ";\n";
            break;

          case DOp::kPeek:
            o << "    PJ_TICK(1);\n"
              << "    *qops += 1;\n" << countOp(d.opcode)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->peek(ctx, " << d.queueRel
              << ", &t)) goto done;\n"
              << "    " << reg(d.dst) << " = t;\n";
            break;

          // Fused superinstructions: two raw instructions, kept fused.
          // Both halves retire here; slot i+1 below is only the landing
          // pad for branches entering the pair in the middle, so every
          // exit jumps explicitly (fall-through would re-run half two).
          case DOp::kScalarBr:
            o << "    PJ_TICK(2);\n" << countOp(d.opcode)
              << "    *brs += 1;\n";
            if (!emitScalarAssign(o, *d.raw, "t", err))
                return "";
            o << "    " << reg(d.dst) << " = t;\n"
              << "    if ((int64_t)t.bits "
              << (d.negate ? "== 0" : "!= 0") << ") goto L" << d.target
              << ";\n"
              << "    goto L" << i + 2 << ";\n";
            break;

          case DOp::kScalarJmp:
            o << "    PJ_TICK(2);\n" << countOp(d.opcode)
              << "    *brs += 1;\n";
            if (!emitScalarAssign(o, *d.raw, reg(d.dst), err))
                return "";
            o << "    goto L" << d.target << ";\n";
            break;

          case DOp::kScalarEnq:
            o << "    PJ_TICK(2);\n"
              << "    *qops += 1;\n" << countOp(d.opcode)
              << countOp(d.opcode2);
            if (!emitScalarAssign(o, *d.raw, "t", err))
                return "";
            o << "    " << reg(d.dst) << " = t;\n"
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->push(ctx, " << d.queueRel
              << ", &t)) goto done;\n"
              << "    goto L" << i + 2 << ";\n";
            break;

          case DOp::kLoadEnq:
            o << "    PJ_TICK(2);\n"
              << "    *qops += 1;\n" << countOp(d.opcode)
              << countOp(d.opcode2)
              << "    *pcs = " << i << ";\n"
              << "    if (!ctx->load(ctx, " << d.arr << ", " << ival(d.src0)
              << ", &t)) goto done;\n"
              << "    " << reg(d.dst) << " = t;\n"
              << "    if (!ctx->push(ctx, " << d.queueRel
              << ", &t)) goto done;\n"
              << "    goto L" << i + 2 << ";\n";
            break;

          case DOp::kCount_:
            *err = "emitter: invalid dispatch code";
            return "";
        }
    }

    o << "done:\n"
      << "    return;\n"
      << "}\n";
    return o.str();
}

// ---------------------------------------------------------------------
// Compile lifecycle: emit -> host cc -> dlopen.
// ---------------------------------------------------------------------

JitArtifact::~JitArtifact()
{
    if (dso != nullptr)
        dlclose(dso);
    if (!keep && !dir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
}

JitArtifactPtr
jitCompileStage(const sim::Program& prog, const DecodedProgram& shape,
                const std::string& stage_name)
{
    auto art = std::make_shared<JitArtifact>();
    art->fusedSites = shape.fusedSites;

    uint64_t t0 = nowNs();
    std::string err;
    std::string source = jitEmitC(prog, shape, stage_name, &err);
    art->emitNs = static_cast<double>(nowNs() - t0);
    if (source.empty()) {
        art->error = err.empty() ? "emitter produced no code" : err;
        return art;
    }

    // Artifact directory: a temp dir by default, or a named dir under
    // PHLOEM_JIT_ARTIFACT_DIR (kept, so CI can upload the emitted C).
    const char* artdir = std::getenv("PHLOEM_JIT_ARTIFACT_DIR");
    const char* keepenv = std::getenv("PHLOEM_JIT_KEEP");
    art->keep = artdir != nullptr ||
                (keepenv != nullptr && std::string(keepenv) == "1");
    std::string tmpl;
    if (artdir != nullptr) {
        std::error_code ec;
        std::filesystem::create_directories(artdir, ec);
        tmpl = std::string(artdir) + "/" + sanitizeName(stage_name) +
               "-XXXXXX";
    } else {
        tmpl = "/tmp/phloem-jit-XXXXXX";
    }
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
        art->error = "mkdtemp failed for " + tmpl;
        return art;
    }
    art->dir = buf.data();
    art->cPath = art->dir + "/stage.c";
    {
        std::ofstream f(art->cPath);
        f << source;
        if (!f.good()) {
            art->error = "failed to write " + art->cPath;
            return art;
        }
    }

    const char* cc = std::getenv("PHLOEM_JIT_CC");
    if (cc == nullptr || *cc == '\0')
        cc = "cc";
    std::string so = art->dir + "/stage.so";
    std::string errfile = art->dir + "/cc.err";
    std::string cmd = std::string(cc) + " -O2 -fPIC -shared -o '" + so +
                      "' '" + art->cPath + "' 2> '" + errfile + "'";
    t0 = nowNs();
    int rc = std::system(cmd.c_str());
    art->compileNs = static_cast<double>(nowNs() - t0);
    if (rc != 0) {
        std::string detail;
        std::ifstream f(errfile);
        if (f.good()) {
            std::ostringstream ss;
            ss << f.rdbuf();
            detail = ss.str();
            if (detail.size() > 2048)
                detail.resize(2048);
        }
        art->error = std::string(cc) + " failed (exit " +
                     std::to_string(rc) + ") for " + stage_name +
                     (detail.empty() ? "" : ": " + detail);
        return art;
    }

    t0 = nowNs();
    void* dso = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (dso == nullptr) {
        art->loadNs = static_cast<double>(nowNs() - t0);
        const char* msg = dlerror();
        art->error = "dlopen failed for " + stage_name + ": " +
                     (msg != nullptr ? msg : "unknown error");
        return art;
    }
    art->dso = dso;
    void* sym = dlsym(dso, "phloem_jit_run");
    art->loadNs = static_cast<double>(nowNs() - t0);
    if (sym == nullptr) {
        art->error = "dlsym(phloem_jit_run) failed for " + stage_name;
        return art;
    }
    art->entry = reinterpret_cast<PhloemJitEntry>(sym);
    return art;
}

// ---------------------------------------------------------------------
// JitHost: the blocking primitives and callbacks.
// ---------------------------------------------------------------------

JitHost::JitHost(const sim::Program& prog, const EngineEnv& env,
                 int queue_offset)
    : prog_(&prog), env_(env), queueOffset_(queue_offset)
{
    phloem_assert(env_.regs != nullptr && env_.ctl != nullptr &&
                      env_.stats != nullptr && env_.queues != nullptr,
                  "jit host env incomplete");
    bufs_.resize(env_.queues->size());
}

JitHost::~JitHost() = default;

void
JitHost::run(const JitArtifact& art)
{
    phloem_assert(art.entry != nullptr, "jit artifact not loaded");
    phloem_assert(env_.stats->opCounts.size() ==
                      static_cast<size_t>(ir::kNumOpcodes),
                  "opCounts not sized for the jit tier");

    PhloemJitCtx ctx{};
    ctx.regs = reinterpret_cast<PhloemJitValue*>(env_.regs);
    ctx.instructions = &env_.stats->instructions;
    ctx.branches = &env_.stats->branches;
    ctx.queueOps = &env_.stats->queueOps;
    ctx.opCounts = env_.stats->opCounts.data();
    ctx.workSink = &workSink_;
    ctx.pc = &pc_;
    ctx.host = this;
    ctx.slowTick = &JitHost::cbSlowTick;
    ctx.push = &JitHost::cbPush;
    ctx.pushDist = &JitHost::cbPushDist;
    ctx.pop = &JitHost::cbPop;
    ctx.peek = &JitHost::cbPeek;
    ctx.barrier = &JitHost::cbBarrier;
    ctx.load = &JitHost::cbLoad;
    ctx.store = &JitHost::cbStore;
    ctx.memOp = &JitHost::cbMemOp;
    ctx.swapArr = &JitHost::cbSwapArr;

    art.entry(&ctx);

    if (eptr_) {
        std::exception_ptr e = eptr_;
        eptr_ = nullptr;
        std::rethrow_exception(e);
    }
}

void
JitHost::reportDeadlock(const char* what, int abs_q)
{
    std::string msg = "deadlock: " + env_.stats->name + " blocked on " +
                      what + " q" + std::to_string(abs_q) + " at pc=" +
                      std::to_string(pc_) + " with no global progress for " +
                      std::to_string(env_.ctl->opt.deadlockTimeoutMs) +
                      " ms";
    env_.ctl->fail(msg);
    throw std::runtime_error(msg);
}

bool
JitHost::waitPush(SpscQueue& q, int abs_q, const ir::Value& v)
{
    if (q.tryPush(v))
        return true;
    q.noteEnqBlocked();
    uint64_t t0 = env_.trace ? env_.trace->now() : 0;
    ParkTarget pt = makePushTarget(q, abs_q);
    Backoff backoff(*env_.ctl);
    for (;;) {
        if (q.tryPush(v)) {
            env_.ctl->progress.fetch_add(1, std::memory_order_relaxed);
            if (env_.trace)
                env_.trace->record(trace::EventKind::kEnqBlock, abs_q,
                                   t0, env_.trace->now());
            return true;
        }
        switch (backoff.step(*env_.ctl, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kEnqBlock, abs_q,
                                   t0, env_.trace->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kEnqBlock, abs_q,
                                   t0, env_.trace->now());
            reportDeadlock("enq", abs_q);
        }
    }
}

bool
JitHost::popValue(int abs_q, SpscQueue& q, ir::Value& v)
{
    ConsumerBuf& b = bufs_[static_cast<size_t>(abs_q)];
    if (b.pos < b.len) {
        v = b.data[b.pos++];
        return true;
    }
    if (!b.data)
        b.data = std::make_unique<ir::Value[]>(kBatchCap);
    size_t n = q.popBatch(kBatchCap, b.data.get());
    if (n == 0) {
        q.noteDeqBlocked();
        uint64_t t0 = env_.trace ? env_.trace->now() : 0;
        ParkTarget pt = makePopTarget(q, abs_q);
        Backoff backoff(*env_.ctl);
        for (;;) {
            n = q.popBatch(kBatchCap, b.data.get());
            if (n != 0) {
                env_.ctl->progress.fetch_add(1,
                                             std::memory_order_relaxed);
                if (env_.trace)
                    env_.trace->record(trace::EventKind::kDeqBlock,
                                       abs_q, t0, env_.trace->now());
                break;
            }
            switch (backoff.step(*env_.ctl, /*stoppable=*/false, &pt)) {
              case Backoff::Result::kRetry:
                break;
              case Backoff::Result::kStopped:
                if (env_.trace)
                    env_.trace->record(trace::EventKind::kDeqBlock,
                                       abs_q, t0, env_.trace->now());
                return false;
              case Backoff::Result::kDeadlock:
                if (env_.trace)
                    env_.trace->record(trace::EventKind::kDeqBlock,
                                       abs_q, t0, env_.trace->now());
                reportDeadlock("deq", abs_q);
            }
        }
    }
    b.len = static_cast<uint32_t>(n);
    b.pos = 1;
    v = b.data[0];
    return true;
}

bool
JitHost::peekValue(int abs_q, SpscQueue& q, ir::Value& v)
{
    // Peek must not consume, so it never triggers a refill: serve the
    // buffer front when one is pending, otherwise read the ring front.
    const ConsumerBuf& b = bufs_[static_cast<size_t>(abs_q)];
    if (b.pos < b.len) {
        v = b.data[b.pos];
        return true;
    }
    if (q.tryPeek(v))
        return true;
    q.noteDeqBlocked();
    uint64_t t0 = env_.trace ? env_.trace->now() : 0;
    ParkTarget pt = makePopTarget(q, abs_q, "peek");
    Backoff backoff(*env_.ctl);
    for (;;) {
        if (q.tryPeek(v)) {
            env_.ctl->progress.fetch_add(1, std::memory_order_relaxed);
            if (env_.trace)
                env_.trace->record(trace::EventKind::kDeqBlock, abs_q,
                                   t0, env_.trace->now());
            return true;
        }
        switch (backoff.step(*env_.ctl, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kDeqBlock, abs_q,
                                   t0, env_.trace->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (env_.trace)
                env_.trace->record(trace::EventKind::kDeqBlock, abs_q,
                                   t0, env_.trace->now());
            reportDeadlock("peek", abs_q);
        }
    }
}

std::vector<std::pair<int, uint64_t>>
JitHost::unconsumed() const
{
    std::vector<std::pair<int, uint64_t>> out;
    for (size_t q = 0; q < bufs_.size(); ++q) {
        const ConsumerBuf& b = bufs_[q];
        if (b.pos < b.len)
            out.emplace_back(static_cast<int>(q),
                             static_cast<uint64_t>(b.len - b.pos));
    }
    return out;
}

// --- Callbacks. Exceptions must not unwind through the emitted C
// frame: capture them, return 0 (the code exits), rethrow in run(). ---

int
JitHost::cbSlowTick(PhloemJitCtx* c)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        h->env_.ctl->progress.fetch_add(1, std::memory_order_relaxed);
        if (h->env_.ctl->aborted())
            return 0;
        if (h->env_.stats->instructions > h->env_.ctl->opt.maxInstructions) {
            std::string msg =
                "instruction budget exceeded (" +
                std::to_string(h->env_.ctl->opt.maxInstructions) + ") in " +
                h->env_.stats->name;
            h->env_.ctl->fail(msg);
            throw std::runtime_error(msg);
        }
        Scheduler::maybeYield();
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbPush(PhloemJitCtx* c, int32_t rel_q, const PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        int abs_q = h->queueOffset_ + rel_q;
        SpscQueue& q = *(*h->env_.queues)[static_cast<size_t>(abs_q)];
        ir::Value val;
        val.bits = v->bits;
        val.ctrl = v->ctrl;
        return h->waitPush(q, abs_q, val) ? 1 : 0;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbPushDist(PhloemJitCtx* c, int32_t queue_base, int64_t sel,
                    const PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        int target = sim::distTargetReplica(sel, h->env_.numReplicas);
        int abs_q = queue_base + target * h->env_.queueStride;
        SpscQueue& q = *(*h->env_.queues)[static_cast<size_t>(abs_q)];
        ir::Value val;
        val.bits = v->bits;
        val.ctrl = v->ctrl;
        return h->waitPush(q, abs_q, val) ? 1 : 0;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbPop(PhloemJitCtx* c, int32_t rel_q, PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        int abs_q = h->queueOffset_ + rel_q;
        SpscQueue& q = *(*h->env_.queues)[static_cast<size_t>(abs_q)];
        ir::Value val;
        if (!h->popValue(abs_q, q, val))
            return 0;
        v->bits = val.bits;
        v->ctrl = val.ctrl;
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbPeek(PhloemJitCtx* c, int32_t rel_q, PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        int abs_q = h->queueOffset_ + rel_q;
        SpscQueue& q = *(*h->env_.queues)[static_cast<size_t>(abs_q)];
        ir::Value val;
        if (!h->peekValue(abs_q, q, val))
            return 0;
        v->bits = val.bits;
        v->ctrl = val.ctrl;
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbBarrier(PhloemJitCtx* c)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        if (!h->env_.trace)
            return h->env_.barrier->arriveAndWait(*h->env_.ctl) ? 1 : 0;
        uint64_t t0 = h->env_.trace->now();
        bool ok = h->env_.barrier->arriveAndWait(*h->env_.ctl);
        h->env_.trace->record(trace::EventKind::kBarrierWait, -1, t0,
                              h->env_.trace->now());
        return ok ? 1 : 0;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbLoad(PhloemJitCtx* c, int32_t arr, int64_t idx,
                PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        // Bindings are looked up per execution: kSwapArr may retarget
        // them at runtime, so the emitted code never caches the buffer.
        sim::ArrayBuffer* buf = h->env_.arrayBind[static_cast<size_t>(arr)];
        ir::Value out = buf->load(idx);
        v->bits = out.bits;
        v->ctrl = out.ctrl;
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbStore(PhloemJitCtx* c, int32_t arr, int64_t idx,
                 const PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        sim::ArrayBuffer* buf = h->env_.arrayBind[static_cast<size_t>(arr)];
        ir::Value val;
        val.bits = v->bits;
        val.ctrl = v->ctrl;
        buf->store(idx, val);
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbMemOp(PhloemJitCtx* c, int32_t pc, PhloemJitValue* v)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        const sim::Inst& inst = h->prog_->code[static_cast<size_t>(pc)];
        sim::ArrayBuffer* buf =
            h->env_.arrayBind[static_cast<size_t>(inst.arr)];
        bool atomic = inst.opcode == ir::Opcode::kAtomicMin ||
                      inst.opcode == ir::Opcode::kAtomicAdd ||
                      inst.opcode == ir::Opcode::kAtomicFAdd ||
                      inst.opcode == ir::Opcode::kAtomicOr;
        ir::Value out;
        if (atomic) {
            // applyMemOp implements RMWs as load+store; serialize them
            // across stages so concurrent updates are not lost.
            std::lock_guard<std::mutex> g(h->env_.ctl->atomicsMu);
            out = sim::applyMemOp(
                inst, *buf, reinterpret_cast<const ir::Value*>(c->regs));
        } else {
            out = sim::applyMemOp(
                inst, *buf, reinterpret_cast<const ir::Value*>(c->regs));
        }
        v->bits = out.bits;
        v->ctrl = out.ctrl;
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

int
JitHost::cbSwapArr(PhloemJitCtx* c, int32_t arr, int32_t arr2)
{
    auto* h = static_cast<JitHost*>(c->host);
    try {
        std::swap(h->env_.arrayBind[static_cast<size_t>(arr)],
                  h->env_.arrayBind[static_cast<size_t>(arr2)]);
        return 1;
    } catch (...) {
        h->eptr_ = std::current_exception();
        return 0;
    }
}

} // namespace phloem::rt
