/**
 * @file
 * JIT execution tier: lower one stage's decoded program to C, compile
 * it with the host toolchain into a shared object, and run the stage
 * through the emitted entry point.
 *
 * This is the third tier above the raw interpreter and the pre-decoded
 * engine. The engine already collapsed dispatch to one indirect call
 * per DInst, but every instruction still pays that call plus runtime
 * operand decode. The emitter removes both: each DInst becomes
 * straight-line C with its operands baked in as constants — scalar
 * bodies inlined from the sim/eval.h functional core (bit-identical
 * wrap/div/NaN semantics), branch targets as labels, fused
 * superinstruction sites kept fused, and queue ids baked as
 * replica-RELATIVE constants so one compiled object serves every
 * replica and can be cached across runs by the compilation service.
 *
 * Anything that must touch runtime state the compiler cannot see —
 * blocking ring ops, array loads/stores (kSwapArr retargets bindings),
 * barriers, atomics — calls back into the host through a C function
 * table (PhloemJitCtx). Host callbacks never unwind through the C
 * frame: exceptions (deadlock watchdog, instruction budget,
 * out-of-bounds) are captured at the boundary, the callback returns 0,
 * the emitted code jumps to its exit, and the host rethrows — so the
 * failure behavior is exactly the engine's.
 *
 * The tier is always safe to enable: emission, compilation, or loading
 * failure of any one stage makes that stage fall back to the engine
 * (recorded in stats), and results stay bit-identical either way — the
 * differential fuzzer diffs serial/sim/engine/jit over the corpus.
 */

#ifndef PHLOEM_RUNTIME_JIT_H
#define PHLOEM_RUNTIME_JIT_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/decode.h"
#include "runtime/engine.h"
#include "sim/program.h"

namespace phloem::rt {

/**
 * 64-bit value crossing the C ABI boundary. Layout-identical to
 * ir::Value (checked by static_asserts in jit.cc) so the host passes
 * its register file pointer straight through.
 */
struct PhloemJitValue
{
    uint64_t bits;
    uint32_t ctrl;
};

/**
 * The context handed to the emitted entry point: raw pointers into the
 * worker's register file and stats counters, plus the host-callback
 * table. The emitted C file defines a structurally identical struct;
 * field order and types here are ABI and must not change without
 * changing the emitter in lockstep.
 *
 * Callbacks return 1 to continue and 0 to stop (halt, abort, or a
 * captured exception); the emitted code exits on 0.
 */
struct PhloemJitCtx
{
    PhloemJitValue* regs;
    uint64_t* instructions;
    uint64_t* branches;
    uint64_t* queueOps;
    uint64_t* opCounts;
    uint64_t* workSink;
    /** Published before every host call (deadlock diagnostics). */
    int32_t* pc;
    void* host;

    int (*slowTick)(PhloemJitCtx*);
    int (*push)(PhloemJitCtx*, int32_t rel_q, const PhloemJitValue*);
    int (*pushDist)(PhloemJitCtx*, int32_t queue_base, int64_t sel,
                    const PhloemJitValue*);
    int (*pop)(PhloemJitCtx*, int32_t rel_q, PhloemJitValue*);
    int (*peek)(PhloemJitCtx*, int32_t rel_q, PhloemJitValue*);
    int (*barrier)(PhloemJitCtx*);
    int (*load)(PhloemJitCtx*, int32_t arr, int64_t idx, PhloemJitValue*);
    int (*store)(PhloemJitCtx*, int32_t arr, int64_t idx,
                 const PhloemJitValue*);
    /** Generic memory op (kPrefetch / atomics) via the raw Inst at pc. */
    int (*memOp)(PhloemJitCtx*, int32_t pc, PhloemJitValue*);
    int (*swapArr)(PhloemJitCtx*, int32_t arr, int32_t arr2);
};

/** Signature of the emitted entry point (dlsym "phloem_jit_run"). */
using PhloemJitEntry = void (*)(PhloemJitCtx*);

/**
 * One JIT-compiled stage program: the loaded shared object and its
 * entry point, shared across replicas and (via the compilation
 * service's pipeline cache) across runs. On failure `entry` is null
 * and `error` says why — the stage then falls back to the engine.
 */
struct JitArtifact
{
    PhloemJitEntry entry = nullptr;
    /** Why compilation failed ("" when ok()). */
    std::string error;
    /** Static fusion sites in the emitted code (stats parity). */
    int fusedSites = 0;

    // Stage-lifecycle latencies, in nanoseconds.
    double emitNs = 0.0;    ///< decode shape -> C text
    double compileNs = 0.0; ///< host toolchain -> .so
    double loadNs = 0.0;    ///< dlopen + dlsym

    /** Artifact directory (emitted C, .so, compiler stderr). */
    std::string dir;
    /** Emitted C file path (CI uploads it on failure). */
    std::string cPath;
    /** Keep the artifact directory on destruction (debugging/CI). */
    bool keep = false;

    JitArtifact() = default;
    JitArtifact(const JitArtifact&) = delete;
    JitArtifact& operator=(const JitArtifact&) = delete;
    /** dlcloses the object and removes dir unless keep. */
    ~JitArtifact();

    bool ok() const { return entry != nullptr; }

    void* dso = nullptr;
};

using JitArtifactPtr = std::shared_ptr<const JitArtifact>;

/**
 * Emit, compile, and load one stage program. Never throws and never
 * returns null: on any failure the artifact has entry == nullptr and
 * `error` set, which callers record and fall back on. `shape` must be
 * the decoded shape of `prog` (relative queue ids; relocation state is
 * ignored).
 *
 * Environment hooks:
 *  - PHLOEM_JIT_CC: host compiler command (default "cc"); tests point
 *    it at /bin/false or /bin/true to force compile / load failures.
 *  - PHLOEM_JIT_DENY_OPS: comma-separated ir opcode names the emitter
 *    pretends not to support (forces engine fallback; tests).
 *  - PHLOEM_JIT_ARTIFACT_DIR: emit artifacts under this directory and
 *    keep them (CI uploads emitted C on failure).
 *  - PHLOEM_JIT_KEEP=1: keep the temp artifact directories.
 */
JitArtifactPtr jitCompileStage(const sim::Program& prog,
                               const DecodedProgram& shape,
                               const std::string& stage_name);

/** Emit the C source for one stage (exposed for tests/debugging). */
std::string jitEmitC(const sim::Program& prog, const DecodedProgram& shape,
                     const std::string& stage_name, std::string* err);

/**
 * Host side of one JIT stage execution: owns the consumer-side batch
 * buffers (same batched popBatch draining as the engine, so queue
 * statistics agree) and the callback implementations. One host per
 * worker per run; the artifact is shared.
 */
class JitHost
{
  public:
    /**
     * `prog` backs the generic memOp callback (raw Inst lookup);
     * `env` is the same borrowed state the engine gets;
     * `queue_offset` re-bases the emitted code's relative queue ids.
     */
    JitHost(const sim::Program& prog, const EngineEnv& env,
            int queue_offset);
    ~JitHost();

    /**
     * Run the stage through the artifact's entry point. Rethrows any
     * exception captured at the callback boundary (deadlock watchdog,
     * instruction budget, out-of-bounds) after the C frame has
     * returned, so failure behavior matches the engine exactly.
     */
    void run(const JitArtifact& art);

    /** Per-queue (absolute id, count) of drained-but-undequeued values. */
    std::vector<std::pair<int, uint64_t>> unconsumed() const;

  private:
    struct ConsumerBuf
    {
        std::unique_ptr<ir::Value[]> data;
        uint32_t pos = 0;
        uint32_t len = 0;
    };

    /** Values drained per popBatch refill (engine's kBatchCap). */
    static constexpr size_t kBatchCap = 256;

    // Callback implementations (see jit.cc).
    static int cbSlowTick(PhloemJitCtx* c);
    static int cbPush(PhloemJitCtx* c, int32_t rel_q,
                      const PhloemJitValue* v);
    static int cbPushDist(PhloemJitCtx* c, int32_t queue_base, int64_t sel,
                          const PhloemJitValue* v);
    static int cbPop(PhloemJitCtx* c, int32_t rel_q, PhloemJitValue* v);
    static int cbPeek(PhloemJitCtx* c, int32_t rel_q, PhloemJitValue* v);
    static int cbBarrier(PhloemJitCtx* c);
    static int cbLoad(PhloemJitCtx* c, int32_t arr, int64_t idx,
                      PhloemJitValue* v);
    static int cbStore(PhloemJitCtx* c, int32_t arr, int64_t idx,
                       const PhloemJitValue* v);
    static int cbMemOp(PhloemJitCtx* c, int32_t pc, PhloemJitValue* v);
    static int cbSwapArr(PhloemJitCtx* c, int32_t arr, int32_t arr2);

    bool waitPush(SpscQueue& q, int abs_q, const ir::Value& v);
    bool popValue(int abs_q, SpscQueue& q, ir::Value& v);
    bool peekValue(int abs_q, SpscQueue& q, ir::Value& v);
    [[noreturn]] void reportDeadlock(const char* what, int abs_q);

    const sim::Program* prog_;
    EngineEnv env_;
    int queueOffset_;
    /** Exception captured at the callback boundary; rethrown by run(). */
    std::exception_ptr eptr_;
    /** Sink for kWork burn loops (keeps them observable). */
    uint64_t workSink_ = 0;
    /** Published pc of the emitted code (diagnostics). */
    int32_t pc_ = 0;
    /** Consumer-side batch buffers, indexed by absolute queue id. */
    std::vector<ConsumerBuf> bufs_;
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_JIT_H
