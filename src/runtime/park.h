/**
 * @file
 * Parking primitives shared between the SPSC rings and the task
 * scheduler: the waiter lists a blocked task registers on, and the
 * ParkTarget descriptor a blocking wait hands to the backoff layer.
 *
 * This header is deliberately tiny and free of scheduler internals so
 * queue.h can embed waiter slots without pulling in fibers or worker
 * pools. The lifecycle contract:
 *
 *   parker:   state = Parking; list->add(self); seq_cst fence;
 *             re-check condition; park or cancel (sched.cc).
 *   notifier: perform the push/pop; seq_cst fence; if the list is
 *             non-empty, wake every waiter.
 *
 * The symmetric fences are the Dekker handshake that makes a lost
 * wakeup impossible: either the parker's re-check observes the
 * notifier's operation, or the notifier's list check observes the
 * parker's registration. Spurious wakeups are allowed and handled by
 * the wait loops (they re-check the ring and re-park).
 */

#ifndef PHLOEM_RUNTIME_PARK_H
#define PHLOEM_RUNTIME_PARK_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace phloem::rt {

class Task;

/**
 * A spinlocked list of tasks blocked on one condition (one side of a
 * ring, or a barrier). The lock is held only for pointer insert/remove;
 * wakers snapshot the list under the lock and unpark outside it.
 * Multi-producer rings can have several blocked producers, so this is
 * a list, not a slot.
 */
class WaitList
{
  public:
    /** Cheap notifier-side check; call after a seq_cst fence. */
    bool
    empty() const
    {
        return count_.load(std::memory_order_relaxed) == 0;
    }

    void
    add(Task* t)
    {
        lock();
        items_.push_back(t);
        count_.store(static_cast<int>(items_.size()),
                     std::memory_order_relaxed);
        unlock();
    }

    /** Remove t if present (idempotent: wakers also deregister). */
    void
    remove(Task* t)
    {
        lock();
        for (size_t i = 0; i < items_.size(); ++i) {
            if (items_[i] == t) {
                items_[i] = items_.back();
                items_.pop_back();
                break;
            }
        }
        count_.store(static_cast<int>(items_.size()),
                     std::memory_order_relaxed);
        unlock();
    }

    /** Drain every waiter into out (caller unparks outside the lock). */
    void
    takeAll(std::vector<Task*>& out)
    {
        lock();
        out.insert(out.end(), items_.begin(), items_.end());
        items_.clear();
        count_.store(0, std::memory_order_relaxed);
        unlock();
    }

    /** Snapshot waiters without deregistering them (wake all). */
    void wakeAll();  // defined in sched.cc (needs Scheduler::unpark)

  private:
    void
    lock()
    {
        while (lock_.exchange(true, std::memory_order_acquire)) {
        }
    }

    void
    unlock()
    {
        lock_.store(false, std::memory_order_release);
    }

    std::atomic<bool> lock_{false};
    std::atomic<int> count_{0};
    std::vector<Task*> items_;
};

/** Waiter slots for one ring: blocked producers and the consumer. */
struct QueueWaiters
{
    WaitList producers;
    WaitList consumers;
};

/**
 * Where a blocked wait would park and how to re-check its condition.
 * `ready` must be a pure read of shared state (fresh acquire loads);
 * the scheduler calls it between registering on `list` and actually
 * yielding the worker, and again cannot-miss semantics come from the
 * fence pairing described above. A null `list` (legacy mode, waiters
 * not attached) makes the backoff fall back to spin-then-yield.
 */
struct ParkTarget
{
    WaitList* list = nullptr;
    bool (*ready)(const ParkTarget&) = nullptr;
    const void* obj = nullptr;  ///< queue or barrier the wait is on
    uint64_t arg = 0;           ///< e.g. the barrier generation awaited
    const char* what = "";      ///< "enq"/"deq"/"peek"/"barrier"
    int q = -1;                 ///< absolute queue id for diagnostics
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_PARK_H
