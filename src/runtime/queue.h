/**
 * @file
 * Bounded lock-free single-producer/single-consumer ring buffer: the
 * native-runtime analogue of one Pipette architectural queue.
 *
 * Design (in the spirit of Lamport's ring with cached indices, as used
 * by modern pipeline runtimes):
 *  - capacity is exact (a queue of depth d holds at most d elements,
 *    matching SysConfig::queueDepth / QueueConfig::depth semantics);
 *  - producer and consumer indices live on separate cache lines so the
 *    hot path has no false sharing; each side additionally caches the
 *    other side's index and re-reads it only when the ring looks
 *    full/empty, which removes most cross-core coherence traffic;
 *  - tryPush/tryPop never block; blocking with spin-then-yield backoff
 *    is layered above (runtime/worker.cc), where shutdown and deadlock
 *    watchdog conditions are checked.
 *
 * Queues targeted by kEnqDist have one producer *per replica*; those are
 * marked multi-producer and pushes serialize on a tiny spinlock (the
 * consumer side stays lock-free).
 */

#ifndef PHLOEM_RUNTIME_QUEUE_H
#define PHLOEM_RUNTIME_QUEUE_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.h"
#include "ir/type.h"
#include "runtime/park.h"

namespace phloem::rt {

/** Pause the core briefly inside a spin loop. */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SpscQueue
{
  public:
    explicit SpscQueue(int depth)
        : depth_(depth), slots_(static_cast<size_t>(depth) + 1),
          buf_(static_cast<size_t>(depth) + 1)
    {
        phloem_assert(depth >= 1, "queue depth must be positive");
    }

    SpscQueue(const SpscQueue&) = delete;
    SpscQueue& operator=(const SpscQueue&) = delete;

    int depth() const { return depth_; }

    void setMultiProducer() { multiProducer_ = true; }
    bool multiProducer() const { return multiProducer_; }

    /**
     * Attach parking waiter slots (scheduler mode). Must happen before
     * any producer/consumer touches the ring; a null slot (legacy
     * thread-per-stage mode) keeps every notify hook on its first-load
     * early-out, so the lock-free hot path is unchanged there.
     */
    void setWaiters(QueueWaiters* w) { waiters_ = w; }
    QueueWaiters* waiters() const { return waiters_; }

    /** Producer side: enqueue v; false when the ring is full. */
    bool
    tryPush(const ir::Value& v)
    {
        bool ok;
        if (multiProducer_) {
            while (pushLock_.exchange(true, std::memory_order_acquire))
                cpuRelax();
            ok = pushImpl(v);
            pushLock_.store(false, std::memory_order_release);
        } else {
            ok = pushImpl(v);
        }
        if (ok)
            notifyData();
        return ok;
    }

    /**
     * Producer side: push up to max_n values obtained from gen(k),
     * k = 0..n-1, publishing them all with a single release store.
     * Returns the number pushed (0 when the ring is full). Scan RAs use
     * this to stream ranges without per-element synchronization.
     */
    template <typename Gen>
    size_t
    pushBatch(size_t max_n, Gen&& gen)
    {
        size_t n;
        if (multiProducer_) {
            while (pushLock_.exchange(true, std::memory_order_acquire))
                cpuRelax();
            n = pushBatchImpl(max_n, gen);
            pushLock_.store(false, std::memory_order_release);
        } else {
            n = pushBatchImpl(max_n, gen);
        }
        if (n > 0)
            notifyData();
        return n;
    }

    /**
     * Consumer side: drain up to max_n values into out, releasing them
     * all with a single store of the head index (the mirror image of
     * pushBatch). Returns the number popped (0 when the ring is empty).
     * The decoded execution engine uses this to consume runs of values
     * with one acquire/release pair per run instead of one per element.
     */
    size_t
    popBatch(size_t max_n, ir::Value* out)
    {
        size_t head = head_.load(std::memory_order_relaxed);
        size_t avail = availSlots(head);
        if (avail == 0) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            avail = availSlots(head);
            if (avail == 0)
                return 0;
        }
        size_t n = std::min(max_n, avail);
        size_t h = head;
        for (size_t k = 0; k < n; ++k) {
            out[k] = buf_[h];
            h = next(h);
        }
        head_.store(h, std::memory_order_release);
        deqCount_ += n;
        popBatches_++;
        popBatchElems_ += n;
        popHist_[histBucket(n)]++;
        notifySpace();
        return n;
    }

    /** Consumer side: dequeue into v; false when the ring is empty. */
    bool
    tryPop(ir::Value& v)
    {
        size_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false;
        }
        v = buf_[head];
        head_.store(next(head), std::memory_order_release);
        deqCount_++;
        notifySpace();
        return true;
    }

    /** Consumer side: read the front element without removing it. */
    bool
    tryPeek(ir::Value& v)
    {
        size_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false;
        }
        v = buf_[head];
        return true;
    }

    /**
     * Approximate occupancy: exact when called from the producer or
     * consumer thread between their own operations, stale otherwise.
     */
    size_t
    sizeApprox() const
    {
        size_t head = head_.load(std::memory_order_acquire);
        size_t tail = tail_.load(std::memory_order_acquire);
        return (tail + slots_ - head) % slots_;
    }

    // --- Stats, read after the run when all workers have joined. ---
    uint64_t enqCount() const { return enqCount_; }
    uint64_t deqCount() const { return deqCount_; }
    size_t maxOccupancy() const { return maxOcc_; }
    /** Number of log2 histogram buckets: 1, 2-3, 4-7, ..., >= 128. */
    static constexpr int kBatchHistBuckets = 8;
    uint64_t popBatches() const { return popBatches_; }
    uint64_t popBatchElems() const { return popBatchElems_; }
    uint64_t pushBatches() const { return pushBatches_; }
    uint64_t pushBatchElems() const { return pushBatchElems_; }
    uint64_t popHist(int b) const { return popHist_[b]; }
    uint64_t pushHist(int b) const { return pushHist_[b]; }
    uint64_t enqBlocks() const
    {
        return enqBlocks_.load(std::memory_order_relaxed);
    }
    uint64_t deqBlocks() const { return deqBlocks_; }

    /** Producer-side bookkeeping: one failed push that led to a wait. */
    void
    noteEnqBlocked()
    {
        enqBlocks_.fetch_add(1, std::memory_order_relaxed);
    }
    /** Consumer-side bookkeeping: one failed pop that led to a wait. */
    void noteDeqBlocked() { deqBlocks_++; }

  private:
    /**
     * Notifier side of the parking handshake (park.h): after making
     * data visible, wake blocked consumers. The seq_cst fence orders
     * our index store before the waiter-list check — the Dekker mirror
     * of the parker's register-then-recheck — and is only paid when
     * waiter slots are attached (scheduler mode).
     */
    void
    notifyData()
    {
        QueueWaiters* w = waiters_;
        if (w == nullptr)
            return;
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (!w->consumers.empty())
            w->consumers.wakeAll();
    }

    /** Mirror of notifyData: after freeing a slot, wake producers. */
    void
    notifySpace()
    {
        QueueWaiters* w = waiters_;
        if (w == nullptr)
            return;
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (!w->producers.empty())
            w->producers.wakeAll();
    }

    size_t next(size_t i) const { return i + 1 == slots_ ? 0 : i + 1; }

    size_t
    usedSlots(size_t tail) const
    {
        return tail >= headCache_ ? tail - headCache_
                                  : tail + slots_ - headCache_;
    }

    /** Elements visible to the consumer, per its cached tail. */
    size_t
    availSlots(size_t head) const
    {
        return tailCache_ >= head ? tailCache_ - head
                                  : tailCache_ + slots_ - head;
    }

    /** Log2 bucket of a batch size n >= 1, clamped to the last bucket. */
    static int
    histBucket(size_t n)
    {
        int b = 0;
        while (n > 1 && b + 1 < kBatchHistBuckets) {
            n >>= 1;
            ++b;
        }
        return b;
    }

    /**
     * Producer-side high-water-mark update after a push left occupancy
     * at `occ` *per the producer's cached head*. The cache only lags:
     * the consumer may have advanced past headCache_, so the stale occ
     * is an upper bound on the true occupancy — never an underestimate.
     * That makes the stale value safe as a *trigger* but wrong as a
     * *measurement*: recording it directly over-reports the mark (it
     * can even exceed depth). So only when the stale candidate would
     * raise the mark do we pay one acquire load to refresh the cache
     * and recompute; any true new maximum still trips the trigger, so
     * the mark stays exact while the hot path (occ <= maxOcc_) stays
     * free of coherence traffic.
     */
    void
    noteOccupancy(size_t tail_after)
    {
        size_t occ = tail_after >= headCache_
                         ? tail_after - headCache_
                         : tail_after + slots_ - headCache_;
        if (occ <= maxOcc_)
            return;
        headCache_ = head_.load(std::memory_order_acquire);
        occ = tail_after >= headCache_
                  ? tail_after - headCache_
                  : tail_after + slots_ - headCache_;
        if (occ > maxOcc_)
            maxOcc_ = occ;
    }

    template <typename Gen>
    size_t
    pushBatchImpl(size_t max_n, Gen&& gen)
    {
        size_t tail = tail_.load(std::memory_order_relaxed);
        size_t used = usedSlots(tail);
        size_t free_slots = slots_ - 1 - used;
        if (free_slots < max_n) {
            headCache_ = head_.load(std::memory_order_acquire);
            used = usedSlots(tail);
            free_slots = slots_ - 1 - used;
            if (free_slots == 0)
                return 0;
        }
        size_t n = std::min(max_n, free_slots);
        size_t t = tail;
        for (size_t k = 0; k < n; ++k) {
            buf_[t] = gen(k);
            t = next(t);
        }
        tail_.store(t, std::memory_order_release);
        enqCount_ += n;
        pushBatches_++;
        pushBatchElems_ += n;
        pushHist_[histBucket(n)]++;
        noteOccupancy(t);
        return n;
    }

    bool
    pushImpl(const ir::Value& v)
    {
        size_t tail = tail_.load(std::memory_order_relaxed);
        size_t nxt = next(tail);
        if (nxt == headCache_) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (nxt == headCache_)
                return false;
        }
        buf_[tail] = v;
        tail_.store(nxt, std::memory_order_release);
        enqCount_++;
        noteOccupancy(nxt);
        return true;
    }

    const int depth_;
    const size_t slots_;
    std::vector<ir::Value> buf_;

    // Consumer-owned line: index plus the consumer's cache of tail.
    alignas(64) std::atomic<size_t> head_{0};
    size_t tailCache_ = 0;
    uint64_t deqCount_ = 0;
    uint64_t deqBlocks_ = 0;
    uint64_t popBatches_ = 0;
    uint64_t popBatchElems_ = 0;
    uint64_t popHist_[kBatchHistBuckets] = {};

    // Producer-owned line: index plus the producer's cache of head.
    alignas(64) std::atomic<size_t> tail_{0};
    size_t headCache_ = 0;
    uint64_t enqCount_ = 0;
    size_t maxOcc_ = 0;
    uint64_t pushBatches_ = 0;
    uint64_t pushBatchElems_ = 0;
    uint64_t pushHist_[kBatchHistBuckets] = {};

    // Shared (cold path only).
    alignas(64) std::atomic<bool> pushLock_{false};
    std::atomic<uint64_t> enqBlocks_{0};
    bool multiProducer_ = false;
    /** Parking waiter slots, or null in legacy mode. */
    QueueWaiters* waiters_ = nullptr;
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_QUEUE_H
