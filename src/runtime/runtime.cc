#include "runtime/runtime.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.h"
#include "base/thread_name.h"
#include "ir/op.h"
#include "runtime/hwcount.h"
#include "runtime/jit.h"
#include "runtime/sched.h"
#include "sim/program.h"

namespace phloem::rt {

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedNs(Clock::time_point t0, Clock::time_point t1)
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
}

/** Thread body shared by all workers: route exceptions to RunControl. */
template <typename W>
void
workerMain(W& worker, RunControl& ctl)
{
    try {
        worker.run();
    } catch (const std::exception& e) {
        ctl.fail(worker.stats.name + ": " + e.what());
    }
}

/**
 * Resolve the engine selection: explicit option wins; kAuto defaults to
 * on, with the PHLOEM_NATIVE_ENGINE environment variable as the escape
 * hatch. Accepted spellings (case-insensitive): 0/false/off disable,
 * 1/true/on enable. Anything else warns once and keeps the default so a
 * typo in a fuzz/CI harness cannot silently flip the configuration.
 */
bool
resolveEngine(EngineMode mode)
{
    switch (mode) {
      case EngineMode::kOn:
        return true;
      case EngineMode::kOff:
        return false;
      case EngineMode::kAuto:
        break;
    }
    const char* env = std::getenv("PHLOEM_NATIVE_ENGINE");
    if (env == nullptr || *env == '\0')
        return true;
    std::string v(env);
    for (char& c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v == "0" || v == "false" || v == "off")
        return false;
    if (v == "1" || v == "true" || v == "on")
        return true;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        phloem_warn("unrecognized PHLOEM_NATIVE_ENGINE value \"", env,
                    "\" (expected 0/false/off or 1/true/on); engine "
                    "stays enabled");
    return true;
}

/**
 * Resolve the scheduler selection, mirroring resolveEngine: explicit
 * option wins; kAuto defaults to the shared pool, with PHLOEM_SCHED as
 * the escape hatch. Accepted spellings (case-insensitive):
 * legacy/threads/off/0 keep one OS thread per worker, shared/pool/on/1
 * use the shared pool. Anything else warns once and keeps the default.
 */
bool
resolveScheduler(SchedulerMode mode)
{
    switch (mode) {
      case SchedulerMode::kShared:
        return true;
      case SchedulerMode::kLegacy:
        return false;
      case SchedulerMode::kAuto:
        break;
    }
    const char* env = std::getenv("PHLOEM_SCHED");
    if (env == nullptr || *env == '\0')
        return true;
    std::string v(env);
    for (char& c : v)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (v == "legacy" || v == "threads" || v == "off" || v == "0")
        return false;
    if (v == "shared" || v == "pool" || v == "on" || v == "1")
        return true;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        phloem_warn("unrecognized PHLOEM_SCHED value \"", env,
                    "\" (expected legacy/threads/off/0 or "
                    "shared/pool/on/1); shared scheduler stays enabled");
    return true;
}

/**
 * Resolve the stage execution tier. Precedence: explicit opt.tier, then
 * an explicit opt.engine (kOn -> engine, kOff -> interpreter), then the
 * PHLOEM_NATIVE_TIER env override, then PHLOEM_NATIVE_ENGINE (via
 * resolveEngine). Accepted PHLOEM_NATIVE_TIER spellings
 * (case-insensitive): jit, engine, interp/interpreter. Anything else
 * warns once and falls through to the engine-era resolution, matching
 * the PHLOEM_NATIVE_ENGINE convention.
 */
TierMode
resolveTier(const RuntimeOptions& opt)
{
    switch (opt.tier) {
      case TierMode::kInterp:
        return TierMode::kInterp;
      case TierMode::kEngine:
        return TierMode::kEngine;
      case TierMode::kJit:
        return TierMode::kJit;
      case TierMode::kAuto:
        break;
    }
    if (opt.engine == EngineMode::kOn)
        return TierMode::kEngine;
    if (opt.engine == EngineMode::kOff)
        return TierMode::kInterp;
    const char* env = std::getenv("PHLOEM_NATIVE_TIER");
    if (env != nullptr && *env != '\0') {
        std::string v(env);
        for (char& c : v)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        if (v == "jit")
            return TierMode::kJit;
        if (v == "engine")
            return TierMode::kEngine;
        if (v == "interp" || v == "interpreter")
            return TierMode::kInterp;
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            phloem_warn("unrecognized PHLOEM_NATIVE_TIER value \"", env,
                        "\" (expected jit, engine, or "
                        "interp/interpreter); falling back to "
                        "PHLOEM_NATIVE_ENGINE");
    }
    return resolveEngine(EngineMode::kAuto) ? TierMode::kEngine
                                            : TierMode::kInterp;
}

const char*
tierName(TierMode t)
{
    switch (t) {
      case TierMode::kInterp:
        return "interp";
      case TierMode::kJit:
        return "jit";
      case TierMode::kAuto:
      case TierMode::kEngine:
        break;
    }
    return "engine";
}

/**
 * Build (or fail) the JIT artifact for one stage program. Never
 * throws: a decode/emission/compile problem becomes a failed artifact,
 * and the stage falls back to the engine — which will surface the same
 * underlying problem through the normal worker-failure path if it is a
 * real program defect rather than a JIT limitation.
 */
JitArtifactPtr
buildStageArtifact(const sim::Program& prog, const DecodedProgram* shape,
                   const std::string& name)
{
    try {
        if (shape != nullptr)
            return jitCompileStage(prog, *shape, name);
        DecodedProgram local = decodeShape(prog);
        return jitCompileStage(prog, local, name);
    } catch (const std::exception& e) {
        auto failed = std::make_shared<JitArtifact>();
        failed->error = std::string("jit setup failed: ") + e.what();
        return failed;
    }
}

} // namespace

NativeStats
Runtime::runPipeline(const ir::Pipeline& pipeline, sim::Binding& binding)
{
    return runPipeline(pipeline, binding, PreparedPrograms{});
}

NativeStats
Runtime::runPipeline(const ir::Pipeline& pipeline, sim::Binding& binding,
                     const std::vector<sim::Program>* programs)
{
    PreparedPrograms prep;
    prep.programs = programs;
    return runPipeline(pipeline, binding, prep);
}

NativeStats
Runtime::runPipeline(const ir::Pipeline& pipeline, sim::Binding& binding,
                     const PreparedPrograms& prep)
{
    const std::vector<sim::Program>* pre_flattened = prep.programs;
    int replicas = std::max(1, pipeline.replicas);

    // Queue-id stride between replicas, matching the simulator exactly.
    int max_qid = ir::maxQueueId(pipeline);
    int stride =
        pipeline.queueStride > 0 ? pipeline.queueStride : max_qid + 1;
    phloem_assert(stride >= max_qid + 1, "queue stride too small");

    int stages_per_replica = static_cast<int>(pipeline.stages.size());
    int total_threads = stages_per_replica * replicas;
    phloem_assert(total_threads >= 1, "pipeline has no stages");
    int total_workers =
        total_threads + static_cast<int>(pipeline.ras.size()) * replicas;
    const bool use_sched = resolveScheduler(opt_.scheduler);
    if (use_sched) {
        // Tasks, not threads: a wide pipeline costs stacks, not cores.
        phloem_assert(total_workers <= 4096,
                      "refusing to schedule that many tasks");
    } else {
        phloem_assert(total_workers <= 512,
                      "refusing to spawn that many host threads");
    }

    // Build the rings: default depth from the architecture config,
    // per-queue overrides from the pipeline.
    int num_queues = stride * replicas;
    std::vector<std::unique_ptr<SpscQueue>> queues;
    queues.reserve(static_cast<size_t>(num_queues));
    std::vector<int> depths(static_cast<size_t>(stride), cfg_.queueDepth);
    for (const auto& qc : pipeline.queues)
        if (qc.depth > 0)
            depths[static_cast<size_t>(qc.id)] = qc.depth;
    for (int i = 0; i < num_queues; ++i)
        queues.push_back(
            std::make_unique<SpscQueue>(depths[static_cast<size_t>(
                i % stride)]));

    std::vector<SpscQueue*> queue_ptrs;
    queue_ptrs.reserve(queues.size());
    for (auto& q : queues)
        queue_ptrs.push_back(q.get());

    // Flatten each stage once; replicas share the program. A caller
    // that already holds the flattened programs (the compilation
    // service's cache) supplies them instead; workers only read them,
    // so one pre-flattened set can back concurrent runs.
    std::vector<sim::Program> local_programs;
    if (pre_flattened == nullptr) {
        local_programs.reserve(pipeline.stages.size());
        for (const auto& stage : pipeline.stages)
            local_programs.push_back(sim::flatten(*stage));
        pre_flattened = &local_programs;
    } else {
        phloem_assert(pre_flattened->size() == pipeline.stages.size(),
                      "pre-flattened program count (",
                      pre_flattened->size(),
                      ") does not match pipeline stages (",
                      pipeline.stages.size(), ")");
    }
    const std::vector<sim::Program>& programs = *pre_flattened;

    // Cached decoded shapes (compilation service): workers copy and
    // relocate instead of re-classifying; must match the programs 1:1.
    const std::vector<DecodedProgram>* shapes = prep.shapes;
    if (shapes != nullptr)
        phloem_assert(shapes->size() == programs.size(),
                      "decoded shape count (", shapes->size(),
                      ") does not match pipeline stages (",
                      programs.size(), ")");

    // Queues targeted by kEnqDist have one producer per replica (every
    // replica's distributor may select them); their pushes must be
    // serialized.
    if (replicas > 1) {
        for (const auto& prog : programs) {
            for (const auto& inst : prog.code) {
                if (inst.kind == sim::Inst::Kind::kOp &&
                    inst.opcode == ir::Opcode::kEnqDist) {
                    for (int r = 0; r < replicas; ++r)
                        queue_ptrs[static_cast<size_t>(
                                       inst.queue + r * stride)]
                            ->setMultiProducer();
                }
            }
        }
    }

    RunControl ctl;
    ctl.opt = opt_;
    ctl.tier = resolveTier(opt_);
    ctl.useEngine = ctl.tier != TierMode::kInterp;

    // JIT tier: build (or reuse) one artifact per stage program before
    // the timed region — replicas share artifacts, and a cache hit in
    // the compilation service skips this entirely. A failed artifact
    // just downgrades that stage to the engine (recorded per worker).
    std::vector<JitArtifactPtr> local_jit;
    const std::vector<JitArtifactPtr>* jit_arts = nullptr;
    if (ctl.tier == TierMode::kJit) {
        if (prep.jit != nullptr) {
            phloem_assert(prep.jit->size() == programs.size(),
                          "jit artifact count (", prep.jit->size(),
                          ") does not match pipeline stages (",
                          programs.size(), ")");
            jit_arts = prep.jit;
        } else {
            local_jit.reserve(programs.size());
            for (size_t s = 0; s < programs.size(); ++s)
                local_jit.push_back(buildStageArtifact(
                    programs[s],
                    shapes != nullptr ? &(*shapes)[s] : nullptr,
                    pipeline.stages[s]->name));
            jit_arts = &local_jit;
        }
    }

    StageBarrier barrier(total_threads);

    std::vector<std::unique_ptr<StageWorker>> stage_workers;
    for (int r = 0; r < replicas; ++r) {
        for (int s = 0; s < stages_per_replica; ++s) {
            std::string name =
                pipeline.stages[static_cast<size_t>(s)]->name +
                (replicas > 1 ? "@" + std::to_string(r) : "");
            stage_workers.push_back(std::make_unique<StageWorker>(
                std::move(name), &programs[static_cast<size_t>(s)],
                binding, r, /*queue_offset=*/r * stride, stride, replicas,
                queue_ptrs, &barrier, &ctl));
            StageWorker& w = *stage_workers.back();
            if (shapes != nullptr)
                w.shape = &(*shapes)[static_cast<size_t>(s)];
            if (jit_arts != nullptr) {
                const JitArtifact& art =
                    *(*jit_arts)[static_cast<size_t>(s)];
                if (art.ok())
                    w.jit = &art;
                else
                    w.stats.jitFallback = art.error;
            }
        }
    }

    std::vector<std::unique_ptr<RAWorker>> ra_workers;
    std::vector<int> ra_in_qids;
    for (int r = 0; r < replicas; ++r) {
        for (const auto& ra : pipeline.ras) {
            std::string name =
                "ra:" + ra.arrayName +
                (replicas > 1 ? "@" + std::to_string(r) : "");
            ra_workers.push_back(std::make_unique<RAWorker>(
                std::move(name), ra, binding.array(ra.arrayName, r),
                queue_ptrs[static_cast<size_t>(ra.inQueue + r * stride)],
                queue_ptrs[static_cast<size_t>(ra.outQueue + r * stride)],
                &ctl));
            ra_workers.back()->traceInQ = ra.inQueue + r * stride;
            ra_workers.back()->traceOutQ = ra.outQueue + r * stride;
            ra_in_qids.push_back(ra.inQueue + r * stride);
        }
    }

    // Tracing: register one ring per worker (single-writer; must happen
    // before the threads start) plus a sampler lane that snapshots queue
    // occupancy through the rings' atomic size estimate. With no tracer,
    // every worker keeps a null traceBuf and each hook is a dead branch.
    trace::Tracer* tracer = opt_.tracer;
    trace::TraceBuffer* occ_buf = nullptr;
    std::atomic<bool> sampler_stop{false};
    std::thread sampler;
    if (tracer != nullptr) {
        phloem_assert(tracer->timebase() == trace::Timebase::kWallNs,
                      "native runs trace on the wall-clock timebase");
        for (auto& w : stage_workers)
            w->traceBuf = tracer->addWorker(w->stats.name,
                                            /*is_stage=*/true);
        for (auto& w : ra_workers)
            w->traceBuf = tracer->addWorker(w->stats.name,
                                            /*is_stage=*/false);
        occ_buf = tracer->addWorker("queue-occupancy", /*is_stage=*/false);
        sampler = std::thread([&sampler_stop, occ_buf, &queue_ptrs] {
            setCurrentThreadName("phl-occ-sample");
            // Delta-encoded: a sample is recorded only when the estimate
            // moved, so idle phases cost ring space proportional to
            // activity. sizeApprox is all-atomic, keeping the sampler
            // race-free against producers and consumers.
            std::vector<uint64_t> last(queue_ptrs.size(), ~0ull);
            for (;;) {
                for (size_t i = 0; i < queue_ptrs.size(); ++i) {
                    uint64_t occ = queue_ptrs[i]->sizeApprox();
                    if (occ == last[i])
                        continue;
                    last[i] = occ;
                    uint64_t t = occ_buf->now();
                    occ_buf->record(trace::EventKind::kQueueOcc,
                                    static_cast<int32_t>(i), t, t, occ);
                }
                if (sampler_stop.load(std::memory_order_acquire))
                    return;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            }
        });
    }

    // Parallel region: run everyone, wait for the stage workers (their
    // halt defines completion — RAs never write memory), then release
    // the RAs. Scheduler mode multiplexes all workers as parkable
    // tasks on a fixed-size shared pool; legacy mode spawns one OS
    // thread each (kept as a differential-testing fallback).
    SchedStats sched_stats;
    std::vector<HwLane> hw_lanes;
    ResourceUsage ru0 = ResourceUsage::processNow();
    auto t0 = Clock::now();
    auto t1 = t0;
    std::vector<QueueWaiters> queue_waiters;
    if (use_sched) {
        Scheduler::Options hint;
        hint.workers = opt_.schedWorkers;
        hint.stealing = opt_.schedStealing;
        Scheduler& sched = opt_.schedulerOverride != nullptr
                               ? *opt_.schedulerOverride
                               : Scheduler::shared(&hint);
        // Attach the rings' waiter slots before any task can touch
        // them: this is what arms the park/unpark path in the backoff.
        queue_waiters =
            std::vector<QueueWaiters>(static_cast<size_t>(num_queues));
        for (int i = 0; i < num_queues; ++i)
            queue_ptrs[static_cast<size_t>(i)]->setWaiters(
                &queue_waiters[static_cast<size_t>(i)]);
        auto run = sched.createRun(&ctl);
        ctl.schedRun = run.get();
        for (auto& w : ra_workers)
            run->addTask(w->stats.name, /*is_stage=*/false,
                         [&ctl, worker = w.get()] {
                             workerMain(*worker, ctl);
                         });
        for (auto& w : stage_workers)
            run->addTask(w->stats.name, /*is_stage=*/true,
                         [&ctl, worker = w.get()] {
                             workerMain(*worker, ctl);
                         });
        // Pool lanes are snapshot-diffed around the run: the counters
        // belong to the pool threads, which this run only borrows
        // (concurrent runs overlap on the same lanes).
        auto hw_before = sched.hwSnapshot();
        t0 = Clock::now();
        run->start();
        run->waitStages();
        t1 = Clock::now();
        ctl.stop.store(true, std::memory_order_release);
        // RAs parked on drained inputs cannot observe stop; wake them.
        run->wakeAllTasks();
        run->waitAll();
        auto hw_after = sched.hwSnapshot();
        for (const auto& after : hw_after) {
            HwLane lane;
            lane.name = after.name;
            lane.counts = after.counts;
            for (const auto& before : hw_before) {
                if (before.name == after.name) {
                    lane.counts = after.counts.minus(before.counts);
                    break;
                }
            }
            hw_lanes.push_back(std::move(lane));
        }
        sched_stats.shared = true;
        sched_stats.poolSize = sched.poolSize();
        sched_stats.stealing = sched.stealing();
        sched_stats.parks = run->parks();
        sched_stats.unparks = run->unparks();
        sched_stats.steals = run->steals();
        sched_stats.yields = run->yields();
        ctl.schedRun = nullptr;
    } else {
        // Dedicated threads: each opens its own counters, reads them at
        // exit into a pre-sized slot (joined before anyone looks).
        std::vector<HwCounts> ra_hw(ra_workers.size());
        std::vector<HwCounts> stage_hw(stage_workers.size());
        std::vector<std::thread> ra_threads;
        ra_threads.reserve(ra_workers.size());
        for (size_t k = 0; k < ra_workers.size(); ++k)
            ra_threads.emplace_back(
                [&ctl, worker = ra_workers[k].get(), slot = &ra_hw[k]] {
                    setCurrentThreadName(worker->stats.name);
                    HwThreadCounters hw;
                    hw.open();
                    workerMain(*worker, ctl);
                    *slot = hw.read();
                });
        std::vector<std::thread> stage_threads;
        stage_threads.reserve(stage_workers.size());
        for (size_t k = 0; k < stage_workers.size(); ++k)
            stage_threads.emplace_back(
                [&ctl, worker = stage_workers[k].get(),
                 slot = &stage_hw[k]] {
                    setCurrentThreadName(worker->stats.name);
                    HwThreadCounters hw;
                    hw.open();
                    workerMain(*worker, ctl);
                    *slot = hw.read();
                });

        for (auto& t : stage_threads)
            t.join();
        t1 = Clock::now();

        ctl.stop.store(true, std::memory_order_release);
        for (auto& t : ra_threads)
            t.join();
        for (size_t k = 0; k < stage_workers.size(); ++k)
            if (stage_hw[k].valid)
                hw_lanes.push_back(
                    {stage_workers[k]->stats.name, stage_hw[k]});
        for (size_t k = 0; k < ra_workers.size(); ++k)
            if (ra_hw[k].valid)
                hw_lanes.push_back({ra_workers[k]->stats.name, ra_hw[k]});
    }
    if (sampler.joinable()) {
        sampler_stop.store(true, std::memory_order_release);
        sampler.join();
    }

    // Collect results. Values drained into a consumer-side batch buffer
    // but never architecturally dequeued get folded back: they were
    // never consumed by the program, so they count as residual, not deq.
    std::vector<uint64_t> undequeued(static_cast<size_t>(num_queues), 0);
    for (auto& w : stage_workers)
        for (const auto& [qid, n] : w->unconsumed)
            undequeued[static_cast<size_t>(qid)] += n;
    for (size_t k = 0; k < ra_workers.size(); ++k)
        undequeued[static_cast<size_t>(ra_in_qids[k])] +=
            ra_workers[k]->unconsumedIn;

    NativeStats out;
    out.wallNs = elapsedNs(t0, t1);
    out.numStageThreads = total_threads;
    out.numRAWorkers = static_cast<int>(ra_workers.size());
    out.engine = ctl.useEngine;
    out.tier = tierName(ctl.tier);
    if (jit_arts != nullptr) {
        for (const JitArtifactPtr& a : *jit_arts) {
            out.jitEmitNs += a->emitNs;
            out.jitCompileNs += a->compileNs;
            out.jitLoadNs += a->loadNs;
            if (!a->ok() && out.jitError.empty())
                out.jitError = a->error;
        }
        for (auto& w : stage_workers) {
            if (w->jit != nullptr)
                out.jitStages++;
            else
                out.jitFallbacks++;
        }
    }
    out.sched = sched_stats;
    out.hwLanes = std::move(hw_lanes);
    for (const auto& lane : out.hwLanes)
        out.hwValid = out.hwValid || lane.counts.valid;
    out.rusage = ResourceUsage::processNow().minus(ru0);
    for (auto& w : stage_workers)
        out.workers.push_back(w->stats);
    for (auto& w : ra_workers)
        out.workers.push_back(w->stats);
    for (int i = 0; i < num_queues; ++i) {
        const SpscQueue& q = *queue_ptrs[static_cast<size_t>(i)];
        if (q.enqCount() == 0 && q.deqCount() == 0 &&
            q.enqBlocks() == 0 && q.deqBlocks() == 0)
            continue;
        QueueStats qs;
        qs.id = i;
        qs.depth = q.depth();
        uint64_t uncons = undequeued[static_cast<size_t>(i)];
        qs.enq = q.enqCount();
        qs.deq = q.deqCount() - uncons;
        qs.enqBlocks = q.enqBlocks();
        qs.deqBlocks = q.deqBlocks();
        qs.maxOccupancy = q.maxOccupancy();
        // Exact: all workers have joined.
        qs.residual = q.sizeApprox() + uncons;
        qs.popBatches = q.popBatches();
        qs.popBatchElems = q.popBatchElems();
        qs.pushBatches = q.pushBatches();
        qs.pushBatchElems = q.pushBatchElems();
        for (int b = 0; b < QueueStats::kBatchHistBuckets; ++b) {
            qs.pushHist[b] = q.pushHist(b);
            qs.popHist[b] = q.popHist(b);
        }
        out.queues.push_back(qs);
    }
    if (ctl.aborted()) {
        out.ok = false;
        {
            std::lock_guard<std::mutex> g(ctl.errorMu);
            out.error = ctl.error;
        }
        // Watchdog post-mortem: which edges still hold data, and (when
        // traced) what each worker was doing right before the stall.
        std::string residuals;
        for (const auto& qs : out.queues)
            if (qs.residual > 0)
                residuals += "  q" + std::to_string(qs.id) +
                             ": residual occupancy " +
                             std::to_string(qs.residual) + "/" +
                             std::to_string(qs.depth) + "\n";
        if (!residuals.empty())
            out.error += "\nresidual occupancy:\n" + residuals;
        if (tracer != nullptr)
            out.error +=
                "\ntrace post-mortem (trailing events per worker):\n" +
                tracer->postMortem();
        if (!opt_.requestId.empty())
            out.error = "[req " + opt_.requestId + "] " + out.error;
    }
    return out;
}

NativeStats
Runtime::runSerial(const ir::Function& fn, sim::Binding& binding)
{
    sim::Program prog = sim::flatten(fn);

    // A serial function must be self-contained: the worker below gets no
    // queues, so a stray enq/deq (e.g. a pipeline stage passed here by
    // mistake) would index an empty queue vector. Fail with a diagnostic
    // instead.
    for (const auto& inst : prog.code) {
        if (inst.kind == sim::Inst::Kind::kOp &&
            inst.queue != ir::kNoQueue) {
            NativeStats out;
            out.ok = false;
            out.error = fn.name + ": serial function contains a queue " +
                        "operation (op " + std::to_string(inst.origin) +
                        " targets queue " + std::to_string(inst.queue) +
                        "); run it as a pipeline stage instead";
            return out;
        }
    }

    RunControl ctl;
    ctl.opt = opt_;
    ctl.tier = resolveTier(opt_);
    ctl.useEngine = ctl.tier != TierMode::kInterp;
    StageBarrier barrier(1);
    StageWorker worker(fn.name, &prog, binding, /*replica=*/0,
                       /*queue_offset=*/0, /*queue_stride=*/0,
                       /*num_replicas=*/1, {}, &barrier, &ctl);
    JitArtifactPtr jit_art;
    if (ctl.tier == TierMode::kJit) {
        jit_art = buildStageArtifact(prog, nullptr, fn.name);
        if (jit_art->ok())
            worker.jit = jit_art.get();
        else
            worker.stats.jitFallback = jit_art->error;
    }
    if (opt_.tracer != nullptr)
        worker.traceBuf = opt_.tracer->addWorker(fn.name,
                                                 /*is_stage=*/true);

    ResourceUsage ru0 = ResourceUsage::processNow();
    HwThreadCounters hw;
    hw.open();
    HwCounts hw_before = hw.read();
    auto t0 = Clock::now();
    workerMain(worker, ctl);
    auto t1 = Clock::now();
    HwCounts hw_delta = hw.read().minus(hw_before);

    NativeStats out;
    out.wallNs = elapsedNs(t0, t1);
    out.numStageThreads = 1;
    if (hw_delta.valid) {
        out.hwLanes.push_back({fn.name, hw_delta});
        out.hwValid = true;
    }
    out.rusage = ResourceUsage::processNow().minus(ru0);
    out.engine = ctl.useEngine;
    out.tier = tierName(ctl.tier);
    if (jit_art != nullptr) {
        out.jitEmitNs = jit_art->emitNs;
        out.jitCompileNs = jit_art->compileNs;
        out.jitLoadNs = jit_art->loadNs;
        if (worker.jit != nullptr)
            out.jitStages = 1;
        else {
            out.jitFallbacks = 1;
            out.jitError = jit_art->error;
        }
    }
    out.workers.push_back(worker.stats);
    if (ctl.aborted()) {
        out.ok = false;
        std::lock_guard<std::mutex> g(ctl.errorMu);
        out.error = ctl.error;
    }
    return out;
}

} // namespace phloem::rt
