/**
 * @file
 * Native execution backend: run a compiled pipeline on real host
 * threads connected by lock-free SPSC ring buffers.
 *
 * This is the "what if the paper's hardware were software" backend: one
 * resumable task per pipeline stage (per replica), one task per software
 * reference accelerator, and one bounded ring per architectural queue.
 * Tasks run on a fixed-size shared work-stealing pool (runtime/sched.h)
 * sized to the machine, so many pipelines — or one pipeline with more
 * stages than cores — share the host without thread oversubscription; a
 * task blocked on a full/empty ring parks and yields its pool worker.
 * RuntimeOptions::scheduler = kLegacy restores thread-per-stage.
 * It interprets the same sim::flatten instruction stream as the
 * simulator, through the same functional core (sim/eval.h), so its
 * output is bit-for-bit identical to the simulator's — which the
 * differential tests enforce.
 *
 * What it measures is real: wall-clock time of the parallel region and
 * per-queue backpressure (block counts, occupancy high-water marks),
 * the native analogue of the paper's queue-sizing discussion.
 */

#ifndef PHLOEM_RUNTIME_RUNTIME_H
#define PHLOEM_RUNTIME_RUNTIME_H

#include <memory>
#include <vector>

#include "ir/pipeline.h"
#include "runtime/decode.h"
#include "runtime/stats.h"
#include "runtime/worker.h"
#include "sim/binding.h"
#include "sim/config.h"

namespace phloem::rt {

struct JitArtifact;
using JitArtifactPtr = std::shared_ptr<const JitArtifact>;

/**
 * Caller-supplied pre-compiled stage state, all optional and all only
 * read (a compilation service shares one pipeline across concurrent
 * runs; everything referenced must outlive the call):
 *  - programs: flattened stage programs, one per stage in stage order
 *    (null = flatten per run);
 *  - shapes: decoded replica-independent DInst shapes matching
 *    `programs` (null = decode per worker); cache hits then skip
 *    decode, not just flattening;
 *  - jit: per-stage compiled artifacts for the JIT tier, failed
 *    entries included (null = compile at run setup when the tier is
 *    kJit). Ignored on other tiers.
 */
struct PreparedPrograms
{
    const std::vector<sim::Program>* programs = nullptr;
    const std::vector<DecodedProgram>* shapes = nullptr;
    const std::vector<JitArtifactPtr>* jit = nullptr;
};

class Runtime
{
  public:
    explicit Runtime(const sim::SysConfig& cfg = {},
                     const RuntimeOptions& opt = {})
        : cfg_(cfg), opt_(opt)
    {
    }

    /**
     * Execute a pipeline to completion on host threads. Mutates the
     * bound arrays exactly as Machine::runPipeline would. On failure
     * (deadlock watchdog, worker exception) the returned stats have
     * ok=false and the array contents are unspecified.
     */
    NativeStats runPipeline(const ir::Pipeline& pipeline,
                            sim::Binding& binding);

    /**
     * Same, but with the stages' flattened programs supplied by the
     * caller (one per stage, in stage order) instead of re-flattened
     * per run. The programs are only read, so a compilation service
     * can share one pre-flattened pipeline across concurrent runs;
     * they must outlive the call. Null falls back to flattening.
     */
    NativeStats runPipeline(const ir::Pipeline& pipeline,
                            sim::Binding& binding,
                            const std::vector<sim::Program>* programs);

    /**
     * Same, with any combination of pre-flattened programs, cached
     * decoded shapes, and pre-built JIT artifacts (see
     * PreparedPrograms).
     */
    NativeStats runPipeline(const ir::Pipeline& pipeline,
                            sim::Binding& binding,
                            const PreparedPrograms& prep);

    /** Execute a serial function on one host thread (the baseline). */
    NativeStats runSerial(const ir::Function& fn, sim::Binding& binding);

  private:
    sim::SysConfig cfg_;
    RuntimeOptions opt_;
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_RUNTIME_H
