/**
 * @file
 * Work-stealing fiber scheduler implementation. See sched.h for the
 * model and DESIGN.md §12 for the protocol write-up.
 *
 * Fibers are ucontext-based with heap stacks. Under ASan and TSan the
 * context switches are annotated with the sanitizer fiber API so the
 * CI sanitizer jobs see through them: ASan needs the fake-stack
 * save/restore pair around every swapcontext, TSan needs one fiber
 * handle per task (and per pool thread) and a switch notification
 * immediately before each swap. Without these, ASan reports bogus
 * stack-use-after-return and TSan loses the happens-before edges that
 * the scheduler's queue handoffs establish.
 */

#include "runtime/sched.h"

#include <pthread.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/thread_name.h"
#include "runtime/worker.h"

#if defined(__SANITIZE_ADDRESS__)
#define PHLOEM_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define PHLOEM_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(PHLOEM_ASAN)
#define PHLOEM_ASAN 1
#endif
#if __has_feature(thread_sanitizer) && !defined(PHLOEM_TSAN)
#define PHLOEM_TSAN 1
#endif
#endif

#if defined(PHLOEM_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(PHLOEM_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace phloem::rt {

namespace {

/**
 * Fiber stacks are heap allocations; sanitizers map shadow for them
 * lazily but burn more of each frame, so give them headroom there.
 */
#if defined(PHLOEM_ASAN) || defined(PHLOEM_TSAN)
constexpr size_t kTaskStackSize = 1024 * 1024;
#else
constexpr size_t kTaskStackSize = 256 * 1024;
#endif

/** Pool-size ceiling: a fat-finger guard, not a real limit. */
constexpr int kMaxWorkers = 256;

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::atomic<Scheduler*> g_sharedSched{nullptr};

/**
 * Switch from fiber `from` to fiber `to` and eventually return when
 * something switches back into `from`. Either side may be a pool
 * thread's native context.
 */
void
switchFiber(FiberCtx& from, FiberCtx& to)
{
#if defined(PHLOEM_ASAN)
    __sanitizer_start_switch_fiber(&from.fakeStack, to.stackBottom,
                                   to.stackSize);
#endif
#if defined(PHLOEM_TSAN)
    __tsan_switch_to_fiber(to.tsanFiber, 0);
#endif
    swapcontext(&from.uctx, &to.uctx);
#if defined(PHLOEM_ASAN)
    __sanitizer_finish_switch_fiber(from.fakeStack, nullptr, nullptr);
#endif
}

/**
 * Final switch out of a finished task back to its worker: the null
 * fake-stack save tells ASan this fiber is dying so its fake frames
 * can be released. Never returns.
 */
void
switchFiberFinal(FiberCtx& from, FiberCtx& to)
{
#if defined(PHLOEM_ASAN)
    __sanitizer_start_switch_fiber(nullptr, to.stackBottom, to.stackSize);
#endif
#if defined(PHLOEM_TSAN)
    __tsan_switch_to_fiber(to.tsanFiber, 0);
#endif
    swapcontext(&from.uctx, &to.uctx);
    __builtin_unreachable();
}

} // namespace

thread_local Scheduler::Worker* Scheduler::tlsWorker_ = nullptr;
thread_local Task* Scheduler::tlsTask_ = nullptr;

void taskEntry(Task* t);

namespace {

/** makecontext trampoline: reassemble the Task* from two uints. */
void
taskTrampoline(unsigned hi, unsigned lo)
{
    auto* t = reinterpret_cast<Task*>((static_cast<uintptr_t>(hi) << 32) |
                                      static_cast<uintptr_t>(lo));
    taskEntry(t);
}

} // namespace

/** First (and every) activation of a task fiber lands here. */
void
taskEntry(Task* t)
{
#if defined(PHLOEM_ASAN)
    // First entry into this fiber: no fake stack was saved for it yet.
    __sanitizer_finish_switch_fiber(nullptr, nullptr, nullptr);
#endif
    t->body_();
    t->exit_ = Task::Exit::kDone;
    auto* w = static_cast<Scheduler::Worker*>(t->worker_);
    switchFiberFinal(t->fc_, w->ctx);
}

// ---------------------------------------------------------------- Task

Task::Task(SchedRun* run, std::string name, bool is_stage,
           std::function<void()> body)
    : run_(run), name_(std::move(name)), isStage_(is_stage),
      body_(std::move(body)), stack_(new char[kTaskStackSize])
{
    fc_.stackBottom = stack_.get();
    fc_.stackSize = kTaskStackSize;
    getcontext(&fc_.uctx);
    fc_.uctx.uc_stack.ss_sp = stack_.get();
    fc_.uctx.uc_stack.ss_size = kTaskStackSize;
    fc_.uctx.uc_link = nullptr;
    auto p = reinterpret_cast<uintptr_t>(this);
    makecontext(&fc_.uctx, reinterpret_cast<void (*)()>(&taskTrampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xffffffffull));
#if defined(PHLOEM_TSAN)
    fc_.tsanFiber = __tsan_create_fiber(0);
#endif
}

Task::~Task()
{
#if defined(PHLOEM_TSAN)
    if (fc_.tsanFiber != nullptr)
        __tsan_destroy_fiber(fc_.tsanFiber);
#endif
}

// ------------------------------------------------------------ WaitList

void
WaitList::wakeAll()
{
    std::vector<Task*> woke;
    takeAll(woke);
    // Route through the task's run (immutable) rather than its last
    // worker (racy while another waker concurrently redispatches it).
    for (Task* t : woke)
        t->run_->scheduler().unpark(t);
}

// ------------------------------------------------------------ SchedRun

SchedRun::~SchedRun()
{
    if (started_) {
        sched_->unregisterRun(this);
        // Defensive: a run must not be torn down under live tasks.
        waitAll();
    }
}

void
SchedRun::addTask(std::string name, bool is_stage, std::function<void()> body)
{
    tasks_.push_back(std::make_unique<Task>(this, std::move(name), is_stage,
                                            std::move(body)));
    if (is_stage)
        ++stageLive_;
    ++totalLive_;
}

void
SchedRun::start()
{
    started_ = true;
    sched_->registerRun(this);
    size_t i = 0;
    for (auto& t : tasks_) {
        sched_->tasksStarted_.fetch_add(1, std::memory_order_relaxed);
        if (sched_->stealing_) {
            // Seed round-robin across the pool; stealing rebalances.
            auto& w = *sched_->workers_[i++ % sched_->workers_.size()];
            sched_->submitLocal(w, t.get(), /*front=*/false);
        } else {
            // No stealing: the shared injection queue is the only way
            // an idle worker can pick the task up.
            sched_->submitExternal(t.get());
        }
    }
}

void
SchedRun::waitStages()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return stageLive_ == 0; });
}

void
SchedRun::waitAll()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return totalLive_ == 0; });
}

void
SchedRun::wakeAllTasks()
{
    for (auto& t : tasks_)
        sched_->unpark(t.get());
}

void
schedWakeAll(SchedRun* run)
{
    if (run != nullptr)
        run->wakeAllTasks();
}

// ----------------------------------------------------------- Scheduler

Scheduler::Scheduler() : Scheduler(Options()) {}

Scheduler::Scheduler(const Options& opts) : stealing_(opts.stealing)
{
    int n = opts.workers;
    if (n <= 0)
        n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0)
        n = 1;
    if (n > kMaxWorkers)
        n = kMaxWorkers;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto w = std::make_unique<Worker>();
        w->sched = this;
        w->idx = i;
        workers_.push_back(std::move(w));
    }
    // Spawn only once workers_ is fully built: peers scan it to steal.
    for (auto& w : workers_)
        w->thr = std::thread([this, wp = w.get()] { workerLoop(*wp); });
    monitor_ = std::thread([this] { monitorLoop(); });
}

Scheduler::~Scheduler()
{
    {
        std::lock_guard<std::mutex> g(idleMu_);
        shutdown_.store(true, std::memory_order_release);
    }
    idleCv_.notify_all();
    {
        std::lock_guard<std::mutex> g(monMu_);
    }
    monCv_.notify_all();
    for (auto& w : workers_)
        w->thr.join();
    if (monitor_.joinable())
        monitor_.join();
    Scheduler* self = this;
    g_sharedSched.compare_exchange_strong(self, nullptr);
}

Scheduler&
Scheduler::shared(const Options* hint)
{
    static Scheduler s([hint] {
        Options o;
        if (hint != nullptr)
            o = *hint;
        if (const char* env = std::getenv("PHLOEM_SCHED_WORKERS")) {
            int n = std::atoi(env);
            if (n > 0)
                o.workers = n;
        }
        return o;
    }());
    g_sharedSched.store(&s, std::memory_order_release);
    if (hint != nullptr && hint->workers > 0 && hint->workers != s.poolSize()) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            std::fprintf(stderr,
                         "phloem: shared scheduler already sized to %d "
                         "workers; ignoring pool-size hint %d\n",
                         s.poolSize(), hint->workers);
        }
    }
    return s;
}

Scheduler*
Scheduler::sharedIfCreated()
{
    return g_sharedSched.load(std::memory_order_acquire);
}

Scheduler::Counters
Scheduler::counters() const
{
    Counters c;
    c.parks = parks_.load(std::memory_order_relaxed);
    c.unparks = unparks_.load(std::memory_order_relaxed);
    c.steals = steals_.load(std::memory_order_relaxed);
    c.yields = yields_.load(std::memory_order_relaxed);
    c.tasksStarted = tasksStarted_.load(std::memory_order_relaxed);
    return c;
}

std::vector<Scheduler::HwLaneSnapshot>
Scheduler::hwSnapshot() const
{
    std::vector<HwLaneSnapshot> out;
    for (const auto& w : workers_) {
        if (!w->hwReady.load(std::memory_order_acquire))
            continue;
        HwLaneSnapshot s;
        s.name = "pool/" + std::to_string(w->idx);
        s.counts = w->hw.read();
        if (s.counts.valid)
            out.push_back(std::move(s));
    }
    return out;
}

std::unique_ptr<SchedRun>
Scheduler::createRun(RunControl* ctl)
{
    return std::unique_ptr<SchedRun>(new SchedRun(this, ctl));
}

Task*
Scheduler::current()
{
    return tlsTask_;
}

int
Scheduler::currentPoolSize()
{
    Task* t = tlsTask_;
    if (t == nullptr)
        return 0;
    return static_cast<Worker*>(t->worker_)->sched->poolSize();
}

void
Scheduler::maybeYield()
{
    Task* t = tlsTask_;
    if (t == nullptr)
        return;
    auto* w = static_cast<Worker*>(t->worker_);
    if (w->size.load(std::memory_order_relaxed) == 0 &&
        w->sched->globalSize_.load(std::memory_order_relaxed) == 0)
        return;
    t->exit_ = Task::Exit::kYield;
    switchFiber(t->fc_, w->ctx);
}

void
Scheduler::parkCurrent(const ParkTarget& pt, RunControl& ctl, bool stoppable)
{
    Task* t = tlsTask_;
    if (t == nullptr || pt.list == nullptr)
        return;
    t->parkWhat_.store(pt.what, std::memory_order_relaxed);
    t->parkQ_.store(pt.q, std::memory_order_relaxed);
    t->state_.store(TaskState::kParking, std::memory_order_release);
    pt.list->add(t);
    // Dekker handshake with the notifier (park.h): the fence orders
    // our registration before the re-check, so either we observe the
    // notifier's push/pop here, or the notifier observes us on the
    // list and wakes us.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool ready = pt.ready(pt) || ctl.aborted() ||
                 (stoppable && ctl.stop.load(std::memory_order_acquire));
    if (ready) {
        pt.list->remove(t);
        TaskState expect = TaskState::kParking;
        if (!t->state_.compare_exchange_strong(expect, TaskState::kRunning,
                                               std::memory_order_acq_rel)) {
            // A waker got in first (kUnparkRequested): absorb it.
            t->state_.store(TaskState::kRunning, std::memory_order_release);
        }
        t->parkWhat_.store("", std::memory_order_relaxed);
        t->parkQ_.store(-1, std::memory_order_relaxed);
        return;
    }
    t->exit_ = Task::Exit::kPark;
    auto* w = static_cast<Worker*>(t->worker_);
    switchFiber(t->fc_, w->ctx);
    // Resumed by a later dispatch. Deregister ourselves: direct
    // unparks (run wakeAll, abort) flip our state without touching
    // the waiter list, and a stale entry must not survive into the
    // next park.
    pt.list->remove(t);
    t->parkWhat_.store("", std::memory_order_relaxed);
    t->parkQ_.store(-1, std::memory_order_relaxed);
}

void
Scheduler::unpark(Task* t)
{
    for (;;) {
        TaskState s = t->state_.load(std::memory_order_acquire);
        if (s == TaskState::kParking) {
            TaskState expect = TaskState::kParking;
            if (t->state_.compare_exchange_weak(expect,
                                                TaskState::kUnparkRequested,
                                                std::memory_order_acq_rel)) {
                // The parking worker sees the request and requeues.
                unparks_.fetch_add(1, std::memory_order_relaxed);
                t->run_->unparks_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            continue;
        }
        if (s == TaskState::kParked) {
            TaskState expect = TaskState::kParked;
            if (!t->state_.compare_exchange_weak(expect, TaskState::kRunnable,
                                                 std::memory_order_acq_rel))
                continue;
            unparks_.fetch_add(1, std::memory_order_relaxed);
            SchedRun* r = t->run_;
            r->unparks_.fetch_add(1, std::memory_order_relaxed);
            Worker* w = tlsWorker_;
            if (w != nullptr && w->sched == this) {
                // Co-scheduling placement: the task we just made
                // runnable is usually the other end of the ring we
                // touched — run it next on this worker so the stalled
                // edge's endpoints share a cache.
                submitLocal(*w, t, /*front=*/true);
            } else {
                submitExternal(t);
            }
            return;
        }
        // Runnable / Running / UnparkRequested / Done: nothing to do.
        return;
    }
}

void
Scheduler::submitLocal(Worker& w, Task* t, bool front)
{
    {
        std::lock_guard<std::mutex> g(w.mu);
        if (front)
            w.q.push_front(t);
        else
            w.q.push_back(t);
        w.size.store(static_cast<int>(w.q.size()), std::memory_order_seq_cst);
    }
    notifyIdle();
}

void
Scheduler::submitExternal(Task* t)
{
    {
        std::lock_guard<std::mutex> g(idleMu_);
        globalQ_.push_back(t);
        globalSize_.store(static_cast<int>(globalQ_.size()),
                          std::memory_order_seq_cst);
    }
    idleCv_.notify_all();
}

void
Scheduler::notifyIdle()
{
    // Dekker pairing with the pre-sleep re-check in workerLoop: our
    // queue-size store (seq_cst) is ordered before this idle-count
    // load, the sleeper's idle-count increment before its queue
    // re-check. One of the two must see the other.
    if (idleCount_.load(std::memory_order_seq_cst) == 0)
        return;
    std::lock_guard<std::mutex> g(idleMu_);
    idleCv_.notify_all();
}

Task*
Scheduler::takeLocal(Worker& w)
{
    std::lock_guard<std::mutex> g(w.mu);
    if (w.q.empty())
        return nullptr;
    Task* t = w.q.front();
    w.q.pop_front();
    w.size.store(static_cast<int>(w.q.size()), std::memory_order_seq_cst);
    return t;
}

Task*
Scheduler::takeGlobal()
{
    std::lock_guard<std::mutex> g(idleMu_);
    if (globalQ_.empty())
        return nullptr;
    Task* t = globalQ_.front();
    globalQ_.pop_front();
    globalSize_.store(static_cast<int>(globalQ_.size()),
                      std::memory_order_seq_cst);
    return t;
}

Task*
Scheduler::trySteal(Worker& w)
{
    const int n = static_cast<int>(workers_.size());
    for (int k = 1; k < n; ++k) {
        Worker& v = *workers_[static_cast<size_t>((w.idx + k) % n)];
        std::lock_guard<std::mutex> g(v.mu);
        if (v.q.empty())
            continue;
        // Steal from the back: the front is the victim's hot path
        // (unparks co-schedule there).
        Task* t = v.q.back();
        v.q.pop_back();
        v.size.store(static_cast<int>(v.q.size()), std::memory_order_seq_cst);
        steals_.fetch_add(1, std::memory_order_relaxed);
        t->run_->steals_.fetch_add(1, std::memory_order_relaxed);
        return t;
    }
    return nullptr;
}

void
Scheduler::workerLoop(Worker& w)
{
    tlsWorker_ = &w;
    setCurrentThreadName("phl-sched/" + std::to_string(w.idx));
    // Counters must attach to the counted thread, so the worker opens
    // its own; readers gate on hwReady to avoid half-open fd sets.
    if (w.hw.open())
        w.hwReady.store(true, std::memory_order_release);
#if defined(PHLOEM_TSAN)
    w.ctx.tsanFiber = __tsan_get_current_fiber();
#endif
    // ASan needs the pool thread's own stack bounds to switch back to.
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
        void* addr = nullptr;
        size_t size = 0;
        pthread_attr_getstack(&attr, &addr, &size);
        w.ctx.stackBottom = addr;
        w.ctx.stackSize = size;
        pthread_attr_destroy(&attr);
    }
    for (;;) {
        Task* t = takeLocal(w);
        if (t == nullptr)
            t = takeGlobal();
        if (t == nullptr && stealing_)
            t = trySteal(w);
        if (t != nullptr) {
            dispatch(w, t);
            continue;
        }
        std::unique_lock<std::mutex> lk(idleMu_);
        if (shutdown_.load(std::memory_order_acquire))
            return;
        idleCount_.fetch_add(1, std::memory_order_seq_cst);
        // Re-check after announcing idleness (the notifier's Dekker
        // counterpart): a submit that missed our idle count must be
        // visible to this scan, or its notify must reach our wait.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        bool work = globalSize_.load(std::memory_order_seq_cst) > 0 ||
                    w.size.load(std::memory_order_seq_cst) > 0;
        if (!work && stealing_) {
            for (const auto& p : workers_) {
                if (p->size.load(std::memory_order_seq_cst) > 0) {
                    work = true;
                    break;
                }
            }
        }
        if (!work)
            idleCv_.wait_for(lk, std::chrono::milliseconds(50));
        idleCount_.fetch_sub(1, std::memory_order_seq_cst);
    }
}

void
Scheduler::dispatch(Worker& w, Task* t)
{
    t->worker_ = &w;
    t->exit_ = Task::Exit::kNone;
    t->state_.store(TaskState::kRunning, std::memory_order_release);
    tlsTask_ = t;
    switchFiber(w.ctx, t->fc_);
    tlsTask_ = nullptr;
    switch (t->exit_) {
    case Task::Exit::kDone:
        finishTask(t);
        break;
    case Task::Exit::kYield:
        yields_.fetch_add(1, std::memory_order_relaxed);
        t->run_->yields_.fetch_add(1, std::memory_order_relaxed);
        t->state_.store(TaskState::kRunnable, std::memory_order_release);
        submitLocal(w, t, /*front=*/false);
        break;
    case Task::Exit::kPark: {
        // Count first: after the state CAS below publishes kParked,
        // a waker may resume the task on another worker and the run
        // may complete at any moment.
        parks_.fetch_add(1, std::memory_order_relaxed);
        t->run_->parks_.fetch_add(1, std::memory_order_relaxed);
        TaskState expect = TaskState::kParking;
        if (!t->state_.compare_exchange_strong(expect, TaskState::kParked,
                                               std::memory_order_acq_rel)) {
            // A waker raced the park (kUnparkRequested): the wake-up
            // condition may already hold, so requeue immediately.
            t->state_.store(TaskState::kRunnable, std::memory_order_release);
            submitLocal(w, t, /*front=*/true);
        }
        break;
    }
    case Task::Exit::kNone:
        break;
    }
}

void
Scheduler::finishTask(Task* t)
{
    t->state_.store(TaskState::kDone, std::memory_order_release);
    SchedRun* r = t->run_;
    // Notify while holding the mutex: a waiter cannot re-check the
    // counts (and destroy r, cv included) until the lock drops, so the
    // notify never touches a dead condvar.
    std::lock_guard<std::mutex> g(r->mu_);
    if (t->isStage_)
        --r->stageLive_;
    --r->totalLive_;
    r->cv_.notify_all();
}

void
Scheduler::registerRun(SchedRun* r)
{
    std::lock_guard<std::mutex> g(runsMu_);
    runs_.push_back(r);
}

void
Scheduler::unregisterRun(SchedRun* r)
{
    std::lock_guard<std::mutex> g(runsMu_);
    for (size_t i = 0; i < runs_.size(); ++i) {
        if (runs_[i] == r) {
            runs_[i] = runs_.back();
            runs_.pop_back();
            break;
        }
    }
}

void
Scheduler::monitorLoop()
{
    setCurrentThreadName("phl-sched-mon");
    std::unique_lock<std::mutex> lk(monMu_);
    while (!shutdown_.load(std::memory_order_acquire)) {
        monCv_.wait_for(lk, std::chrono::milliseconds(10));
        if (shutdown_.load(std::memory_order_acquire))
            return;
        lk.unlock();
        checkRuns(nowNs());
        lk.lock();
    }
}

void
Scheduler::checkRuns(uint64_t now_ns)
{
    std::lock_guard<std::mutex> g(runsMu_);
    for (SchedRun* r : runs_) {
        int stage_live = 0;
        int total_live = 0;
        {
            std::lock_guard<std::mutex> g2(r->mu_);
            stage_live = r->stageLive_;
            total_live = r->totalLive_;
        }
        // Completion phase: every stage halted, the caller is about
        // to set stop and wake the drained RAs. Parked RAs are normal.
        if (stage_live == 0 || total_live == 0) {
            r->allParkedSinceNs_ = 0;
            continue;
        }
        // Deadlocked iff *every* live task is Parked: nothing is
        // running, nothing is runnable, so no unpark can ever come
        // from inside the run. A merely descheduled (oversubscribed)
        // task is kRunnable and keeps the run alive.
        bool all_parked = true;
        for (const auto& t : r->tasks_) {
            TaskState s = t->state_.load(std::memory_order_acquire);
            if (s != TaskState::kDone && s != TaskState::kParked) {
                all_parked = false;
                break;
            }
        }
        if (!all_parked) {
            r->allParkedSinceNs_ = 0;
            continue;
        }
        if (r->allParkedSinceNs_ == 0) {
            r->allParkedSinceNs_ = now_ns;
            continue;
        }
        const uint64_t timeout_ns =
            static_cast<uint64_t>(r->ctl_->opt.deadlockTimeoutMs) * 1000000ull;
        if (now_ns - r->allParkedSinceNs_ < timeout_ns)
            continue;
        std::string msg = "deadlock: all " + std::to_string(total_live) +
                          " live tasks parked with nothing runnable for " +
                          std::to_string(r->ctl_->opt.deadlockTimeoutMs) +
                          " ms";
        for (const auto& t : r->tasks_) {
            if (t->state_.load(std::memory_order_acquire) !=
                TaskState::kParked)
                continue;
            msg += "\n  " + t->name() + " parked on " +
                   t->parkWhat_.load(std::memory_order_relaxed);
            int q = t->parkQ_.load(std::memory_order_relaxed);
            if (q >= 0)
                msg += " q" + std::to_string(q);
        }
        // fail() wakes every parked task (schedWakeAll) so the run
        // unwinds and the caller's post-mortem path takes over.
        r->ctl_->fail(msg);
        r->allParkedSinceNs_ = 0;
    }
}

} // namespace phloem::rt
