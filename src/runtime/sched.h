/**
 * @file
 * Shared work-stealing task scheduler for the native runtime.
 *
 * Instead of one OS thread per pipeline stage per replica (which
 * oversubscribes the host as soon as pipelines are wide or phloemd
 * serves several requests at once), every stage/RA worker becomes a
 * resumable *task*: a stackful fiber (ucontext) scheduled onto a
 * fixed-size pool of OS workers, default `hardware_concurrency`, with
 * per-worker run queues and work stealing — the shape of ponyc's
 * runtime scheduler adapted to Phloem's decoupled pipelines.
 *
 * Blocking keeps the SPSC-ring semantics bit-for-bit: a task that
 * finds a ring full/empty registers on the ring's waiter list
 * (park.h), re-checks, and parks — yielding its worker to another
 * runnable task at ~0 CPU cost. The push/pop on the other side
 * unparks it onto the *unparker's* local queue, co-scheduling a
 * blocked producer's consumer on the same worker (the placement the
 * stall-attribution traces motivate: the stalled edge's two endpoints
 * share a cache).
 *
 * Deadlock detection is scheduler-aware progress epochs rather than
 * the legacy wall-time heuristic: a run is deadlocked iff *every* live
 * task is Parked (nothing runnable, nothing running) and stays so for
 * the run's timeout. A merely descheduled task is Runnable, so an
 * oversubscribed-but-live pipeline can never trip the watchdog.
 *
 * See DESIGN.md §12 for the task state machine and parking protocol.
 */

#ifndef PHLOEM_RUNTIME_SCHED_H
#define PHLOEM_RUNTIME_SCHED_H

#include <ucontext.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/hwcount.h"
#include "runtime/park.h"

namespace phloem::rt {

struct RunControl;
class Scheduler;
class SchedRun;

/**
 * Task lifecycle. Transitions:
 *   Runnable -> Running            (a worker dispatches it)
 *   Running  -> Parking            (task registered on a waiter list)
 *   Parking  -> Running            (cancel: condition ready on re-check)
 *   Parking  -> UnparkRequested    (a waker raced the park)
 *   Parking  -> Parked             (worker completed the park)
 *   UnparkRequested -> Runnable    (worker observes the race, requeues)
 *   Parked   -> Runnable           (a waker unparks it)
 *   Running  -> Runnable           (cooperative yield)
 *   Running  -> Done               (body returned)
 * The Parking/UnparkRequested split is what makes a wake that lands
 * mid-park impossible to lose and impossible to double-enqueue.
 */
enum class TaskState : uint8_t {
    kRunnable,
    kRunning,
    kParking,
    kUnparkRequested,
    kParked,
    kDone,
};

/** One fiber: ucontext + stack + sanitizer bookkeeping (sched.cc). */
struct FiberCtx
{
    ucontext_t uctx{};
    void* stackBottom = nullptr;
    size_t stackSize = 0;
    /** ASan fake-stack handle saved across a suspension. */
    void* fakeStack = nullptr;
    /** TSan fiber handle (null when TSan is off). */
    void* tsanFiber = nullptr;
};

/** One stage/RA worker as a schedulable fiber. */
class Task
{
  public:
    Task(SchedRun* run, std::string name, bool is_stage,
         std::function<void()> body);
    ~Task();

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    const std::string& name() const { return name_; }

  private:
    friend class Scheduler;
    friend class SchedRun;
    friend class WaitList;
    friend void taskEntry(Task* t);

    enum class Exit : uint8_t { kNone, kPark, kYield, kDone };

    SchedRun* run_;
    std::string name_;
    bool isStage_;
    std::function<void()> body_;

    std::atomic<TaskState> state_{TaskState::kRunnable};
    Exit exit_ = Exit::kNone;
    FiberCtx fc_;
    std::unique_ptr<char[]> stack_;
    /** The pool worker currently (or last) dispatching this task. */
    void* worker_ = nullptr;

    /** What the task is parked on, for the deadlock post-mortem. */
    std::atomic<const char*> parkWhat_{""};
    std::atomic<int> parkQ_{-1};
};

/**
 * One pipeline run's task group: owns the tasks, tracks completion,
 * and carries the run-level scheduler counters that land in
 * NativeStats. Created by Scheduler::createRun; must be destroyed
 * only after waitAll() returned.
 */
class SchedRun
{
  public:
    ~SchedRun();

    SchedRun(const SchedRun&) = delete;
    SchedRun& operator=(const SchedRun&) = delete;

    /** Add a task before start(). Stage tasks define completion. */
    void addTask(std::string name, bool is_stage,
                 std::function<void()> body);

    /** Enqueue every task and register with the deadlock monitor. */
    void start();

    /** Block the caller until every stage task finished. */
    void waitStages();

    /** Block the caller until every task finished. */
    void waitAll();

    /**
     * Unpark every parked task (idempotent, callable from any
     * thread): used after ctl.stop so drained RAs exit, and by
     * RunControl::fail so an aborting run cannot strand sleepers.
     */
    void wakeAllTasks();

    uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }
    uint64_t unparks() const { return unparks_.load(std::memory_order_relaxed); }
    uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
    uint64_t yields() const { return yields_.load(std::memory_order_relaxed); }

    Scheduler& scheduler() { return *sched_; }

  private:
    friend class Scheduler;

    SchedRun(Scheduler* sched, RunControl* ctl)
        : sched_(sched), ctl_(ctl)
    {
    }

    Scheduler* sched_;
    RunControl* ctl_;
    std::vector<std::unique_ptr<Task>> tasks_;

    std::mutex mu_;
    std::condition_variable cv_;
    int stageLive_ = 0;
    int totalLive_ = 0;
    bool started_ = false;

    /** Monitor-private: when the all-parked state was first seen. */
    uint64_t allParkedSinceNs_ = 0;

    std::atomic<uint64_t> parks_{0};
    std::atomic<uint64_t> unparks_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> yields_{0};
};

class Scheduler
{
  public:
    struct Options
    {
        /** Pool size; 0 means std::thread::hardware_concurrency(). */
        int workers = 0;
        /** Idle workers steal from the back of peers' run queues. */
        bool stealing = true;
    };

    Scheduler();
    explicit Scheduler(const Options& opts);
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /**
     * The process-wide shared pool every run uses by default, created
     * on first use (PHLOEM_SCHED_WORKERS overrides the size). A hint
     * is honored only by the call that creates the pool; later hints
     * that disagree warn once and are ignored — one machine, one pool
     * is the point.
     */
    static Scheduler& shared(const Options* hint = nullptr);
    /** The shared pool if some run already created it, else null. */
    static Scheduler* sharedIfCreated();

    int poolSize() const { return static_cast<int>(workers_.size()); }
    bool stealing() const { return stealing_; }

    struct Counters
    {
        uint64_t parks = 0;
        uint64_t unparks = 0;
        uint64_t steals = 0;
        uint64_t yields = 0;
        uint64_t tasksStarted = 0;
    };
    /** Process-lifetime totals (phloemd's "stats" op reports these). */
    Counters counters() const;

    /** One pool worker's cumulative PMU counts (read cross-thread). */
    struct HwLaneSnapshot
    {
        std::string name;
        HwCounts counts;
    };
    /**
     * Cumulative hardware counters per pool worker, empty when the PMU
     * is unavailable. Runtime callers snapshot before/after a run and
     * diff; lanes are pool threads, so concurrent runs on the shared
     * pool overlap on the same lanes (see HwLane in stats.h).
     */
    std::vector<HwLaneSnapshot> hwSnapshot() const;

    /** New empty task group bound to one run's RunControl. */
    std::unique_ptr<SchedRun> createRun(RunControl* ctl);

    /** The task the calling thread is executing, or null. */
    static Task* current();

    /**
     * Worker count of the pool running the calling task, or 0 when
     * the caller is not on a task. Lets blocking waits skip the spin
     * phase on a single-worker pool, where the peer task that would
     * satisfy the wait shares the only worker and cannot run until
     * the spinner yields.
     */
    static int currentPoolSize();

    /**
     * Cooperative yield point (called from the instruction-count
     * heartbeats): if the current worker has other runnable work
     * queued, requeue the current task and run that work. No-op off a
     * task, or when nothing else is runnable.
     */
    static void maybeYield();

    /**
     * Two-phase park of the current task on pt.list. Registers,
     * re-checks pt.ready / abort / (stoppable && stop) under the
     * Dekker fence pairing, and either cancels or switches out until
     * a waker unparks it. Spurious returns are allowed; the caller's
     * wait loop re-checks the ring. No-op off a task or with a null
     * list.
     */
    static void parkCurrent(const ParkTarget& pt, RunControl& ctl,
                            bool stoppable);

    /** Make t runnable if parked (or cancel an in-flight park). */
    void unpark(Task* t);

  private:
    friend class SchedRun;
    friend class WaitList;
    friend void taskEntry(Task* t);

    struct Worker
    {
        Scheduler* sched = nullptr;
        int idx = 0;
        std::mutex mu;
        std::deque<Task*> q;
        std::atomic<int> size{0};
        FiberCtx ctx;
        std::thread thr;
        /** Opened by the worker thread itself at workerLoop entry. */
        HwThreadCounters hw;
        /** Set after hw.open() so hwSnapshot() never reads half-open fds. */
        std::atomic<bool> hwReady{false};
    };

    void workerLoop(Worker& w);
    void dispatch(Worker& w, Task* t);
    void finishTask(Task* t);
    Task* takeLocal(Worker& w);
    Task* takeGlobal();
    Task* trySteal(Worker& w);
    /** Queue t on w (front = run next) and nudge idle workers. */
    void submitLocal(Worker& w, Task* t, bool front);
    /** Queue t on the global injection queue (non-worker threads). */
    void submitExternal(Task* t);
    void notifyIdle();

    void monitorLoop();
    void checkRuns(uint64_t now_ns);

    void registerRun(SchedRun* r);
    void unregisterRun(SchedRun* r);

    /** The pool worker this OS thread is, or null off the pool. */
    static thread_local Worker* tlsWorker_;
    /** The task this OS thread is currently executing, or null. */
    static thread_local Task* tlsTask_;

    std::vector<std::unique_ptr<Worker>> workers_;
    bool stealing_ = true;

    std::mutex idleMu_;
    std::condition_variable idleCv_;
    std::deque<Task*> globalQ_;
    std::atomic<int> globalSize_{0};
    std::atomic<int> idleCount_{0};
    std::atomic<bool> shutdown_{false};

    std::mutex runsMu_;
    std::vector<SchedRun*> runs_;
    std::thread monitor_;
    std::mutex monMu_;
    std::condition_variable monCv_;

    std::atomic<uint64_t> parks_{0};
    std::atomic<uint64_t> unparks_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> yields_{0};
    std::atomic<uint64_t> tasksStarted_{0};
};

/**
 * Null-safe wake of every parked task in a run. RunControl::fail
 * calls this through the fwd declaration in worker.h so an aborting
 * run can never strand sleepers (worker.h cannot include sched.h).
 */
void schedWakeAll(SchedRun* run);

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_SCHED_H
