/**
 * @file
 * Statistics collected by one native-runtime run.
 *
 * Unlike sim::RunStats (simulated cycles), these are real measurements:
 * wall-clock time plus per-queue occupancy/backpressure counters, which
 * is what the paper's queue-sizing arguments are about — a queue whose
 * producer keeps blocking is the pipeline's bottleneck edge.
 */

#ifndef PHLOEM_RUNTIME_STATS_H
#define PHLOEM_RUNTIME_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "hwcount.h"

namespace phloem::rt {

struct QueueStats
{
    /** Absolute queue id (replica-strided, as in the simulator). */
    int id = 0;
    int depth = 0;
    uint64_t enq = 0;
    uint64_t deq = 0;
    /** Times the producer found the ring full and had to wait. */
    uint64_t enqBlocks = 0;
    /** Times the consumer found the ring empty and had to wait. */
    uint64_t deqBlocks = 0;
    /** High-water mark of elements held. */
    uint64_t maxOccupancy = 0;
    /**
     * Elements still in the ring — or drained into a consumer-side
     * batch buffer but never architecturally dequeued — when the stage
     * threads halted. Nonzero means a producer out-ran its consumer's
     * demand — the signature of a mispaired stream (the fuzzer's
     * deadlock post-mortems key on it).
     */
    uint64_t residual = 0;

    // --- Batched-transfer accounting (engine + RA streaming). -------
    /** Number of log2 histogram buckets: 1, 2-3, 4-7, ..., >= 128. */
    static constexpr int kBatchHistBuckets = 8;
    /** Consumer-side batch drains (popBatch calls that took >= 1). */
    uint64_t popBatches = 0;
    uint64_t popBatchElems = 0;
    /** Producer-side batch publishes (pushBatch calls that took >= 1). */
    uint64_t pushBatches = 0;
    uint64_t pushBatchElems = 0;
    /**
     * Batch sizes, log2-bucketed, kept separate per side: producer
     * publish sizes (pushHist) and consumer drain sizes (popHist) answer
     * different questions — small pushes mean the producer trickles,
     * small pops mean the consumer never finds runs to drain.
     */
    uint64_t pushHist[kBatchHistBuckets] = {};
    uint64_t popHist[kBatchHistBuckets] = {};

    /** Values moved per ring synchronization on the consumer side. */
    double
    meanPopBatch() const
    {
        return popBatches > 0
                   ? static_cast<double>(popBatchElems) /
                         static_cast<double>(popBatches)
                   : 0.0;
    }

    double
    meanPushBatch() const
    {
        return pushBatches > 0
                   ? static_cast<double>(pushBatchElems) /
                         static_cast<double>(pushBatches)
                   : 0.0;
    }
};

struct WorkerStats
{
    std::string name;
    /** True for stage threads; false for software reference accelerators. */
    bool isStage = true;
    uint64_t instructions = 0;
    uint64_t queueOps = 0;
    /** RA workers: elements streamed + control values forwarded. */
    uint64_t raElements = 0;
    uint64_t raCtrlForwarded = 0;

    // --- Profiling (stage workers). ---------------------------------
    /** Dynamic executions per ir::Opcode (size ir::kNumOpcodes). */
    std::vector<uint64_t> opCounts;
    /** Dynamic branch instructions (kBr/kBrIf/kBrIfNot). */
    uint64_t branches = 0;
    /** Static superinstruction sites found by the decoder. */
    uint64_t fusedSites = 0;

    /** Tier this worker actually ran: "interp", "engine", or "jit". */
    std::string tier;
    /**
     * JIT-tier runs where this stage fell back to the engine: the
     * compile/load error that caused it ("" = ran as requested).
     */
    std::string jitFallback;
};

/** Scheduler-side counters for one run (shared task pool only). */
struct SchedStats
{
    /** Run executed as tasks on the shared pool (vs. legacy threads). */
    bool shared = false;
    /** Worker threads in the pool that ran this pipeline. */
    int poolSize = 0;
    /** Work stealing between pool workers was enabled. */
    bool stealing = false;
    /** Times a task of this run parked on a full/empty ring or barrier. */
    uint64_t parks = 0;
    /** Times a parked/parking task of this run was woken. */
    uint64_t unparks = 0;
    /** This run's tasks stolen from another worker's queue. */
    uint64_t steals = 0;
    /** Cooperative yields from compute loops (heartbeat checkpoints). */
    uint64_t yields = 0;
};

/**
 * Hardware-counter deltas for one counted OS thread during a run.
 * In legacy mode a lane is a stage/RA worker thread; in shared-scheduler
 * mode a lane is a pool worker thread (fibers migrate, so per-task
 * counting would attribute other tasks' cycles — concurrent runs on the
 * shared pool therefore overlap on the same lanes).
 */
struct HwLane
{
    std::string name;
    HwCounts counts;
};

struct NativeStats
{
    /** Wall-clock time of the parallel region (threads spawn -> join). */
    double wallNs = 0.0;
    int numStageThreads = 0;
    int numRAWorkers = 0;
    /** Stage workers ran the pre-decoded engine (vs. raw interpreter). */
    bool engine = false;
    /** Resolved stage tier: "interp", "engine", or "jit". */
    std::string tier = "engine";
    /** JIT tier: stage workers that ran compiled code. */
    int jitStages = 0;
    /** JIT tier: stage workers that fell back to the engine. */
    int jitFallbacks = 0;
    /** First per-stage compile/load error behind a fallback ("" = none). */
    std::string jitError;
    /** JIT pipeline latencies summed over stage programs (ns). */
    double jitEmitNs = 0.0;
    double jitCompileNs = 0.0;
    double jitLoadNs = 0.0;
    /** Task-pool scheduling counters (sched.shared false in legacy mode). */
    SchedStats sched;

    std::vector<WorkerStats> workers;
    std::vector<QueueStats> queues;

    /** Per-thread PMU deltas; empty (hwValid false) when unavailable. */
    std::vector<HwLane> hwLanes;
    /** True iff the hw lanes carry real counter data. */
    bool hwValid = false;
    /** getrusage delta across the run (always populated). */
    ResourceUsage rusage;

    bool ok = true;
    /** Deadlock-watchdog / worker-exception diagnostics when !ok. */
    std::string error;

    double wallMs() const { return wallNs / 1e6; }

    uint64_t
    totalInstructions() const
    {
        uint64_t n = 0;
        for (const auto& w : workers)
            n += w.instructions;
        return n;
    }

    uint64_t
    totalEnqBlocks() const
    {
        uint64_t n = 0;
        for (const auto& q : queues)
            n += q.enqBlocks;
        return n;
    }

    uint64_t
    totalDeqBlocks() const
    {
        uint64_t n = 0;
        for (const auto& q : queues)
            n += q.deqBlocks;
        return n;
    }

    /** Per-opcode dynamic counts summed over all stage workers. */
    std::vector<uint64_t>
    totalOpCounts() const
    {
        std::vector<uint64_t> out;
        for (const auto& w : workers) {
            if (w.opCounts.size() > out.size())
                out.resize(w.opCounts.size(), 0);
            for (size_t i = 0; i < w.opCounts.size(); ++i)
                out[i] += w.opCounts[i];
        }
        return out;
    }

    uint64_t
    totalBranches() const
    {
        uint64_t n = 0;
        for (const auto& w : workers)
            n += w.branches;
        return n;
    }

    /** Pipeline-wide counter totals summed over all hw lanes. */
    HwCounts
    hwTotal() const
    {
        HwCounts t;
        for (const auto& lane : hwLanes)
            t.accumulate(lane.counts);
        return t;
    }

    /** Mean consumer-side batch size, weighted over all queues. */
    double
    meanPopBatch() const
    {
        uint64_t batches = 0, elems = 0;
        for (const auto& q : queues) {
            batches += q.popBatches;
            elems += q.popBatchElems;
        }
        return batches > 0 ? static_cast<double>(elems) /
                                 static_cast<double>(batches)
                           : 0.0;
    }
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_STATS_H
