/**
 * @file
 * Statistics collected by one native-runtime run.
 *
 * Unlike sim::RunStats (simulated cycles), these are real measurements:
 * wall-clock time plus per-queue occupancy/backpressure counters, which
 * is what the paper's queue-sizing arguments are about — a queue whose
 * producer keeps blocking is the pipeline's bottleneck edge.
 */

#ifndef PHLOEM_RUNTIME_STATS_H
#define PHLOEM_RUNTIME_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace phloem::rt {

struct QueueStats
{
    /** Absolute queue id (replica-strided, as in the simulator). */
    int id = 0;
    int depth = 0;
    uint64_t enq = 0;
    uint64_t deq = 0;
    /** Times the producer found the ring full and had to wait. */
    uint64_t enqBlocks = 0;
    /** Times the consumer found the ring empty and had to wait. */
    uint64_t deqBlocks = 0;
    /** High-water mark of elements held. */
    uint64_t maxOccupancy = 0;
    /**
     * Elements still in the ring when the stage threads halted. Nonzero
     * means a producer out-ran its consumer's demand — the signature of
     * a mispaired stream (the fuzzer's deadlock post-mortems key on it).
     */
    uint64_t residual = 0;
};

struct WorkerStats
{
    std::string name;
    /** True for stage threads; false for software reference accelerators. */
    bool isStage = true;
    uint64_t instructions = 0;
    uint64_t queueOps = 0;
    /** RA workers: elements streamed + control values forwarded. */
    uint64_t raElements = 0;
    uint64_t raCtrlForwarded = 0;
};

struct NativeStats
{
    /** Wall-clock time of the parallel region (threads spawn -> join). */
    double wallNs = 0.0;
    int numStageThreads = 0;
    int numRAWorkers = 0;

    std::vector<WorkerStats> workers;
    std::vector<QueueStats> queues;

    bool ok = true;
    /** Deadlock-watchdog / worker-exception diagnostics when !ok. */
    std::string error;

    double wallMs() const { return wallNs / 1e6; }

    uint64_t
    totalInstructions() const
    {
        uint64_t n = 0;
        for (const auto& w : workers)
            n += w.instructions;
        return n;
    }

    uint64_t
    totalEnqBlocks() const
    {
        uint64_t n = 0;
        for (const auto& q : queues)
            n += q.enqBlocks;
        return n;
    }

    uint64_t
    totalDeqBlocks() const
    {
        uint64_t n = 0;
        for (const auto& q : queues)
            n += q.deqBlocks;
        return n;
    }
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_STATS_H
