#include "runtime/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace phloem::trace {

const char*
eventKindName(EventKind k)
{
    switch (k) {
    case EventKind::kEnqBlock: return "enq_block";
    case EventKind::kDeqBlock: return "deq_block";
    case EventKind::kBarrierWait: return "barrier_wait";
    case EventKind::kRaService: return "ra_service";
    case EventKind::kHalt: return "halt";
    case EventKind::kQueueOcc: return "queue_occ";
    case EventKind::kSvcQueueWait: return "svc_queue_wait";
    case EventKind::kSvcCacheLookup: return "svc_cache_lookup";
    case EventKind::kSvcCompile: return "svc_compile";
    case EventKind::kSvcRun: return "svc_run";
    }
    return "unknown";
}

TraceBuffer::TraceBuffer(const Tracer* owner, std::string name,
                         bool is_stage, size_t capacity)
    : owner_(owner), name_(std::move(name)), isStage_(is_stage),
      ring_(capacity == 0 ? 1 : capacity)
{
}

size_t
TraceBuffer::retained() const
{
    return head_ < ring_.size() ? static_cast<size_t>(head_) : ring_.size();
}

std::vector<Event>
TraceBuffer::lastN(size_t n) const
{
    size_t avail = retained();
    size_t take = n < avail ? n : avail;
    std::vector<Event> out;
    out.reserve(take);
    for (uint64_t i = head_ - take; i < head_; ++i)
        out.push_back(ring_[static_cast<size_t>(i % ring_.size())]);
    return out;
}

Tracer::Tracer(Timebase tb, size_t capacity)
    : tb_(tb), capacity_(capacity),
      epochNs_(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count()))
{
}

TraceBuffer*
Tracer::addWorker(const std::string& name, bool is_stage)
{
    buffers_.push_back(
        std::make_unique<TraceBuffer>(this, name, is_stage, capacity_));
    return buffers_.back().get();
}

void
Tracer::setMeta(const std::string& key, const std::string& value)
{
    for (auto& kv : meta_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    meta_.emplace_back(key, value);
}

namespace {

/** Timebase units -> trace `ts` microseconds, rendered as a string.
 * Wall ns map 1000:1; simulated cycles map 1:1 so a cycle reads as a
 * microsecond lane width in the viewer. */
void
appendTs(std::string& out, uint64_t t, Timebase tb)
{
    char buf[40];
    if (tb == Timebase::kWallNs)
        std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", t / 1000,
                      static_cast<unsigned>(t % 1000));
    else
        std::snprintf(buf, sizeof buf, "%" PRIu64, t);
    out += buf;
}

void
appendJsonString(std::string& out, const std::string& s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
Tracer::toJson() const
{
    const int pid = 1;
    std::string out;
    out.reserve(1 << 16);
    out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"timebase\":";
    out += tb_ == Timebase::kWallNs ? "\"wall_ns\"" : "\"sim_cycles\"";
    for (const auto& [key, value] : meta_) {
        out += ',';
        appendJsonString(out, key);
        out += ':';
        appendJsonString(out, value);
    }
    out += "},\"traceEvents\":[\n";
    out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":"
           "{\"name\":";
    out += tb_ == Timebase::kWallNs ? "\"phloem native\"" : "\"phloem sim\"";
    out += "}}";

    char buf[128];
    for (size_t i = 0; i < buffers_.size(); ++i) {
        const TraceBuffer& b = *buffers_[i];
        const int tid = static_cast<int>(i) + 1;

        out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
        appendJsonString(out, b.workerName());
        out += "}},\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
        out += std::to_string(tid);
        out += ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":";
        out += std::to_string(tid);
        out += "}}";

        b.forEachRetained([&](const Event& e) {
            out += ",\n{\"pid\":";
            out += std::to_string(pid);
            out += ",\"tid\":";
            out += std::to_string(tid);
            switch (e.kind) {
            case EventKind::kEnqBlock:
            case EventKind::kDeqBlock:
            case EventKind::kBarrierWait:
            case EventKind::kRaService:
            case EventKind::kSvcQueueWait:
            case EventKind::kSvcCacheLookup:
            case EventKind::kSvcCompile:
            case EventKind::kSvcRun: {
                out += ",\"ph\":\"X\",\"ts\":";
                appendTs(out, e.begin, tb_);
                out += ",\"dur\":";
                appendTs(out, e.end - e.begin, tb_);
                out += ",\"name\":\"";
                out += eventKindName(e.kind);
                if (e.queue >= 0) {
                    std::snprintf(buf, sizeof buf, " q%d", e.queue);
                    out += buf;
                }
                out += "\",\"args\":{";
                bool first = true;
                if (e.queue >= 0) {
                    std::snprintf(buf, sizeof buf, "\"queue\":%d", e.queue);
                    out += buf;
                    first = false;
                }
                if (e.kind == EventKind::kRaService) {
                    if (!first) out += ',';
                    std::snprintf(buf, sizeof buf,
                                  "\"elements\":%" PRIu64, e.arg);
                    out += buf;
                }
                out += "}}";
                break;
            }
            case EventKind::kHalt:
                out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
                appendTs(out, e.begin, tb_);
                out += ",\"name\":\"halt\",\"args\":{}}";
                break;
            case EventKind::kQueueOcc:
                out += ",\"ph\":\"C\",\"ts\":";
                appendTs(out, e.begin, tb_);
                std::snprintf(buf, sizeof buf,
                              ",\"name\":\"q%d occupancy\",\"args\":"
                              "{\"occ\":%" PRIu64 "}}",
                              e.queue, e.arg);
                out += buf;
                break;
            }
        });
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::writeJson(const std::string& path, std::string* err) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        if (err) *err = "cannot open " + path + " for writing";
        return false;
    }
    f << toJson();
    f.flush();
    if (!f) {
        if (err) *err = "write failed for " + path;
        return false;
    }
    return true;
}

std::string
Tracer::postMortem(size_t last_n) const
{
    std::ostringstream os;
    const char* unit = tb_ == Timebase::kWallNs ? "ns" : "cyc";
    for (const auto& bp : buffers_) {
        const TraceBuffer& b = *bp;
        os << "  " << b.workerName() << ": " << b.recorded()
           << " trace events";
        std::vector<Event> tail = b.lastN(last_n);
        if (tail.empty()) {
            os << " (none retained)\n";
            continue;
        }
        os << ", last " << tail.size() << ":\n";
        for (const Event& e : tail) {
            os << "    [" << e.begin;
            if (e.end != e.begin) os << ".." << e.end;
            os << ' ' << unit << "] " << eventKindName(e.kind);
            if (e.queue >= 0) os << " q" << e.queue;
            if (e.kind == EventKind::kRaService)
                os << " n=" << e.arg;
            if (e.kind == EventKind::kQueueOcc)
                os << " occ=" << e.arg;
            os << '\n';
        }
    }
    return os.str();
}

} // namespace phloem::trace
