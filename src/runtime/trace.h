/**
 * @file
 * Run-wide stall-attribution tracing for both execution backends.
 *
 * The paper's performance arguments (queue sizing, bottleneck stages,
 * RA overlap) are about *where time goes*; post-hoc counters say how
 * often a worker blocked, not when or for how long. This subsystem
 * records timestamped events — enq-block, deq-block, barrier wait, RA
 * service bursts, halt, sampled queue occupancy — into one fixed-size
 * ring per worker and serializes them post-run as Chrome `trace_event`
 * JSON loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
 *
 * Timebase unification: the native backend stamps events with
 * monotonic wall-clock nanoseconds since the tracer's creation; the
 * simulator stamps them with simulated cycles. The serializer maps
 * both onto the trace `ts` axis (1 us <- 1000 ns, or 1 us <- 1 cycle)
 * so the two backends' runs of the same pipeline are visually
 * comparable lane-for-lane.
 *
 * Concurrency contract: buffers are registered from the coordinating
 * thread before workers start, each ring is written only by its owning
 * worker (single-writer, no atomics, overwriting the oldest event when
 * full), and serialization happens after every worker has joined. The
 * off path is zero-cost: every hook sits behind an inlined null check
 * of a plain pointer, hooks live only on blocked/cold paths, and no
 * atomic or clock is touched when tracing is disabled.
 */

#ifndef PHLOEM_RUNTIME_TRACE_H
#define PHLOEM_RUNTIME_TRACE_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace phloem::trace {

/** Unit of event timestamps (selected per backend). */
enum class Timebase : uint8_t {
    kWallNs,    ///< native runtime: monotonic ns since tracer creation
    kSimCycles, ///< simulator: simulated cycles
};

enum class EventKind : uint8_t {
    kEnqBlock,    ///< producer waited on a full ring     [span]
    kDeqBlock,    ///< consumer waited on an empty ring   [span]
    kBarrierWait, ///< stage waited at a kBarrier         [span]
    kRaService,   ///< RA streamed a burst of elements    [span, arg=n]
    kHalt,        ///< worker halted                      [instant]
    kQueueOcc,    ///< sampled queue occupancy            [counter, arg=occ]

    // Service-side spans (phloemd request lifecycle). Recorded on a
    // per-request tracer's "service" lane so a request's queue wait,
    // cache lookup, compile, and run share one time axis with the
    // runtime stall spans the run produced.
    kSvcQueueWait,  ///< connection waited for a service worker  [span]
    kSvcCacheLookup,///< pipeline-cache probe                    [span]
    kSvcCompile,    ///< cache-miss compile (single-flight)      [span]
    kSvcRun,        ///< native execution of the request         [span]
};

const char* eventKindName(EventKind k);

struct Event
{
    EventKind kind = EventKind::kHalt;
    /** Absolute queue id, or -1 when not queue-related. */
    int32_t queue = -1;
    /** Timebase units (see Timebase). end == begin for instants. */
    uint64_t begin = 0;
    uint64_t end = 0;
    /** kRaService: elements in the burst; kQueueOcc: occupancy. */
    uint64_t arg = 0;
};

class Tracer;

/**
 * One worker's event ring. Single-writer: only the owning worker
 * records, and readers (serializer, post-mortem) run after it joined.
 * When the ring fills, the oldest events are overwritten — the
 * post-mortem wants the *trailing* history.
 */
class TraceBuffer
{
  public:
    TraceBuffer(const Tracer* owner, std::string name, bool is_stage,
                size_t capacity);

    const std::string& workerName() const { return name_; }
    bool isStage() const { return isStage_; }
    /** Total events recorded (>= retained when the ring wrapped). */
    uint64_t recorded() const { return head_; }
    size_t retained() const;

    void
    record(EventKind kind, int32_t queue, uint64_t begin, uint64_t end,
           uint64_t arg = 0)
    {
        Event& e = ring_[static_cast<size_t>(head_ % ring_.size())];
        e.kind = kind;
        e.queue = queue;
        e.begin = begin;
        e.end = end;
        e.arg = arg;
        head_++;
    }

    /** Current timestamp in the owning tracer's timebase (native). */
    uint64_t now() const;

    /** Retained events, oldest first. */
    template <typename Fn>
    void
    forEachRetained(Fn&& fn) const
    {
        uint64_t first = head_ > ring_.size()
                             ? head_ - static_cast<uint64_t>(ring_.size())
                             : 0;
        for (uint64_t i = first; i < head_; ++i)
            fn(ring_[static_cast<size_t>(i % ring_.size())]);
    }

    /** The trailing `n` events, oldest first (post-mortem dumps). */
    std::vector<Event> lastN(size_t n) const;

  private:
    const Tracer* owner_;
    std::string name_;
    bool isStage_;
    std::vector<Event> ring_;
    /** Total events ever recorded; ring index is head_ % capacity. */
    uint64_t head_ = 0;
};

/**
 * One tracing session: owns the per-worker buffers and the timebase,
 * serializes Chrome trace JSON, and renders the watchdog post-mortem.
 * Construct one per traced run and pass it through RuntimeOptions
 * (native) or MachineOptions (simulator); a null tracer disables every
 * hook.
 */
class Tracer
{
  public:
    /** Events retained per worker ring by default. */
    static constexpr size_t kDefaultCapacity = 16384;

    explicit Tracer(Timebase tb, size_t capacity = kDefaultCapacity);

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    Timebase timebase() const { return tb_; }

    /**
     * Register one worker's buffer. Must be called before the worker
     * starts (buffer registration is not thread-safe; records are).
     * The returned buffer is owned by the tracer and stays valid for
     * its lifetime.
     */
    TraceBuffer* addWorker(const std::string& name, bool is_stage);

    /**
     * Attach a key/value pair serialized into the trace's "otherData"
     * object (e.g. request_id, cache verdict). Call from the
     * coordinating thread before/after the run, not concurrently with
     * toJson().
     */
    void setMeta(const std::string& key, const std::string& value);

    /** Monotonic timestamp for kWallNs sessions (ns since creation). */
    uint64_t
    now() const
    {
        return static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now()
                           .time_since_epoch())
                       .count()) -
               epochNs_;
    }

    const std::vector<std::unique_ptr<TraceBuffer>>& buffers() const
    {
        return buffers_;
    }

    /** Serialize every buffer as Chrome trace_event JSON. */
    std::string toJson() const;

    /** toJson() to a file; false (and *err) on I/O failure. */
    bool writeJson(const std::string& path, std::string* err = nullptr) const;

    /**
     * Human-readable trailing history: each worker's last `last_n`
     * events, one line per event. Appended to the deadlock watchdog's
     * post-mortem alongside the residual-occupancy report.
     */
    std::string postMortem(size_t last_n = 8) const;

  private:
    Timebase tb_;
    size_t capacity_;
    uint64_t epochNs_;
    std::vector<std::unique_ptr<TraceBuffer>> buffers_;
    /** Insertion-ordered (key, value) pairs for "otherData". */
    std::vector<std::pair<std::string, std::string>> meta_;
};

inline uint64_t
TraceBuffer::now() const
{
    return owner_->now();
}

} // namespace phloem::trace

#endif // PHLOEM_RUNTIME_TRACE_H
