#include "runtime/worker.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include "base/logging.h"
#include "ir/op.h"
#include "runtime/decode.h"
#include "runtime/engine.h"
#include "runtime/jit.h"
#include "runtime/sched.h"
#include "sim/eval.h"

namespace phloem::rt {

namespace {

/** Monotonic timestamp in nanoseconds. */
uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Spin this many times with cpuRelax before starting to yield. */
constexpr int kSpinLimit = 256;

} // namespace

// ---------------------------------------------------------------------
// Backoff.
// ---------------------------------------------------------------------

Backoff::Backoff(RunControl& ctl)
    : lastProgress_(ctl.progress.load(std::memory_order_relaxed)),
      lastChangeNs_(nowNs())
{
}

Backoff::Result
Backoff::step(RunControl& ctl, bool stoppable, const ParkTarget* pt)
{
    if (ctl.aborted())
        return Result::kStopped;
    if (stoppable && ctl.stop.load(std::memory_order_acquire))
        return Result::kStopped;

    // On a single-worker pool spinning is pure waste: the peer task
    // that would satisfy this wait shares the only worker and cannot
    // run until we yield, so park straight away.
    if (spins_ == 0 && pt != nullptr && pt->list != nullptr &&
        Scheduler::currentPoolSize() == 1)
        spins_ = kSpinLimit;

    if (spins_ < kSpinLimit) {
        spins_++;
        cpuRelax();
        return Result::kRetry;
    }

    // Scheduler mode: after the capped spin phase, park instead of
    // burning the core — the other side of the ring unparks us. The
    // wall-time watchdog below would misfire here (a task can sit
    // unscheduled with the whole run healthy), so deadlock detection
    // moves to the scheduler's all-parked monitor, whose fail() the
    // abort check above observes after we are woken.
    if (pt != nullptr && pt->list != nullptr &&
        Scheduler::current() != nullptr) {
        Scheduler::parkCurrent(*pt, ctl, stoppable);
        return Result::kRetry;
    }

    std::this_thread::yield();

    // Watchdog: when the whole runtime stops making progress while we
    // are blocked, the pipeline is deadlocked (e.g. a mis-compiled
    // program enqueueing without a consumer).
    uint64_t p = ctl.progress.load(std::memory_order_relaxed);
    uint64_t now = nowNs();
    if (p != lastProgress_) {
        lastProgress_ = p;
        lastChangeNs_ = now;
        return Result::kRetry;
    }
    uint64_t timeout_ns =
        static_cast<uint64_t>(ctl.opt.deadlockTimeoutMs) * 1'000'000ull;
    if (now - lastChangeNs_ > timeout_ns)
        return Result::kDeadlock;
    return Result::kRetry;
}

// ---------------------------------------------------------------------
// StageBarrier.
// ---------------------------------------------------------------------

bool
StageBarrier::arriveAndWait(RunControl& ctl)
{
    uint64_t gen = generation_.load(std::memory_order_acquire);
    int arrived = waiting_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (arrived == parties_) {
        waiting_.store(0, std::memory_order_relaxed);
        ctl.progress.fetch_add(1, std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_release);
        // Notifier side of the parking handshake: the generation bump
        // above must be ordered before the waiter-list check, so a
        // peer that registered just before we bumped is either seen
        // here or sees the new generation in its parked re-check.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (!waiters_.empty())
            waiters_.wakeAll();
        return !ctl.aborted();
    }
    ParkTarget pt;
    pt.list = &waiters_;
    pt.ready = &StageBarrier::generationAdvanced;
    pt.obj = this;
    pt.arg = gen;
    pt.what = "barrier";
    Backoff backoff(ctl);
    while (generation_.load(std::memory_order_acquire) == gen) {
        switch (backoff.step(ctl, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            return false;
          case Backoff::Result::kDeadlock:
            ctl.fail("deadlock: thread stuck at barrier (another stage "
                     "halted without reaching it?)");
            return false;
        }
    }
    return !ctl.aborted();
}

// ---------------------------------------------------------------------
// StageWorker.
// ---------------------------------------------------------------------

StageWorker::StageWorker(std::string name, const sim::Program* prog,
                         sim::Binding& binding, int replica,
                         int queue_offset, int queue_stride,
                         int num_replicas, std::vector<SpscQueue*> queues,
                         StageBarrier* barrier, RunControl* ctl)
    : prog_(prog), replica_(replica), queueOffset_(queue_offset),
      queueStride_(queue_stride), numReplicas_(num_replicas),
      queues_(std::move(queues)), barrier_(barrier), ctl_(ctl)
{
    stats.name = std::move(name);
    stats.isStage = true;
    stats.opCounts.assign(static_cast<size_t>(ir::kNumOpcodes), 0);

    regs_.assign(static_cast<size_t>(prog_->numRegs), ir::Value{});
    const ir::Function& fn = *prog_->fn;
    for (const auto& p : fn.scalarParams)
        regs_[static_cast<size_t>(p.reg)] = binding.scalar(p.name, replica_);
    arrayBind_.resize(fn.arrays.size());
    for (size_t a = 0; a < fn.arrays.size(); ++a)
        arrayBind_[a] = binding.array(fn.arrays[a].name, replica_);
}

void
StageWorker::reportDeadlock(const char* what, int abs_q)
{
    std::string msg = "deadlock: " + stats.name + " blocked on " + what +
                      " q" + std::to_string(abs_q) + " at pc=" +
                      std::to_string(pc_) + " with no global progress for " +
                      std::to_string(ctl_->opt.deadlockTimeoutMs) + " ms";
    ctl_->fail(msg);
    throw std::runtime_error(msg);
}

bool
StageWorker::waitPush(int abs_q, const ir::Value& v)
{
    SpscQueue& q = *queues_[static_cast<size_t>(abs_q)];
    // Fast path: no shared-counter traffic. The per-instruction
    // heartbeat keeps the watchdog fed while this worker runs.
    if (q.tryPush(v))
        return true;
    q.noteEnqBlocked();
    uint64_t t0 = traceBuf ? traceBuf->now() : 0;
    ParkTarget pt = makePushTarget(q, abs_q);
    Backoff backoff(*ctl_);
    for (;;) {
        if (q.tryPush(v)) {
            ctl_->progress.fetch_add(1, std::memory_order_relaxed);
            if (traceBuf)
                traceBuf->record(trace::EventKind::kEnqBlock, abs_q, t0,
                                 traceBuf->now());
            return true;
        }
        switch (backoff.step(*ctl_, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kEnqBlock, abs_q, t0,
                                 traceBuf->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kEnqBlock, abs_q, t0,
                                 traceBuf->now());
            reportDeadlock("enq", abs_q);
        }
    }
}

bool
StageWorker::waitPop(int abs_q, ir::Value& v)
{
    SpscQueue& q = *queues_[static_cast<size_t>(abs_q)];
    if (q.tryPop(v))
        return true;
    q.noteDeqBlocked();
    uint64_t t0 = traceBuf ? traceBuf->now() : 0;
    ParkTarget pt = makePopTarget(q, abs_q);
    Backoff backoff(*ctl_);
    for (;;) {
        if (q.tryPop(v)) {
            ctl_->progress.fetch_add(1, std::memory_order_relaxed);
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, abs_q, t0,
                                 traceBuf->now());
            return true;
        }
        switch (backoff.step(*ctl_, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, abs_q, t0,
                                 traceBuf->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, abs_q, t0,
                                 traceBuf->now());
            reportDeadlock("deq", abs_q);
        }
    }
}

bool
StageWorker::waitPeek(int abs_q, ir::Value& v)
{
    SpscQueue& q = *queues_[static_cast<size_t>(abs_q)];
    if (q.tryPeek(v))
        return true;
    q.noteDeqBlocked();
    uint64_t t0 = traceBuf ? traceBuf->now() : 0;
    ParkTarget pt = makePopTarget(q, abs_q, "peek");
    Backoff backoff(*ctl_);
    for (;;) {
        if (q.tryPeek(v)) {
            // The producer's value arriving is global progress: without
            // this bump a pipeline advancing only through peeks would
            // eventually trip a peer's deadlock watchdog.
            ctl_->progress.fetch_add(1, std::memory_order_relaxed);
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, abs_q, t0,
                                 traceBuf->now());
            return true;
        }
        switch (backoff.step(*ctl_, /*stoppable=*/false, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, abs_q, t0,
                                 traceBuf->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, abs_q, t0,
                                 traceBuf->now());
            reportDeadlock("peek", abs_q);
        }
    }
}

bool
StageWorker::execOp(const sim::Inst& inst)
{
    using ir::Opcode;

    stats.opCounts[static_cast<size_t>(inst.opcode)]++;

    if (ir::usesQueue(inst.opcode)) {
        stats.queueOps++;
        switch (inst.opcode) {
          case Opcode::kEnq:
          case Opcode::kEnqCtrl:
          case Opcode::kEnqDist: {
            int abs_q;
            if (inst.opcode == Opcode::kEnqDist) {
                int64_t sel =
                    regs_[static_cast<size_t>(inst.src1)].asInt();
                int target = sim::distTargetReplica(sel, numReplicas_);
                abs_q = inst.queue + target * queueStride_;
            } else {
                abs_q = queueOffset_ + inst.queue;
            }
            ir::Value v;
            if (inst.opcode == Opcode::kEnqCtrl ||
                (inst.opcode == Opcode::kEnqDist && inst.src0 < 0)) {
                v = ir::Value::makeControl(
                    static_cast<uint32_t>(inst.imm));
            } else {
                v = regs_[static_cast<size_t>(inst.src0)];
            }
            if (!waitPush(abs_q, v))
                return false;
            pc_++;
            return true;
          }

          case Opcode::kDeq: {
            int abs_q = queueOffset_ + inst.queue;
            ir::Value v;
            if (!waitPop(abs_q, v))
                return false;
            regs_[static_cast<size_t>(inst.dst)] = v;
            // Control-value handler: transfer when a control value is
            // dequeued, exactly as the simulated hardware does.
            if (v.isControl() && inst.handlerPc >= 0)
                pc_ = inst.handlerPc;
            else
                pc_++;
            return true;
          }

          case Opcode::kPeek: {
            int abs_q = queueOffset_ + inst.queue;
            ir::Value v;
            if (!waitPeek(abs_q, v))
                return false;
            regs_[static_cast<size_t>(inst.dst)] = v;
            pc_++;
            return true;
          }

          default:
            phloem_panic("not a queue op");
        }
    }

    if (ir::usesArray(inst.opcode) && inst.opcode != Opcode::kSwapArr) {
        sim::ArrayBuffer* buf = arrayBind_[static_cast<size_t>(inst.arr)];
        ir::Value result;
        bool is_rmw = inst.opcode == Opcode::kAtomicMin ||
                      inst.opcode == Opcode::kAtomicAdd ||
                      inst.opcode == Opcode::kAtomicFAdd ||
                      inst.opcode == Opcode::kAtomicOr;
        if (is_rmw) {
            // applyMemOp implements RMWs as load+store; serialize them
            // across stages so concurrent updates are not lost.
            std::lock_guard<std::mutex> g(ctl_->atomicsMu);
            result = sim::applyMemOp(inst, *buf, regs_.data());
        } else {
            result = sim::applyMemOp(inst, *buf, regs_.data());
        }
        if (inst.dst >= 0)
            regs_[static_cast<size_t>(inst.dst)] = result;
        pc_++;
        return true;
    }

    switch (inst.opcode) {
      case Opcode::kBarrier: {
        pc_++;
        if (!traceBuf)
            return barrier_->arriveAndWait(*ctl_);
        uint64_t t0 = traceBuf->now();
        bool ok = barrier_->arriveAndWait(*ctl_);
        traceBuf->record(trace::EventKind::kBarrierWait, -1, t0,
                         traceBuf->now());
        return ok;
      }
      case Opcode::kHalt:
        return false;
      case Opcode::kSwapArr:
        std::swap(arrayBind_[static_cast<size_t>(inst.arr)],
                  arrayBind_[static_cast<size_t>(inst.arr2)]);
        pc_++;
        return true;
      default:
        break;
    }

    ir::Value out = sim::evalScalarOp(inst, regs_.data());
    if (inst.opcode == Opcode::kWork && inst.imm > 1) {
        // The simulator charges kWork as `imm` uops; natively we burn the
        // same amount of real compute. Only the first mix lands in the
        // destination register so results stay bit-identical.
        uint64_t burn = out.bits;
        for (int64_t k = 1; k < inst.imm; ++k)
            burn = sim::workMix(burn);
        workSink_ += burn;
    }
    if (inst.dst >= 0)
        regs_[static_cast<size_t>(inst.dst)] = out;
    pc_++;
    return true;
}

void
StageWorker::run()
{
    if (ctl_->tier == TierMode::kJit && jit != nullptr) {
        stats.tier = "jit";
        runJit();
    } else if (ctl_->useEngine) {
        // Includes per-stage JIT fallback: a stage whose artifact
        // failed to build runs on the engine (stats.jitFallback says
        // why; the runtime set it alongside a null `jit`).
        stats.tier = "engine";
        runEngine();
    } else {
        stats.tier = "interp";
        runInterpreter();
    }
    // Abnormal exits (watchdog, budget) throw past this point; they
    // already recorded the block span they died in.
    if (traceBuf) {
        uint64_t t = traceBuf->now();
        traceBuf->record(trace::EventKind::kHalt, -1, t, t);
    }
}

void
StageWorker::runEngine()
{
    // A cached shape (compilation service) skips classification+fusion;
    // the copy is then relocated for this replica's queue window.
    DecodedProgram dec;
    if (shape != nullptr) {
        dec = *shape;
        relocateProgram(dec, queueOffset_, queues_);
    } else {
        dec = decodeProgram(*prog_, queueOffset_, queueStride_,
                            numReplicas_, queues_);
    }
    stats.fusedSites = static_cast<uint64_t>(dec.fusedSites);

    EngineEnv env;
    env.regs = regs_.data();
    env.arrayBind = arrayBind_.data();
    env.queues = &queues_;
    env.barrier = barrier_;
    env.ctl = ctl_;
    env.stats = &stats;
    env.trace = traceBuf;
    env.queueStride = queueStride_;
    env.numReplicas = numReplicas_;

    Engine engine(dec, env);
    try {
        engine.run();
    } catch (...) {
        // Deadlock / budget throws still report buffered-but-undequeued
        // values: the watchdog post-mortem keys on residual occupancy.
        unconsumed = engine.unconsumed();
        throw;
    }
    unconsumed = engine.unconsumed();
}

void
StageWorker::runJit()
{
    stats.fusedSites = static_cast<uint64_t>(jit->fusedSites);

    EngineEnv env;
    env.regs = regs_.data();
    env.arrayBind = arrayBind_.data();
    env.queues = &queues_;
    env.barrier = barrier_;
    env.ctl = ctl_;
    env.stats = &stats;
    env.trace = traceBuf;
    env.queueStride = queueStride_;
    env.numReplicas = numReplicas_;

    JitHost host(*prog_, env, queueOffset_);
    try {
        host.run(*jit);
    } catch (...) {
        unconsumed = host.unconsumed();
        throw;
    }
    unconsumed = host.unconsumed();
}

void
StageWorker::runInterpreter()
{
    const auto& code = prog_->code;
    uint64_t heartbeat = 0;
    for (;;) {
        if (pc_ >= static_cast<int>(code.size()))
            return;  // fell off the end: halt
        stats.instructions++;
        if (++heartbeat >= kHeartbeatInterval) {
            // Long compute phases without queue ops must still look
            // alive to blocked peers' watchdogs. Abort is polled here
            // (and in every blocked wait) rather than per instruction.
            ctl_->progress.fetch_add(1, std::memory_order_relaxed);
            heartbeat = 0;
            if (ctl_->aborted())
                return;
            if (stats.instructions > ctl_->opt.maxInstructions) {
                std::string msg = "instruction budget exceeded (" +
                                  std::to_string(ctl_->opt.maxInstructions) +
                                  ") in " + stats.name;
                ctl_->fail(msg);
                throw std::runtime_error(msg);
            }
            // Shared pool: long compute phases must not monopolize the
            // worker while runnable peers wait (no-op off the pool).
            Scheduler::maybeYield();
        }
        const sim::Inst& inst = code[static_cast<size_t>(pc_)];
        switch (inst.kind) {
          case sim::Inst::Kind::kBr:
            stats.branches++;
            pc_ = inst.target;
            break;
          case sim::Inst::Kind::kBrIf:
          case sim::Inst::Kind::kBrIfNot: {
            stats.branches++;
            bool truth =
                regs_[static_cast<size_t>(inst.src0)].asInt() != 0;
            bool taken =
                inst.kind == sim::Inst::Kind::kBrIf ? truth : !truth;
            pc_ = taken ? inst.target : pc_ + 1;
            break;
          }
          case sim::Inst::Kind::kOp:
            if (!execOp(inst))
                return;
            break;
        }
    }
}

// ---------------------------------------------------------------------
// RAWorker.
// ---------------------------------------------------------------------

RAWorker::RAWorker(std::string name, const ir::RAConfig& cfg,
                   sim::ArrayBuffer* array, SpscQueue* in_q,
                   SpscQueue* out_q, RunControl* ctl)
    : cfg_(cfg), array_(array), inQ_(in_q), outQ_(out_q), ctl_(ctl)
{
    stats.name = std::move(name);
    stats.isStage = false;
}

void
RAWorker::heartbeat(uint64_t n)
{
    heartbeatCount_ += n;
    if (heartbeatCount_ >= kHeartbeatInterval) {
        ctl_->progress.fetch_add(1, std::memory_order_relaxed);
        heartbeatCount_ = 0;
        // Shared pool: a streaming RA must not starve runnable peers.
        Scheduler::maybeYield();
    }
}

bool
RAWorker::waitPush(const ir::Value& v)
{
    if (outQ_->tryPush(v)) {
        heartbeat();
        return true;
    }
    outQ_->noteEnqBlocked();
    uint64_t t0 = traceBuf ? traceBuf->now() : 0;
    ParkTarget pt = makePushTarget(*outQ_, traceOutQ);
    Backoff backoff(*ctl_);
    for (;;) {
        if (outQ_->tryPush(v)) {
            ctl_->progress.fetch_add(1, std::memory_order_relaxed);
            if (traceBuf)
                traceBuf->record(trace::EventKind::kEnqBlock, traceOutQ,
                                 t0, traceBuf->now());
            return true;
        }
        // Stoppable: once every stage thread halted, whatever the RA
        // still holds can never reach memory, so it just exits.
        switch (backoff.step(*ctl_, /*stoppable=*/true, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kEnqBlock, traceOutQ,
                                 t0, traceBuf->now());
            return false;
          case Backoff::Result::kDeadlock: {
            if (traceBuf)
                traceBuf->record(trace::EventKind::kEnqBlock, traceOutQ,
                                 t0, traceBuf->now());
            std::string msg =
                "deadlock: " + stats.name + " blocked on enq with no "
                "global progress";
            ctl_->fail(msg);
            return false;
          }
        }
    }
}

bool
RAWorker::waitPop(ir::Value& v)
{
    if (inQ_->tryPop(v)) {
        heartbeat();
        return true;
    }
    inQ_->noteDeqBlocked();
    uint64_t t0 = traceBuf ? traceBuf->now() : 0;
    ParkTarget pt = makePopTarget(*inQ_, traceInQ);
    Backoff backoff(*ctl_);
    for (;;) {
        if (inQ_->tryPop(v)) {
            ctl_->progress.fetch_add(1, std::memory_order_relaxed);
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, traceInQ,
                                 t0, traceBuf->now());
            return true;
        }
        // An empty input after shutdown is the normal RA exit path, not
        // a deadlock: RAs never see an end-of-stream value.
        switch (backoff.step(*ctl_, /*stoppable=*/true, &pt)) {
          case Backoff::Result::kRetry:
            break;
          case Backoff::Result::kStopped:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, traceInQ,
                                 t0, traceBuf->now());
            return false;
          case Backoff::Result::kDeadlock:
            if (traceBuf)
                traceBuf->record(trace::EventKind::kDeqBlock, traceInQ,
                                 t0, traceBuf->now());
            return false;
        }
    }
}

bool
RAWorker::serviceIndirectBatch(const ir::Value* batch, size_t n)
{
    size_t i = 0;
    while (i < n) {
        if (batch[i].isControl()) {
            // Control values pass through in order, delimiting streams.
            stats.raCtrlForwarded++;
            if (!waitPush(batch[i])) {
                unconsumedIn += n - i;
                return false;
            }
            ++i;
            continue;
        }
        // Emit the maximal run of data indices [i, j) as output batches.
        size_t j = i;
        while (j < n && !batch[j].isControl())
            ++j;
        while (i < j) {
            uint64_t t0 = traceBuf ? traceBuf->now() : 0;
            size_t pushed = outQ_->pushBatch(j - i, [&](size_t k) {
                return array_->load(batch[i + k].asInt());
            });
            if (pushed == 0) {
                // Ring full: fall back to one blocking push.
                if (!waitPush(array_->load(batch[i].asInt()))) {
                    unconsumedIn += n - i;
                    return false;
                }
                pushed = 1;
            } else {
                heartbeat(pushed);
                if (traceBuf)
                    traceBuf->record(trace::EventKind::kRaService,
                                     traceOutQ, t0, traceBuf->now(),
                                     pushed);
            }
            i += pushed;
            stats.raElements += pushed;
        }
    }
    return true;
}

void
RAWorker::run()
{
    runLoop();
    if (traceBuf) {
        uint64_t t = traceBuf->now();
        traceBuf->record(trace::EventKind::kHalt, -1, t, t);
    }
}

void
RAWorker::runLoop()
{
    enum class Phase : uint8_t { kIdle, kHaveStart, kScanning };
    Phase phase = Phase::kIdle;
    int64_t pending_start = 0;
    int64_t scan_cur = 0;
    int64_t scan_end = 0;

    for (;;) {
        if (phase == Phase::kScanning) {
            if (scan_cur >= scan_end) {
                if (cfg_.emitRangeCtrl) {
                    if (!waitPush(ir::Value::makeControl(
                            cfg_.rangeCtrlCode)))
                        return;
                    stats.raCtrlForwarded++;
                }
                phase = Phase::kIdle;
                continue;
            }
            // Stream the rest of the range as one batch per ring refill:
            // elements are published with a single release store, which
            // is where the RA's native-speed advantage comes from.
            size_t want = static_cast<size_t>(scan_end - scan_cur);
            uint64_t t0 = traceBuf ? traceBuf->now() : 0;
            size_t pushed = outQ_->pushBatch(want, [&](size_t k) {
                return array_->load(scan_cur + static_cast<int64_t>(k));
            });
            if (pushed == 0) {
                // Ring full: fall back to one blocking push.
                if (!waitPush(array_->load(scan_cur)))
                    return;
                pushed = 1;
            } else {
                heartbeat(pushed);
                if (traceBuf)
                    traceBuf->record(trace::EventKind::kRaService,
                                     traceOutQ, t0, traceBuf->now(),
                                     pushed);
            }
            scan_cur += static_cast<int64_t>(pushed);
            stats.raElements += pushed;
            continue;
        }

        ir::Value e;
        if (!waitPop(e))
            return;

        if (e.isControl()) {
            // Control values pass through RAs, delimiting streams.
            phase = Phase::kIdle;
            stats.raCtrlForwarded++;
            if (!waitPush(e))
                return;
            continue;
        }

        if (cfg_.mode == ir::RAMode::kIndirect) {
            if (ctl_->useEngine) {
                // Batched drain/emit: grab whatever run of indices the
                // producer has already published alongside e, then load
                // and publish the elements with pushBatch — one ring
                // synchronization per run on each side instead of one
                // per element.
                ir::Value batch[kIndirectBatch];
                batch[0] = e;
                size_t n =
                    1 + inQ_->popBatch(kIndirectBatch - 1, batch + 1);
                if (!serviceIndirectBatch(batch, n))
                    return;
                continue;
            }
            ir::Value v = array_->load(e.asInt());
            stats.raElements++;
            if (!waitPush(v))
                return;
        } else {
            if (phase == Phase::kIdle) {
                pending_start = e.asInt();
                phase = Phase::kHaveStart;
            } else {
                scan_cur = pending_start;
                scan_end = e.asInt();
                phase = Phase::kScanning;
            }
        }
    }
}

} // namespace phloem::rt
