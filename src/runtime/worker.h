/**
 * @file
 * Native-runtime workers: the per-stage interpreter thread and the
 * software reference accelerator.
 *
 * A StageWorker interprets the same sim::flatten instruction stream the
 * simulator executes, using the shared functional core (sim/eval.h), so
 * the two backends agree bit-for-bit. Queue ops block on the SPSC rings
 * with spin-then-yield backoff; control values arriving at a kDeq with a
 * handler transfer to the handler pc exactly as the simulated hardware
 * does.
 *
 * An RAWorker replays sim/machine.cc's RAEntity state machine in
 * software: indirect mode turns dequeued indices into loaded elements;
 * scan mode streams [start, end) ranges, optionally delimited with a
 * range control value. Control values pass through unchanged. RA workers
 * never write memory, so they can be shut down as soon as every stage
 * thread has halted.
 */

#ifndef PHLOEM_RUNTIME_WORKER_H
#define PHLOEM_RUNTIME_WORKER_H

#include <atomic>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ir/pipeline.h"
#include "runtime/queue.h"
#include "runtime/stats.h"
#include "runtime/trace.h"
#include "sim/binding.h"
#include "sim/program.h"

namespace phloem::rt {

/** Bump the global progress counter every this many instructions. */
constexpr uint64_t kHeartbeatInterval = 4096;

/** Stage execution engine selection (see runtime/engine.h). */
enum class EngineMode : uint8_t {
    /** Engine on unless the PHLOEM_NATIVE_ENGINE=0 env override. */
    kAuto,
    kOn,   ///< pre-decoded batching engine
    kOff,  ///< raw sim::Inst interpreter (the pre-engine behavior)
};

/**
 * Stage execution tier (see runtime/jit.h). Subsumes EngineMode: the
 * engine on/off pair predates the JIT and is kept for compatibility —
 * an explicit `tier` wins over an explicit `engine`, and kAuto defers
 * to the PHLOEM_NATIVE_TIER / PHLOEM_NATIVE_ENGINE env overrides.
 */
enum class TierMode : uint8_t {
    kAuto,
    kInterp,  ///< raw sim::Inst interpreter
    kEngine,  ///< pre-decoded batching engine (the default)
    kJit,     ///< per-stage compiled code, engine fallback on failure
};

/** How stage/RA workers map onto host threads (see runtime/sched.h). */
enum class SchedulerMode : uint8_t {
    /** Shared pool unless the PHLOEM_SCHED=legacy env override. */
    kAuto,
    /** Tasks on the shared fixed-size work-stealing pool. */
    kShared,
    /** One dedicated OS thread per worker (differential fallback). */
    kLegacy,
};

class Scheduler;
class SchedRun;
struct DecodedProgram;
struct JitArtifact;

/** Null-safe wake of every parked task in a run (runtime/sched.cc). */
void schedWakeAll(SchedRun* run);

/** Tuning knobs for one native run. */
struct RuntimeOptions
{
    /**
     * Abort the run when no worker makes progress for this long while
     * some worker is blocked (a mis-compiled pipeline would otherwise
     * hang the host). Progress = successful queue ops + periodic
     * instruction-count heartbeats.
     */
    int deadlockTimeoutMs = 10000;
    /** Per-worker dynamic instruction budget (runaway-loop backstop). */
    uint64_t maxInstructions = 4'000'000'000ull;
    /** Stage execution engine (decoded+batched vs raw interpreter). */
    EngineMode engine = EngineMode::kAuto;
    /**
     * Stage execution tier. kAuto resolves through `engine`, then the
     * PHLOEM_NATIVE_TIER env override, then PHLOEM_NATIVE_ENGINE; an
     * explicit tier here beats all of those. kJit compiles each stage
     * program before the timed region and falls back per stage to the
     * engine when emission/compilation/loading fails.
     */
    TierMode tier = TierMode::kAuto;
    /**
     * Stall-attribution tracer (trace.h), or null for no tracing. Must
     * outlive the run; the runtime registers one buffer per worker and
     * a sampled-occupancy lane. Null keeps every hook on its inlined
     * no-op path (the zero-cost-off contract).
     */
    trace::Tracer* tracer = nullptr;
    /** Task scheduling: shared pool (default) vs thread-per-stage. */
    SchedulerMode scheduler = SchedulerMode::kAuto;
    /**
     * Shared-pool size hint; 0 = hardware_concurrency. Honored only by
     * the run that creates the process-wide pool (one machine, one
     * pool); use schedulerOverride for a private pool of a chosen size.
     */
    int schedWorkers = 0;
    /** Work stealing between pool workers (shared mode). */
    bool schedStealing = true;
    /**
     * Run on this scheduler instead of the process-wide shared pool.
     * Tests use it to build private pools of known size; must outlive
     * the run. Null = the shared pool.
     */
    Scheduler* schedulerOverride = nullptr;
    /**
     * Caller-assigned request id (phloemd threads the server's id down
     * here). Prefixes watchdog/worker errors and lands in trace metadata
     * so a service-side span and the runtime stalls it caused correlate.
     */
    std::string requestId;
};

/**
 * Run-wide shared control state: the global progress counter feeding the
 * deadlock watchdog, the shutdown/abort flags, and the first error.
 */
struct RunControl
{
    RuntimeOptions opt;
    /** Resolved engine choice for this run (opt.engine + env override). */
    bool useEngine = true;
    /** Resolved execution tier (never kAuto once the run starts). */
    TierMode tier = TierMode::kEngine;

    /** Bumped on successful queue ops and every few k instructions. */
    std::atomic<uint64_t> progress{0};
    /** All stage threads have halted; RA workers drain and exit. */
    std::atomic<bool> stop{false};
    /** A worker failed (exception, watchdog); everyone unwinds. */
    std::atomic<bool> abortFlag{false};

    /** This run's scheduler task group, or null in legacy mode. */
    SchedRun* schedRun = nullptr;

    /** Serializes atomic read-modify-write memory ops across stages. */
    std::mutex atomicsMu;

    std::mutex errorMu;
    std::string error;

    /** Record the first failure and tell every worker to unwind. */
    void
    fail(const std::string& msg)
    {
        {
            std::lock_guard<std::mutex> g(errorMu);
            if (error.empty())
                error = msg;
        }
        abortFlag.store(true, std::memory_order_release);
        // Parked tasks cannot poll the abort flag; wake them so the
        // run unwinds instead of waiting out the deadlock monitor.
        schedWakeAll(schedRun);
    }

    bool
    aborted() const
    {
        return abortFlag.load(std::memory_order_acquire);
    }
};

/**
 * Spin-then-yield backoff for one blocked queue op. Spins briefly with
 * cpu-relax, then yields; while yielding it watches the global progress
 * counter and trips the deadlock watchdog when nothing in the whole
 * runtime has advanced for opt.deadlockTimeoutMs.
 */
class Backoff
{
  public:
    explicit Backoff(RunControl& ctl);

    enum class Result : uint8_t {
        kRetry,     ///< try the queue op again
        kStopped,   ///< runtime shut down (RA drain) or aborted
        kDeadlock,  ///< watchdog fired: caller should report and abort
    };

    /**
     * One backoff step. `stoppable` waits also end on ctl.stop. On a
     * scheduler task with a parkable target, the spin phase is capped
     * and falls through to park/unpark (the wait then costs ~0 CPU and
     * deadlock detection is the scheduler's all-parked monitor, which
     * never returns kDeadlock from here). Off the pool, or with a null
     * target/list, the legacy spin-yield-watchdog behavior applies.
     */
    Result step(RunControl& ctl, bool stoppable,
                const ParkTarget* pt = nullptr);

  private:
    int spins_ = 0;
    uint64_t lastProgress_;
    /** Monotonic ns timestamp of the last observed progress change. */
    uint64_t lastChangeNs_;
};

/** ParkTarget for a producer blocked on a full ring. */
inline ParkTarget
makePushTarget(SpscQueue& q, int abs_q)
{
    ParkTarget pt;
    QueueWaiters* w = q.waiters();
    pt.list = w != nullptr ? &w->producers : nullptr;
    pt.ready = [](const ParkTarget& p) {
        const auto* queue = static_cast<const SpscQueue*>(p.obj);
        return queue->sizeApprox() < static_cast<size_t>(queue->depth());
    };
    pt.obj = &q;
    pt.what = "enq";
    pt.q = abs_q;
    return pt;
}

/** ParkTarget for a consumer blocked on an empty ring. */
inline ParkTarget
makePopTarget(SpscQueue& q, int abs_q, const char* what = "deq")
{
    ParkTarget pt;
    QueueWaiters* w = q.waiters();
    pt.list = w != nullptr ? &w->consumers : nullptr;
    pt.ready = [](const ParkTarget& p) {
        return static_cast<const SpscQueue*>(p.obj)->sizeApprox() > 0;
    };
    pt.obj = &q;
    pt.what = what;
    pt.q = abs_q;
    return pt;
}

/**
 * Sense-reversing barrier for the pipeline's stage workers (kBarrier).
 * Abort-aware: a waiter returns false when the run is unwinding. On
 * the shared pool, waiters park on the barrier's waiter list and the
 * last arriver wakes them (spinning would starve the missing parties
 * when the pool is smaller than the stage count).
 */
class StageBarrier
{
  public:
    explicit StageBarrier(int parties) : parties_(parties) {}

    /** Returns false when the run aborted while waiting. */
    bool arriveAndWait(RunControl& ctl);

  private:
    /** ParkTarget re-check: has the generation moved past pt.arg? */
    static bool
    generationAdvanced(const ParkTarget& pt)
    {
        const auto* b = static_cast<const StageBarrier*>(pt.obj);
        return b->generation_.load(std::memory_order_acquire) != pt.arg;
    }

    const int parties_;
    std::atomic<int> waiting_{0};
    std::atomic<uint64_t> generation_{0};
    WaitList waiters_;
};

/** One pipeline stage (or a serial function) on one host thread. */
class StageWorker
{
  public:
    StageWorker(std::string name, const sim::Program* prog,
                sim::Binding& binding, int replica, int queue_offset,
                int queue_stride, int num_replicas,
                std::vector<SpscQueue*> queues, StageBarrier* barrier,
                RunControl* ctl);

    /** Thread body: interpret until halt, abort, or watchdog. */
    void run();

    WorkerStats stats;

    /** This worker's trace ring, or null when tracing is off. */
    trace::TraceBuffer* traceBuf = nullptr;

    /**
     * Cached decoded shape of prog_ (set by the runtime when the
     * compilation service pre-decoded it), or null to decode locally.
     * The engine path copies it and relocates the copy for this
     * replica, so cache hits skip classification+fusion, not just
     * flattening. Must outlive the run.
     */
    const DecodedProgram* shape = nullptr;

    /**
     * JIT tier only: this stage's compiled artifact, or null when the
     * stage fell back to the engine (compile failure). Shared across
     * replicas; must outlive the run.
     */
    const JitArtifact* jit = nullptr;

    /**
     * Engine/jit runs only: per-queue counts of values drained into the
     * consumer batch buffer but never architecturally dequeued (pairs
     * of absolute queue id, count). The runtime subtracts these from
     * the ring's deq count and adds them to residual occupancy.
     */
    std::vector<std::pair<int, uint64_t>> unconsumed;

  private:
    bool waitPush(int abs_q, const ir::Value& v);
    bool waitPop(int abs_q, ir::Value& v);
    bool waitPeek(int abs_q, ir::Value& v);
    [[noreturn]] void reportDeadlock(const char* what, int abs_q);

    /** Raw sim::Inst interpreter loop (engine off). */
    void runInterpreter();
    /** Decode + pre-decoded engine (engine on). */
    void runEngine();
    /** Compiled stage program via the loaded artifact (jit tier). */
    void runJit();

    /** Execute one kOp instruction; false => stop interpreting. */
    bool execOp(const sim::Inst& inst);

    const sim::Program* prog_;
    int replica_;
    int queueOffset_;
    int queueStride_;
    int numReplicas_;
    std::vector<SpscQueue*> queues_;
    StageBarrier* barrier_;
    RunControl* ctl_;

    int pc_ = 0;
    std::vector<ir::Value> regs_;
    std::vector<sim::ArrayBuffer*> arrayBind_;

    /** Sink for kWork's burned mixes; keeps the work loop observable. */
    uint64_t workSink_ = 0;
};

/** One software reference accelerator on one host thread. */
class RAWorker
{
  public:
    RAWorker(std::string name, const ir::RAConfig& cfg,
             sim::ArrayBuffer* array, SpscQueue* in_q, SpscQueue* out_q,
             RunControl* ctl);

    /** Thread body: service requests until shutdown. */
    void run();

    WorkerStats stats;

    /** This worker's trace ring, or null when tracing is off. */
    trace::TraceBuffer* traceBuf = nullptr;
    /** Absolute ids of inQ_/outQ_ for trace attribution (-1 unset). */
    int traceInQ = -1;
    int traceOutQ = -1;

    /**
     * Values drained from the input queue (batched indirect mode) but
     * not yet serviced when the worker shut down. The runtime folds
     * these back into the input ring's deq/residual statistics.
     */
    uint64_t unconsumedIn = 0;

  private:
    /** Indices drained per input-ring synchronization (indirect mode). */
    static constexpr size_t kIndirectBatch = 256;

    /** Service loop (run() wraps it to trace the halt). */
    void runLoop();
    /** Returns false on shutdown/abort. */
    bool waitPush(const ir::Value& v);
    bool waitPop(ir::Value& v);
    /** Service a drained run of values in order; false on shutdown. */
    bool serviceIndirectBatch(const ir::Value* batch, size_t n);
    /** Periodic progress bump so blocked peers' watchdogs stay fed. */
    void heartbeat(uint64_t n = 1);

    uint64_t heartbeatCount_ = 0;
    ir::RAConfig cfg_;
    sim::ArrayBuffer* array_;
    SpscQueue* inQ_;
    SpscQueue* outQ_;
    RunControl* ctl_;
};

} // namespace phloem::rt

#endif // PHLOEM_RUNTIME_WORKER_H
