#include "service/cache.h"

#include <cstdio>

#include "base/logging.h"
#include "metrics/collect.h"

namespace phloem::svc {

namespace {

std::string
hex(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** FNV-1a of the CompileOptions fields that change what gets built. */
uint64_t
hashOptions(const std::string& kernel_name, const comp::CompileOptions& o)
{
    std::string s = kernel_name;
    s += '\0';
    auto num = [&s](long long v) {
        s += std::to_string(v);
        s += ',';
    };
    num(o.numStages);
    num(o.recompute);
    num(o.referenceAccelerators);
    num(o.controlValues);
    num(o.dce);
    num(o.handlers);
    num(o.prefetchMovedLoads);
    num(o.maxRAs);
    num(o.maxQueues);
    num(o.shrinkToFit);
    num(o.replicas);
    num(o.distributeBoundaryOp);
    s += '|';
    for (int c : o.explicitCuts) num(c);
    s += '|';
    for (int c : o.forcedCuts) num(c);
    return driver::fnv1a(s);
}

} // namespace

std::string
cacheKey(const sim::SysConfig& cfg, const driver::CompileSpec& spec)
{
    // The tier is part of the key because a kJit compilation carries
    // per-stage native artifacts: the same source requested at a
    // different tier must miss rather than serve (or lack) the .so.
    return metrics::configFingerprint(cfg) + ":" +
           hex(driver::fnv1a(spec.source)) + ":" +
           hex(hashOptions(spec.kernelName, spec.opts)) + ":t" +
           std::to_string(static_cast<int>(spec.tier));
}

driver::CompiledPipelinePtr
PipelineCache::lookupLocked(const std::string& key)
{
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
}

void
PipelineCache::insertLocked(const std::string& key,
                            driver::CompiledPipelinePtr cp)
{
    if (capacity_ == 0 || cp == nullptr) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = std::move(cp);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(cp));
    index_[key] = lru_.begin();
    ++insertions_;
    while (lru_.size() > capacity_) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
}

driver::CompiledPipelinePtr
PipelineCache::lookup(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto cp = lookupLocked(key);
    if (cp != nullptr) {
        ++hits_;
    } else {
        ++misses_;
    }
    return cp;
}

void
PipelineCache::insert(const std::string& key, driver::CompiledPipelinePtr cp)
{
    std::lock_guard<std::mutex> lock(mu_);
    insertLocked(key, std::move(cp));
}

driver::CompiledPipelinePtr
PipelineCache::getOrCompile(
    const std::string& key,
    const std::function<driver::CompiledPipelinePtr()>& compile, bool* hit)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            auto cp = lookupLocked(key);
            if (cp != nullptr) {
                ++hits_;
                if (hit != nullptr) *hit = true;
                return cp;
            }
            if (inflight_.count(key) == 0) break;
            // Another worker is compiling this key; wait for it rather
            // than duplicating the compile.
            inflightCv_.wait(lock);
        }
        ++misses_;
        inflight_.insert(key);
    }

    if (hit != nullptr) *hit = false;
    driver::CompiledPipelinePtr cp;
    try {
        cp = compile();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
        inflightCv_.notify_all();
        throw;
    }

    std::lock_guard<std::mutex> lock(mu_);
    // Failed compiles are not cached: the error goes back to the one
    // caller, and a later (possibly fixed) request retries cleanly.
    if (cp != nullptr && cp->ok()) insertLocked(key, cp);
    inflight_.erase(key);
    inflightCv_.notify_all();
    return cp;
}

PipelineCache::Stats
PipelineCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.insertions = insertions_;
    s.entries = lru_.size();
    s.capacity = capacity_;
    return s;
}

} // namespace phloem::svc
