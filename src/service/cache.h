/**
 * @file
 * Compiled-pipeline cache for the phloemd service.
 *
 * A request's dominant cost is frontend -> passes -> flatten; the
 * pipeline it produces is immutable and re-runnable (see
 * driver/compile_service.h), so the daemon keeps an LRU of
 * CompiledPipelinePtr keyed by everything that determines the
 * compilation:
 *
 *   key = configFingerprint(SysConfig)        (FNV-1a, Table III knobs)
 *       + FNV-1a(source text)
 *       + FNV-1a(kernel name + compile options)
 *       + execution tier (kJit entries carry per-stage .so artifacts)
 *
 * The SysConfig fingerprint is part of the key because the machine
 * configuration feeds queue depths and run behavior: the same source
 * compiled for a different machine must miss and recompile (the
 * service tests pin this down).
 *
 * Concurrency: all operations are serialized on one mutex; compilation
 * itself runs outside the lock. getOrCompile() is single-flight — when
 * N workers request the same cold key at once, one compiles while the
 * rest wait on a condition variable and then share the result, so a
 * thundering herd of identical requests costs one compile.
 */

#ifndef PHLOEM_SERVICE_CACHE_H
#define PHLOEM_SERVICE_CACHE_H

#include <condition_variable>
#include <functional>
#include <list>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "driver/compile_service.h"
#include "sim/config.h"

namespace phloem::svc {

/** Cache key for one (machine config, source, options) compilation. */
std::string cacheKey(const sim::SysConfig& cfg,
                     const driver::CompileSpec& spec);

class PipelineCache
{
  public:
    /** capacity = max cached pipelines; 0 disables caching entirely. */
    explicit PipelineCache(size_t capacity) : capacity_(capacity) {}

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t insertions = 0;
        size_t entries = 0;
        size_t capacity = 0;
    };

    /**
     * Look up a key, bumping it to most-recently-used. Counts a hit or
     * a miss. Null when absent.
     */
    driver::CompiledPipelinePtr lookup(const std::string& key);

    /**
     * Insert (or replace) an entry, evicting the least-recently-used
     * entry when over capacity. Null pipelines are never cached.
     */
    void insert(const std::string& key, driver::CompiledPipelinePtr cp);

    /**
     * lookup(), and on a miss call `compile` (outside the lock) and
     * insert the result. Single-flight per key: concurrent callers of
     * the same cold key wait for the first compile instead of
     * duplicating it. `*hit` reports whether the caller was served
     * from cache (including waiting on another caller's compile).
     */
    driver::CompiledPipelinePtr getOrCompile(
        const std::string& key,
        const std::function<driver::CompiledPipelinePtr()>& compile,
        bool* hit);

    Stats stats() const;

  private:
    using LruList =
        std::list<std::pair<std::string, driver::CompiledPipelinePtr>>;

    /** mu_ held. Returns null when absent; bumps LRU order on hit. */
    driver::CompiledPipelinePtr lookupLocked(const std::string& key);
    /** mu_ held. */
    void insertLocked(const std::string& key,
                      driver::CompiledPipelinePtr cp);

    mutable std::mutex mu_;
    std::condition_variable inflightCv_;
    size_t capacity_;
    LruList lru_;  ///< front = most recently used
    std::unordered_map<std::string, LruList::iterator> index_;
    std::set<std::string> inflight_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t insertions_ = 0;
};

} // namespace phloem::svc

#endif // PHLOEM_SERVICE_CACHE_H
