#include "service/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace phloem::svc {

bool
Client::connect(const std::string& socket_path, std::string* err)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        if (err != nullptr) *err = "socket path too long";
        return false;
    }
    std::strncpy(addr.sun_path, socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err != nullptr) *err = std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        if (err != nullptr) *err = std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::call(const Request& req, Response* resp, std::string* err)
{
    if (fd_ < 0) {
        if (err != nullptr) *err = "not connected";
        return false;
    }
    if (!writeFrame(fd_, req.toJson(), err)) return false;
    std::string payload;
    ReadResult rr = readFrame(fd_, &payload, err);
    if (rr == ReadResult::kEof) {
        if (err != nullptr) *err = "server closed connection";
        return false;
    }
    if (rr != ReadResult::kOk) return false;
    return Response::fromJson(payload, resp, err);
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
waitForServer(const std::string& socket_path, int timeout_ms,
              std::string* err)
{
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    std::string last_err = "timed out";
    for (;;) {
        Client c;
        Response resp;
        Request ping;
        ping.op = "ping";
        if (c.connect(socket_path, &last_err) &&
            c.call(ping, &resp, &last_err) && resp.ok) {
            return true;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
            if (err != nullptr) *err = last_err;
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

} // namespace phloem::svc
