/**
 * @file
 * Blocking client for the phloemd socket protocol.
 *
 * One Client owns one connection and issues sequential request/response
 * round trips — exactly the concurrency unit the server's worker pool
 * schedules. The load generator runs N Clients on N threads; anything
 * fancier (multiplexing, async) would measure the client instead of the
 * service.
 */

#ifndef PHLOEM_SERVICE_CLIENT_H
#define PHLOEM_SERVICE_CLIENT_H

#include <string>

#include "service/protocol.h"

namespace phloem::svc {

class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /** Connect to a phloemd socket. False + *err on failure. */
    bool connect(const std::string& socket_path, std::string* err);

    /**
     * One round trip: frame + send the request, block for the framed
     * response. False + *err on transport failure (a server-side
     * failure still returns true, with resp->ok == false).
     */
    bool call(const Request& req, Response* resp, std::string* err);

    bool connected() const { return fd_ >= 0; }
    void close();

  private:
    int fd_ = -1;
};

/**
 * Convenience: connect, wait up to `timeout_ms` for the daemon's socket
 * to appear and accept a ping (startup race with a just-spawned
 * phloemd). False when the deadline passes.
 */
bool waitForServer(const std::string& socket_path, int timeout_ms,
                   std::string* err);

} // namespace phloem::svc

#endif // PHLOEM_SERVICE_CLIENT_H
