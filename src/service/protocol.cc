#include "service/protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "metrics/json.h"

namespace phloem::svc {

namespace {

/**
 * Write the whole buffer, riding out EINTR and short writes (a small
 * SO_SNDBUF or a signal can split one frame across many syscalls).
 * Uses send(MSG_NOSIGNAL) so a peer that disconnected mid-response
 * surfaces as EPIPE here instead of a process-killing SIGPIPE — the
 * server must outlive any one client. Falls back to write() for
 * non-socket fds (ENOTSOCK: pipes and regular files in tests).
 */
bool
writeAll(int fd, const char* data, size_t n, std::string* err)
{
    size_t off = 0;
    bool use_send = true;
    while (off < n) {
        ssize_t w = use_send
                        ? ::send(fd, data + off, n - off, MSG_NOSIGNAL)
                        : ::write(fd, data + off, n - off);
        if (w < 0) {
            if (errno == EINTR) continue;
            if (use_send && errno == ENOTSOCK) {
                use_send = false;
                continue;
            }
            if (err != nullptr) *err = std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

/** 1 = ok, 0 = clean EOF at offset 0, -1 = error/truncation. */
int
readAll(int fd, char* data, size_t n, std::string* err)
{
    size_t off = 0;
    while (off < n) {
        ssize_t r = ::read(fd, data + off, n - off);
        if (r < 0) {
            if (errno == EINTR) continue;
            if (err != nullptr) *err = std::strerror(errno);
            return -1;
        }
        if (r == 0) {
            if (off == 0) return 0;
            if (err != nullptr) *err = "connection closed mid-frame";
            return -1;
        }
        off += static_cast<size_t>(r);
    }
    return 1;
}

} // namespace

bool
writeFrame(int fd, const std::string& payload, std::string* err)
{
    if (payload.size() > kMaxFrameBytes) {
        if (err != nullptr) *err = "frame payload too large";
        return false;
    }
    char header[8];
    std::memcpy(header, kFrameMagic, 4);
    uint32_t len = static_cast<uint32_t>(payload.size());
    header[4] = static_cast<char>(len & 0xff);
    header[5] = static_cast<char>((len >> 8) & 0xff);
    header[6] = static_cast<char>((len >> 16) & 0xff);
    header[7] = static_cast<char>((len >> 24) & 0xff);
    return writeAll(fd, header, sizeof header, err) &&
           writeAll(fd, payload.data(), payload.size(), err);
}

ReadResult
readFrame(int fd, std::string* payload, std::string* err)
{
    char header[8];
    int r = readAll(fd, header, sizeof header, err);
    if (r == 0) return ReadResult::kEof;
    if (r < 0) return ReadResult::kError;
    if (std::memcmp(header, kFrameMagic, 4) != 0) {
        if (err != nullptr) *err = "bad frame magic";
        return ReadResult::kError;
    }
    uint32_t len = static_cast<uint32_t>(static_cast<uint8_t>(header[4])) |
                   (static_cast<uint32_t>(static_cast<uint8_t>(header[5]))
                    << 8) |
                   (static_cast<uint32_t>(static_cast<uint8_t>(header[6]))
                    << 16) |
                   (static_cast<uint32_t>(static_cast<uint8_t>(header[7]))
                    << 24);
    if (len > kMaxFrameBytes) {
        if (err != nullptr) *err = "frame payload too large";
        return ReadResult::kError;
    }
    payload->resize(len);
    if (len > 0 && readAll(fd, payload->data(), len, err) != 1) {
        return ReadResult::kError;
    }
    return ReadResult::kOk;
}

std::string
Request::toJson() const
{
    using metrics::Json;
    Json j = Json::object();
    j.set("op", Json::str(op));
    if (op == "run") {
        j.set("source", Json::str(source));
        if (!kernel.empty()) j.set("kernel", Json::str(kernel));
        j.set("backend", Json::str(backend));
        if (!tier.empty()) j.set("tier", Json::str(tier));
        j.set("stages", Json::integer(stages));
        j.set("size", Json::integer(size));
        j.set("timeout_ms", Json::integer(timeoutMs));
        if (noCache) j.set("no_cache", Json::boolean(true));
        if (trace) j.set("trace", Json::boolean(true));
    }
    return j.dump();
}

bool
Request::fromJson(const std::string& text, Request* out, std::string* err)
{
    using metrics::Json;
    Json j;
    if (!Json::parse(text, &j, err)) return false;
    if (j.kind() != Json::Kind::kObject ||
        j.at("op").kind() != Json::Kind::kString) {
        if (err != nullptr) *err = "request must be an object with \"op\"";
        return false;
    }
    Request req;
    req.op = j.at("op").asString();
    if (req.op != "run" && req.op != "stats" && req.op != "health" &&
        req.op != "ping" && req.op != "shutdown") {
        if (err != nullptr) *err = "unknown op \"" + req.op + "\"";
        return false;
    }
    if (req.op == "run") {
        if (j.at("source").kind() != Json::Kind::kString ||
            j.at("source").asString().empty()) {
            if (err != nullptr) *err = "run request needs \"source\" text";
            return false;
        }
        req.source = j.at("source").asString();
        if (j.has("kernel")) req.kernel = j.at("kernel").asString();
        if (j.has("backend")) req.backend = j.at("backend").asString();
        if (req.backend != "native" && req.backend != "sim") {
            if (err != nullptr) {
                *err = "backend must be \"native\" or \"sim\"";
            }
            return false;
        }
        if (j.has("tier")) req.tier = j.at("tier").asString();
        if (req.tier == "interpreter") req.tier = "interp";
        if (!req.tier.empty() && req.tier != "jit" &&
            req.tier != "engine" && req.tier != "interp") {
            if (err != nullptr) {
                *err = "tier must be \"jit\", \"engine\", or \"interp\"";
            }
            return false;
        }
        if (j.at("stages").isNumber()) {
            req.stages = static_cast<int>(j.at("stages").asInt());
        }
        if (j.at("size").isNumber()) req.size = j.at("size").asInt();
        if (j.at("timeout_ms").isNumber()) {
            req.timeoutMs = static_cast<int>(j.at("timeout_ms").asInt());
        }
        if (j.at("no_cache").kind() == Json::Kind::kBool) {
            req.noCache = j.at("no_cache").asBool();
        }
        if (j.at("trace").kind() == Json::Kind::kBool) {
            req.trace = j.at("trace").asBool();
        }
        if (req.stages < 1 || req.stages > 64 || req.size < 1 ||
            req.size > (1ll << 32) || req.timeoutMs < 1) {
            if (err != nullptr) *err = "run request parameter out of range";
            return false;
        }
    }
    *out = std::move(req);
    return true;
}

std::string
Response::toJson() const
{
    using metrics::Json;
    Json j = Json::object();
    j.set("ok", Json::boolean(ok));
    if (!error.empty()) j.set("error", Json::str(error));
    if (!requestId.empty()) j.set("request_id", Json::str(requestId));
    if (!tracePath.empty()) j.set("trace_path", Json::str(tracePath));
    if (!cache.empty()) j.set("cache", Json::str(cache));
    if (compileNs > 0) j.set("compile_ns", Json::number(compileNs));
    if (runNs > 0) j.set("run_ns", Json::number(runNs));
    if (totalNs > 0) j.set("total_ns", Json::number(totalNs));
    if (!outputHash.empty()) j.set("output_hash", Json::str(outputHash));
    if (stages > 0) j.set("stages", Json::integer(stages));
    if (instructions > 0) {
        j.set("instructions",
              Json::integer(static_cast<int64_t>(instructions)));
    }
    if (requestsServed > 0 || cacheHits > 0 || cacheMisses > 0) {
        j.set("cache_hits", Json::integer(static_cast<int64_t>(cacheHits)));
        j.set("cache_misses",
              Json::integer(static_cast<int64_t>(cacheMisses)));
        j.set("cache_evictions",
              Json::integer(static_cast<int64_t>(cacheEvictions)));
        j.set("cache_entries",
              Json::integer(static_cast<int64_t>(cacheEntries)));
        j.set("requests_served",
              Json::integer(static_cast<int64_t>(requestsServed)));
    }
    if (schedPoolSize > 0) {
        j.set("sched_pool_size", Json::integer(schedPoolSize));
        j.set("sched_parks",
              Json::integer(static_cast<int64_t>(schedParks)));
        j.set("sched_unparks",
              Json::integer(static_cast<int64_t>(schedUnparks)));
        j.set("sched_steals",
              Json::integer(static_cast<int64_t>(schedSteals)));
        j.set("sched_yields",
              Json::integer(static_cast<int64_t>(schedYields)));
    }
    if (!state.empty()) {
        j.set("state", Json::str(state));
        j.set("uptime_s", Json::number(uptimeS));
        j.set("inflight", Json::integer(inflight));
        j.set("queued_conns", Json::integer(queuedConns));
        j.set("workers", Json::integer(workersTotal));
    }
    // The report snapshot travels as a nested object, not an escaped
    // string: a generic JSON consumer (the CI smoke, jq) should reach
    // .report.runs without double-decoding.
    if (!reportJson.empty()) {
        Json report;
        std::string perr;
        if (Json::parse(reportJson, &report, &perr))
            j.set("report", std::move(report));
    }
    return j.dump();
}

bool
Response::fromJson(const std::string& text, Response* out, std::string* err)
{
    using metrics::Json;
    Json j;
    if (!Json::parse(text, &j, err)) return false;
    if (j.kind() != Json::Kind::kObject ||
        j.at("ok").kind() != Json::Kind::kBool) {
        if (err != nullptr) *err = "response must be an object with \"ok\"";
        return false;
    }
    Response resp;
    resp.ok = j.at("ok").asBool();
    if (j.has("error")) resp.error = j.at("error").asString();
    if (j.has("request_id")) {
        resp.requestId = j.at("request_id").asString();
    }
    if (j.has("trace_path")) {
        resp.tracePath = j.at("trace_path").asString();
    }
    if (j.has("cache")) resp.cache = j.at("cache").asString();
    if (j.at("compile_ns").isNumber()) {
        resp.compileNs = j.at("compile_ns").asDouble();
    }
    if (j.at("run_ns").isNumber()) resp.runNs = j.at("run_ns").asDouble();
    if (j.at("total_ns").isNumber()) {
        resp.totalNs = j.at("total_ns").asDouble();
    }
    if (j.has("output_hash")) {
        resp.outputHash = j.at("output_hash").asString();
    }
    if (j.at("stages").isNumber()) {
        resp.stages = static_cast<int>(j.at("stages").asInt());
    }
    if (j.at("instructions").isNumber()) {
        resp.instructions =
            static_cast<uint64_t>(j.at("instructions").asInt());
    }
    auto u64 = [&j](const char* key) {
        return j.at(key).isNumber()
                   ? static_cast<uint64_t>(j.at(key).asInt())
                   : 0ull;
    };
    resp.cacheHits = u64("cache_hits");
    resp.cacheMisses = u64("cache_misses");
    resp.cacheEvictions = u64("cache_evictions");
    resp.cacheEntries = u64("cache_entries");
    resp.requestsServed = u64("requests_served");
    if (j.at("sched_pool_size").isNumber()) {
        resp.schedPoolSize =
            static_cast<int>(j.at("sched_pool_size").asInt());
    }
    resp.schedParks = u64("sched_parks");
    resp.schedUnparks = u64("sched_unparks");
    resp.schedSteals = u64("sched_steals");
    resp.schedYields = u64("sched_yields");
    if (j.has("state")) {
        resp.state = j.at("state").asString();
        if (j.at("uptime_s").isNumber())
            resp.uptimeS = j.at("uptime_s").asDouble();
        if (j.at("inflight").isNumber())
            resp.inflight = j.at("inflight").asInt();
        if (j.at("queued_conns").isNumber())
            resp.queuedConns = j.at("queued_conns").asInt();
        if (j.at("workers").isNumber())
            resp.workersTotal = static_cast<int>(j.at("workers").asInt());
    }
    if (j.at("report").kind() == Json::Kind::kObject) {
        resp.reportJson = j.at("report").dump();
    }
    *out = std::move(resp);
    return true;
}

} // namespace phloem::svc
