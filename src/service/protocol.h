/**
 * @file
 * Wire protocol of the phloemd compilation service.
 *
 * Framing: every message (request or response) is one frame:
 *
 *   bytes 0..3   magic "PHLO"      (rejects a stray non-phloem client)
 *   bytes 4..7   payload length, uint32 little-endian, <= kMaxFrameBytes
 *   bytes 8..    payload: one UTF-8 JSON document
 *
 * Length-prefixed framing keeps the stream self-synchronizing over a
 * Unix-domain socket (no sentinel scanning, no ambiguity about where a
 * pretty-printed JSON document ends) and lets the server bound memory
 * per connection before reading a byte of payload. The payload reuses
 * metrics::Json so the daemon has exactly one JSON implementation.
 *
 * Requests (`op` selects the verb):
 *   "run"       compile (or cache-hit) and execute a kernel
 *   "stats"     report cache/server counters plus a schema-versioned
 *               metrics::Report snapshot (rolling-window latency
 *               distributions per cache verdict, gauges, sched counters)
 *               embedded as the nested "report" object
 *   "health"    cheap liveness summary: state, uptime, in-flight and
 *               queued gauges (no report, no cache walk)
 *   "ping"      liveness probe
 *   "shutdown"  ask the server to drain and exit (same path as SIGTERM)
 *
 * A connection carries any number of sequential request/response pairs;
 * the server never pipelines responses out of order.
 */

#ifndef PHLOEM_SERVICE_PROTOCOL_H
#define PHLOEM_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace phloem::svc {

/** Frame header magic, on the wire as 'P' 'H' 'L' 'O'. */
inline constexpr char kFrameMagic[4] = {'P', 'H', 'L', 'O'};
/** Max payload size; a run request is source text, so 8 MiB is ample. */
inline constexpr uint32_t kMaxFrameBytes = 8u * 1024u * 1024u;

/**
 * Write one frame (header + payload) to `fd`, retrying on EINTR and
 * short writes. False + *err on I/O failure.
 */
bool writeFrame(int fd, const std::string& payload, std::string* err);

enum class ReadResult : uint8_t
{
    kOk,
    kEof,   ///< clean close before any header byte
    kError, ///< I/O failure, bad magic, oversized or truncated frame
};

/**
 * Read one frame from `fd` into *payload. kEof only when the peer
 * closed cleanly between frames; a close mid-frame is kError.
 */
ReadResult readFrame(int fd, std::string* payload, std::string* err);

/** One decoded client request. */
struct Request
{
    std::string op = "run"; ///< "run"|"stats"|"health"|"ping"|"shutdown"

    // op == "run" fields.
    std::string source;          ///< mini-C kernel text
    std::string kernel;          ///< function name; empty = first
    std::string backend = "native"; ///< "native" | "sim"
    /**
     * Native stage execution tier: "" (server default, resolved from
     * the daemon's environment) | "jit" | "engine" | "interp". "jit"
     * pipelines cache their per-stage .so, so hits skip JIT codegen.
     */
    std::string tier;
    int stages = 4;              ///< target stage count
    int64_t size = 4096;         ///< synthetic input size
    int timeoutMs = 10000;       ///< per-request watchdog bound
    bool noCache = false;        ///< bypass the pipeline cache
    /**
     * Ask for a request-scoped trace: the server runs this request
     * under a per-request Tracer and writes req-<id>.trace.json under
     * its --trace-dir (ignored, with a response note, when the daemon
     * has no trace dir). The file carries service spans (queue wait,
     * cache lookup, compile, run) and the runtime's stall spans on one
     * time axis, tagged with the server-assigned request id.
     */
    bool trace = false;

    std::string toJson() const;
    /** False + *err on malformed JSON or a structurally bad request. */
    static bool fromJson(const std::string& text, Request* out,
                         std::string* err);
};

/** One server response. */
struct Response
{
    bool ok = false;
    std::string error;

    /** Server-assigned request id ("r-<hex>", run ops only). */
    std::string requestId;
    /** Path of the request-scoped trace file ("" when not traced). */
    std::string tracePath;

    /** "hit" | "miss" | "bypass" ("" for non-run ops). */
    std::string cache;
    double compileNs = 0.0; ///< 0 on a cache hit
    double runNs = 0.0;
    double totalNs = 0.0;   ///< server-side request latency
    /** driver::hashBinding of the output image, as 16 hex digits. */
    std::string outputHash;
    int stages = 0;
    uint64_t instructions = 0;

    // op == "stats" fields.
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t cacheEntries = 0;
    uint64_t requestsServed = 0;

    /**
     * Shared task-pool counters, cumulative over the daemon's life
     * (op == "stats", zero until a native run created the pool). All
     * native requests share one fixed-size pool, so these are global,
     * not per-request.
     */
    int schedPoolSize = 0;
    uint64_t schedParks = 0;
    uint64_t schedUnparks = 0;
    uint64_t schedSteals = 0;
    uint64_t schedYields = 0;

    /**
     * op == "stats": the live telemetry snapshot — a serialized
     * metrics::Report (schema-versioned; rolling-window + cumulative
     * latency distributions per cache verdict, gauges, counters). On
     * the wire it is the nested "report" object; here it is kept as
     * its JSON text so protocol.h does not depend on metrics.h — feed
     * it to metrics::parseReport.
     */
    std::string reportJson;

    // op == "health" fields (also echoed by "stats").
    std::string state;      ///< "serving" | "draining"
    double uptimeS = 0.0;
    int64_t inflight = 0;   ///< run requests currently executing
    int64_t queuedConns = 0;///< accepted connections awaiting a worker
    int workersTotal = 0;   ///< service worker-pool size

    std::string toJson() const;
    static bool fromJson(const std::string& text, Response* out,
                         std::string* err);
};

} // namespace phloem::svc

#endif // PHLOEM_SERVICE_PROTOCOL_H
