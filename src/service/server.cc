#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/logging.h"
#include "base/thread_name.h"
#include "ir/pipeline.h"
#include "metrics/metrics.h"
#include "runtime/sched.h"
#include "runtime/trace.h"
#include "sim/binding.h"

namespace phloem::svc {

namespace {

std::string
hex64(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheCapacity),
      window_(opts_.statsWindowSec > 0 ? opts_.statsWindowSec : 60)
{
}

Server::~Server() { stop(); }

bool
Server::start(std::string* err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err != nullptr) *err = "socket path too long";
        return false;
    }
    std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err != nullptr) *err = std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        if (errno == EADDRINUSE) {
            // Distinguish a live daemon from a stale socket file left by
            // a crash: if nobody accepts a connection, reclaim the path.
            int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            bool alive =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0;
            if (probe >= 0) ::close(probe);
            if (alive) {
                if (err != nullptr) {
                    *err = "another phloemd is already serving " +
                           opts_.socketPath;
                }
                closeFd(listenFd_);
                return false;
            }
            ::unlink(opts_.socketPath.c_str());
            if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) != 0) {
                if (err != nullptr) *err = std::strerror(errno);
                closeFd(listenFd_);
                return false;
            }
        } else {
            if (err != nullptr) *err = std::strerror(errno);
            closeFd(listenFd_);
            return false;
        }
    }
    if (::listen(listenFd_, 64) != 0) {
        if (err != nullptr) *err = std::strerror(errno);
        closeFd(listenFd_);
        ::unlink(opts_.socketPath.c_str());
        return false;
    }
    if (::pipe(wakePipe_) != 0) {
        if (err != nullptr) *err = std::strerror(errno);
        closeFd(listenFd_);
        ::unlink(opts_.socketPath.c_str());
        return false;
    }

    startNs_ = nowNs();
    int n = opts_.workers > 0 ? opts_.workers : 1;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this, i] {
            setCurrentThreadName("phl-svc/" + std::to_string(i));
            workerLoop();
        });
    }
    acceptor_ = std::thread([this] {
        setCurrentThreadName("phl-accept");
        acceptLoop();
    });
    return true;
}

void
Server::requestDrain()
{
    // Signal-handler path: only async-signal-safe operations here.
    draining_.store(true, std::memory_order_release);
    if (wakePipe_[1] >= 0) {
        char b = 'q';
        [[maybe_unused]] ssize_t r = ::write(wakePipe_[1], &b, 1);
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {wakePipe_[0], POLLIN, 0};
        int r = ::poll(fds, 2, -1);
        if (r < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (draining_.load(std::memory_order_acquire)) break;
        if ((fds[0].revents & POLLIN) == 0) continue;
        int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR) continue;
            break;
        }
        std::lock_guard<std::mutex> lock(connMu_);
        pendingConns_.emplace_back(conn, nowNs());
        connCv_.notify_one();
    }
    std::lock_guard<std::mutex> lock(connMu_);
    acceptorDone_ = true;
    connCv_.notify_all();
}

void
Server::workerLoop()
{
    for (;;) {
        int fd = -1;
        double queuedAt = 0.0;
        {
            std::unique_lock<std::mutex> lock(connMu_);
            connCv_.wait(lock, [this] {
                return !pendingConns_.empty() || acceptorDone_;
            });
            if (pendingConns_.empty()) {
                if (acceptorDone_) return;
                continue;
            }
            fd = pendingConns_.front().first;
            queuedAt = pendingConns_.front().second;
            pendingConns_.pop_front();
        }
        serveConnection(fd, queuedAt);
        ::close(fd);
    }
}

void
Server::serveConnection(int fd, double queuedAtNs)
{
    // The accept-to-worker handoff delay charges the connection's first
    // request (later requests on the kept-alive connection waited in
    // the client, not in our queue).
    double queueWaitNs = nowNs() - queuedAtNs;
    if (queueWaitNs < 0) queueWaitNs = 0;
    for (;;) {
        // Wait for the next request in short slices so a drain can
        // close idle connections instead of blocking in read() forever.
        for (;;) {
            pollfd p{fd, POLLIN, 0};
            int r = ::poll(&p, 1, 100);
            if (r < 0 && errno != EINTR) return;
            if (r > 0) break;
            if (draining_.load(std::memory_order_acquire)) return;
        }

        std::string payload, err;
        ReadResult rr = readFrame(fd, &payload, &err);
        if (rr != ReadResult::kOk) return;

        Request req;
        Response resp;
        if (!Request::fromJson(payload, &req, &err)) {
            resp.ok = false;
            resp.error = "bad request: " + err;
        } else {
            resp = handleRequest(req, queueWaitNs);
        }
        if (req.op == "run") {
            // Fold the request into the live telemetry, keyed by cache
            // verdict so a cold-path regression stays attributable.
            std::string verdict = !resp.ok ? "error"
                                  : resp.cache.empty() ? "run"
                                                       : resp.cache;
            if (!resp.ok)
                stats_.runErrors.fetch_add(1,
                                           std::memory_order_relaxed);
            double now = nowNs();
            window_.observe(verdict, resp.totalNs,
                            static_cast<uint64_t>(now));
            std::lock_guard<std::mutex> g(stats_.mu);
            auto it = stats_.totalByVerdict.find(verdict);
            if (it == stats_.totalByVerdict.end()) {
                it = stats_.totalByVerdict
                         .emplace(verdict,
                                  metrics::Distribution(
                                      metrics::RollingWindow::
                                          defaultEdges()))
                         .first;
            }
            it->second.observe(resp.totalNs);
        }
        requestsServed_.fetch_add(1, std::memory_order_relaxed);
        if (!writeFrame(fd, resp.toJson(), &err)) return;
        if (req.op == "shutdown") return;
        queueWaitNs = 0.0;
    }
}

void
Server::fillHealth(Response* resp)
{
    resp->state = draining_.load(std::memory_order_acquire) ? "draining"
                                                            : "serving";
    resp->uptimeS = (nowNs() - startNs_) / 1e9;
    resp->inflight = stats_.inflight.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(connMu_);
        resp->queuedConns = static_cast<int64_t>(pendingConns_.size());
    }
    resp->workersTotal = static_cast<int>(workers_.size());
}

Response
Server::handleRequest(const Request& req, double queueWaitNs)
{
    Response resp;
    if (req.op == "ping") {
        resp.ok = true;
        return resp;
    }
    if (req.op == "health") {
        resp.ok = true;
        fillHealth(&resp);
        return resp;
    }
    if (req.op == "stats") {
        auto s = cache_.stats();
        resp.ok = true;
        resp.cacheHits = s.hits;
        resp.cacheMisses = s.misses;
        resp.cacheEvictions = s.evictions;
        resp.cacheEntries = s.entries;
        resp.requestsServed =
            requestsServed_.load(std::memory_order_relaxed);
        // Shared task pool counters: null until some native run
        // instantiated the pool (sim-only daemons never do).
        if (rt::Scheduler* sched = rt::Scheduler::sharedIfCreated()) {
            auto c = sched->counters();
            resp.schedPoolSize = sched->poolSize();
            resp.schedParks = c.parks;
            resp.schedUnparks = c.unparks;
            resp.schedSteals = c.steals;
            resp.schedYields = c.yields;
        }
        fillHealth(&resp);
        resp.reportJson = buildStatsReport();
        return resp;
    }
    if (req.op == "shutdown") {
        requestDrain();
        resp.ok = true;
        return resp;
    }
    return handleRun(req, queueWaitNs);
}

std::string
Server::buildStatsReport()
{
    metrics::Report report;
    report.meta["service"] = "phloemd";
    metrics::Run& run = report.run("phloemd", {{"source", "stats"}});
    metrics::MetricSet& top = run.top;

    auto cs = cache_.stats();
    top.addCounter("requests_served",
                   requestsServed_.load(std::memory_order_relaxed));
    top.addCounter("run_requests",
                   stats_.runRequests.load(std::memory_order_relaxed));
    top.addCounter("run_errors",
                   stats_.runErrors.load(std::memory_order_relaxed));
    top.addCounter("cache_hits", cs.hits);
    top.addCounter("cache_misses", cs.misses);
    top.addCounter("cache_evictions", cs.evictions);
    top.setGauge("cache_entries", static_cast<double>(cs.entries));
    uint64_t lookups = cs.hits + cs.misses;
    top.setGauge("cache_hit_rate",
                 lookups > 0
                     ? static_cast<double>(cs.hits) /
                           static_cast<double>(lookups)
                     : 0.0);
    top.setGauge("uptime_s", (nowNs() - startNs_) / 1e9);
    top.setGauge("inflight", static_cast<double>(stats_.inflight.load(
                                 std::memory_order_relaxed)));
    {
        std::lock_guard<std::mutex> lock(connMu_);
        top.setGauge("queued_conns",
                     static_cast<double>(pendingConns_.size()));
    }
    top.setGauge("workers", static_cast<double>(workers_.size()));
    top.setGauge("window_sec", static_cast<double>(window_.windowSec()));
    if (rt::Scheduler* sched = rt::Scheduler::sharedIfCreated()) {
        auto c = sched->counters();
        top.setGauge("sched_pool_size",
                     static_cast<double>(sched->poolSize()));
        top.addCounter("sched_parks", c.parks);
        top.addCounter("sched_unparks", c.unparks);
        top.addCounter("sched_steals", c.steals);
        top.addCounter("sched_yields", c.yields);
        top.addCounter("sched_tasks_started", c.tasksStarted);
    }

    // Latency distributions per cache verdict, in two scopes: the live
    // rolling window ("what is slow now") and the cumulative totals
    // ("what has this process served") — the latter doubles as the
    // drain report.
    metrics::Family& lat = run.families["latency"];
    auto emit = [&lat](const std::string& verdict,
                       const std::string& scope,
                       const metrics::Distribution& d) {
        metrics::MetricSet& ms =
            lat.at({{"verdict", verdict}, {"scope", scope}});
        ms.dists["latency_ns"] = d;
        ms.addCounter("count", d.total);
        ms.setGauge("mean_ns", d.mean());
        ms.setGauge("p50_ns", d.quantile(0.50));
        ms.setGauge("p95_ns", d.quantile(0.95));
        ms.setGauge("p99_ns", d.quantile(0.99));
    };
    auto snap = window_.snapshot(static_cast<uint64_t>(nowNs()));
    for (const auto& [verdict, d] : snap.byKind)
        emit(verdict, "window", d);
    emit("all", "window", snap.total);
    {
        std::lock_guard<std::mutex> g(stats_.mu);
        metrics::Distribution all_total(
            metrics::RollingWindow::defaultEdges());
        for (const auto& [verdict, d] : stats_.totalByVerdict) {
            emit(verdict, "total", d);
            all_total.merge(d);
        }
        emit("all", "total", all_total);
    }

    // Window-level headline gauges so quick consumers (phloem-top, the
    // CI smoke) can skip the family walk.
    top.setGauge("window_requests",
                 static_cast<double>(snap.total.total));
    top.setGauge("window_rps",
                 static_cast<double>(snap.total.total) /
                     static_cast<double>(window_.windowSec()));
    top.setGauge("window_p50_ns", snap.total.quantile(0.50));
    top.setGauge("window_p95_ns", snap.total.quantile(0.95));
    top.setGauge("window_p99_ns", snap.total.quantile(0.99));
    uint64_t whits = 0, wlookups = 0;
    for (const auto& [verdict, d] : snap.byKind) {
        if (verdict == "hit") whits += d.total;
        if (verdict == "hit" || verdict == "miss") wlookups += d.total;
    }
    top.setGauge("window_hit_rate",
                 wlookups > 0 ? static_cast<double>(whits) /
                                    static_cast<double>(wlookups)
                              : 0.0);
    return metrics::toJson(report);
}

Response
Server::handleRun(const Request& req, double queueWaitNs)
{
    Response resp;
    double t0 = nowNs();
    resp.requestId =
        "r-" + std::to_string(nextRequestId_.fetch_add(
                   1, std::memory_order_relaxed));
    stats_.runRequests.fetch_add(1, std::memory_order_relaxed);
    stats_.inflight.fetch_add(1, std::memory_order_relaxed);
    struct InflightGuard
    {
        ServerStats& s;
        ~InflightGuard()
        {
            s.inflight.fetch_sub(1, std::memory_order_relaxed);
        }
    } inflight_guard{stats_};

    // Request-scoped tracing: a per-request Tracer whose wall-ns time
    // axis is shared by the service spans below and the runtime's stall
    // spans (RuntimeOptions.tracer). Native only — sim traces run on
    // the simulated-cycle timebase, which cannot share an axis with
    // service wall time. The epoch starts here, after the connection's
    // queue wait ended, so that wait is recorded as [0, wait] on its
    // own lane.
    std::unique_ptr<trace::Tracer> tracer;
    trace::TraceBuffer* svc = nullptr;
    if (req.trace && !opts_.traceDir.empty() && req.backend != "sim") {
        tracer =
            std::make_unique<trace::Tracer>(trace::Timebase::kWallNs);
        tracer->setMeta("request_id", resp.requestId);
        if (queueWaitNs > 0) {
            trace::TraceBuffer* qw =
                tracer->addWorker("svc-queue", /*is_stage=*/false);
            qw->record(trace::EventKind::kSvcQueueWait, -1, 0,
                       static_cast<uint64_t>(queueWaitNs));
        }
        svc = tracer->addWorker("service", /*is_stage=*/false);
    }

    driver::CompileSpec spec;
    spec.source = req.source;
    spec.kernelName = req.kernel;
    spec.opts.numStages = req.stages;
    spec.opts.maxRAs = opts_.cfg.maxRAs;
    spec.opts.maxQueues = opts_.cfg.maxQueues;
    // Protocol tier -> runtime tier. "" stays kAuto: the daemon's
    // environment decides, and no artifacts are attached to the cache
    // entry. An explicit "jit" makes the compile carry the per-stage
    // .so, so cache hits skip JIT codegen too (the key includes it).
    rt::TierMode tier = rt::TierMode::kAuto;
    if (req.tier == "jit") {
        tier = rt::TierMode::kJit;
    } else if (req.tier == "engine") {
        tier = rt::TierMode::kEngine;
    } else if (req.tier == "interp") {
        tier = rt::TierMode::kInterp;
    }
    spec.tier = tier;

    std::string key = cacheKey(opts_.cfg, spec);
    driver::CompiledPipelinePtr cp;
    bool hit = false;
    std::string fe_err;
    // The compile lambda runs on this worker thread (we are the flight
    // leader) or not at all (a follower rides the leader's compile), so
    // recording its span on `svc` keeps the ring single-writer.
    auto compile_fn = [&] {
        uint64_t c0 = svc != nullptr ? svc->now() : 0;
        auto p = driver::compileSource(spec, &fe_err);
        if (svc != nullptr)
            svc->record(trace::EventKind::kSvcCompile, -1, c0,
                        svc->now());
        return p;
    };
    uint64_t l0 = svc != nullptr ? svc->now() : 0;
    if (req.noCache) {
        resp.cache = "bypass";
        cp = compile_fn();
    } else {
        cp = cache_.getOrCompile(key, compile_fn, &hit);
        resp.cache = hit ? "hit" : "miss";
    }
    if (svc != nullptr)
        svc->record(trace::EventKind::kSvcCacheLookup, -1, l0,
                    svc->now());
    // Trace files are written even for failed requests: "why did this
    // request fail/stall" is exactly when the spans matter.
    auto finish_trace = [&] {
        if (tracer == nullptr) return;
        tracer->setMeta("cache", resp.cache);
        std::string path =
            opts_.traceDir + "/req-" + resp.requestId + ".trace.json";
        std::string terr;
        if (tracer->writeJson(path, &terr))
            resp.tracePath = path;
        else
            phloem_warn("request trace write failed: ", terr);
    };
    if (cp == nullptr) {
        resp.ok = false;
        resp.error = "compile failed: " + fe_err;
        resp.totalNs = nowNs() - t0;
        finish_trace();
        return resp;
    }
    if (!cp->ok()) {
        resp.ok = false;
        resp.error = !cp->error.empty()
                         ? "compile failed: " + cp->error
                         : "compile failed: " +
                               (cp->compiled.problems.empty()
                                    ? std::string("no pipeline produced")
                                    : cp->compiled.problems.front());
        resp.totalNs = nowNs() - t0;
        finish_trace();
        return resp;
    }
    if (!hit) resp.compileNs = cp->compileNs;
    resp.stages = static_cast<int>(cp->compiled.pipeline->stages.size());

    driver::RunSpec run;
    run.backend = req.backend == "sim" ? driver::Backend::kSim
                                       : driver::Backend::kNative;
    run.size = std::min<int64_t>(req.size, opts_.maxRunSize);
    run.cfg = opts_.cfg;
    run.deadlockTimeoutMs = std::min(req.timeoutMs, opts_.maxTimeoutMs);
    run.tier = tier;
    run.requestId = resp.requestId;
    run.tracer = tracer.get();
    if (run.backend == driver::Backend::kSim) {
        // The simulated machine must host one SMT thread per stage
        // (times replicas); scale cores up for wide pipelines rather
        // than rejecting them — the daemon serves arbitrary kernels.
        int threads =
            static_cast<int>(cp->compiled.pipeline->stages.size()) *
            std::max(1, cp->compiled.pipeline->replicas);
        int per_core = std::max(1, run.cfg.threadsPerCore);
        int cores = (threads + per_core - 1) / per_core;
        if (cores > run.cfg.numCores) run.cfg.numCores = cores;
    }

    sim::Binding binding;
    driver::ExecOutcome out;
    uint64_t r0 = svc != nullptr ? svc->now() : 0;
    try {
        driver::synthesizeBinding(*cp->kernel.fn, run.size, binding);
        out = driver::runCompiled(*cp, run, binding);
    } catch (const std::exception& e) {
        resp.ok = false;
        resp.error = std::string("run failed: ") + e.what();
        resp.totalNs = nowNs() - t0;
        finish_trace();
        return resp;
    }
    if (svc != nullptr)
        svc->record(trace::EventKind::kSvcRun, -1, r0, svc->now());
    resp.ok = out.ok;
    if (!out.ok) resp.error = out.error;
    resp.runNs = out.runNs;
    resp.outputHash = hex64(driver::hashBinding(binding));
    resp.instructions = run.backend == driver::Backend::kSim
                            ? out.sim.totalInstructions()
                            : out.native.totalInstructions();
    resp.totalNs = nowNs() - t0;
    finish_trace();
    return resp;
}

void
Server::wait()
{
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& w : workers_) {
        if (w.joinable()) w.join();
    }
}

void
Server::stop()
{
    if (stopped_.exchange(true)) return;
    requestDrain();
    wait();
    closeFd(listenFd_);
    closeFd(wakePipe_[0]);
    closeFd(wakePipe_[1]);
    if (!opts_.socketPath.empty()) ::unlink(opts_.socketPath.c_str());
}

} // namespace phloem::svc
