#include "service/server.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/logging.h"
#include "ir/pipeline.h"
#include "runtime/sched.h"
#include "sim/binding.h"

namespace phloem::svc {

namespace {

std::string
hex64(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
closeFd(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheCapacity)
{
}

Server::~Server() { stop(); }

bool
Server::start(std::string* err)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (err != nullptr) *err = "socket path too long";
        return false;
    }
    std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (err != nullptr) *err = std::strerror(errno);
        return false;
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
        if (errno == EADDRINUSE) {
            // Distinguish a live daemon from a stale socket file left by
            // a crash: if nobody accepts a connection, reclaim the path.
            int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            bool alive =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0;
            if (probe >= 0) ::close(probe);
            if (alive) {
                if (err != nullptr) {
                    *err = "another phloemd is already serving " +
                           opts_.socketPath;
                }
                closeFd(listenFd_);
                return false;
            }
            ::unlink(opts_.socketPath.c_str());
            if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof addr) != 0) {
                if (err != nullptr) *err = std::strerror(errno);
                closeFd(listenFd_);
                return false;
            }
        } else {
            if (err != nullptr) *err = std::strerror(errno);
            closeFd(listenFd_);
            return false;
        }
    }
    if (::listen(listenFd_, 64) != 0) {
        if (err != nullptr) *err = std::strerror(errno);
        closeFd(listenFd_);
        ::unlink(opts_.socketPath.c_str());
        return false;
    }
    if (::pipe(wakePipe_) != 0) {
        if (err != nullptr) *err = std::strerror(errno);
        closeFd(listenFd_);
        ::unlink(opts_.socketPath.c_str());
        return false;
    }

    int n = opts_.workers > 0 ? opts_.workers : 1;
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
    acceptor_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::requestDrain()
{
    // Signal-handler path: only async-signal-safe operations here.
    draining_.store(true, std::memory_order_release);
    if (wakePipe_[1] >= 0) {
        char b = 'q';
        [[maybe_unused]] ssize_t r = ::write(wakePipe_[1], &b, 1);
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {wakePipe_[0], POLLIN, 0};
        int r = ::poll(fds, 2, -1);
        if (r < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (draining_.load(std::memory_order_acquire)) break;
        if ((fds[0].revents & POLLIN) == 0) continue;
        int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR) continue;
            break;
        }
        std::lock_guard<std::mutex> lock(connMu_);
        pendingConns_.push_back(conn);
        connCv_.notify_one();
    }
    std::lock_guard<std::mutex> lock(connMu_);
    acceptorDone_ = true;
    connCv_.notify_all();
}

void
Server::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(connMu_);
            connCv_.wait(lock, [this] {
                return !pendingConns_.empty() || acceptorDone_;
            });
            if (pendingConns_.empty()) {
                if (acceptorDone_) return;
                continue;
            }
            fd = pendingConns_.front();
            pendingConns_.pop_front();
        }
        serveConnection(fd);
        ::close(fd);
    }
}

void
Server::serveConnection(int fd)
{
    for (;;) {
        // Wait for the next request in short slices so a drain can
        // close idle connections instead of blocking in read() forever.
        for (;;) {
            pollfd p{fd, POLLIN, 0};
            int r = ::poll(&p, 1, 100);
            if (r < 0 && errno != EINTR) return;
            if (r > 0) break;
            if (draining_.load(std::memory_order_acquire)) return;
        }

        std::string payload, err;
        ReadResult rr = readFrame(fd, &payload, &err);
        if (rr != ReadResult::kOk) return;

        Request req;
        Response resp;
        if (!Request::fromJson(payload, &req, &err)) {
            resp.ok = false;
            resp.error = "bad request: " + err;
        } else {
            resp = handleRequest(req);
        }
        requestsServed_.fetch_add(1, std::memory_order_relaxed);
        if (!writeFrame(fd, resp.toJson(), &err)) return;
        if (req.op == "shutdown") return;
    }
}

Response
Server::handleRequest(const Request& req)
{
    Response resp;
    if (req.op == "ping") {
        resp.ok = true;
        return resp;
    }
    if (req.op == "stats") {
        auto s = cache_.stats();
        resp.ok = true;
        resp.cacheHits = s.hits;
        resp.cacheMisses = s.misses;
        resp.cacheEvictions = s.evictions;
        resp.cacheEntries = s.entries;
        resp.requestsServed =
            requestsServed_.load(std::memory_order_relaxed);
        // Shared task pool counters: null until some native run
        // instantiated the pool (sim-only daemons never do).
        if (rt::Scheduler* sched = rt::Scheduler::sharedIfCreated()) {
            auto c = sched->counters();
            resp.schedPoolSize = sched->poolSize();
            resp.schedParks = c.parks;
            resp.schedUnparks = c.unparks;
            resp.schedSteals = c.steals;
            resp.schedYields = c.yields;
        }
        return resp;
    }
    if (req.op == "shutdown") {
        requestDrain();
        resp.ok = true;
        return resp;
    }
    return handleRun(req);
}

Response
Server::handleRun(const Request& req)
{
    Response resp;
    double t0 = nowNs();

    driver::CompileSpec spec;
    spec.source = req.source;
    spec.kernelName = req.kernel;
    spec.opts.numStages = req.stages;
    spec.opts.maxRAs = opts_.cfg.maxRAs;
    spec.opts.maxQueues = opts_.cfg.maxQueues;
    // Protocol tier -> runtime tier. "" stays kAuto: the daemon's
    // environment decides, and no artifacts are attached to the cache
    // entry. An explicit "jit" makes the compile carry the per-stage
    // .so, so cache hits skip JIT codegen too (the key includes it).
    rt::TierMode tier = rt::TierMode::kAuto;
    if (req.tier == "jit") {
        tier = rt::TierMode::kJit;
    } else if (req.tier == "engine") {
        tier = rt::TierMode::kEngine;
    } else if (req.tier == "interp") {
        tier = rt::TierMode::kInterp;
    }
    spec.tier = tier;

    std::string key = cacheKey(opts_.cfg, spec);
    driver::CompiledPipelinePtr cp;
    bool hit = false;
    std::string fe_err;
    if (req.noCache) {
        resp.cache = "bypass";
        cp = driver::compileSource(spec, &fe_err);
    } else {
        cp = cache_.getOrCompile(
            key, [&] { return driver::compileSource(spec, &fe_err); },
            &hit);
        resp.cache = hit ? "hit" : "miss";
    }
    if (cp == nullptr) {
        resp.ok = false;
        resp.error = "compile failed: " + fe_err;
        resp.totalNs = nowNs() - t0;
        return resp;
    }
    if (!cp->ok()) {
        resp.ok = false;
        resp.error = !cp->error.empty()
                         ? "compile failed: " + cp->error
                         : "compile failed: " +
                               (cp->compiled.problems.empty()
                                    ? std::string("no pipeline produced")
                                    : cp->compiled.problems.front());
        resp.totalNs = nowNs() - t0;
        return resp;
    }
    if (!hit) resp.compileNs = cp->compileNs;
    resp.stages = static_cast<int>(cp->compiled.pipeline->stages.size());

    driver::RunSpec run;
    run.backend = req.backend == "sim" ? driver::Backend::kSim
                                       : driver::Backend::kNative;
    run.size = std::min<int64_t>(req.size, opts_.maxRunSize);
    run.cfg = opts_.cfg;
    run.deadlockTimeoutMs = std::min(req.timeoutMs, opts_.maxTimeoutMs);
    run.tier = tier;
    if (run.backend == driver::Backend::kSim) {
        // The simulated machine must host one SMT thread per stage
        // (times replicas); scale cores up for wide pipelines rather
        // than rejecting them — the daemon serves arbitrary kernels.
        int threads =
            static_cast<int>(cp->compiled.pipeline->stages.size()) *
            std::max(1, cp->compiled.pipeline->replicas);
        int per_core = std::max(1, run.cfg.threadsPerCore);
        int cores = (threads + per_core - 1) / per_core;
        if (cores > run.cfg.numCores) run.cfg.numCores = cores;
    }

    sim::Binding binding;
    driver::ExecOutcome out;
    try {
        driver::synthesizeBinding(*cp->kernel.fn, run.size, binding);
        out = driver::runCompiled(*cp, run, binding);
    } catch (const std::exception& e) {
        resp.ok = false;
        resp.error = std::string("run failed: ") + e.what();
        resp.totalNs = nowNs() - t0;
        return resp;
    }
    resp.ok = out.ok;
    if (!out.ok) resp.error = out.error;
    resp.runNs = out.runNs;
    resp.outputHash = hex64(driver::hashBinding(binding));
    resp.instructions = run.backend == driver::Backend::kSim
                            ? out.sim.totalInstructions()
                            : out.native.totalInstructions();
    resp.totalNs = nowNs() - t0;
    return resp;
}

void
Server::wait()
{
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& w : workers_) {
        if (w.joinable()) w.join();
    }
}

void
Server::stop()
{
    if (stopped_.exchange(true)) return;
    requestDrain();
    wait();
    closeFd(listenFd_);
    closeFd(wakePipe_[0]);
    closeFd(wakePipe_[1]);
    if (!opts_.socketPath.empty()) ::unlink(opts_.socketPath.c_str());
}

} // namespace phloem::svc
