/**
 * @file
 * The phloemd server: a long-lived pipeline-compilation + execution
 * service over a Unix-domain socket.
 *
 * Threading model:
 *  - one acceptor thread polls {listen fd, self-pipe} and pushes
 *    accepted connections onto a queue;
 *  - a bounded pool of worker threads pops connections and serves each
 *    one's sequential request/response frames (protocol.h), compiling
 *    through the PipelineCache and executing via driver::runCompiled.
 *
 * One connection occupies one worker for its lifetime, so `workers`
 * bounds both concurrent executions and concurrent connections — the
 * natural admission control for a CPU-bound service (excess
 * connections queue in the accept backlog).
 *
 * Shutdown is a drain, not an abort: requestDrain() is async-signal
 * safe (an atomic store plus one write() to the self-pipe, both
 * signal-safe), so the SIGTERM handler can call it directly. The
 * acceptor then stops accepting, in-flight requests finish (bounded by
 * their own watchdog timeouts), idle connections close, and wait()
 * returns. The same path serves the protocol's "shutdown" op.
 */

#ifndef PHLOEM_SERVICE_SERVER_H
#define PHLOEM_SERVICE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/rolling.h"
#include "service/cache.h"
#include "service/protocol.h"
#include "sim/config.h"

namespace phloem::svc {

struct ServerOptions
{
    std::string socketPath;
    /** Worker pool size = max concurrent connections/executions. */
    int workers = 4;
    /** Pipeline cache capacity (entries); 0 disables caching. */
    size_t cacheCapacity = 32;
    /** Machine configuration every request compiles and runs against. */
    sim::SysConfig cfg = sim::SysConfig::scaledEval();
    /** Upper bound on a request's synthetic input size. */
    int64_t maxRunSize = 1 << 22;
    /** Upper bound on a request's timeout_ms (watchdog ceiling). */
    int maxTimeoutMs = 60000;
    /**
     * Directory for request-scoped traces (req-<id>.trace.json). Empty
     * disables per-request tracing: a request's `trace` flag is then
     * ignored. Must exist; the server does not create it.
     */
    std::string traceDir;
    /** Rolling telemetry window for the stats verb, in seconds. */
    int statsWindowSec = 60;
};

/**
 * Live server telemetry, designed to be read coherently while workers
 * update it: the scalar counters/gauges are atomics (single-word reads
 * can't tear), and the latency aggregates — the rolling window and the
 * cumulative per-verdict distributions — sit behind their own locks
 * (RollingWindow locks internally; `mu` guards `totalByVerdict`). The
 * stats verb therefore snapshots without stopping the worker pool.
 */
struct ServerStats
{
    std::atomic<uint64_t> runRequests{0};
    std::atomic<uint64_t> runErrors{0};
    /** Run requests currently executing (gauge). */
    std::atomic<int64_t> inflight{0};

    std::mutex mu;
    /** Cumulative request-latency distributions keyed by cache verdict
     *  ("hit"/"miss"/"bypass"/"error") — the final drain report. */
    std::map<std::string, metrics::Distribution> totalByVerdict;
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Bind the socket and start the acceptor + worker threads.
     * False + *err if the socket path cannot be bound (e.g. a live
     * daemon already owns it).
     */
    bool start(std::string* err);

    /**
     * Begin draining: stop accepting, let in-flight requests finish.
     * Async-signal-safe — callable from a SIGTERM handler.
     */
    void requestDrain();

    /** Block until the drain completes and all threads have joined. */
    void wait();

    /** requestDrain() + wait() + unlink the socket. Idempotent. */
    void stop();

    PipelineCache::Stats cacheStats() const { return cache_.stats(); }
    uint64_t requestsServed() const
    {
        return requestsServed_.load(std::memory_order_relaxed);
    }

    /**
     * The stats-verb payload: a serialized metrics::Report holding the
     * rolling-window and cumulative latency distributions per cache
     * verdict, hit rates, scheduler/JIT counters, and the in-flight /
     * queued gauges. Safe to call while the server is live (see
     * ServerStats); also used for the final drain report.
     */
    std::string buildStatsReport();

  private:
    void acceptLoop();
    void workerLoop();
    void serveConnection(int fd, double queuedAtNs);
    Response handleRequest(const Request& req, double queueWaitNs);
    Response handleRun(const Request& req, double queueWaitNs);
    void fillHealth(Response* resp);

    ServerOptions opts_;
    PipelineCache cache_;
    int listenFd_ = -1;
    int wakePipe_[2] = {-1, -1}; ///< self-pipe: [0] read, [1] write
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<uint64_t> requestsServed_{0};
    std::atomic<uint64_t> nextRequestId_{1};
    double startNs_ = 0.0;

    ServerStats stats_;
    metrics::RollingWindow window_;

    std::thread acceptor_;
    std::vector<std::thread> workers_;

    std::mutex connMu_;
    std::condition_variable connCv_;
    /** Accepted connections awaiting a worker: (fd, enqueue time ns). */
    std::deque<std::pair<int, double>> pendingConns_;
    bool acceptorDone_ = false;
};

} // namespace phloem::svc

#endif // PHLOEM_SERVICE_SERVER_H
