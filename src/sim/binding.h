/**
 * @file
 * Runtime binding of IR array symbols and scalar parameters to simulated
 * memory buffers and values.
 *
 * All stages of a pipeline share one address space; array symbols are
 * resolved by name. Replicated pipelines (paper Sec. IV-C) may override
 * bindings per replica — the analogue of the paper's
 * replicate_arguments() function.
 */

#ifndef PHLOEM_SIM_BINDING_H
#define PHLOEM_SIM_BINDING_H

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.h"
#include "ir/type.h"

namespace phloem::sim {

/**
 * A typed buffer in simulated memory. The data lives in host memory for
 * functional execution; baseAddr places it in the simulated physical
 * address space for cache modeling.
 */
class ArrayBuffer
{
  public:
    ArrayBuffer(std::string name, ir::ElemType elem, size_t count)
        : name_(std::move(name)), elem_(elem), count_(count),
          data_(count * static_cast<size_t>(ir::elemSize(elem)), 0)
    {
    }

    const std::string& name() const { return name_; }
    ir::ElemType elem() const { return elem_; }
    size_t size() const { return count_; }
    size_t bytes() const { return data_.size(); }

    uint64_t baseAddr() const { return baseAddr_; }
    void setBaseAddr(uint64_t addr) { baseAddr_ = addr; }

    uint64_t
    addrOf(int64_t idx) const
    {
        return baseAddr_ + static_cast<uint64_t>(idx) *
                               static_cast<uint64_t>(ir::elemSize(elem_));
    }

    /** Load element idx as an IR value (sign-extending integers). */
    ir::Value
    load(int64_t idx) const
    {
        checkIndex(idx);
        switch (elem_) {
          case ir::ElemType::kI32: {
            int32_t v;
            std::memcpy(&v, data_.data() + idx * 4, 4);
            return ir::Value::fromInt(v);
          }
          case ir::ElemType::kI64: {
            int64_t v;
            std::memcpy(&v, data_.data() + idx * 8, 8);
            return ir::Value::fromInt(v);
          }
          case ir::ElemType::kF64: {
            double v;
            std::memcpy(&v, data_.data() + idx * 8, 8);
            return ir::Value::fromDouble(v);
          }
        }
        phloem_panic("bad elem type");
    }

    /** Store an IR value to element idx (truncating to element width). */
    void
    store(int64_t idx, ir::Value v)
    {
        checkIndex(idx);
        switch (elem_) {
          case ir::ElemType::kI32: {
            int32_t x = static_cast<int32_t>(v.asInt());
            std::memcpy(data_.data() + idx * 4, &x, 4);
            return;
          }
          case ir::ElemType::kI64: {
            int64_t x = v.asInt();
            std::memcpy(data_.data() + idx * 8, &x, 8);
            return;
          }
          case ir::ElemType::kF64: {
            double x = v.asDouble();
            std::memcpy(data_.data() + idx * 8, &x, 8);
            return;
          }
        }
        phloem_panic("bad elem type");
    }

    // Typed conveniences for workload setup and validation.
    int64_t atInt(int64_t idx) const { return load(idx).asInt(); }
    double atDouble(int64_t idx) const { return load(idx).asDouble(); }
    void setInt(int64_t idx, int64_t v) { store(idx, ir::Value::fromInt(v)); }
    void
    setDouble(int64_t idx, double v)
    {
        store(idx, ir::Value::fromDouble(v));
    }

    /** Fill every element with an integer value. */
    void
    fillInt(int64_t v)
    {
        for (size_t i = 0; i < count_; ++i)
            setInt(static_cast<int64_t>(i), v);
    }

    bool
    contentEquals(const ArrayBuffer& o) const
    {
        return elem_ == o.elem_ && data_ == o.data_;
    }

    /** Raw backing bytes (output-image hashing, snapshots). */
    const uint8_t* rawBytes() const { return data_.data(); }

  private:
    void
    checkIndex(int64_t idx) const
    {
        phloem_assert(idx >= 0 && static_cast<size_t>(idx) < count_,
                      "out-of-bounds access to ", name_, "[", idx,
                      "] (size ", count_, ")");
    }

    std::string name_;
    ir::ElemType elem_;
    size_t count_;
    std::vector<uint8_t> data_;
    uint64_t baseAddr_ = 0;
};

/**
 * The set of buffers and scalar values for one run. Buffers are owned
 * here; base addresses are assigned contiguously (with padding) when a
 * buffer is added, giving each array a distinct region of the simulated
 * address space.
 */
class Binding
{
  public:
    /** Create and own a buffer; binds it under its own name. */
    ArrayBuffer*
    makeArray(const std::string& name, ir::ElemType elem, size_t count)
    {
        auto buf = std::make_unique<ArrayBuffer>(name, elem, count);
        buf->setBaseAddr(nextAddr_);
        // Page-align and pad so arrays never share cache lines.
        uint64_t sz = (buf->bytes() + 4095) & ~uint64_t{4095};
        nextAddr_ += sz + 4096;
        ArrayBuffer* raw = buf.get();
        owned_.push_back(std::move(buf));
        bind(name, raw);
        return raw;
    }

    /** Bind a symbol name to an existing buffer (global binding). */
    void bind(const std::string& name, ArrayBuffer* buf) { global_[name] = buf; }

    /** Bind a symbol for one replica only (replicate_arguments()). */
    void
    bindReplica(int replica, const std::string& name, ArrayBuffer* buf)
    {
        perReplicaArrays_[replica][name] = buf;
    }

    /** Resolve an array symbol for a replica. */
    ArrayBuffer*
    array(const std::string& name, int replica = 0) const
    {
        auto rit = perReplicaArrays_.find(replica);
        if (rit != perReplicaArrays_.end()) {
            auto it = rit->second.find(name);
            if (it != rit->second.end())
                return it->second;
        }
        auto it = global_.find(name);
        phloem_assert(it != global_.end(), "unbound array symbol ", name);
        return it->second;
    }

    bool
    hasArray(const std::string& name, int replica = 0) const
    {
        auto rit = perReplicaArrays_.find(replica);
        if (rit != perReplicaArrays_.end() && rit->second.count(name))
            return true;
        return global_.count(name) != 0;
    }

    /** Set a scalar parameter value. */
    void
    setScalar(const std::string& name, ir::Value v)
    {
        scalars_[name] = v;
    }

    void
    setScalarInt(const std::string& name, int64_t v)
    {
        scalars_[name] = ir::Value::fromInt(v);
    }

    void
    setScalarReplica(int replica, const std::string& name, ir::Value v)
    {
        perReplicaScalars_[replica][name] = v;
    }

    /** Resolve a scalar parameter. Unbound scalars are a hard error:
     *  a silent default of 0 turns a forgotten setScalarInt into a
     *  mysteriously empty run. */
    ir::Value
    scalar(const std::string& name, int replica = 0) const
    {
        auto rit = perReplicaScalars_.find(replica);
        if (rit != perReplicaScalars_.end()) {
            auto it = rit->second.find(name);
            if (it != rit->second.end())
                return it->second;
        }
        auto it = scalars_.find(name);
        if (it == scalars_.end())
            phloem_fatal("scalar parameter '", name,
                         "' was never bound (setScalarInt)");
        return it->second;
    }

    const std::map<std::string, ArrayBuffer*>& globalArrays() const
    {
        return global_;
    }

  private:
    std::vector<std::unique_ptr<ArrayBuffer>> owned_;
    std::map<std::string, ArrayBuffer*> global_;
    std::map<int, std::map<std::string, ArrayBuffer*>> perReplicaArrays_;
    std::map<std::string, ir::Value> scalars_;
    std::map<int, std::map<std::string, ir::Value>> perReplicaScalars_;
    uint64_t nextAddr_ = 1 << 20;
};

} // namespace phloem::sim

#endif // PHLOEM_SIM_BINDING_H
