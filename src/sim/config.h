/**
 * @file
 * Configuration of the simulated system (paper Table III).
 *
 * The defaults reproduce the paper's evaluation configuration: Skylake-like
 * 6-wide out-of-order cores with 4-thread SMT at 3.5 GHz, Pipette's 16
 * architectural queues (24 elements deep) and 4 reference accelerators,
 * and a 32 KB / 256 KB / 2 MB-per-core cache hierarchy over a 120-cycle,
 * 2x25 GB/s main memory.
 */

#ifndef PHLOEM_SIM_CONFIG_H
#define PHLOEM_SIM_CONFIG_H

#include <cstdint>

namespace phloem::sim {

/** Cache level geometry and latency. */
struct CacheConfig
{
    uint64_t sizeBytes = 0;
    int ways = 8;
    int latency = 4;
};

struct SysConfig
{
    // Cores (Table III).
    int numCores = 1;
    int threadsPerCore = 4;
    int issueWidth = 6;
    int robSize = 224;
    int mispredictPenalty = 14;
    double freqGHz = 3.5;

    /** Outstanding cache misses per core (fill buffers / MSHRs). */
    int mshrsPerCore = 12;

    // Pipette (Table III): 16 queues max, 4 RAs, queues up to 24 deep.
    int maxQueues = 16;
    int queueDepth = 24;
    int maxRAs = 4;
    /** Queue operation latency between threads of one core. */
    int queueLatency = 1;
    /** Queue operation latency across cores. */
    int interCoreQueueLatency = 8;
    /** Maximum overlapped memory requests per reference accelerator. */
    int raMaxInflight = 16;

    // Memory hierarchy (Table III). L3 size is per core and scaled by
    // numCores at construction.
    CacheConfig l1{32 * 1024, 8, 4};
    CacheConfig l2{256 * 1024, 8, 12};
    CacheConfig l3PerCore{2 * 1024 * 1024, 16, 40};
    int lineBytes = 64;
    int memMinLatency = 120;
    int memControllers = 2;
    double memGBps = 25.0;

    /** Extra latency for atomic read-modify-write operations. */
    int atomicExtraLatency = 5;

    /** Cycles one 64 B line transfer occupies a memory controller. */
    double
    memBusyCycles() const
    {
        double ns = static_cast<double>(lineBytes) / memGBps;
        return ns * freqGHz;
    }

    /**
     * Evaluation configuration for the scaled-down inputs: the Table IV/V
     * inputs are ~40x smaller than the paper's, so cache capacities are
     * scaled correspondingly (latencies, widths, and every other Table
     * III parameter unchanged). This preserves the paper's working-set to
     * cache-capacity ratios — large data structures miss the LLC — which
     * is what drives its results. See DESIGN.md.
     */
    static SysConfig
    scaledEval(int num_cores = 1)
    {
        SysConfig cfg;
        cfg.numCores = num_cores;
        cfg.l1 = CacheConfig{8 * 1024, 8, 4};
        cfg.l2 = CacheConfig{16 * 1024, 8, 12};
        cfg.l3PerCore = CacheConfig{64 * 1024, 16, 40};
        return cfg;
    }
};

/**
 * Per-event energy coefficients in picojoules, in the spirit of the
 * paper's McPAT (22 nm) + DDR3L modeling. Fig. 11 compares *relative*
 * energy, which event-proportional coefficients preserve.
 */
struct EnergyConfig
{
    double uopPj = 120.0;          ///< core dynamic energy per issued uop
    double queueOpPj = 8.0;        ///< architectural queue enq/deq
    double raOpPj = 20.0;          ///< RA engine per processed element
    double l1Pj = 40.0;            ///< per L1 access
    double l2Pj = 180.0;           ///< per L2 access
    double l3Pj = 800.0;           ///< per L3 access
    double dramPj = 12000.0;       ///< per DRAM line access
    double coreStaticPjPerCycle = 400.0;   ///< per active core per cycle
    double uncoreStaticPjPerCycle = 200.0; ///< per core-equivalent uncore
};

} // namespace phloem::sim

#endif // PHLOEM_SIM_CONFIG_H
