#include "sim/dataflow_model.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "sim/machine.h"
#include "sim/memory.h"
#include "sim/program.h"

namespace phloem::sim {

DataflowResult
runDataflow(const ir::Function& fn, Binding& binding, const SysConfig& cfg,
            const DataflowOptions& opts)
{
    Program prog = flatten(fn);
    MemorySystem mem(cfg);

    std::vector<ir::Value> regs(static_cast<size_t>(prog.numRegs));
    std::vector<uint64_t> ready(static_cast<size_t>(prog.numRegs), 0);
    std::vector<ArrayBuffer*> arrays(fn.arrays.size());
    for (size_t a = 0; a < fn.arrays.size(); ++a)
        arrays[a] = binding.array(fn.arrays[a].name);
    for (const auto& p : fn.scalarParams)
        regs[static_cast<size_t>(p.reg)] = binding.scalar(p.name);

    std::vector<uint64_t> mem_ring(
        static_cast<size_t>(opts.memParallelism), 0);
    size_t mem_idx = 0;

    const uint64_t tok = static_cast<uint64_t>(opts.tokenOverhead);

    // Control tokens: every operation is gated by the most recent branch
    // decision (Dynamatic-style dataflow must steer tokens through
    // control merges, and that steering is on the critical path).
    uint64_t ctrl_time = 0;
    uint64_t finish = 0;
    uint64_t ops = 0;

    auto src_ready = [&](const Inst& inst) {
        uint64_t t = ctrl_time;
        if (inst.src0 >= 0)
            t = std::max(t, ready[static_cast<size_t>(inst.src0)]);
        if (inst.src1 >= 0)
            t = std::max(t, ready[static_cast<size_t>(inst.src1)]);
        if (inst.src2 >= 0)
            t = std::max(t, ready[static_cast<size_t>(inst.src2)]);
        return t;
    };

    // Functional evaluation reuses the thread interpreter's semantics by
    // running a private minimal evaluator for the opcode set serial
    // programs use.
    int pc = 0;
    while (pc < static_cast<int>(prog.code.size())) {
        if (++ops > opts.maxInstructions)
            phloem_fatal("dataflow model exceeded instruction budget");
        const Inst& inst = prog.code[static_cast<size_t>(pc)];

        if (inst.kind == Inst::Kind::kBr) {
            pc = inst.target;
            continue;
        }
        if (inst.kind == Inst::Kind::kBrIf ||
            inst.kind == Inst::Kind::kBrIfNot) {
            bool truth =
                regs[static_cast<size_t>(inst.src0)].asInt() != 0;
            bool taken =
                inst.kind == Inst::Kind::kBrIf ? truth : !truth;
            uint64_t resolve = src_ready(inst) + 1 + tok;
            ctrl_time = std::max(ctrl_time, resolve);
            finish = std::max(finish, resolve);
            pc = taken ? inst.target : pc + 1;
            continue;
        }

        using ir::Opcode;
        uint64_t start = src_ready(inst);
        uint64_t done = start + 1 + tok;

        switch (inst.opcode) {
          case Opcode::kLoad:
          case Opcode::kStore:
          case Opcode::kPrefetch: {
            ArrayBuffer* buf = arrays[static_cast<size_t>(inst.arr)];
            int64_t idx = regs[static_cast<size_t>(inst.src0)].asInt();
            uint64_t issue =
                std::max(start, mem_ring[mem_idx % mem_ring.size()]);
            AccessResult res = mem.access(0, buf->addrOf(idx), issue);
            mem_ring[mem_idx++ % mem_ring.size()] = res.done;
            done = res.done + tok;
            if (inst.opcode == Opcode::kLoad) {
                regs[static_cast<size_t>(inst.dst)] = buf->load(idx);
            } else if (inst.opcode == Opcode::kStore) {
                buf->store(idx, regs[static_cast<size_t>(inst.src1)]);
            } else {
                buf->load(idx);
            }
            break;
          }
          case Opcode::kSwapArr:
            std::swap(arrays[static_cast<size_t>(inst.arr)],
                      arrays[static_cast<size_t>(inst.arr2)]);
            break;
          case Opcode::kHalt:
            pc = static_cast<int>(prog.code.size());
            continue;
          default: {
            // Scalar op: evaluate functionally via a scratch machine-less
            // path. Mirror the core interpreter's semantics.
            auto iv = [&](ir::RegId r) {
                return regs[static_cast<size_t>(r)].asInt();
            };
            auto fv = [&](ir::RegId r) {
                return regs[static_cast<size_t>(r)].asDouble();
            };
            ir::Value out;
            switch (inst.opcode) {
              case Opcode::kConst:
                out.bits = static_cast<uint64_t>(inst.imm);
                break;
              case Opcode::kMov: out = regs[static_cast<size_t>(
                                     inst.src0)]; break;
              case Opcode::kAdd:
                out = ir::Value::fromInt(iv(inst.src0) + iv(inst.src1));
                break;
              case Opcode::kSub:
                out = ir::Value::fromInt(iv(inst.src0) - iv(inst.src1));
                break;
              case Opcode::kMul:
                out = ir::Value::fromInt(iv(inst.src0) * iv(inst.src1));
                done += 2;
                break;
              case Opcode::kDiv:
                out = ir::Value::fromInt(
                    iv(inst.src1) == 0 ? 0
                                       : iv(inst.src0) / iv(inst.src1));
                done += 19;
                break;
              case Opcode::kRem:
                out = ir::Value::fromInt(
                    iv(inst.src1) == 0 ? 0
                                       : iv(inst.src0) % iv(inst.src1));
                done += 19;
                break;
              case Opcode::kAnd:
                out = ir::Value::fromInt(iv(inst.src0) & iv(inst.src1));
                break;
              case Opcode::kOr:
                out = ir::Value::fromInt(iv(inst.src0) | iv(inst.src1));
                break;
              case Opcode::kXor:
                out = ir::Value::fromInt(iv(inst.src0) ^ iv(inst.src1));
                break;
              case Opcode::kShl:
                out = ir::Value::fromInt(iv(inst.src0)
                                         << (iv(inst.src1) & 63));
                break;
              case Opcode::kShr:
                out = ir::Value::fromInt(static_cast<int64_t>(
                    static_cast<uint64_t>(iv(inst.src0)) >>
                    (iv(inst.src1) & 63)));
                break;
              case Opcode::kMin:
                out = ir::Value::fromInt(
                    std::min(iv(inst.src0), iv(inst.src1)));
                break;
              case Opcode::kMax:
                out = ir::Value::fromInt(
                    std::max(iv(inst.src0), iv(inst.src1)));
                break;
              case Opcode::kCmpEq:
                out = ir::Value::fromInt(iv(inst.src0) == iv(inst.src1));
                break;
              case Opcode::kCmpNe:
                out = ir::Value::fromInt(iv(inst.src0) != iv(inst.src1));
                break;
              case Opcode::kCmpLt:
                out = ir::Value::fromInt(iv(inst.src0) < iv(inst.src1));
                break;
              case Opcode::kCmpLe:
                out = ir::Value::fromInt(iv(inst.src0) <= iv(inst.src1));
                break;
              case Opcode::kCmpGt:
                out = ir::Value::fromInt(iv(inst.src0) > iv(inst.src1));
                break;
              case Opcode::kCmpGe:
                out = ir::Value::fromInt(iv(inst.src0) >= iv(inst.src1));
                break;
              case Opcode::kNot:
                out = ir::Value::fromInt(iv(inst.src0) == 0);
                break;
              case Opcode::kSelect:
                out = iv(inst.src0) != 0
                          ? regs[static_cast<size_t>(inst.src1)]
                          : regs[static_cast<size_t>(inst.src2)];
                break;
              case Opcode::kFAdd:
                out = ir::Value::fromDouble(fv(inst.src0) +
                                            fv(inst.src1));
                done += 3;
                break;
              case Opcode::kFSub:
                out = ir::Value::fromDouble(fv(inst.src0) -
                                            fv(inst.src1));
                done += 3;
                break;
              case Opcode::kFMul:
                out = ir::Value::fromDouble(fv(inst.src0) *
                                            fv(inst.src1));
                done += 3;
                break;
              case Opcode::kFDiv:
                out = ir::Value::fromDouble(fv(inst.src0) /
                                            fv(inst.src1));
                done += 14;
                break;
              case Opcode::kFNeg:
                out = ir::Value::fromDouble(-fv(inst.src0));
                break;
              case Opcode::kFAbs:
                out = ir::Value::fromDouble(std::fabs(fv(inst.src0)));
                break;
              case Opcode::kFMin:
                out = ir::Value::fromDouble(
                    std::min(fv(inst.src0), fv(inst.src1)));
                break;
              case Opcode::kFMax:
                out = ir::Value::fromDouble(
                    std::max(fv(inst.src0), fv(inst.src1)));
                break;
              case Opcode::kFCmpEq:
                out = ir::Value::fromInt(fv(inst.src0) == fv(inst.src1));
                break;
              case Opcode::kFCmpNe:
                out = ir::Value::fromInt(fv(inst.src0) != fv(inst.src1));
                break;
              case Opcode::kFCmpLt:
                out = ir::Value::fromInt(fv(inst.src0) < fv(inst.src1));
                break;
              case Opcode::kFCmpLe:
                out = ir::Value::fromInt(fv(inst.src0) <= fv(inst.src1));
                break;
              case Opcode::kFCmpGt:
                out = ir::Value::fromInt(fv(inst.src0) > fv(inst.src1));
                break;
              case Opcode::kFCmpGe:
                out = ir::Value::fromInt(fv(inst.src0) >= fv(inst.src1));
                break;
              case Opcode::kI2F:
                out = ir::Value::fromDouble(
                    static_cast<double>(iv(inst.src0)));
                done += 3;
                break;
              case Opcode::kF2I:
                out = ir::Value::fromInt(
                    static_cast<int64_t>(fv(inst.src0)));
                done += 3;
                break;
              case Opcode::kWork: {
                uint64_t x = regs[static_cast<size_t>(inst.src0)].bits;
                x ^= x >> 33;
                x *= 0xff51afd7ed558ccdull;
                x ^= x >> 33;
                out = ir::Value::fromInt(static_cast<int64_t>(x));
                done += static_cast<uint64_t>(
                    std::max<int64_t>(0, inst.imm - 1));
                break;
              }
              default:
                phloem_fatal("dataflow model: unsupported op ",
                             ir::opcodeName(inst.opcode),
                             " (queues/atomics are not dataflow nodes)");
            }
            if (inst.dst >= 0)
                regs[static_cast<size_t>(inst.dst)] = out;
            break;
          }
        }

        if (inst.dst >= 0)
            ready[static_cast<size_t>(inst.dst)] = done;
        finish = std::max(finish, done);
        pc++;
    }

    DataflowResult result;
    result.cycles = finish;
    result.operations = ops;
    return result;
}

} // namespace phloem::sim
