/**
 * @file
 * A dataflow-execution model in the style of the paper's Dynamatic
 * experiment (Sec. IV-B): the program is treated as a dataflow graph
 * where "any operation may begin as soon as its inputs are available",
 * but every token handoff pays a propagation overhead — the program
 * state that dataflow graphs must carry between operations. The paper
 * found this abstraction performs *worse* than serial execution
 * (about 1.7x slower on BFS); this model reproduces that data point.
 */

#ifndef PHLOEM_SIM_DATAFLOW_MODEL_H
#define PHLOEM_SIM_DATAFLOW_MODEL_H

#include "ir/function.h"
#include "sim/binding.h"
#include "sim/config.h"

namespace phloem::sim {

struct DataflowOptions
{
    /** Token-propagation overhead added to every operation. */
    int tokenOverhead = 2;
    /** Outstanding memory accesses the fabric can keep in flight. */
    int memParallelism = 16;
    /** Instruction safety budget. */
    uint64_t maxInstructions = 3'000'000'000ull;
};

struct DataflowResult
{
    uint64_t cycles = 0;
    uint64_t operations = 0;
};

/**
 * Execute `fn` under idealized dataflow semantics with per-token
 * overhead: operations issue as soon as their operands' tokens arrive
 * (no ROB, no branch predictor — control tokens gate execution), memory
 * goes through the standard hierarchy with `memParallelism` outstanding
 * accesses. Functionally equivalent to serial execution.
 */
DataflowResult runDataflow(const ir::Function& fn, Binding& binding,
                           const SysConfig& cfg,
                           const DataflowOptions& opts = DataflowOptions{});

} // namespace phloem::sim

#endif // PHLOEM_SIM_DATAFLOW_MODEL_H
