#include "sim/energy.h"

namespace phloem::sim {

EnergyBreakdown
computeEnergy(const RunStats& stats, const EnergyConfig& cfg,
              int activeCores)
{
    constexpr double kPjToMj = 1e-9;

    EnergyBreakdown e;

    double uop_pj = static_cast<double>(stats.totalUops()) * cfg.uopPj;
    double queue_pj =
        static_cast<double>(stats.totalQueueOps()) * cfg.queueOpPj;
    e.coreDynamic = (uop_pj + queue_pj) * kPjToMj;

    double cache_pj =
        static_cast<double>(stats.mem.l1Hits) * cfg.l1Pj +
        static_cast<double>(stats.mem.l2Hits) * (cfg.l1Pj + cfg.l2Pj) +
        static_cast<double>(stats.mem.l3Hits) *
            (cfg.l1Pj + cfg.l2Pj + cfg.l3Pj) +
        static_cast<double>(stats.mem.dramAccesses) *
            (cfg.l1Pj + cfg.l2Pj + cfg.l3Pj);
    double ra_pj = static_cast<double>(stats.totalRAElements()) * cfg.raOpPj;
    e.cache = (cache_pj + ra_pj) * kPjToMj;

    e.dram = static_cast<double>(stats.mem.dramAccesses) * cfg.dramPj *
             kPjToMj;

    double static_pj =
        static_cast<double>(stats.cycles) *
        (cfg.coreStaticPjPerCycle + cfg.uncoreStaticPjPerCycle) *
        static_cast<double>(activeCores);
    e.staticEnergy = static_pj * kPjToMj;

    return e;
}

} // namespace phloem::sim
