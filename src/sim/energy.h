/**
 * @file
 * Event-proportional energy model (paper Sec. VI: McPAT at 22 nm for core
 * and uncore, Micron DDR3L for main memory). Computes the Fig. 11
 * breakdown from a run's event counts.
 */

#ifndef PHLOEM_SIM_ENERGY_H
#define PHLOEM_SIM_ENERGY_H

#include "sim/config.h"
#include "sim/stats.h"

namespace phloem::sim {

/** Energy of one run, broken down as in Fig. 11. All values in mJ. */
struct EnergyBreakdown
{
    double coreDynamic = 0;  ///< uop issue/execute + queue ops
    double cache = 0;        ///< L1/L2/L3 accesses + RA engines
    double dram = 0;         ///< DRAM line accesses
    double staticEnergy = 0; ///< leakage over the run's wall-clock time

    double
    total() const
    {
        return coreDynamic + cache + dram + staticEnergy;
    }
};

/**
 * Compute the energy of a run.
 *
 * @param activeCores number of cores powered for the run (static energy
 *        scales with it; the paper compares 1-core and 4-core systems).
 */
EnergyBreakdown computeEnergy(const RunStats& stats, const EnergyConfig& cfg,
                              int activeCores);

} // namespace phloem::sim

#endif // PHLOEM_SIM_ENERGY_H
