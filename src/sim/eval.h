/**
 * @file
 * Shared functional interpreter core over the flat instruction form.
 *
 * Both execution backends — the cycle-approximate simulator
 * (sim/machine.cc) and the native multithreaded runtime (runtime/) —
 * interpret the same sim::flatten output. The functional semantics of
 * every opcode live here, in one place, so the two backends cannot
 * drift: the simulator charges timing around these helpers, and the
 * runtime wraps them in real threads and lock-free queues. Differential
 * tests (end2end_test, runtime_test) then compare the two backends
 * bit-for-bit.
 */

#ifndef PHLOEM_SIM_EVAL_H
#define PHLOEM_SIM_EVAL_H

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.h"
#include "ir/op.h"
#include "sim/binding.h"
#include "sim/program.h"

namespace phloem::sim {

/** A cheap value mixer for kWork (deterministic, data-dependent). */
inline uint64_t
workMix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return x;
}

// Integer arithmetic wraps (two's complement) rather than invoking
// signed-overflow UB: generated/fuzzed programs may overflow freely, and
// both backends must agree with the serial reference bit-for-bit even
// when they do. Division by zero and INT64_MIN / -1 are likewise given
// defined results.
inline int64_t
wrapAdd(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapSub(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapMul(int64_t a, int64_t b)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                static_cast<uint64_t>(b));
}

inline int64_t
wrapDiv(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (b == -1 && a == std::numeric_limits<int64_t>::min())
        return a;  // the one overflowing quotient: wraps to itself
    return a / b;
}

inline int64_t
wrapRem(int64_t a, int64_t b)
{
    if (b == 0)
        return 0;
    if (b == -1)
        return 0;  // avoids the INT64_MIN % -1 trap; result is exact
    return a % b;
}

inline int64_t
wrapShl(int64_t a, int64_t sh)
{
    return static_cast<int64_t>(static_cast<uint64_t>(a)
                                << (static_cast<uint64_t>(sh) & 63));
}

/** double -> int64 with saturation (the raw cast is UB out of range). */
inline int64_t
doubleToInt(double v)
{
    if (std::isnan(v))
        return 0;
    constexpr double kLo =
        static_cast<double>(std::numeric_limits<int64_t>::min());
    // 2^63 exactly; every double >= this is out of range.
    constexpr double kHi = 9223372036854775808.0;
    if (v < kLo)
        return std::numeric_limits<int64_t>::min();
    if (v >= kHi)
        return std::numeric_limits<int64_t>::max();
    return static_cast<int64_t>(v);
}

/**
 * Evaluate a scalar (non-memory, non-queue, non-control-flow) op over a
 * register file. Returns the value for inst.dst; panics on opcodes that
 * are not plain scalar computation.
 */
inline ir::Value
evalScalarOp(const Inst& inst, const ir::Value* regs)
{
    using ir::Opcode;

    auto sv = [&](int i) -> const ir::Value& {
        ir::RegId r = i == 0 ? inst.src0 : (i == 1 ? inst.src1 : inst.src2);
        return regs[static_cast<size_t>(r)];
    };
    auto ivv = [&](int i) { return sv(i).asInt(); };
    auto fvv = [&](int i) { return sv(i).asDouble(); };

    ir::Value out;
    switch (inst.opcode) {
      case Opcode::kConst: out.bits = static_cast<uint64_t>(inst.imm); break;
      case Opcode::kMov: out = sv(0); break;
      case Opcode::kAdd: out = ir::Value::fromInt(wrapAdd(ivv(0), ivv(1))); break;
      case Opcode::kSub: out = ir::Value::fromInt(wrapSub(ivv(0), ivv(1))); break;
      case Opcode::kMul: out = ir::Value::fromInt(wrapMul(ivv(0), ivv(1))); break;
      case Opcode::kDiv:
        out = ir::Value::fromInt(wrapDiv(ivv(0), ivv(1)));
        break;
      case Opcode::kRem:
        out = ir::Value::fromInt(wrapRem(ivv(0), ivv(1)));
        break;
      case Opcode::kAnd: out = ir::Value::fromInt(ivv(0) & ivv(1)); break;
      case Opcode::kOr: out = ir::Value::fromInt(ivv(0) | ivv(1)); break;
      case Opcode::kXor: out = ir::Value::fromInt(ivv(0) ^ ivv(1)); break;
      case Opcode::kShl:
        out = ir::Value::fromInt(wrapShl(ivv(0), ivv(1)));
        break;
      case Opcode::kShr:
        out = ir::Value::fromInt(static_cast<int64_t>(
            static_cast<uint64_t>(ivv(0)) >> (ivv(1) & 63)));
        break;
      case Opcode::kMin:
        out = ir::Value::fromInt(std::min(ivv(0), ivv(1)));
        break;
      case Opcode::kMax:
        out = ir::Value::fromInt(std::max(ivv(0), ivv(1)));
        break;
      case Opcode::kCmpEq: out = ir::Value::fromInt(ivv(0) == ivv(1)); break;
      case Opcode::kCmpNe: out = ir::Value::fromInt(ivv(0) != ivv(1)); break;
      case Opcode::kCmpLt: out = ir::Value::fromInt(ivv(0) < ivv(1)); break;
      case Opcode::kCmpLe: out = ir::Value::fromInt(ivv(0) <= ivv(1)); break;
      case Opcode::kCmpGt: out = ir::Value::fromInt(ivv(0) > ivv(1)); break;
      case Opcode::kCmpGe: out = ir::Value::fromInt(ivv(0) >= ivv(1)); break;
      case Opcode::kNot: out = ir::Value::fromInt(ivv(0) == 0); break;
      case Opcode::kSelect: out = ivv(0) != 0 ? sv(1) : sv(2); break;
      case Opcode::kFAdd:
        out = ir::Value::fromDouble(fvv(0) + fvv(1));
        break;
      case Opcode::kFSub:
        out = ir::Value::fromDouble(fvv(0) - fvv(1));
        break;
      case Opcode::kFMul:
        out = ir::Value::fromDouble(fvv(0) * fvv(1));
        break;
      case Opcode::kFDiv:
        out = ir::Value::fromDouble(fvv(0) / fvv(1));
        break;
      case Opcode::kFNeg: out = ir::Value::fromDouble(-fvv(0)); break;
      case Opcode::kFAbs:
        out = ir::Value::fromDouble(std::fabs(fvv(0)));
        break;
      case Opcode::kFMin:
        out = ir::Value::fromDouble(std::min(fvv(0), fvv(1)));
        break;
      case Opcode::kFMax:
        out = ir::Value::fromDouble(std::max(fvv(0), fvv(1)));
        break;
      case Opcode::kFCmpEq: out = ir::Value::fromInt(fvv(0) == fvv(1)); break;
      case Opcode::kFCmpNe: out = ir::Value::fromInt(fvv(0) != fvv(1)); break;
      case Opcode::kFCmpLt: out = ir::Value::fromInt(fvv(0) < fvv(1)); break;
      case Opcode::kFCmpLe: out = ir::Value::fromInt(fvv(0) <= fvv(1)); break;
      case Opcode::kFCmpGt: out = ir::Value::fromInt(fvv(0) > fvv(1)); break;
      case Opcode::kFCmpGe: out = ir::Value::fromInt(fvv(0) >= fvv(1)); break;
      case Opcode::kI2F:
        out = ir::Value::fromDouble(static_cast<double>(ivv(0)));
        break;
      case Opcode::kF2I:
        out = ir::Value::fromInt(doubleToInt(fvv(0)));
        break;
      case Opcode::kIsControl:
        out = ir::Value::fromInt(sv(0).isControl());
        break;
      case Opcode::kCtrlCode:
        out = ir::Value::fromInt(sv(0).isControl()
                                     ? static_cast<int64_t>(
                                           sv(0).controlCode())
                                     : -1);
        break;
      case Opcode::kWork:
        out = ir::Value::fromInt(static_cast<int64_t>(
            workMix(sv(0).bits)));
        break;
      default:
        phloem_panic("unhandled opcode ", ir::opcodeName(inst.opcode));
    }
    return out;
}

/**
 * Execute the functional part of a memory op against a bound buffer.
 * Returns the value for inst.dst (meaningful for loads and atomics).
 *
 * Atomic read-modify-writes are implemented as plain load+store: the
 * simulator runs cooperatively, and the native runtime serializes them
 * externally (runtime/worker.cc takes a lock around this call).
 */
inline ir::Value
applyMemOp(const Inst& inst, ArrayBuffer& buf, const ir::Value* regs)
{
    int64_t idx = regs[static_cast<size_t>(inst.src0)].asInt();

    ir::Value result;
    switch (inst.opcode) {
      case ir::Opcode::kLoad:
        result = buf.load(idx);
        break;
      case ir::Opcode::kStore:
        buf.store(idx, regs[static_cast<size_t>(inst.src1)]);
        break;
      case ir::Opcode::kPrefetch:
        buf.load(idx);  // bounds check; value discarded
        break;
      case ir::Opcode::kAtomicMin: {
        ir::Value old = buf.load(idx);
        int64_t nv = std::min(old.asInt(),
                              regs[static_cast<size_t>(inst.src1)].asInt());
        buf.store(idx, ir::Value::fromInt(nv));
        result = old;
        break;
      }
      case ir::Opcode::kAtomicAdd: {
        ir::Value old = buf.load(idx);
        int64_t nv = wrapAdd(old.asInt(),
                             regs[static_cast<size_t>(inst.src1)].asInt());
        buf.store(idx, ir::Value::fromInt(nv));
        result = old;
        break;
      }
      case ir::Opcode::kAtomicFAdd: {
        ir::Value old = buf.load(idx);
        double nv = old.asDouble() +
                    regs[static_cast<size_t>(inst.src1)].asDouble();
        buf.store(idx, ir::Value::fromDouble(nv));
        result = old;
        break;
      }
      case ir::Opcode::kAtomicOr: {
        ir::Value old = buf.load(idx);
        int64_t nv =
            old.asInt() | regs[static_cast<size_t>(inst.src1)].asInt();
        buf.store(idx, ir::Value::fromInt(nv));
        result = old;
        break;
      }
      default:
        phloem_panic("not a memory op");
    }
    return result;
}

/** Replica selected by a kEnqDist op for a given selector value. */
inline int
distTargetReplica(int64_t sel, int num_replicas)
{
    return static_cast<int>(((sel % num_replicas) + num_replicas) %
                            num_replicas);
}

} // namespace phloem::sim

#endif // PHLOEM_SIM_EVAL_H
