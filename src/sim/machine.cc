#include "sim/machine.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.h"
#include "ir/walk.h"
#include "sim/eval.h"

namespace phloem::sim {

using detail::CoreState;
using detail::QueueEntry;
using detail::QueueImpl;

namespace detail {

/** Instruction latency of a non-memory op, in cycles. */
static int
aluLatency(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::kMul: return 3;
      case ir::Opcode::kDiv:
      case ir::Opcode::kRem: return 20;
      case ir::Opcode::kFAdd:
      case ir::Opcode::kFSub:
      case ir::Opcode::kFMin:
      case ir::Opcode::kFMax: return 4;
      case ir::Opcode::kFMul: return 4;
      case ir::Opcode::kFDiv: return 15;
      case ir::Opcode::kI2F:
      case ir::Opcode::kF2I: return 4;
      default: return 1;
    }
}

class Entity
{
  public:
    enum class State : uint8_t { kReady, kBlocked, kHalted };
    enum class BlockReason : uint8_t {
        kNone,
        kQueueEmpty,
        kQueueFull,
        kBarrier,
    };

    Entity(Machine& m, std::string name, int core)
        : machine(m), name(std::move(name)), core(core)
    {
    }
    virtual ~Entity() = default;

    /** Run until blocked, halted, or the quantum expires. */
    virtual void step() = 0;
    virtual bool isThread() const = 0;
    virtual std::string describe() const = 0;

    Machine& machine;
    std::string name;
    int id = -1;
    int core = 0;
    uint64_t clock = 0;
    State state = State::kReady;
    BlockReason blockReason = BlockReason::kNone;
    int blockedQueue = -1;
    uint64_t barrierArrival = 0;

    // --- Stall tracing (simulated-cycle timebase). ------------------
    /** This entity's trace ring, or null when tracing is off. */
    trace::TraceBuffer* traceBuf = nullptr;
    /** An un-closed queue-block span (opened at block, closed when the
     * retried op succeeds — or flushed at end of run for entities that
     * stay blocked forever, e.g. a deadlocked stage or a drained RA). */
    bool traceOpen = false;
    trace::EventKind traceOpenKind = trace::EventKind::kDeqBlock;
    int32_t traceOpenQueue = -1;
    uint64_t traceOpenBegin = 0;

    /** Open a queue-block span at the current simulated clock. */
    void
    traceBlock(BlockReason reason, int abs_q)
    {
        if (traceBuf == nullptr || traceOpen)
            return;
        traceOpen = true;
        traceOpenKind = reason == BlockReason::kQueueEmpty
                            ? trace::EventKind::kDeqBlock
                            : trace::EventKind::kEnqBlock;
        traceOpenQueue = abs_q;
        traceOpenBegin = clock;
    }

    /** Close the open block span (no-op when none is open). */
    void
    traceUnblock(uint64_t end)
    {
        if (!traceOpen)
            return;
        traceOpen = false;
        traceBuf->record(traceOpenKind, traceOpenQueue, traceOpenBegin,
                         end < traceOpenBegin ? traceOpenBegin : end);
    }

    void
    traceHalt()
    {
        if (traceBuf != nullptr)
            traceBuf->record(trace::EventKind::kHalt, -1, clock, clock);
    }
};

/**
 * A pipeline-stage (or serial / data-parallel) hardware thread.
 */
class ThreadEntity : public Entity
{
  public:
    ThreadEntity(Machine& m, std::string name, int core,
                 const Program* program, Binding& binding, int replica,
                 int queue_offset, int queue_stride, int num_replicas)
        : Entity(m, std::move(name), core), prog(program),
          replica(replica), queueOffset(queue_offset),
          queueStride(queue_stride), numReplicas(num_replicas)
    {
        const SysConfig& cfg = m.config();
        timing = m.options().timing;
        quantum = m.options().quantum;
        issueWidth = cfg.issueWidth;
        mispredictPenalty = cfg.mispredictPenalty;
        interCoreLat = cfg.interCoreQueueLatency;
        intraLat = cfg.queueLatency;
        atomicExtra = cfg.atomicExtraLatency;

        regs.assign(static_cast<size_t>(prog->numRegs), ir::Value{});
        regReady.assign(static_cast<size_t>(prog->numRegs), 0);

        const ir::Function& fn = *prog->fn;
        for (const auto& p : fn.scalarParams)
            regs[static_cast<size_t>(p.reg)] = binding.scalar(p.name, replica);
        arrayBind.resize(fn.arrays.size());
        for (size_t a = 0; a < fn.arrays.size(); ++a)
            arrayBind[a] = binding.array(fn.arrays[a].name, replica);

        predictor.assign(kPredictorSize, 1);  // weakly not-taken
        stats.name = this->name;
        stats.core = core;
    }

    /** Set after placement, when threads-per-core counts are known. */
    void
    setRobSize(int size)
    {
        robSize = std::max(8, size);
        rob.assign(static_cast<size_t>(robSize), 0);
    }

    bool isThread() const override { return true; }

    std::string
    describe() const override
    {
        std::ostringstream oss;
        oss << name << " pc=" << pc << " clock=" << clock;
        switch (blockReason) {
          case BlockReason::kQueueEmpty:
            oss << " blocked deq q" << blockedQueue;
            break;
          case BlockReason::kQueueFull:
            oss << " blocked enq q" << blockedQueue;
            break;
          case BlockReason::kBarrier:
            oss << " at barrier";
            break;
          default:
            break;
        }
        return oss.str();
    }

    void step() override;

    const Program* prog;
    int replica;
    int queueOffset;
    int queueStride;
    int numReplicas;

    bool timing = true;
    int quantum = 4096;
    int issueWidth = 6;
    int mispredictPenalty = 14;
    int interCoreLat = 8;
    int intraLat = 1;
    int atomicExtra = 5;

    int pc = 0;
    std::vector<ir::Value> regs;
    std::vector<uint64_t> regReady;
    std::vector<ArrayBuffer*> arrayBind;

    // Reorder buffer ring: slot (i % robSize) holds the in-order
    // retirement time of dynamic instruction i.
    std::vector<uint64_t> rob;
    uint64_t robIdx = 0;
    int robSize = 224;
    uint64_t lastRetire = 0;
    int uopsThisCycle = 0;

    /**
     * Issue work already charged to issueCycles whose clock advance is
     * still pending (the in-progress partial cycle). A stall that jumps
     * the clock and resets uopsThisCycle swallows that advance, so the
     * stall must charge gap − pendingIssueFrac() or the books
     * over-attribute: issue + stall would exceed elapsed cycles and
     * backendCycles() would clamp a negative residual.
     */
    double
    pendingIssueFrac() const
    {
        return static_cast<double>(uopsThisCycle) / issueWidth;
    }

    static constexpr size_t kPredictorSize = 4096;
    std::vector<uint8_t> predictor;
    uint32_t history = 0;

    ThreadStats stats;

  private:
    int
    absQueue(int q) const
    {
        return queueOffset + q;
    }

    uint64_t
    ready(ir::RegId r) const
    {
        return r >= 0 ? regReady[static_cast<size_t>(r)] : 0;
    }

    /** In-order dispatch point: waits for ROB space. */
    uint64_t
    dispatchPoint()
    {
        uint64_t oldest = rob[robIdx % static_cast<uint64_t>(robSize)];
        if (oldest > clock) {
            clock = oldest;
            uopsThisCycle = 0;
        }
        return clock;
    }

    void
    complete(uint64_t c)
    {
        if (c < lastRetire)
            c = lastRetire;
        else
            lastRetire = c;
        rob[robIdx % static_cast<uint64_t>(robSize)] = c;
        robIdx++;
    }

    void
    chargeUops(int n)
    {
        stats.uops += static_cast<uint64_t>(n);
        stats.issueCycles += static_cast<double>(n) / issueWidth;
        uopsThisCycle += n;
        while (uopsThisCycle >= issueWidth) {
            clock++;
            uopsThisCycle -= issueWidth;
        }
    }

    bool predict(int16_t branch_id);
    void train(int16_t branch_id, bool taken);

    /** Execute one regular op; returns false if the thread blocked. */
    bool execOp(const Inst& inst);
    bool execQueueOp(const Inst& inst);
    void execMemOp(const Inst& inst);
    void block(BlockReason reason, int abs_q);
};

/**
 * A reference accelerator: an autonomous FSM that dequeues indices (or
 * scan ranges) and streams loaded elements into its output queue,
 * overlapping up to raMaxInflight memory requests (paper Sec. III).
 */
class RAEntity : public Entity
{
  public:
    RAEntity(Machine& m, std::string name, int core, const ir::RAConfig& cfg,
             ArrayBuffer* array, int in_q, int out_q, int ra_index)
        : Entity(m, std::move(name), core), raCfg(cfg), array(array),
          inQ(in_q), outQ(out_q), raIndex(ra_index)
    {
        timing = m.options().timing;
        quantum = m.options().quantum;
        inflight.assign(
            static_cast<size_t>(m.config().raMaxInflight), 0);
    }

    bool isThread() const override { return false; }

    std::string
    describe() const override
    {
        std::ostringstream oss;
        oss << name << " clock=" << clock
            << (phase == Phase::kScanning ? " scanning" : "");
        switch (blockReason) {
          case BlockReason::kQueueEmpty:
            oss << " blocked deq q" << blockedQueue;
            break;
          case BlockReason::kQueueFull:
            oss << " blocked enq q" << blockedQueue;
            break;
          default:
            break;
        }
        return oss.str();
    }

    void step() override;

    ir::RAConfig raCfg;
    ArrayBuffer* array;
    int inQ;
    int outQ;
    int raIndex;
    bool timing = true;
    int quantum = 4096;

    enum class Phase : uint8_t { kIdle, kHaveStart, kScanning };
    Phase phase = Phase::kIdle;
    int64_t pendingStart = 0;
    int64_t scanCur = 0;
    int64_t scanEnd = 0;

    std::vector<uint64_t> inflight;
    size_t inflightIdx = 0;
    uint64_t prevDeliver = 0;

    RAStats stats;

  private:
    /** Access array[idx]; returns {value, deliver time}. */
    QueueEntry loadElement(int64_t idx);
    bool pushOut(QueueEntry e);
    void block(BlockReason reason, int q);
};

// ---------------------------------------------------------------------
// ThreadEntity implementation.
// ---------------------------------------------------------------------

bool
ThreadEntity::predict(int16_t branch_id)
{
    size_t idx = (static_cast<size_t>(branch_id) * 31u ^ history) &
                 (kPredictorSize - 1);
    return predictor[idx] >= 2;
}

void
ThreadEntity::train(int16_t branch_id, bool taken)
{
    size_t idx = (static_cast<size_t>(branch_id) * 31u ^ history) &
                 (kPredictorSize - 1);
    uint8_t& c = predictor[idx];
    if (taken && c < 3)
        c++;
    else if (!taken && c > 0)
        c--;
    history = (history << 1) | (taken ? 1u : 0u);
}

void
ThreadEntity::block(BlockReason reason, int abs_q)
{
    state = State::kBlocked;
    blockReason = reason;
    blockedQueue = abs_q;
    traceBlock(reason, abs_q);
    QueueImpl& q = machine.queue(abs_q);
    if (reason == BlockReason::kQueueEmpty)
        q.waitingConsumer = id;
    else
        q.waitingProducers.push_back(id);
}

void
ThreadEntity::execMemOp(const Inst& inst)
{
    ArrayBuffer* buf = arrayBind[static_cast<size_t>(inst.arr)];
    int64_t idx = regs[static_cast<size_t>(inst.src0)].asInt();

    // Functional part (shared with the native runtime).
    ir::Value result = applyMemOp(inst, *buf, regs.data());
    if (ir::isMemRead(inst.opcode) || inst.opcode == ir::Opcode::kPrefetch)
        stats.loads++;
    if (ir::isMemWrite(inst.opcode))
        stats.stores++;

    if (inst.dst >= 0)
        regs[static_cast<size_t>(inst.dst)] = result;

    if (!timing) {
        clock++;
        return;
    }

    uint64_t d = dispatchPoint();
    uint64_t issue = std::max(d, ready(inst.src0));
    if (inst.src1 >= 0)
        issue = std::max(issue, ready(inst.src1));
    issue = machine.core(core).issueAt(issue);

    // Misses wait for a fill buffer *before* entering the memory system
    // so DRAM queueing is not double-counted into the MSHR busy time.
    uint64_t start = issue;
    bool is_miss = !machine.memory().probeL1(core, buf->addrOf(idx));
    if (is_miss)
        start = machine.core(core).mshrAcquire(issue);
    AccessResult res =
        machine.memory().access(core, buf->addrOf(idx), start);
    uint64_t done = res.done;
    if (res.l1Miss)
        machine.core(core).mshrRelease(done);
    bool is_rmw = inst.opcode == ir::Opcode::kAtomicMin ||
                  inst.opcode == ir::Opcode::kAtomicAdd ||
                  inst.opcode == ir::Opcode::kAtomicFAdd ||
                  inst.opcode == ir::Opcode::kAtomicOr;
    if (is_rmw)
        done += static_cast<uint64_t>(atomicExtra);

    if (inst.dst >= 0)
        regReady[static_cast<size_t>(inst.dst)] = done;

    // Stores and prefetches retire without waiting for the fill.
    bool waits = inst.dst >= 0;
    complete(waits ? done : issue + 1);
    chargeUops(1);
}

bool
ThreadEntity::execQueueOp(const Inst& inst)
{
    switch (inst.opcode) {
      case ir::Opcode::kEnq:
      case ir::Opcode::kEnqCtrl:
      case ir::Opcode::kEnqDist: {
        int abs_q;
        if (inst.opcode == ir::Opcode::kEnqDist) {
            int64_t sel = regs[static_cast<size_t>(inst.src1)].asInt();
            int target = distTargetReplica(sel, numReplicas);
            abs_q = inst.queue + target * queueStride;
        } else {
            abs_q = absQueue(inst.queue);
        }
        QueueImpl& q = machine.queue(abs_q);
        if (q.full()) {
            // The op re-executes (and is re-counted) after the block, so
            // un-charge it: dynamic instruction counts must match the
            // native runtime, which blocks *inside* the op.
            stats.instructions--;
            block(BlockReason::kQueueFull, abs_q);
            return false;
        }

        QueueEntry e;
        if (inst.opcode == ir::Opcode::kEnqCtrl ||
            (inst.opcode == ir::Opcode::kEnqDist && inst.src0 < 0)) {
            // enq_dist with no source register broadcasts a control value
            // (used when distributing streams across replicas).
            e.v = ir::Value::makeControl(static_cast<uint32_t>(inst.imm));
        } else {
            e.v = regs[static_cast<size_t>(inst.src0)];
        }

        if (timing) {
            uint64_t d = dispatchPoint();
            // Architectural capacity: slot of entry (k - depth) frees when
            // its deq completed.
            if (q.enqCount >= static_cast<uint64_t>(q.depth)) {
                uint64_t free_at =
                    q.deqTimeRing[(q.enqCount -
                                   static_cast<uint64_t>(q.depth)) %
                                  static_cast<uint64_t>(q.depth)];
                if (free_at > clock) {
                    stats.queueStallCycles += std::max(
                        0.0, static_cast<double>(free_at - clock) -
                                 pendingIssueFrac());
                    clock = free_at;
                    uopsThisCycle = 0;
                    d = clock;
                }
            }
            uint64_t issue = d;
            if (inst.opcode != ir::Opcode::kEnqCtrl && inst.src0 >= 0)
                issue = std::max(issue, ready(inst.src0));
            if (inst.opcode == ir::Opcode::kEnqDist)
                issue = std::max(issue, ready(inst.src1));
            issue = machine.core(core).issueAt(issue);
            int lat = (core == q.consumerCore) ? intraLat : interCoreLat;
            e.ready = issue + static_cast<uint64_t>(lat);
            complete(issue + 1);
            chargeUops(1);
        } else {
            clock++;
        }

        q.entries.push_back(e);
        q.enqCount++;
        stats.queueOps++;
        traceUnblock(clock);
        machine.traceSampleOcc(abs_q, clock);
        machine.wakeConsumer(abs_q);
        pc++;
        return true;
      }

      case ir::Opcode::kDeq:
      case ir::Opcode::kPeek: {
        int abs_q = absQueue(inst.queue);
        QueueImpl& q = machine.queue(abs_q);
        if (q.empty()) {
            stats.instructions--;  // re-counted on retry, see enq above
            block(BlockReason::kQueueEmpty, abs_q);
            return false;
        }
        QueueEntry e = q.entries.front();

        uint64_t done = 0;
        if (timing) {
            uint64_t d = dispatchPoint();
            if (e.ready > d) {
                stats.queueStallCycles += std::max(
                    0.0, static_cast<double>(e.ready - d) -
                             pendingIssueFrac());
                clock = e.ready;
                uopsThisCycle = 0;
            }
            uint64_t issue = machine.core(core).issueAt(clock);
            done = issue + 1;
            complete(done);
            chargeUops(1);
        } else {
            clock++;
        }

        regs[static_cast<size_t>(inst.dst)] = e.v;
        if (timing)
            regReady[static_cast<size_t>(inst.dst)] = done;
        stats.queueOps++;

        traceUnblock(clock);
        if (inst.opcode == ir::Opcode::kDeq) {
            q.entries.pop_front();
            if (timing) {
                if (q.deqTimeRing.empty())
                    q.deqTimeRing.assign(
                        static_cast<size_t>(q.depth), 0);
                q.deqTimeRing[q.deqCount %
                              static_cast<uint64_t>(q.depth)] = done;
            }
            q.deqCount++;
            machine.traceSampleOcc(abs_q, clock);
            machine.wakeProducers(abs_q);

            // Control-value handler: hardware transfers to the handler
            // when a control value is about to be dequeued.
            if (e.v.isControl() && inst.handlerPc >= 0) {
                pc = inst.handlerPc;
                return true;
            }
        }
        pc++;
        return true;
      }

      default:
        phloem_panic("not a queue op");
    }
}

bool
ThreadEntity::execOp(const Inst& inst)
{
    using ir::Opcode;

    if (ir::usesQueue(inst.opcode))
        return execQueueOp(inst);
    if (ir::usesArray(inst.opcode) && inst.opcode != Opcode::kSwapArr) {
        execMemOp(inst);
        pc++;
        return true;
    }

    switch (inst.opcode) {
      case Opcode::kBarrier: {
        pc++;
        barrierArrival = clock;
        state = State::kBlocked;
        blockReason = BlockReason::kBarrier;
        machine.arriveBarrier(id);
        return false;
      }
      case Opcode::kHalt:
        state = State::kHalted;
        traceHalt();
        return false;
      case Opcode::kSwapArr: {
        std::swap(arrayBind[static_cast<size_t>(inst.arr)],
                  arrayBind[static_cast<size_t>(inst.arr2)]);
        if (timing) {
            uint64_t d = dispatchPoint();
            complete(machine.core(core).issueAt(d) + 1);
            chargeUops(1);
        } else {
            clock++;
        }
        pc++;
        return true;
      }
      default:
        break;
    }

    // Scalar op: functional evaluation (shared with the native runtime).
    ir::Value out = evalScalarOp(inst, regs.data());

    if (inst.dst >= 0)
        regs[static_cast<size_t>(inst.dst)] = out;

    if (timing) {
        uint64_t d = dispatchPoint();
        uint64_t issue = d;
        for (int i = 0; i < ir::numSrcs(inst.opcode); ++i) {
            ir::RegId r =
                i == 0 ? inst.src0 : (i == 1 ? inst.src1 : inst.src2);
            if (r >= 0)
                issue = std::max(issue, ready(r));
        }
        issue = machine.core(core).issueAt(issue);
        int uops = 1;
        uint64_t lat;
        if (inst.opcode == Opcode::kWork) {
            uops = static_cast<int>(std::max<int64_t>(1, inst.imm));
            lat = static_cast<uint64_t>(uops);
        } else {
            lat = static_cast<uint64_t>(aluLatency(inst.opcode));
        }
        uint64_t done = issue + lat;
        if (inst.dst >= 0)
            regReady[static_cast<size_t>(inst.dst)] = done;
        complete(done);
        chargeUops(uops);
    } else {
        clock++;
    }
    pc++;
    return true;
}

void
ThreadEntity::step()
{
    const auto& code = prog->code;
    uint64_t horizon = clock + machine.options().horizonCycles;
    for (int n = 0; n < quantum; ++n) {
        if (state != State::kReady)
            return;
        if (clock > horizon)
            return;  // yield: keep entity clocks close together
        if (pc >= static_cast<int>(code.size())) {
            state = State::kHalted;
            traceHalt();
            return;
        }
        machine.chargeInstruction();
        stats.instructions++;
        const Inst& inst = code[static_cast<size_t>(pc)];

        switch (inst.kind) {
          case Inst::Kind::kBr:
            pc = inst.target;
            if (timing) {
                uint64_t d = dispatchPoint();
                complete(machine.core(core).issueAt(d) + 1);
                chargeUops(1);
            } else {
                clock++;
            }
            break;

          case Inst::Kind::kBrIf:
          case Inst::Kind::kBrIfNot: {
            bool truth =
                regs[static_cast<size_t>(inst.src0)].asInt() != 0;
            bool taken =
                inst.kind == Inst::Kind::kBrIf ? truth : !truth;
            if (timing) {
                uint64_t d = dispatchPoint();
                uint64_t issue =
                    std::max(d, ready(inst.src0));
                issue = machine.core(core).issueAt(issue);
                uint64_t resolve = issue + 1;
                bool pred = predict(inst.branchId);
                stats.branches++;
                if (pred != taken) {
                    stats.mispredicts++;
                    uint64_t resume =
                        resolve +
                        static_cast<uint64_t>(mispredictPenalty);
                    if (resume > clock) {
                        stats.frontendCycles +=
                            static_cast<double>(mispredictPenalty);
                        clock = resume;
                        uopsThisCycle = 0;
                    }
                }
                train(inst.branchId, taken);
                complete(resolve);
                chargeUops(1);
            } else {
                clock++;
            }
            pc = taken ? inst.target : pc + 1;
            break;
          }

          case Inst::Kind::kOp:
            if (!execOp(inst))
                return;
            break;
        }
    }
}

// ---------------------------------------------------------------------
// RAEntity implementation.
// ---------------------------------------------------------------------

void
RAEntity::block(BlockReason reason, int q)
{
    state = State::kBlocked;
    blockReason = reason;
    blockedQueue = q;
    traceBlock(reason, q);
    QueueImpl& queue = machine.queue(q);
    if (reason == BlockReason::kQueueEmpty)
        queue.waitingConsumer = id;
    else
        queue.waitingProducers.push_back(id);
}

QueueEntry
RAEntity::loadElement(int64_t idx)
{
    QueueEntry out;
    out.v = array->load(idx);
    stats.memAccesses++;
    if (!timing) {
        out.ready = 0;
        return out;
    }
    uint64_t issue = clock;
    uint64_t& slot = inflight[inflightIdx % inflight.size()];
    if (slot > issue)
        issue = slot;
    AccessResult res =
        machine.memory().access(core, array->addrOf(idx), issue);
    slot = res.done;
    inflightIdx++;
    uint64_t deliver = std::max(prevDeliver + 1, res.done);
    prevDeliver = deliver;
    int lat = machine.config().queueLatency;
    out.ready = deliver + static_cast<uint64_t>(lat);
    return out;
}

bool
RAEntity::pushOut(QueueEntry e)
{
    QueueImpl& q = machine.queue(outQ);
    if (q.full()) {
        block(BlockReason::kQueueFull, outQ);
        return false;
    }
    if (timing && q.enqCount >= static_cast<uint64_t>(q.depth)) {
        uint64_t free_at =
            q.deqTimeRing[(q.enqCount - static_cast<uint64_t>(q.depth)) %
                          static_cast<uint64_t>(q.depth)];
        if (free_at > clock)
            clock = free_at;
        if (e.ready < free_at)
            e.ready = free_at;
    }
    q.entries.push_back(e);
    q.enqCount++;
    traceUnblock(clock);
    machine.traceSampleOcc(outQ, clock);
    machine.wakeConsumer(outQ);
    return true;
}

void
RAEntity::step()
{
    QueueImpl& in = machine.queue(inQ);
    uint64_t horizon = clock + machine.options().horizonCycles;
    for (int n = 0; n < quantum; ++n) {
        if (state != State::kReady)
            return;
        if (clock > horizon)
            return;  // yield: keep entity clocks close together
        // RA work counts against the run's instruction budget so that a
        // mis-plumbed accelerator cannot spin forever.
        machine.chargeInstruction();

        if (phase == Phase::kScanning) {
            if (scanCur >= scanEnd) {
                // Stay in kScanning until the range-end control value is
                // safely enqueued: a full output queue must not drop it.
                if (raCfg.emitRangeCtrl) {
                    QueueEntry e;
                    e.v = ir::Value::makeControl(raCfg.rangeCtrlCode);
                    e.ready = clock + 1;
                    if (!pushOut(e))
                        return;
                    stats.ctrlForwarded++;
                }
                phase = Phase::kIdle;
                continue;
            }
            if (machine.queue(outQ).full()) {
                block(BlockReason::kQueueFull, outQ);
                return;
            }
            QueueEntry e = loadElement(scanCur);
            scanCur++;
            clock++;
            stats.elements++;
            if (!pushOut(e))
                return;
            continue;
        }

        if (in.empty()) {
            block(BlockReason::kQueueEmpty, inQ);
            return;
        }
        if (machine.queue(outQ).full()) {
            block(BlockReason::kQueueFull, outQ);
            return;
        }

        QueueEntry e = in.entries.front();
        in.entries.pop_front();
        uint64_t done = std::max(clock + 1, e.ready);
        clock = done;
        if (timing) {
            if (in.deqTimeRing.empty())
                in.deqTimeRing.assign(static_cast<size_t>(in.depth), 0);
            in.deqTimeRing[in.deqCount %
                           static_cast<uint64_t>(in.depth)] = done;
        }
        in.deqCount++;
        traceUnblock(clock);
        machine.traceSampleOcc(inQ, clock);
        machine.wakeProducers(inQ);

        if (e.v.isControl()) {
            // Control values pass through RAs, delimiting streams.
            QueueEntry fwd;
            fwd.v = e.v;
            fwd.ready = clock + 1;
            phase = Phase::kIdle;
            stats.ctrlForwarded++;
            if (!pushOut(fwd))
                return;
            continue;
        }

        if (raCfg.mode == ir::RAMode::kIndirect) {
            QueueEntry out = loadElement(e.v.asInt());
            stats.elements++;
            if (!pushOut(out))
                return;
        } else {
            if (phase == Phase::kIdle) {
                pendingStart = e.v.asInt();
                phase = Phase::kHaveStart;
            } else {
                scanCur = pendingStart;
                scanEnd = e.v.asInt();
                phase = Phase::kScanning;
            }
        }
    }
}

} // namespace detail

// ---------------------------------------------------------------------
// Machine implementation.
// ---------------------------------------------------------------------

using detail::Entity;
using detail::RAEntity;
using detail::ThreadEntity;

Machine::Machine(const SysConfig& cfg, const MachineOptions& opt)
    : cfg_(cfg), opt_(opt)
{
    mem_ = std::make_unique<MemorySystem>(cfg);
    cores_.resize(static_cast<size_t>(cfg.numCores));
    for (auto& c : cores_) {
        c.slotsPerEpoch = CoreState::kEpochCycles * cfg.issueWidth;
        c.mshrRing.assign(static_cast<size_t>(cfg.mshrsPerCore), 0);
    }
    instructionBudget_ =
        opt.maxInstructions > 0 ? opt.maxInstructions : 4'000'000'000ull;
}

Machine::~Machine() = default;

detail::QueueImpl&
Machine::queue(int abs_q)
{
    phloem_assert(abs_q >= 0 && abs_q < static_cast<int>(queues_.size()),
                  "bad absolute queue id ", abs_q);
    return queues_[static_cast<size_t>(abs_q)];
}

void
Machine::wakeProducers(int abs_q)
{
    QueueImpl& q = queue(abs_q);
    for (int id : q.waitingProducers)
        entities_[static_cast<size_t>(id)]->state = Entity::State::kReady;
    q.waitingProducers.clear();
}

void
Machine::wakeConsumer(int abs_q)
{
    QueueImpl& q = queue(abs_q);
    if (q.waitingConsumer >= 0) {
        entities_[static_cast<size_t>(q.waitingConsumer)]->state =
            Entity::State::kReady;
        q.waitingConsumer = -1;
    }
}

void
Machine::arriveBarrier(int)
{
    barrierWaiting_++;
    if (barrierWaiting_ < numStageThreads_)
        return;
    // Release: all threads resume one cycle after the last arrival.
    uint64_t max_arrival = 0;
    for (auto& e : entities_) {
        if (e->isThread() &&
            e->blockReason == Entity::BlockReason::kBarrier) {
            max_arrival = std::max(max_arrival, e->barrierArrival);
        }
    }
    for (auto& e : entities_) {
        if (e->isThread() &&
            e->blockReason == Entity::BlockReason::kBarrier) {
            auto* t = static_cast<ThreadEntity*>(e.get());
            t->stats.queueStallCycles += std::max(
                0.0, static_cast<double>(max_arrival + 1 -
                                         t->barrierArrival) -
                         t->pendingIssueFrac());
            if (t->traceBuf != nullptr)
                t->traceBuf->record(trace::EventKind::kBarrierWait, -1,
                                    t->barrierArrival, max_arrival + 1);
            t->clock = max_arrival + 1;
            t->uopsThisCycle = 0;
            t->state = Entity::State::kReady;
            t->blockReason = Entity::BlockReason::kNone;
        }
    }
    barrierWaiting_ = 0;
}

void
Machine::traceSampleOcc(int abs_q, uint64_t ts)
{
    if (traceOccBuf_ == nullptr)
        return;
    uint64_t occ = queues_[static_cast<size_t>(abs_q)].entries.size();
    if (occ == traceOccLast_[static_cast<size_t>(abs_q)])
        return;
    traceOccLast_[static_cast<size_t>(abs_q)] = occ;
    traceOccBuf_->record(trace::EventKind::kQueueOcc, abs_q, ts, ts, occ);
}

std::string
Machine::debugClocks() const
{
    std::ostringstream oss;
    for (const auto& e : entities_) {
        oss << e->name << "=" << e->clock
            << (e->state == detail::Entity::State::kReady
                    ? "R"
                    : e->state == detail::Entity::State::kHalted ? "H"
                                                                 : "B")
            << " ";
    }
    return oss.str();
}

uint64_t
Machine::chargeInstruction()
{
    if (++instructionsExecuted_ > instructionBudget_) {
        phloem_fatal("instruction budget exceeded (",
                     instructionBudget_,
                     "); runaway program or budget too small");
    }
    return instructionsExecuted_;
}

void
Machine::addDeadlockInfo(RunStats& stats)
{
    std::ostringstream oss;
    for (const auto& e : entities_) {
        if (e->state != Entity::State::kHalted)
            oss << e->describe() << "\n";
    }
    for (size_t q = 0; q < queues_.size(); ++q) {
        const QueueImpl& qi = queues_[q];
        if (qi.enqCount == 0 && qi.deqCount == 0)
            continue;
        oss << "q" << q << ": enq=" << qi.enqCount
            << " deq=" << qi.deqCount << " held=" << qi.entries.size()
            << "\n";
    }
    if (opt_.tracer != nullptr) {
        // Still-open block spans are what the post-mortem is for: flush
        // them so the deadlocked entities' waits are visible.
        for (auto& e : entities_)
            e->traceUnblock(e->clock);
        oss << "trace post-mortem (trailing events per worker):\n"
            << opt_.tracer->postMortem();
    }
    stats.deadlock = true;
    stats.deadlockInfo = oss.str();
}

RunStats
Machine::runEntities(int num_stage_threads)
{
    numStageThreads_ = num_stage_threads;

    for (size_t i = 0; i < entities_.size(); ++i)
        entities_[i]->id = static_cast<int>(i);

    if (opt_.tracer != nullptr) {
        phloem_assert(opt_.tracer->timebase() ==
                          trace::Timebase::kSimCycles,
                      "simulator runs trace on the cycle timebase");
        for (auto& e : entities_)
            e->traceBuf = opt_.tracer->addWorker(e->name, e->isThread());
        traceOccBuf_ = opt_.tracer->addWorker("queue-occupancy",
                                              /*is_stage=*/false);
        traceOccLast_.assign(queues_.size(), ~0ull);
    }

    RunStats stats;
    for (;;) {
        Entity* best = nullptr;
        bool any_thread_live = false;
        for (auto& e : entities_) {
            if (e->isThread() && e->state != Entity::State::kHalted)
                any_thread_live = true;
            if (e->state == Entity::State::kReady &&
                (best == nullptr || e->clock < best->clock)) {
                best = e.get();
            }
        }
        if (!any_thread_live)
            break;
        if (best == nullptr) {
            addDeadlockInfo(stats);
            break;
        }
        best->step();
    }

    // Trace epilogue: RAs end the run blocked on their drained input
    // (that is their normal exit), so flush the open span; any entity
    // that recorded nothing still gets its terminal state as one event.
    for (auto& e : entities_) {
        if (e->traceBuf == nullptr)
            continue;
        e->traceUnblock(e->clock);
        if (e->traceBuf->recorded() == 0)
            e->traceHalt();
    }

    // Collect results.
    for (auto& e : entities_) {
        if (e->isThread()) {
            auto* t = static_cast<ThreadEntity*>(e.get());
            t->stats.cycles = t->clock;
            stats.threads.push_back(t->stats);
            stats.cycles = std::max(stats.cycles, t->clock);
        } else {
            auto* r = static_cast<RAEntity*>(e.get());
            stats.ras.push_back(r->stats);
        }
    }
    for (size_t q = 0; q < queues_.size(); ++q) {
        const QueueImpl& qi = queues_[q];
        if (qi.enqCount == 0 && qi.deqCount == 0)
            continue;  // queues the program never touched add no signal
        QueueSimStats qs;
        qs.id = static_cast<int>(q);
        qs.enq = qi.enqCount;
        qs.deq = qi.deqCount;
        qs.residual = qi.entries.size();
        stats.queues.push_back(qs);
    }
    stats.mem = mem_->stats();
    return stats;
}

RunStats
Machine::runSerial(const ir::Function& fn, Binding& binding)
{
    programSerial_ = flatten(fn);
    // Serial runs get the whole core: full ROB, one thread.
    queues_.clear();
    entities_.clear();
    auto t = std::make_unique<ThreadEntity>(
        *this, fn.name, /*core=*/0, &programSerial_, binding, /*replica=*/0,
        /*queue_offset=*/0, /*queue_stride=*/0, /*num_replicas=*/1);
    t->setRobSize(cfg_.robSize);
    entities_.push_back(std::move(t));
    return runEntities(/*num_stage_threads=*/1);
}

RunStats
Machine::runParallel(const std::vector<const ir::Function*>& fns,
                     Binding& binding)
{
    int total = static_cast<int>(fns.size());
    phloem_assert(total <= cfg_.numCores * cfg_.threadsPerCore,
                  "too many data-parallel threads (", total, ")");
    queues_.clear();
    entities_.clear();

    std::vector<Program> programs;
    programs.reserve(fns.size());
    for (const auto* fn : fns)
        programs.push_back(flatten(*fn));
    programsParallel_ = std::move(programs);

    std::vector<int> threads_on_core(static_cast<size_t>(cfg_.numCores), 0);
    for (int i = 0; i < total; ++i) {
        int core = i / cfg_.threadsPerCore;
        threads_on_core[static_cast<size_t>(core)]++;
    }
    for (int i = 0; i < total; ++i) {
        int core = i / cfg_.threadsPerCore;
        auto t = std::make_unique<ThreadEntity>(
            *this, fns[static_cast<size_t>(i)]->name + "@" +
                       std::to_string(i),
            core, &programsParallel_[static_cast<size_t>(i)], binding,
            /*replica=*/i, /*queue_offset=*/0, /*queue_stride=*/0,
            /*num_replicas=*/1);
        t->setRobSize(cfg_.robSize /
                      threads_on_core[static_cast<size_t>(core)]);
        entities_.push_back(std::move(t));
    }
    return runEntities(total);
}

void
Machine::buildQueues(const ir::Pipeline& pipeline, int replicas, int stride)
{
    queues_.assign(static_cast<size_t>(stride * replicas), QueueImpl{});
    for (auto& q : queues_)
        q.depth = cfg_.queueDepth;
    for (const auto& qc : pipeline.queues) {
        if (qc.depth <= 0)
            continue;
        for (int r = 0; r < replicas; ++r)
            queues_[static_cast<size_t>(qc.id + r * stride)].depth =
                qc.depth;
    }
    for (auto& q : queues_)
        q.deqTimeRing.assign(static_cast<size_t>(q.depth), 0);
}

RunStats
Machine::runPipeline(const ir::Pipeline& pipeline, Binding& binding)
{
    int replicas = std::max(1, pipeline.replicas);

    // Queue-id stride between replicas.
    int max_qid = ir::maxQueueId(pipeline);
    int stride = pipeline.queueStride > 0 ? pipeline.queueStride
                                          : max_qid + 1;
    phloem_assert(stride >= max_qid + 1, "queue stride too small");

    buildQueues(pipeline, replicas, stride);

    int stages_per_replica = static_cast<int>(pipeline.stages.size());
    int total_threads = stages_per_replica * replicas;
    phloem_assert(total_threads <= cfg_.numCores * cfg_.threadsPerCore,
                  "pipeline needs ", total_threads, " threads but system has ",
                  cfg_.numCores * cfg_.threadsPerCore);

    programsPipeline_.clear();
    for (const auto& stage : pipeline.stages)
        programsPipeline_.push_back(flatten(*stage));

    entities_.clear();
    std::vector<int> threads_on_core(static_cast<size_t>(cfg_.numCores), 0);
    std::vector<int> thread_core(static_cast<size_t>(total_threads), 0);
    for (int t = 0; t < total_threads; ++t) {
        int core = t / cfg_.threadsPerCore;
        thread_core[static_cast<size_t>(t)] = core;
        threads_on_core[static_cast<size_t>(core)]++;
    }

    std::vector<std::vector<int>> stage_core(
        static_cast<size_t>(replicas),
        std::vector<int>(static_cast<size_t>(stages_per_replica), 0));
    int tidx = 0;
    for (int r = 0; r < replicas; ++r) {
        for (int s = 0; s < stages_per_replica; ++s) {
            int core = thread_core[static_cast<size_t>(tidx)];
            stage_core[static_cast<size_t>(r)][static_cast<size_t>(s)] =
                core;
            auto t = std::make_unique<ThreadEntity>(
                *this,
                pipeline.stages[static_cast<size_t>(s)]->name +
                    (replicas > 1 ? "@" + std::to_string(r) : ""),
                core, &programsPipeline_[static_cast<size_t>(s)], binding,
                r, /*queue_offset=*/r * stride, stride, replicas);
            t->setRobSize(cfg_.robSize /
                          std::max(1, threads_on_core[static_cast<size_t>(
                                        core)]));
            entities_.push_back(std::move(t));
            tidx++;
        }
    }

    // Reference accelerators: place each RA at the core of the stage that
    // ultimately consumes its output (following RA chains).
    for (int r = 0; r < replicas; ++r) {
        for (size_t i = 0; i < pipeline.ras.size(); ++i) {
            const auto& ra = pipeline.ras[i];
            // Follow chains to the consuming stage.
            ir::QueueId out = ra.outQueue;
            bool chained = true;
            while (chained) {
                chained = false;
                for (const auto& other : pipeline.ras) {
                    if (other.inQueue == out) {
                        out = other.outQueue;
                        chained = true;
                        break;
                    }
                }
            }
            int core = 0;
            for (int s = 0; s < stages_per_replica; ++s) {
                bool consumes = false;
                ir::forEachOp(
                    pipeline.stages[static_cast<size_t>(s)]->body,
                    [&](const ir::Op& op) {
                        if ((op.opcode == ir::Opcode::kDeq ||
                             op.opcode == ir::Opcode::kPeek) &&
                            op.queue == out) {
                            consumes = true;
                        }
                    });
                if (consumes) {
                    core = stage_core[static_cast<size_t>(r)]
                                     [static_cast<size_t>(s)];
                    break;
                }
            }
            auto* buf = binding.array(ra.arrayName, r);
            auto ent = std::make_unique<RAEntity>(
                *this,
                "ra:" + ra.arrayName +
                    (replicas > 1 ? "@" + std::to_string(r) : ""),
                core, ra, buf, ra.inQueue + r * stride,
                ra.outQueue + r * stride, static_cast<int>(i));
            entities_.push_back(std::move(ent));
        }
    }

    // Compute each queue's consumer core (for enq latency selection).
    for (size_t e = 0; e < entities_.size(); ++e) {
        Entity* ent = entities_[e].get();
        if (ent->isThread()) {
            auto* t = static_cast<ThreadEntity*>(ent);
            for (const auto& inst : t->prog->code) {
                if (inst.kind == Inst::Kind::kOp &&
                    (inst.opcode == ir::Opcode::kDeq ||
                     inst.opcode == ir::Opcode::kPeek)) {
                    queues_[static_cast<size_t>(t->queueOffset +
                                                inst.queue)]
                        .consumerCore = t->core;
                }
            }
        } else {
            auto* r = static_cast<RAEntity*>(ent);
            queues_[static_cast<size_t>(r->inQ)].consumerCore = r->core;
        }
    }

    return runEntities(total_threads);
}

} // namespace phloem::sim
